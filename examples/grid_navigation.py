#!/usr/bin/env python
"""Grid navigation with obstacles — the paper's figure 8/11 workload.

Every cell of an R×R grid iteratively recomputes its distance to a goal
cell as 1 + min(neighbour distances) — a self-stabilising relaxation
expressed with UC's ``*par``.  Because the update is self-stabilising it
also handles *moving* obstacles: we displace the wall mid-computation and
let the same program re-converge, which is the dynamic variant the paper
describes ("the obstacles may also be moved dynamically").

Run:  python examples/grid_navigation.py [R]
"""

import sys

import numpy as np

from repro.algorithms.grid_path import (
    BIG,
    grid_reference_distances,
    obstacle_mask,
)
from repro.bench.workloads import OBSTACLE_UC
from repro.interp.program import UCProgram
from repro.seqc import sequential_obstacle_path

r = int(sys.argv[1]) if len(sys.argv) > 1 else 24

# ---------------------------------------------------------------------------
# 1. Stationary obstacle: UC on the CM vs sequential C on the Sun-4
# ---------------------------------------------------------------------------

uc = UCProgram(OBSTACLE_UC, defines={"R": r, "WALL": BIG}).run()
seq = sequential_obstacle_path(r)
seq_opt = sequential_obstacle_path(r, optimized=True)

reference = grid_reference_distances(r)
free = ~obstacle_mask(r)
assert np.array_equal(np.asarray(uc["a"])[free], reference[free])
assert np.array_equal(seq.distances[free], reference[free])

print(f"{r}x{r} grid, wall on the anti-diagonal band, goal at (0,0)")
print(f"  sequential C   : {seq.elapsed_us/1e6:8.3f} s")
print(f"  sequential C -O: {seq_opt.elapsed_us/1e6:8.3f} s")
print(f"  UC on 16K CM   : {uc.elapsed_us/1e6:8.3f} s")

# a small ASCII picture (distances mod 10; '#' = wall)
if r <= 32:
    art = np.asarray(uc["a"]) % 10
    print("\ndistance field (mod 10):")
    for i in range(r):
        print(
            "  "
            + "".join(
                "#" if obstacle_mask(r)[i, j] else str(int(art[i, j]))
                for j in range(r)
            )
        )

# ---------------------------------------------------------------------------
# 2. Dynamic obstacle: move the wall, re-run the same relaxation
# ---------------------------------------------------------------------------

DYNAMIC = """
index_set I:i = {0..R-1}, J:j = I;
int a[R][R];
int walls[R][R];
main {
    /* distances already loaded; walls moved by the host: raise the new
       walls first so nobody paths through a stale value, then re-relax */
    par (I, J) st (walls[i][j] == 1) a[i][j] = WALL;
    *par (I, J)
        st (walls[i][j] == 0 && (i != 0 || j != 0) &&
            a[i][j] != 1 + min(min(i > 0 ? a[i-1][j] : WALL,
                                   i < R-1 ? a[i+1][j] : WALL),
                               min(j > 0 ? a[i][j-1] : WALL,
                                   j < R-1 ? a[i][j+1] : WALL)))
        a[i][j] = 1 + min(min(i > 0 ? a[i-1][j] : WALL,
                              i < R-1 ? a[i+1][j] : WALL),
                          min(j > 0 ? a[i][j-1] : WALL,
                              j < R-1 ? a[i][j+1] : WALL));
}
"""

# shift the wall band one column right and reuse the converged field
old_walls = obstacle_mask(r)
new_walls = np.zeros_like(old_walls)
new_walls[:, 1:] = old_walls[:, :-1]

start = np.asarray(uc["a"]).copy()
start[old_walls] = 0  # the old wall cells become free space again

dyn = UCProgram(DYNAMIC, defines={"R": r, "WALL": BIG}).run(
    {"a": start, "walls": new_walls.astype(np.int64)}
)
new_reference = grid_reference_distances(r, new_walls)
new_free = ~new_walls
assert np.array_equal(np.asarray(dyn["a"])[new_free], new_reference[new_free])
print(
    f"\nobstacle moved one column right; the same relaxation re-converged "
    f"to the new\ndistance field in {dyn.elapsed_us/1e6:.3f} s simulated "
    f"(from-scratch solve: {uc.elapsed_us/1e6:.3f} s).\nNo code changed — "
    "the self-stabilising update is what lets the paper's program\nhandle "
    "obstacles that move dynamically."
)
