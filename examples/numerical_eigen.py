#!/usr/bin/env python
"""The paper's "experiments in progress" (§5): Jacobi diagonalization & SVD.

The paper closes by noting experiments under way on "numerical
computations involving SVD and Jacobi diagonalization".  This script runs
them:

1. classical Jacobi eigenvalue iteration, written entirely in UC — the
   front end drives the sweep loop (`while` over a reduction), reductions
   locate the pivot, and `par` applies each rotation to whole rows and
   columns at once;
2. singular values via the same UC machinery: form AᵀA with the §3.4
   matrix-multiply kernel, diagonalize it, take square roots.

Everything is validated against numpy.

Run:  python examples/numerical_eigen.py [N]
"""

import sys

import numpy as np

from repro.bench.numerics import (
    JACOBI_EIGEN_UC,
    random_symmetric,
    run_jacobi_eigen,
)
from repro.interp.program import UCProgram

n = int(sys.argv[1]) if len(sys.argv) > 1 else 8

# ---------------------------------------------------------------------------
# 1. Eigenvalues of a symmetric matrix
# ---------------------------------------------------------------------------

a = random_symmetric(n, seed=7)
eig, result = run_jacobi_eigen(a, eps=1e-9)
ref = np.sort(np.linalg.eigvalsh(a))
assert np.allclose(eig, ref, atol=1e-6)

print(f"Jacobi diagonalization of a random symmetric {n}x{n} matrix")
print("  eigenvalues (UC)   :", np.array2string(eig, precision=4))
print("  eigenvalues (numpy):", np.array2string(ref, precision=4))
print(f"  simulated elapsed  : {result.elapsed_us/1e3:.1f} ms "
      f"({result.counts.get('host_cm_latency', 0)} front-end interactions)")

# ---------------------------------------------------------------------------
# 2. Singular values via AtA, computed with UC's matrix multiply
# ---------------------------------------------------------------------------

ATA_UC = """
index_set I:i = {0..N-1}, J:j = I, K:k = I;
float m[N][N], ata[N][N];
main {
    /* ata = m^T m, the section-3.4 kernel with one transposed operand */
    par (I, J)
        ata[i][j] = $+(K; m[k][i] * m[k][j]);
}
"""

rng = np.random.default_rng(11)
m = rng.normal(0, 5, (n, n))
ata_run = UCProgram(ATA_UC, defines={"N": n}).run({"m": m})
ata = np.asarray(ata_run["ata"])
assert np.allclose(ata, m.T @ m, atol=1e-9)

sv_sq, sv_result = run_jacobi_eigen(ata, eps=1e-9)
singular = np.sqrt(np.maximum(sv_sq, 0))[::-1]
ref_sv = np.linalg.svd(m, compute_uv=False)
assert np.allclose(np.sort(singular), np.sort(ref_sv), atol=1e-5)

print(f"\nSVD of a random {n}x{n} matrix via UC (AtA + Jacobi + sqrt)")
print("  singular values (UC)   :", np.array2string(np.sort(singular)[::-1], precision=4))
print("  singular values (numpy):", np.array2string(ref_sv, precision=4))
print(f"  AtA kernel: {ata_run.elapsed_us/1e3:.1f} ms;  "
      f"diagonalization: {sv_result.elapsed_us/1e3:.1f} ms simulated")
