#!/usr/bin/env python
"""Sorting with UC's constructs: ranksort, odd-even *oneof, prefix sums.

Three of the paper's worked examples exercising three different
constructs:

* ranksort (§3.4) — a ``par`` with a nested reduction and a scatter;
* odd-even transposition sort (§3.7) — ``*oneof`` picks an enabled phase
  non-deterministically each sweep until the array is sorted;
* prefix sums (figures 2 and 3) — the same computation via ``*par``
  (data-driven iteration count) and via ``seq`` nested in ``par``
  (explicit log N loop).

Run:  python examples/sorting_oneof.py
"""

import numpy as np

from repro.bench.workloads import (
    ODDEVEN_UC,
    PREFIX_SEQ_UC,
    PREFIX_STARPAR_UC,
    RANKSORT_UC,
)
from repro.interp.program import UCProgram

rng = np.random.default_rng(2026)

# ---------------------------------------------------------------------------
# ranksort — O(1) "time", N^2 processors
# ---------------------------------------------------------------------------

n = 32
data = rng.permutation(100)[:n]
run = UCProgram(RANKSORT_UC, defines={"N": n}).run({"a": data})
assert list(run["a"]) == sorted(data.tolist())
print(f"ranksort, N={n}: {run.elapsed_us/1e3:8.2f} ms simulated "
      f"(one reduction + one scatter)")

# ---------------------------------------------------------------------------
# odd-even transposition via *oneof — non-deterministic but always sorts
# ---------------------------------------------------------------------------

for seed in (1, 2, 3):
    data = rng.permutation(n)
    run = UCProgram(ODDEVEN_UC, defines={"N": n}).run({"x": data}, seed=seed)
    assert list(run["x"]) == sorted(data.tolist())
    print(f"odd-even *oneof, seed={seed}: sorted in {run.elapsed_us/1e3:8.2f} ms "
          f"({run.counts.get('global_or', 0)} scheduler polls)")
print("  (the construct guarantees no fairness; any schedule of enabled\n"
      "   phases still terminates with a sorted array)")

# ---------------------------------------------------------------------------
# prefix sums two ways — figure 2 (*par) vs figure 3 (seq in par)
# ---------------------------------------------------------------------------

n = 64
logn = int(np.ceil(np.log2(n)))
fig2 = UCProgram(PREFIX_STARPAR_UC, defines={"N": n}).run()
fig3 = UCProgram(PREFIX_SEQ_UC, defines={"N": n, "LOGN": logn}).run()
expected = np.cumsum(np.arange(n))
assert np.array_equal(fig2["a"], expected)
assert np.array_equal(fig3["a"], expected)
print(f"\nprefix sums of 0..{n-1} in log2({n}) = {logn} parallel steps:")
print(f"  figure 2 (*par, data-driven):  {fig2.elapsed_us/1e3:8.2f} ms")
print(f"  figure 3 (seq-in-par, counted): {fig3.elapsed_us/1e3:8.2f} ms")
print("  last prefix sum:", int(fig2["a"][-1]))
