#!/usr/bin/env python
"""Quickstart: write UC, run it on a simulated Connection Machine.

UC (Bagrodia, Chandy & Kwan, Supercomputing 1990) extends C with index
sets, reductions and four parallel constructs.  This script walks the
basics: a parallel assignment, a predicate, a reduction, and reading the
simulated CM-2 elapsed time and the operation ledger.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import UCProgram

# ---------------------------------------------------------------------------
# 1. A first program: par + reductions over an index set
# ---------------------------------------------------------------------------

SOURCE = """
int N = 16;
index_set I:i = {0..N-1};

int a[16];
int total, largest, n_even;
float mean;

main {
    /* parallel assignment: one virtual processor per element of I */
    par (I) a[i] = (i * 7) % 26;

    /* reductions: $op(index-sets ; expression) */
    total   = $+(I; a[i]);
    largest = $>(I; a[i]);
    mean    = $+(I; a[i]) / 16.0;

    /* a predicate (st = "such that") selects a subset of the elements */
    n_even  = $+(I st (a[i] % 2 == 0) 1);
}
"""

prog = UCProgram(SOURCE)
result = prog.run()

print("a       =", result["a"].tolist())
print("total   =", result["total"], " (numpy check:", int(np.sum(result["a"])), ")")
print("largest =", result["largest"])
print("mean    =", result["mean"])
print("n_even  =", result["n_even"])

# ---------------------------------------------------------------------------
# 2. The machine is simulated: programs report CM-2-shaped elapsed time
# ---------------------------------------------------------------------------

print(f"\nsimulated elapsed time: {result.elapsed_us:.0f} us "
      f"(on a {prog.machine_config.n_pes if prog.machine_config else 16384}-PE CM-2)")
print("operation ledger:")
for kind, count in sorted(result.counts.items()):
    print(f"  {kind:16s} x{count:<6d} {result.times[kind]:10.0f} us")

# ---------------------------------------------------------------------------
# 3. Feeding data in and out: run() takes numpy inputs
# ---------------------------------------------------------------------------

SORT = """
int N = 10;
index_set I:i = {0..N-1}, J:j = I;
int a[10];
main {
    /* ranksort (paper fig. in section 3.4): count smaller elements,
       then every element jumps to its final position in parallel */
    par (I) {
        int rank;
        rank = $+(J st (a[j] < a[i]) 1);
        a[rank] = a[i];
    }
}
"""

data = np.array([55, 12, 99, 3, 78, 41, 6, 83, 29, 64])
sorted_result = UCProgram(SORT).run({"a": data})
print("\nranksort in :", data.tolist())
print("ranksort out:", sorted_result["a"].tolist())
assert list(sorted_result["a"]) == sorted(data.tolist())
print("\nOK — see examples/shortest_path.py for the paper's benchmarks.")
