/* All-pairs shortest path with O(N^2) parallelism (paper figure 4).
   Run:  python -m repro run examples/uc/apsp.uc -D N=8 --print d --ledger */

index_set I:i = {0..N-1}, J:j = I, K:k = I;
int d[N][N];

main {
    /* random distance matrix: 0 on the diagonal, 1..N elsewhere */
    par (I, J) st (i == j)
        d[i][j] = 0;
      others
        d[i][j] = rand() % N + 1;

    seq (K)
      par (I, J)
        st (d[i][k] + d[k][j] < d[i][j])
          d[i][j] = d[i][k] + d[k][j];
}
