/* The worked mapping example of section 4: a[i] = a[i] + b[i+1] becomes
   local under  permute (I) b[i+1] :- a[i].
   Compare:  python -m repro run examples/uc/shifted.uc --ledger
             python -m repro run examples/uc/shifted.uc --no-maps --ledger */

int N = 64;
index_set I:i = {0..N-2};
int a[64], b[64];

map (I) {
    permute (I) b[i+1] :- a[i];
}

main {
    par (I) b[i] = i;
    b[63] = 63;
    par (I) a[i] = a[i] + b[i+1];
}
