/* The paper's digit-count example (section 4): the compiler deduces that
   N (not 10*N) virtual processors suffice.
   Run:  python -m repro analyze examples/uc/histogram.uc -D N=64 */

index_set I:i = {0..N-1}, J:j = {0..9};
int samples[N];
int count[10];

main {
    par (I) samples[i] = rand() % 10;
    par (J)
        count[j] = $+(I st (samples[i] == j) 1);
}
