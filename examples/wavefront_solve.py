#!/usr/bin/env python
"""The solve construct: proper equation sets without explicit scheduling.

The wavefront problem (§3.6): build a matrix where the borders are 1 and
every interior element is the sum of its west, north-west and north
neighbours.  In UC you state the equations; the compiler finds an
execution order.  This script runs both implementation strategies the
paper describes and shows the dependency levels the static scheduler
derives (the anti-diagonal wavefront that gives the problem its name).

Run:  python examples/wavefront_solve.py
"""

import numpy as np

from repro.algorithms import wavefront_matrix
from repro.bench.workloads import WAVEFRONT_UC
from repro.interp.program import UCProgram

n = 12
reference = wavefront_matrix(n)

# ---------------------------------------------------------------------------
# 1. The declarative program, two execution strategies
# ---------------------------------------------------------------------------

scheduled = UCProgram(WAVEFRONT_UC, defines={"N": n}, solve_strategy="scheduled")
run_s = scheduled.run()
assert np.array_equal(run_s["a"], reference)

guarded = UCProgram(WAVEFRONT_UC, defines={"N": n}, solve_strategy="guarded")
run_g = guarded.run()
assert np.array_equal(run_g["a"], reference)

print(f"wavefront {n}x{n}:")
print(f"  scheduled solve (static levels, ref [14]): {run_s.elapsed_us/1e3:8.2f} ms")
print(f"  guarded solve (the general *par method):   {run_g.elapsed_us/1e3:8.2f} ms")
print("  identical results; the scheduled form skips the per-sweep readiness "
      "bookkeeping.")

print("\ncorner of the matrix:")
for row in reference[:6]:
    print("  ", "".join(f"{v:8d}" for v in row[:6]))

# ---------------------------------------------------------------------------
# 2. What the static scheduler saw: L(i,j) = i + j anti-diagonals
# ---------------------------------------------------------------------------

from repro.compiler.solve_sched import try_schedule
from repro.interp.interpreter import Interpreter
from repro.interp.eval_expr import ExecContext
from repro.interp.env import Env
from repro.interp.values import GridContext
from repro.interp.statements import enter_grid
from repro.interp.solve import _collect_assignments
from repro.machine import Machine
from repro.lang import ast as uc_ast

interp = Interpreter(scheduled.info, Machine(), scheduled.layouts)
main = scheduled.info.program.main
solve_stmt = next(s for s in uc_ast.walk(main) if isinstance(s, uc_ast.UCStmt))
ctx = ExecContext(GridContext(), None, Env(interp.global_env))
inner = enter_grid(interp, solve_stmt, ctx)
schedule = try_schedule(interp, solve_stmt, _collect_assignments(solve_stmt), inner)
assert schedule is not None
print(f"\ndependency levels derived by the scheduler (max {schedule.max_level}):")
for row in schedule.levels[:6]:
    print("  ", "".join(f"{v:4d}" for v in row[:6]))
print("  — the anti-diagonal wavefront: element (i,j) runs at level i+j.")

# ---------------------------------------------------------------------------
# 3. *solve: iterate arbitrary statements to a fixed point
# ---------------------------------------------------------------------------

HEAT = """
index_set I:i = {1..N-2}, J:j = I;
int t[N][N];
main {
    /* integer heat diffusion: relax to the fixed point where every
       interior cell is the average of its four neighbours */
    *solve (I, J)
        t[i][j] = (t[i-1][j] + t[i+1][j] + t[i][j-1] + t[i][j+1]) / 4;
}
"""
m = 10
t0 = np.zeros((m, m), dtype=np.int64)
t0[0, :] = 100  # hot north edge
run_h = UCProgram(HEAT, defines={"N": m}).run({"t": t0})
print("\n*solve heat diffusion (hot north edge), equilibrium rows 0..3:")
for row in np.asarray(run_h["t"])[:4]:
    print("  ", "".join(f"{v:5d}" for v in row))
