#!/usr/bin/env python
"""The paper's headline benchmark: all-pairs shortest paths, three ways.

Runs the figure-4 (O(N²)-parallel), figure-5 (O(N³)-parallel) and §3.6
(``*solve``) UC programs plus the appendix's hand-written C* programs on
the same simulated 16K CM-2, validates them against Floyd–Warshall, and
prints a figure-6/7-style comparison.

Run:  python examples/shortest_path.py [N]
"""

import sys

import numpy as np

from repro.algorithms import floyd_warshall, random_distance_matrix
from repro.bench.workloads import (
    APSP_N2_UC,
    APSP_N3_UC,
    APSP_SOLVE_UC,
    log2_ceil,
)
from repro.cstar import programs as cstar_programs
from repro.interp.program import UCProgram

n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
dist = random_distance_matrix(n, seed=42)
reference = floyd_warshall(dist)
print(f"random {n}x{n} distance matrix (d[i][j] = rand()%N + 1, 0 diagonal)\n")

rows = []

uc_n2 = UCProgram(APSP_N2_UC, defines={"N": n}).run({"d": dist})
assert np.array_equal(uc_n2["d"], reference)
rows.append(("UC, O(N^2) parallelism (fig 4)", uc_n2.elapsed_us))

uc_n3 = UCProgram(APSP_N3_UC, defines={"N": n, "LOGN": log2_ceil(n)}).run({"d": dist})
assert np.array_equal(uc_n3["d"], reference)
rows.append(("UC, O(N^3) parallelism (fig 5)", uc_n3.elapsed_us))

uc_solve = UCProgram(APSP_SOLVE_UC, defines={"N": n}).run({"dist": dist})
assert np.array_equal(uc_solve["dist"], reference)
rows.append(("UC, *solve fixed point (3.6)", uc_solve.elapsed_us))

cs_n2 = cstar_programs.apsp_n2(dist)
assert np.array_equal(cs_n2.distances, reference)
rows.append(("C*, O(N^2) parallelism (fig 9)", cs_n2.elapsed_us))

cs_n3 = cstar_programs.apsp_n3(dist)
assert np.array_equal(cs_n3.distances, reference)
rows.append(("C*, O(N^3) parallelism (fig 10)", cs_n3.elapsed_us))

width = max(len(name) for name, _ in rows)
print(f"{'program':{width}s}  simulated elapsed")
for name, us in rows:
    print(f"{name:{width}s}  {us/1000:10.2f} ms")

print(
    "\nNote the paper's two observations: the O(N^3)-parallel algorithm "
    "wins at larger N\n(log N instead of N iterations), and UC tracks the "
    "hand-written C* closely.\nAlso note what UC did NOT require: the C* "
    "O(N^3) program needs an explicit 3-D\nXMED domain "
    f"({len(cs_n3.runtime.domains)} domains declared); the UC programs "
    "differ only in one statement."
)
