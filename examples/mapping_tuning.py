#!/usr/bin/env python
"""Data-mapping tuning: the paper's separation of correctness and cost.

The same UC source runs twice — once with the compiler's default mapping
and once with the program's ``map`` section honoured.  The results are
bit-identical (mappings cannot change program meaning, §4); only the
communication ledger and the elapsed time change.  This is the paper's
development workflow: get the program right first, then tune the map
section declaratively.

Run:  python examples/mapping_tuning.py
"""

import numpy as np

from repro.bench.workloads import (
    TRANSPOSE_KERNEL_MAP,
    TRANSPOSE_KERNEL_UC,
    with_map,
)
from repro.compiler.comm_opt import analyze_communication
from repro.interp.program import UCProgram

n, reps = 128, 8
rng = np.random.default_rng(11)
inputs = {
    "a": rng.integers(0, 100, (n, n)),
    "b": rng.integers(0, 100, (n, n)),
    "c": rng.integers(0, 100, (n, n)),
}
defines = {"N": n, "REPS": reps}

# ---------------------------------------------------------------------------
# 1. Prototype first: default mappings, correct but router-bound
# ---------------------------------------------------------------------------

source_unmapped = with_map(TRANSPOSE_KERNEL_UC, TRANSPOSE_KERNEL_MAP, False)
prog = UCProgram(source_unmapped, defines=defines)
default_run = prog.run(dict(inputs))

print(f"kernel: a[i][j] += b[j][i] + c[j][i], {n}x{n}, {reps} sweeps")
print(f"\ndefault mapping:  {default_run.elapsed_us/1e3:9.2f} ms")
print(f"  router gets: {default_run.counts.get('router_get', 0)}")

# ---------------------------------------------------------------------------
# 2. Ask the compiler where the communication goes
# ---------------------------------------------------------------------------

report = analyze_communication(prog.info, prog.layouts)
print("\ncommunication analysis (compile-time):")
for ref in report.references:
    print(f"  {ref.text:14s} -> {ref.kind:9s} {ref.note}")
for hint in report.suggestions:
    print(f"  suggestion: {hint}")

# ---------------------------------------------------------------------------
# 3. Add the map section — program logic untouched
# ---------------------------------------------------------------------------

source_mapped = with_map(TRANSPOSE_KERNEL_UC, TRANSPOSE_KERNEL_MAP, True)
mapped_run = UCProgram(source_mapped, defines=defines).run(dict(inputs))

print(f"\nwith map section: {mapped_run.elapsed_us/1e3:9.2f} ms "
      f"(speedup {default_run.elapsed_us/mapped_run.elapsed_us:.1f}x)")
print(f"  router gets: {mapped_run.counts.get('router_get', 0)}")

for name in ("a", "b", "c"):
    assert np.array_equal(default_run[name], mapped_run[name]), name
print("\nresults are identical — the map section changed layout, not meaning.")

# ---------------------------------------------------------------------------
# 4. The source-to-source view: what the optimizer did to the subscripts
# ---------------------------------------------------------------------------

from repro.lang import parse_statement
from repro.mapping.transform import rewrite_subscripts
from repro.compiler.cstar_gen import expr_to_text

stmt = parse_statement("a[i] = a[i] + b[i+1];")
simple_prog = UCProgram(
    """
    int N = 8;
    index_set I:i = {0..N-1};
    int a[8], b[8];
    map (I) { permute (I) b[i+1] :- a[i]; }
    main { par (I) a[i] = a[i] + b[i+1]; }
    """
)
rewritten = rewrite_subscripts(stmt, simple_prog.layouts)
print("\nthe paper's worked example (permute (I) b[i+1] :- a[i]):")
print("  before:", "a[i] = a[i] + b[i+1];")
print("  after :", expr_to_text(rewritten.expr) + ";")
