"""Reference-algorithm tests (the oracles must themselves be right)."""

import numpy as np
import pytest

from repro.algorithms import (
    BIG,
    floyd_warshall,
    grid_reference_distances,
    is_sorted,
    jacobi_step,
    min_plus_power,
    obstacle_mask,
    odd_even_transposition_steps,
    prefix_sums,
    random_distance_matrix,
    random_obstacle_mask,
    ranks,
    wavefront_matrix,
)
from repro.algorithms.grid_path import relax_to_fixpoint
from repro.algorithms.shortest_path import min_plus_product


class TestShortestPath:
    def test_random_matrix_shape(self):
        d = random_distance_matrix(6, seed=0)
        assert d.shape == (6, 6)
        assert (np.diag(d) == 0).all()
        off = d[~np.eye(6, dtype=bool)]
        assert off.min() >= 1 and off.max() <= 6

    def test_floyd_warshall_tiny_case(self):
        d = np.array([[0, 1, 10], [1, 0, 1], [10, 1, 0]])
        out = floyd_warshall(d)
        assert out[0, 2] == 2 and out[2, 0] == 2

    def test_floyd_warshall_does_not_modify_input(self):
        d = random_distance_matrix(5, seed=1)
        before = d.copy()
        floyd_warshall(d)
        assert np.array_equal(d, before)

    def test_min_plus_power_equals_floyd_warshall(self):
        for seed in range(4):
            d = random_distance_matrix(9, seed=seed)
            assert np.array_equal(min_plus_power(d), floyd_warshall(d))

    def test_min_plus_product_identity_like(self):
        d = random_distance_matrix(5, seed=2)
        one = np.full((5, 5), 10**6)
        np.fill_diagonal(one, 0)
        assert np.array_equal(min_plus_product(d, one), d)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            floyd_warshall(np.zeros((2, 3)))


class TestGridPath:
    def test_obstacle_mask_is_antidiagonal_band(self):
        m = obstacle_mask(16)
        i, j = np.nonzero(m)
        assert (i + j == 15).all()
        assert np.abs(i - 8).max() <= 4

    def test_random_obstacles_keep_goal_clear(self):
        m = random_obstacle_mask(10, density=0.5, seed=1)
        assert not m[0, 0]

    def test_bfs_distances_simple(self):
        d = grid_reference_distances(4, np.zeros((4, 4), dtype=bool))
        assert d[0, 0] == 0
        assert d[3, 3] == 6
        assert d[0, 3] == 3

    def test_bfs_walls_are_big(self):
        walls = np.zeros((4, 4), dtype=bool)
        walls[1, 1] = True
        d = grid_reference_distances(4, walls)
        assert d[1, 1] == BIG

    def test_goal_inside_wall_rejected(self):
        walls = np.zeros((4, 4), dtype=bool)
        walls[0, 0] = True
        with pytest.raises(ValueError):
            grid_reference_distances(4, walls)

    def test_jacobi_converges_to_bfs(self):
        walls = obstacle_mask(12)
        d0 = np.zeros((12, 12), dtype=np.int64)
        final, sweeps = relax_to_fixpoint(d0, walls)
        ref = grid_reference_distances(12, walls)
        free = ~walls
        assert np.array_equal(final[free], ref[free])
        assert sweeps > 1

    def test_jacobi_step_is_idempotent_at_fixpoint(self):
        walls = obstacle_mask(10)
        ref = grid_reference_distances(10, walls)
        stepped = jacobi_step(ref, walls)
        assert np.array_equal(stepped, ref)


class TestSorting:
    def test_ranks_distinct(self):
        a = np.array([30, 10, 20])
        assert ranks(a).tolist() == [2, 0, 1]

    def test_is_sorted(self):
        assert is_sorted(np.array([1, 2, 2, 3]))
        assert not is_sorted(np.array([2, 1]))

    def test_odd_even_sorts(self):
        rng = np.random.default_rng(3)
        for n in (1, 2, 7, 16):
            a = rng.integers(0, 100, n)
            out, phases = odd_even_transposition_steps(a)
            assert out.tolist() == sorted(a.tolist())
            assert phases >= 1

    def test_odd_even_sorted_input_two_phases(self):
        out, phases = odd_even_transposition_steps(np.arange(8))
        assert phases == 2  # one even + one odd phase discovering no swaps


class TestPrefixAndWavefront:
    def test_prefix_sums(self):
        assert prefix_sums(np.array([1, 2, 3])).tolist() == [1, 3, 6]

    def test_wavefront_borders_and_recurrence(self):
        a = wavefront_matrix(5)
        assert (a[0, :] == 1).all() and (a[:, 0] == 1).all()
        assert a[1, 1] == 3
        assert a[2, 2] == a[1, 2] + a[1, 1] + a[2, 1]

    def test_wavefront_known_value(self):
        # Delannoy-number diagonal: D(3,3) = 63
        assert wavefront_matrix(4)[3, 3] == 63
