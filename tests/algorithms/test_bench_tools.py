"""Benchmark-harness utility tests (Sweep, tables, ASCII plots, workloads)."""

import numpy as np
import pytest

from repro.bench.harness import Series, Sweep, run_sweep
from repro.bench.report import ascii_plot, format_series_table, format_table
from repro.bench import workloads


class TestSeries:
    def test_points_sorted(self):
        s = Series("t")
        s.add(3, 30.0)
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert s.xs() == [1, 2, 3]
        assert s.ys() == [10.0, 20.0, 30.0]
        assert s.at(2) == 20.0


class TestSweep:
    def _sweep(self):
        sw = Sweep("demo", "N")
        for x, (a, b) in {1: (1.0, 2.0), 2: (3.0, 2.5), 4: (9.0, 3.0)}.items():
            sw.record("A", x, a)
            sw.record("B", x, b)
        return sw

    def test_xs_union(self):
        sw = self._sweep()
        sw.record("C", 8, 1.0)
        assert sw.xs() == [1, 2, 4, 8]

    def test_crossover(self):
        sw = self._sweep()
        assert sw.crossover("A", "B") == 2  # A exceeds B from x=2 on

    def test_crossover_never(self):
        sw = self._sweep()
        assert sw.crossover("B", "A") is None or sw.crossover("B", "A") == 1

    def test_ratio(self):
        sw = self._sweep()
        assert sw.ratio("A", "B", 4) == pytest.approx(3.0)

    def test_run_sweep(self):
        sw = run_sweep("t", "n", [1, 2, 3], {"sq": lambda n: float(n * n)})
        assert sw.series["sq"].ys() == [1.0, 4.0, 9.0]


class TestRendering:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[1]
        assert len(set(len(l) for l in lines[1:])) <= 2  # columns aligned

    def test_format_series_table_contains_all_points(self):
        sw = Sweep("demo", "N")
        sw.record("A", 1, 0.5)
        sw.record("A", 2, 1.5)
        out = format_series_table(sw)
        assert "0.5" in out and "1.5" in out and "N" in out

    def test_ascii_plot_contains_markers_and_legend(self):
        sw = Sweep("demo", "rows")
        for x in (1, 2, 3, 4):
            sw.record("up", x, float(x))
            sw.record("flat", x, 1.0)
        out = ascii_plot(sw)
        assert "* up" in out and "o flat" in out
        assert "rows" in out

    def test_ascii_plot_empty(self):
        assert "(empty" in ascii_plot(Sweep("none", "x"))


class TestWorkloads:
    def test_with_map_toggles(self):
        src = "head\nMAYBE_MAP\ntail"
        assert "map" in workloads.with_map(src, "map (I) {}", True)
        assert "MAYBE_MAP" not in workloads.with_map(src, "map (I) {}", False)

    def test_log2_ceil(self):
        assert workloads.log2_ceil(1) == 1
        assert workloads.log2_ceil(8) == 3
        assert workloads.log2_ceil(9) == 4

    def test_run_apsp_helpers_agree(self):
        from repro.algorithms import floyd_warshall, random_distance_matrix

        d = random_distance_matrix(6, seed=4)
        ref = floyd_warshall(d)
        assert np.array_equal(workloads.run_apsp_n2(6, d)["d"], ref)
        assert np.array_equal(workloads.run_apsp_n3(6, d)["d"], ref)

    def test_run_obstacle_matches_reference(self):
        from repro.algorithms.grid_path import (
            grid_reference_distances,
            obstacle_mask,
        )

        r = workloads.run_obstacle(12)
        free = ~obstacle_mask(12)
        assert np.array_equal(
            np.asarray(r["a"])[free], grid_reference_distances(12)[free]
        )

    def test_selfinit_apsp_source_runs(self):
        from repro.interp.program import UCProgram

        run = UCProgram(workloads.APSP_N2_UC_SELFINIT, defines={"N": 6}).run()
        d = np.asarray(run["d"])
        assert (np.diag(d) == 0).all()
        # triangle inequality holds after relaxation
        for k in range(6):
            assert (d <= d[:, k:k+1] + d[k:k+1, :]).all()
