"""The resilient execution service (``repro serve`` / ExecutionService).

The contract under test, from ISSUE 8's acceptance bar: every submitted
job reaches exactly one structured terminal result (zero lost jobs), a
failing job never takes the pool down with it, and any job that finishes
— coalesced into a batch, retried after a fault storm, preempted into a
portable snapshot, or resumed after a service crash — carries a Clock
fingerprint bit-identical to a fault-free solo ``UCProgram.run()``.
"""

import os

import numpy as np
import pytest

from repro.interp.compile_store import CompileStore
from repro.interp.deadline import Deadline
from repro.interp.program import UCProgram
from repro.service import (
    DONE,
    FAILED,
    REJECTED,
    ExecutionService,
    JobSpec,
    RetryPolicy,
    ServiceConfig,
    Spool,
)

# Three top-level statements so preemption has boundaries to land on.
SRC = """
int N = 8;
index_set I:i = {0..N-1};
int a[8];
int b[8];
main {
  par (I) a[i] = i * i;
  par (I) b[i] = a[i] + 1;
  *par (I) st (a[i] < 100) a[i] = a[i] + b[i];
}
"""

BAD_SRC = "main { par ("

#: enough transient drops to exhaust the default in-run recovery manager
STORM = ";".join(f"drop@alu#{k}" for k in range(1, 9))


@pytest.fixture(scope="module")
def solo():
    """The fault-free reference run every service result must match."""
    return UCProgram(SRC).run()


def _assert_matches_solo(result, solo):
    assert result.ok, result.error
    assert result.fingerprint == solo.fingerprint
    assert np.array_equal(result.run["a"], solo["a"])


class TestBasicService:
    def test_clean_jobs_coalesce_and_match_solo(self, solo):
        svc = ExecutionService(ServiceConfig(workers=2))
        ids = [svc.submit(JobSpec(source=SRC)) for _ in range(6)]
        res = svc.drain()
        assert svc.lost_jobs() == []
        for jid in ids:
            _assert_matches_solo(res[jid], solo)
        # identical queued programs ride run_batch lanes
        assert svc.stats["batches"] >= 1
        assert svc.stats["coalesced_lanes"] >= 2

    def test_solo_path_without_coalescing(self, solo):
        svc = ExecutionService(ServiceConfig(workers=2, coalesce=False))
        ids = [svc.submit(JobSpec(source=SRC)) for _ in range(3)]
        res = svc.drain()
        assert svc.stats["batches"] == 0
        for jid in ids:
            _assert_matches_solo(res[jid], solo)

    def test_shared_compile_store_across_jobs(self):
        store = CompileStore()
        svc = ExecutionService(
            ServiceConfig(workers=1, coalesce=False, compile_store=store)
        )
        for _ in range(4):
            svc.submit(JobSpec(source=SRC))
        svc.drain()
        stats = store.stats()
        # one program build, the other three submissions hit the cache
        assert stats["program_misses"] == 1
        assert stats["program_hits"] >= 3

    def test_every_job_gets_exactly_one_result(self, solo):
        svc = ExecutionService(ServiceConfig(workers=3))
        ids = [svc.submit(JobSpec(source=SRC)) for _ in range(5)]
        ids.append(svc.submit(JobSpec(source=BAD_SRC)))
        res = svc.drain()
        assert svc.lost_jobs() == []
        assert set(res) == set(ids)
        assert all(res[j].state in (DONE, FAILED) for j in ids)


class TestIsolation:
    def test_bad_program_fails_alone(self, solo):
        svc = ExecutionService(ServiceConfig(workers=2))
        good = [svc.submit(JobSpec(source=SRC)) for _ in range(3)]
        bad = svc.submit(JobSpec(source=BAD_SRC, tenant="b"))
        res = svc.drain()
        assert res[bad].state == FAILED
        assert res[bad].error["type"]  # structured, pattern-matchable
        for jid in good:
            _assert_matches_solo(res[jid], solo)

    def test_oom_sized_grid_fails_alone(self, solo):
        huge = SRC.replace("{0..N-1}", "{0..%s-1}" % "*".join(["N"] * 20))
        svc = ExecutionService(ServiceConfig(workers=2))
        bad = svc.submit(JobSpec(source=huge))
        good = svc.submit(JobSpec(source=SRC))
        res = svc.drain()
        assert res[bad].state == FAILED
        _assert_matches_solo(res[good], solo)

    def test_fault_storm_without_retry_fails_alone(self, solo):
        svc = ExecutionService(ServiceConfig(workers=2))
        doomed = svc.submit(
            JobSpec(source=SRC, faults=STORM, retry=RetryPolicy(max_attempts=1))
        )
        good = svc.submit(JobSpec(source=SRC))
        res = svc.drain()
        assert res[doomed].state == FAILED
        assert res[doomed].error["cause"] in ("ProcessorFault", "LinkFault")
        _assert_matches_solo(res[good], solo)


class TestDeadlines:
    def test_clock_deadline_cancels_with_position(self):
        svc = ExecutionService(ServiceConfig(workers=1))
        jid = svc.submit(JobSpec(source=SRC, deadline=Deadline(clock_us=1.0)))
        res = svc.drain()[jid]
        assert res.state == FAILED
        assert res.error["type"] == "UCDeadlineError"
        assert res.error["reason"] == "clock"
        assert "statement" in res.error["position"] or "main" in res.error["position"]

    def test_deadline_is_not_retriable(self):
        svc = ExecutionService(ServiceConfig(workers=1))
        jid = svc.submit(
            JobSpec(
                source=SRC,
                deadline=Deadline(clock_us=1.0),
                retry=RetryPolicy(max_attempts=5),
            )
        )
        res = svc.drain()[jid]
        assert res.state == FAILED
        assert res.attempts == 1  # deterministic failure: retry declined

    def test_generous_deadline_does_not_perturb(self, solo):
        svc = ExecutionService(ServiceConfig(workers=1))
        jid = svc.submit(
            JobSpec(source=SRC, deadline=Deadline(clock_us=solo.elapsed_us * 10))
        )
        _assert_matches_solo(svc.drain()[jid], solo)


class TestRetry:
    def test_per_attempt_plans_recover_to_clean_fingerprint(self, solo):
        """Attempt 1 carries the storm, attempt 2 is clean: the final
        fingerprint must equal a fault-free solo run's."""
        svc = ExecutionService(ServiceConfig(workers=1))
        jid = svc.submit(
            JobSpec(source=SRC, faults=[STORM], retry=RetryPolicy(max_attempts=2))
        )
        res = svc.drain()[jid]
        assert res.attempts == 2
        _assert_matches_solo(res, solo)
        assert svc.stats["retries"] == 1

    def test_max_attempts_exhausts(self):
        svc = ExecutionService(ServiceConfig(workers=1))
        jid = svc.submit(
            JobSpec(
                source=SRC,
                faults=[STORM, STORM, STORM],
                retry=RetryPolicy(max_attempts=3),
            )
        )
        res = svc.drain()[jid]
        assert res.state == FAILED
        assert res.attempts == 3

    def test_verified_replay_of_recovered_job(self, solo):
        svc = ExecutionService(ServiceConfig(workers=1))
        jid = svc.submit(
            JobSpec(
                source=SRC,
                faults=[STORM],
                retry=RetryPolicy(max_attempts=2, verify_replays=True),
            )
        )
        res = svc.drain()[jid]
        _assert_matches_solo(res, solo)
        assert svc.stats["replays_verified"] == 1

    def test_backoff_schedule_is_seeded(self):
        pol = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=64.0, jitter=0.5)
        a = [pol.backoff_s(k, seed=(7, 1)) for k in range(1, 6)]
        b = [pol.backoff_s(k, seed=(7, 1)) for k in range(1, 6)]
        c = [pol.backoff_s(k, seed=(7, 2)) for k in range(1, 6)]
        assert a == b  # deterministic for a (seed, attempt) pair
        assert a != c
        assert all(d <= 64.0 for d in a)  # cap bounds the jittered delay


class TestPreemption:
    def test_chaos_preemption_keeps_fingerprints(self, solo, tmp_path):
        svc = ExecutionService(
            ServiceConfig(
                workers=1,
                coalesce=False,
                preempt_probability=0.7,
                seed=7,
                spool_dir=str(tmp_path / "spool"),
            )
        )
        ids = [svc.submit(JobSpec(source=SRC)) for _ in range(4)]
        res = svc.drain()
        assert svc.lost_jobs() == []
        assert svc.stats["preemptions"] >= 1
        for jid in ids:
            _assert_matches_solo(res[jid], solo)
        # every suspension left a durable snapshot behind
        snaps = [f for f in os.listdir(tmp_path / "spool") if f.startswith("snap-")]
        assert len(snaps) == svc.stats["preemptions"]

    def test_slice_budget_yields_without_contention(self, solo):
        """A lone job over its slice budget yields in place (no snapshot)
        and still finishes bit-identical."""
        svc = ExecutionService(
            ServiceConfig(workers=2, coalesce=False, preempt_slice_us=1.0)
        )
        jid = svc.submit(JobSpec(source=SRC))
        res = svc.drain()
        assert svc.stats["yields"] >= 1
        assert svc.stats["preemptions"] == 0
        _assert_matches_solo(res[jid], solo)

    def test_slice_budget_preempts_under_contention(self, solo):
        svc = ExecutionService(
            ServiceConfig(workers=1, coalesce=False, preempt_slice_us=1.0)
        )
        ids = [svc.submit(JobSpec(source=SRC)) for _ in range(3)]
        res = svc.drain()
        assert svc.stats["preemptions"] >= 1
        for jid in ids:
            _assert_matches_solo(res[jid], solo)


class TestCrashResume:
    def test_resume_finishes_in_flight_jobs(self, solo, tmp_path):
        spool = str(tmp_path / "crash")
        svc = ExecutionService(
            ServiceConfig(
                workers=1,
                coalesce=False,
                preempt_probability=0.9,
                seed=3,
                spool_dir=spool,
            )
        )
        ids = [svc.submit(JobSpec(source=SRC)) for _ in range(3)]
        for _ in range(4):  # run part-way, then "crash" (abandon the object)
            svc.step()
        assert svc.lost_jobs()  # genuinely in flight at the crash
        svc.spool.close()

        svc2 = ExecutionService.resume(
            spool, ServiceConfig(workers=1, coalesce=False, seed=3)
        )
        res = svc2.drain()
        assert svc2.lost_jobs() == []
        for jid in ids:
            _assert_matches_solo(res[jid], solo)

    def test_resume_preserves_terminal_results(self, solo, tmp_path):
        spool = str(tmp_path / "spool")
        svc = ExecutionService(ServiceConfig(workers=1, spool_dir=spool))
        good = svc.submit(JobSpec(source=SRC))
        bad = svc.submit(JobSpec(source=BAD_SRC))
        svc.drain()
        svc.spool.close()

        svc2 = ExecutionService.resume(spool, ServiceConfig(workers=1))
        res = svc2.results()
        assert res[good].state == DONE
        assert res[good].fingerprint == solo.fingerprint  # journal round-trip
        assert res[bad].state == FAILED
        assert svc2.lost_jobs() == []
        # new submissions continue the id sequence, not reuse it
        assert svc2.submit(JobSpec(source=SRC)) == "j3"

    def test_resume_does_not_resurrect_shed_jobs(self, tmp_path):
        spool = str(tmp_path / "spool")
        svc = ExecutionService(
            ServiceConfig(workers=1, max_queue=1, spool_dir=spool)
        )
        ids = [svc.submit(JobSpec(source=SRC)) for _ in range(3)]
        shed = [i for i in ids if svc.jobs[i].state == REJECTED]
        assert shed
        svc.drain()
        svc.spool.close()
        svc2 = ExecutionService.resume(spool, ServiceConfig(workers=1))
        for jid in shed:
            assert svc2.results()[jid].state == REJECTED
        assert svc2.lost_jobs() == []

    def test_scan_tolerates_torn_journal_line(self, tmp_path):
        spool = str(tmp_path / "spool")
        svc = ExecutionService(ServiceConfig(workers=1, spool_dir=spool))
        svc.submit(JobSpec(source=SRC))
        svc.spool.close()
        with open(os.path.join(spool, "journal.jsonl"), "a") as f:
            f.write('{"ev": "done", "job"')  # crash mid-append
        records, _ = Spool(spool).scan()
        assert records["j1"]["terminal"] is None  # torn line ignored


class TestAdmission:
    def test_queue_full_sheds_with_structured_rejection(self, solo):
        svc = ExecutionService(ServiceConfig(workers=1, max_queue=2))
        ids = [svc.submit(JobSpec(source=SRC)) for _ in range(4)]
        shed = [i for i in ids if svc.jobs[i].state == REJECTED]
        assert len(shed) == 2
        for jid in shed:
            assert svc.result(jid).error["reason"] == "queue_full"
        res = svc.drain()
        assert svc.lost_jobs() == []
        for jid in set(ids) - set(shed):
            _assert_matches_solo(res[jid], solo)

    def test_tenant_budget_mid_run_and_at_door(self, solo):
        svc = ExecutionService(
            ServiceConfig(
                workers=1, tenant_budget_us={"t": solo.elapsed_us * 1.5}
            )
        )
        a = svc.submit(JobSpec(source=SRC, tenant="t"))
        svc.drain()
        b = svc.submit(JobSpec(source=SRC, tenant="t"))  # 0.5x budget left
        svc.drain()
        c = svc.submit(JobSpec(source=SRC, tenant="t"))  # budget gone
        assert svc.result(a).ok
        assert svc.result(b).state == FAILED
        assert svc.result(b).error["reason"] == "budget"
        assert svc.result(c).state == REJECTED
        assert svc.result(c).error["reason"] == "budget_exhausted"
        assert svc.lost_jobs() == []

    def test_unmetered_tenants_unaffected(self, solo):
        svc = ExecutionService(
            ServiceConfig(workers=1, tenant_budget_us={"t": 1.0})
        )
        metered = svc.submit(JobSpec(source=SRC, tenant="t"))
        free = svc.submit(JobSpec(source=SRC, tenant="other"))
        res = svc.drain()
        assert res[metered].state == FAILED
        _assert_matches_solo(res[free], solo)

    def test_budget_survives_resume(self, solo, tmp_path):
        spool = str(tmp_path / "spool")
        budget = {"t": solo.elapsed_us * 1.5}
        svc = ExecutionService(
            ServiceConfig(workers=1, tenant_budget_us=budget, spool_dir=spool)
        )
        svc.submit(JobSpec(source=SRC, tenant="t"))
        svc.drain()
        svc.spool.close()
        svc2 = ExecutionService.resume(
            spool, ServiceConfig(workers=1, tenant_budget_us=budget)
        )
        # the first job's spend was reconstructed from the journal
        late = svc2.submit(JobSpec(source=SRC, tenant="t"))
        svc2.drain()
        assert svc2.result(late).state == FAILED
        assert svc2.result(late).error["reason"] == "budget"


class TestEngineParity:
    def test_service_fingerprints_match_oracle(self, solo, monkeypatch):
        """The tree-walking oracle engine yields the same service-side
        fingerprints as the compiled plan engine."""
        monkeypatch.setenv("REPRO_NO_PLANS", "1")
        oracle_solo = UCProgram(SRC, compile_store=None).run()
        assert oracle_solo.fingerprint == solo.fingerprint
        svc = ExecutionService(
            ServiceConfig(workers=1, coalesce=False, preempt_slice_us=1.0)
        )
        ids = [svc.submit(JobSpec(source=SRC)) for _ in range(2)]
        res = svc.drain()
        for jid in ids:
            _assert_matches_solo(res[jid], solo)
