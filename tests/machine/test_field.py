"""Field (per-VP memory) tests."""

import numpy as np
import pytest

from repro.machine.errors import FieldError
from repro.machine.field import Field


class TestAllocation:
    def test_zero_initialised(self, machine):
        f = machine.field(machine.vpset((3, 3)))
        assert np.array_equal(f.read(), np.zeros((3, 3)))

    def test_supported_dtypes(self, machine):
        vps = machine.vpset((2,))
        for dt in (np.int64, np.float64, bool):
            assert machine.field(vps, dt).dtype == np.dtype(dt)

    def test_unsupported_dtype_rejected(self, machine):
        with pytest.raises(FieldError):
            machine.field(machine.vpset((2,)), np.int8)

    def test_allocation_charges_clock(self, machine):
        vps = machine.vpset((2,))
        before = machine.clock.count("alloc")
        machine.field(vps)
        assert machine.clock.count("alloc") == before + 1

    def test_copy_like(self, machine):
        f = machine.field(machine.vpset((4,)), np.float64, "orig")
        g = f.copy_like()
        assert g.dtype == f.dtype
        assert g.vpset is f.vpset
        assert g is not f


class TestAccess:
    def test_fill_respects_context(self, machine):
        vps = machine.vpset((4,))
        f = machine.field(vps)
        with vps.where(np.array([True, False, True, False])):
            f.fill(7)
        assert f.read().tolist() == [7, 0, 7, 0]

    def test_read_is_a_copy(self, machine):
        f = machine.field(machine.vpset((2,)))
        snap = f.read()
        f.data[0] = 99
        assert snap[0] == 0

    def test_scalar_read_write_cost(self, machine):
        f = machine.field(machine.vpset((2, 2)))
        before = machine.clock.count("host_cm_latency")
        f.write_scalar((1, 1), 5)
        assert f.read_scalar((1, 1)) == 5
        assert machine.clock.count("host_cm_latency") == before + 2

    def test_load_bulk(self, machine):
        f = machine.field(machine.vpset((2, 3)))
        f.load(np.arange(6).reshape(2, 3))
        assert f.read()[1, 2] == 5

    def test_load_shape_mismatch(self, machine):
        f = machine.field(machine.vpset((2, 3)))
        with pytest.raises(FieldError):
            f.load(np.zeros((3, 2)))

    def test_load_casts_dtype(self, machine):
        f = machine.field(machine.vpset((2,)), np.int64)
        f.load(np.array([1.9, 2.1]))
        assert f.read().dtype == np.int64

    def test_same_vpset_check(self, machine):
        a = machine.field(machine.vpset((2,)))
        b = machine.field(machine.vpset((2,)))
        with pytest.raises(Exception):
            a.same_vpset(b)
