"""Paris-layer elementwise operation tests."""

import numpy as np
import pytest

from repro.machine import paris
from repro.machine.errors import FieldError, VPSetMismatchError


@pytest.fixture
def vf(machine):
    vps = machine.vpset((4,))
    a = machine.field(vps)
    b = machine.field(vps)
    out = machine.field(vps)
    a.data[:] = [6, -7, 8, 9]
    b.data[:] = [2, 2, -3, 4]
    return vps, a, b, out


class TestBinops:
    def test_add(self, vf):
        vps, a, b, out = vf
        paris.binop(out, "add", a, b)
        assert out.read().tolist() == [8, -5, 5, 13]

    def test_sub_scalar_operand(self, vf):
        vps, a, b, out = vf
        paris.binop(out, "sub", a, 1)
        assert out.read().tolist() == [5, -8, 7, 8]

    def test_c_integer_division_truncates_toward_zero(self, vf):
        vps, a, b, out = vf
        paris.binop(out, "div", a, b)
        # 6/2=3, -7/2=-3 (C truncation), 8/-3=-2, 9/4=2
        assert out.read().tolist() == [3, -3, -2, 2]

    def test_c_mod_sign_follows_dividend(self, vf):
        vps, a, b, out = vf
        paris.binop(out, "mod", a, b)
        # -7 % 2 == -1 in C; 8 % -3 == 2
        assert out.read().tolist() == [0, -1, 2, 1]

    def test_float_division(self, machine):
        vps = machine.vpset((2,))
        a = machine.field(vps, np.float64)
        out = machine.field(vps, np.float64)
        a.data[:] = [1.0, 3.0]
        paris.binop(out, "div", a, 2.0)
        assert out.read().tolist() == [0.5, 1.5]

    def test_min_max(self, vf):
        vps, a, b, out = vf
        paris.binop(out, "min", a, b)
        assert out.read().tolist() == [2, -7, -3, 4]
        paris.binop(out, "max", a, b)
        assert out.read().tolist() == [6, 2, 8, 9]

    def test_comparisons_yield_bools(self, vf):
        vps, a, b, out = vf
        paris.binop(out, "lt", a, b)
        assert out.read().tolist() == [0, 1, 0, 0]

    def test_logical_ops(self, machine):
        vps = machine.vpset((3,))
        a = machine.field(vps)
        out = machine.field(vps)
        a.data[:] = [0, 1, 2]
        paris.binop(out, "logand", a, 1)
        assert out.read().tolist() == [0, 1, 1]

    def test_shifts(self, vf):
        vps, a, b, out = vf
        paris.binop(out, "shl", 1, np.array([0, 1, 2, 3]))
        assert out.read().tolist() == [1, 2, 4, 8]

    def test_masked_binop(self, vf):
        vps, a, b, out = vf
        with vps.where(np.array([True, False, True, False])):
            paris.binop(out, "add", a, b)
        assert out.read().tolist() == [8, 0, 5, 0]

    def test_unknown_op(self, vf):
        vps, a, b, out = vf
        with pytest.raises(FieldError):
            paris.binop(out, "hypot", a, b)

    def test_vpset_mismatch(self, machine):
        a = machine.field(machine.vpset((4,)))
        out = machine.field(machine.vpset((4,)))
        with pytest.raises(VPSetMismatchError):
            paris.binop(out, "add", a, 1)

    def test_operand_array_wrong_shape(self, machine):
        vps = machine.vpset((4,))
        out = machine.field(vps)
        with pytest.raises(FieldError):
            paris.binop(out, "add", np.zeros(3), 1)

    def test_charges_one_alu(self, vf):
        vps, a, b, out = vf
        before = vps.machine.clock.count("alu")
        paris.binop(out, "add", a, b)
        assert vps.machine.clock.count("alu") == before + 1


class TestUnopsMoveSelect:
    def test_neg_abs(self, vf):
        vps, a, b, out = vf
        paris.unop(out, "neg", a)
        assert out.read().tolist() == [-6, 7, -8, -9]
        paris.unop(out, "abs", a)
        assert out.read().tolist() == [6, 7, 8, 9]

    def test_lognot(self, machine):
        vps = machine.vpset((3,))
        out = machine.field(vps)
        paris.unop(out, "lognot", np.array([0, 1, 5]))
        assert out.read().tolist() == [1, 0, 0]

    def test_int_truncation(self, machine):
        vps = machine.vpset((3,))
        out = machine.field(vps)
        paris.unop(out, "int", np.array([1.9, -1.9, 0.5]))
        assert out.read().tolist() == [1, -1, 0]

    def test_move(self, vf):
        vps, a, b, out = vf
        paris.move(out, a)
        assert out.read().tolist() == a.read().tolist()

    def test_select(self, vf):
        vps, a, b, out = vf
        paris.select(out, np.array([1, 0, 1, 0]), a, b)
        assert out.read().tolist() == [6, 2, 8, 4]

    def test_unknown_unop(self, vf):
        vps, a, b, out = vf
        with pytest.raises(FieldError):
            paris.unop(out, "sqrt", a)


class TestGlobalOr:
    def test_any_active_true(self, machine):
        vps = machine.vpset((4,))
        assert paris.global_or(vps, np.array([0, 0, 1, 0]))
        assert not paris.global_or(vps, np.zeros(4))

    def test_respects_context(self, machine):
        vps = machine.vpset((4,))
        with vps.where(np.array([True, True, False, False])):
            assert not paris.global_or(vps, np.array([0, 0, 1, 1]))

    def test_charges_global_or(self, machine):
        vps = machine.vpset((4,))
        before = machine.clock.count("global_or")
        paris.global_or(vps, np.ones(4))
        assert machine.clock.count("global_or") == before + 1
