"""NEWS grid communication tests."""

import numpy as np
import pytest

from repro.machine import news
from repro.machine.errors import GeometryError


@pytest.fixture
def line(machine):
    vps = machine.vpset((5,))
    f = machine.field(vps)
    f.data[:] = [10, 11, 12, 13, 14]
    return f


class TestShifts:
    def test_positive_offset_reads_higher_coord(self, line):
        out = news.news_shifted(line, 0, 1)
        assert out.tolist() == [11, 12, 13, 14, 0]

    def test_negative_offset_reads_lower_coord(self, line):
        out = news.news_shifted(line, 0, -2)
        assert out.tolist() == [0, 0, 10, 11, 12]

    def test_zero_offset_is_copy(self, line):
        out = news.news_shifted(line, 0, 0)
        assert out.tolist() == [10, 11, 12, 13, 14]
        out[0] = 99
        assert line.data[0] == 10

    def test_wrap_border(self, line):
        out = news.news_shifted(line, 0, 1, border="wrap")
        assert out.tolist() == [11, 12, 13, 14, 10]

    def test_clamp_border(self, line):
        out = news.news_shifted(line, 0, 2, border="clamp")
        assert out.tolist() == [12, 13, 14, 14, 14]

    def test_scalar_border_fill(self, line):
        out = news.news_shifted(line, 0, 1, border=-1)
        assert out.tolist() == [11, 12, 13, 14, -1]

    def test_offset_beyond_extent_fill(self, line):
        out = news.news_shifted(line, 0, 7)
        assert out.tolist() == [0] * 5

    def test_offset_beyond_extent_clamp(self, line):
        out = news.news_shifted(line, 0, -9, border="clamp")
        assert out.tolist() == [10] * 5

    def test_2d_axis_selection(self, machine):
        vps = machine.vpset((2, 3))
        f = machine.field(vps)
        f.data[:] = np.arange(6).reshape(2, 3)
        down = news.news_shifted(f, 0, 1)
        assert down.tolist() == [[3, 4, 5], [0, 0, 0]]
        right = news.news_shifted(f, 1, 1)
        assert right.tolist() == [[1, 2, 0], [4, 5, 0]]

    def test_bad_axis(self, line):
        with pytest.raises(GeometryError):
            news.news_shifted(line, 3, 1)


class TestCosts:
    def test_cost_per_hop(self, line):
        m = line.machine
        before = m.clock.count("news")
        news.news_shifted(line, 0, 3)
        assert m.clock.count("news") == before + 3

    def test_zero_offset_free(self, line):
        m = line.machine
        before = m.clock.count("news")
        news.news_shifted(line, 0, 0)
        assert m.clock.count("news") == before


class TestGetFromNews:
    def test_masked_destination(self, machine):
        vps = machine.vpset((4,))
        src = machine.field(vps)
        src.data[:] = [1, 2, 3, 4]
        dst = machine.field(vps)
        with vps.where(np.array([True, False, True, False])):
            news.get_from_news(dst, src, 0, 1)
        assert dst.read().tolist() == [2, 0, 4, 0]

    def test_cross_vpset_rejected(self, machine):
        a = machine.field(machine.vpset((4,)))
        b = machine.field(machine.vpset((4,)))
        with pytest.raises(Exception):
            news.get_from_news(a, b, 0, 1)


class TestShiftArray:
    """The raw, charge-free core used by the communication-tier engine."""

    def test_zero_offset_returns_fresh_copy(self):
        data = np.arange(5)
        out = news.shift_array(data, 0, 0)
        assert out is not data
        out[0] = 99
        assert data[0] == 0

    def test_wrap_beyond_extent(self):
        data = np.arange(5)
        assert list(news.shift_array(data, 0, 7, "wrap")) == [2, 3, 4, 0, 1]

    def test_custom_fill_beyond_extent(self):
        data = np.arange(5)
        assert list(news.shift_array(data, 0, 9, -1)) == [-1] * 5

    def test_clamp_matches_clip_gather(self):
        data = np.arange(6) * 3
        for offset in (-7, -2, 0, 3, 8):
            got = news.shift_array(data, 0, offset, "clamp")
            want = data[np.clip(np.arange(6) + offset, 0, 5)]
            assert np.array_equal(got, want), offset


class TestWindowArray:
    """Clamped window copies: the interior-stencil gather fast path."""

    def test_in_bounds_window_is_slice_copy(self):
        data = np.arange(8)
        out = news.window_array(data, 0, 2, 4)
        assert list(out) == [2, 3, 4, 5]
        out[0] = 99
        assert data[2] == 2

    def test_low_edge_clamps(self):
        data = np.arange(8)
        assert list(news.window_array(data, 0, -2, 5)) == [0, 0, 0, 1, 2]

    def test_high_edge_clamps(self):
        data = np.arange(8)
        assert list(news.window_array(data, 0, 5, 5)) == [5, 6, 7, 7, 7]

    def test_fully_out_of_range_window(self):
        data = np.arange(4)
        assert list(news.window_array(data, 0, 9, 3)) == [3, 3, 3]
        assert list(news.window_array(data, 0, -9, 3)) == [0, 0, 0]

    def test_matches_clip_gather_reference(self):
        data = np.arange(7) * 2
        for start, extent in ((-3, 5), (0, 7), (1, 5), (4, 6), (-8, 2)):
            got = news.window_array(data, 0, start, extent)
            want = data[np.clip(start + np.arange(extent), 0, 6)]
            assert np.array_equal(got, want), (start, extent)

    def test_second_axis(self):
        data = np.arange(12).reshape(3, 4)
        got = news.window_array(data, 1, 1, 2)
        assert np.array_equal(got, data[:, 1:3])
