"""General-router tests: get, send, combining, permutes."""

import numpy as np
import pytest

from repro.machine import router
from repro.machine.errors import RouterError


class TestGet:
    def test_gather_by_address(self, machine):
        vps = machine.vpset((4,))
        src = machine.field(vps)
        src.data[:] = [10, 20, 30, 40]
        dst = machine.field(vps)
        router.get(dst, src, np.array([3, 2, 1, 0]))
        assert dst.read().tolist() == [40, 30, 20, 10]

    def test_cross_vpset_gather(self, machine):
        src = machine.field(machine.vpset((2, 2)))
        src.data[:] = [[1, 2], [3, 4]]
        dvps = machine.vpset((3,))
        dst = machine.field(dvps)
        router.get(dst, src, np.array([0, 3, 2]))
        assert dst.read().tolist() == [1, 4, 3]

    def test_masked_get(self, machine):
        vps = machine.vpset((3,))
        src = machine.field(vps)
        src.data[:] = [5, 6, 7]
        dst = machine.field(vps)
        with vps.where(np.array([False, True, False])):
            router.get(dst, src, np.array([2, 2, 2]))
        assert dst.read().tolist() == [0, 7, 0]

    def test_out_of_range_address(self, machine):
        vps = machine.vpset((3,))
        src = machine.field(vps)
        dst = machine.field(vps)
        with pytest.raises(RouterError):
            router.get(dst, src, np.array([0, 1, 3]))

    def test_masked_out_of_range_tolerated(self, machine):
        vps = machine.vpset((3,))
        src = machine.field(vps)
        dst = machine.field(vps)
        with vps.where(np.array([True, True, False])):
            router.get(dst, src, np.array([0, 1, 99]))

    def test_wrong_address_shape(self, machine):
        vps = machine.vpset((3,))
        src = machine.field(vps)
        dst = machine.field(vps)
        with pytest.raises(RouterError):
            router.get(dst, src, np.array([0, 1]))

    def test_get_charges_router(self, machine):
        vps = machine.vpset((3,))
        src, dst = machine.field(vps), machine.field(vps)
        before = machine.clock.count("router_get")
        router.get(dst, src, np.zeros(3, np.int64))
        assert machine.clock.count("router_get") == before + 1


class TestSend:
    def _setup(self, machine, n=4):
        vps = machine.vpset((n,))
        src = machine.field(vps)
        dst = machine.field(vps)
        return vps, src, dst

    def test_overwrite(self, machine):
        vps, src, dst = self._setup(machine)
        src.data[:] = [1, 2, 3, 4]
        router.send(dst, src, np.array([3, 2, 1, 0]))
        assert dst.read().tolist() == [4, 3, 2, 1]

    def test_add_combining(self, machine):
        vps, src, dst = self._setup(machine)
        src.data[:] = [1, 2, 3, 4]
        router.send(dst, src, np.array([0, 0, 1, 1]), combiner="add")
        assert dst.read().tolist() == [3, 7, 0, 0]

    def test_min_combining(self, machine):
        vps, src, dst = self._setup(machine)
        src.data[:] = [9, 2, 5, 4]
        dst.data[:] = 100
        router.send(dst, src, np.array([0, 0, 0, 1]), combiner="min")
        assert dst.read().tolist() == [2, 4, 100, 100]

    def test_max_combining(self, machine):
        vps, src, dst = self._setup(machine)
        src.data[:] = [9, 2, 5, 4]
        router.send(dst, src, np.array([1, 1, 1, 1]), combiner="max")
        assert dst.read()[1] == 9

    def test_logor_combining(self, machine):
        vps = machine.vpset((3,))
        src = machine.field(vps, bool)
        dst = machine.field(vps, bool)
        src.data[:] = [True, False, True]
        router.send(dst, src, np.array([0, 0, 0]), combiner="logor")
        assert dst.read().tolist() == [True, False, False]

    def test_arbitrary_delivers_exactly_one(self, machine):
        vps, src, dst = self._setup(machine)
        src.data[:] = [1, 2, 3, 4]
        router.send(dst, src, np.array([0, 0, 0, 0]), combiner="arbitrary")
        assert dst.read()[0] in (1, 2, 3, 4)

    def test_arbitrary_deterministic_with_rng(self, machine):
        vps, src, dst = self._setup(machine)
        src.data[:] = [1, 2, 3, 4]
        rng1 = np.random.default_rng(99)
        rng2 = np.random.default_rng(99)
        router.send(dst, src, np.array([0, 0, 0, 0]), combiner="arbitrary", rng=rng1)
        first = dst.read()[0]
        dst.data[:] = 0
        router.send(dst, src, np.array([0, 0, 0, 0]), combiner="arbitrary", rng=rng2)
        assert dst.read()[0] == first

    def test_masked_send(self, machine):
        vps, src, dst = self._setup(machine)
        src.data[:] = [1, 2, 3, 4]
        with vps.where(np.array([True, False, False, True])):
            router.send(dst, src, np.array([0, 1, 2, 3]), combiner="add")
        assert dst.read().tolist() == [1, 0, 0, 4]

    def test_unknown_combiner(self, machine):
        vps, src, dst = self._setup(machine)
        with pytest.raises(RouterError):
            router.send(dst, src, np.zeros(4, np.int64), combiner="median")

    def test_send_charges_router(self, machine):
        vps, src, dst = self._setup(machine)
        before = machine.clock.count("router_send")
        router.send(dst, src, np.zeros(4, np.int64), combiner="add")
        assert machine.clock.count("router_send") == before + 1


class TestPermute:
    def test_valid_permutation(self, machine):
        vps = machine.vpset((4,))
        src, dst = machine.field(vps), machine.field(vps)
        src.data[:] = [1, 2, 3, 4]
        router.permute(dst, src, np.array([1, 0, 3, 2]))
        assert dst.read().tolist() == [2, 1, 4, 3]

    def test_collision_rejected(self, machine):
        vps = machine.vpset((4,))
        src, dst = machine.field(vps), machine.field(vps)
        with pytest.raises(RouterError):
            router.permute(dst, src, np.array([0, 0, 1, 2]))


class TestLogicalCombinerDtypes:
    """Logical combining must stay meaningful on non-bool destinations."""

    def _setup(self, machine, dtype):
        vps = machine.vpset((4,))
        src = machine.field(vps)
        dst = machine.field(vps, dtype=dtype)
        return src, dst

    def test_logor_on_int_destination_stores_truth_values(self, machine):
        src, dst = self._setup(machine, np.int64)
        dst.data[:] = [5, 0, 7, 0]
        src.data[:] = [2, 0, 0, 4]
        router.send(dst, src, np.arange(4), combiner="logor")
        # 5 logor 2 must come out true (1), not a bitwise artefact
        assert list(dst.data) == [1, 0, 1, 1]

    def test_logand_on_int_destination(self, machine):
        src, dst = self._setup(machine, np.int64)
        dst.data[:] = [3, 1, 0, 2]
        src.data[:] = [1, 0, 1, 8]
        router.send(dst, src, np.arange(4), combiner="logand")
        assert list(dst.data) == [1, 0, 0, 1]

    def test_logxor_collisions_on_int_destination(self, machine):
        src, dst = self._setup(machine, np.int64)
        dst.data[:] = [0, 0, 0, 0]
        src.data[:] = [1, 1, 1, 0]
        router.send(dst, src, np.zeros(4, np.int64), combiner="logxor")
        assert dst.data[0] == 1  # three true messages xor to true

    def test_float_destination_rejected(self, machine):
        src, dst = self._setup(machine, np.float64)
        src.data[:] = [1, 0, 1, 0]
        with pytest.raises(RouterError, match="bool or integer"):
            router.send(dst, src, np.arange(4), combiner="logor")
