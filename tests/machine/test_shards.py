"""Sharded multi-machine execution (ShardedMachine + Placement).

The contract has three layers:

1. **Placement math** — the affine owner map and the per-reference
   intra/cross split, including the APSP case where the map-driven axis
   choice cuts cross-shard slab traffic 4x vs naive axis-0 banding.
2. **Fingerprint stability** — results AND Clock fingerprints are
   bit-identical to the unsharded run for every shard count, because
   sharding is an accounting overlay that never touches the base
   clock's charge stream.
3. **Whole-shard faults** — a ``shardkill`` takes down the shard's full
   PE range, recovery replays to the fault-free values, and the
   survivors absorb the retired shard's bands.
"""

import numpy as np
import pytest

from repro.algorithms.shortest_path import random_distance_matrix
from repro.bench import workloads as W
from repro.interp.program import UCProgram
from repro.machine import Machine, MachineConfig
from repro.machine.shards import SLAB_ELEM_BYTES, ShardedMachine
from repro.mapping.layout import Layout
from repro.mapping.locality import RefClass
from repro.mapping.placement import Placement, derive_placement, score_axes


def _rc(*axes):
    return RefClass("router", axes=tuple(axes))


N = 64
GRID3 = (N, N, N)
D_LAYOUT = Layout("d", (N, N))


# ---------------------------------------------------------------------------
# Placement math


class TestOwnerMap:
    def test_owners_form_equal_blocks(self):
        pl = Placement(4)
        owners = pl.owners_along(64)
        assert owners.tolist() == sum([[s] * 16 for s in range(4)], [])
        for c in range(64):
            assert pl.owner_of(c, 64) == c // 16

    def test_owner_is_o1_affine(self):
        # (c * K) // e — the UPC block distribution, no per-element table
        pl = Placement(3)
        assert [pl.owner_of(c, 10) for c in range(10)] == [
            (c * 3) // 10 for c in range(10)
        ]

    def test_grid_axis_clamps_to_rank(self):
        pl = Placement(4, axis=2)
        assert pl.grid_axis(3) == 2
        assert pl.grid_axis(2) == 1  # rank-2 geometry bands its last axis
        assert pl.grid_axis(1) == 0


class TestSplit:
    def test_apsp_block_vs_map_axis_is_4x(self):
        """The tentpole numbers: d[k][j] on the (I,J,K) operand grid ships
        1024 elems/pair under axis-0 banding but 256 under axis-2, while
        d[i][k] is cross-free either way — 12288 vs 3072 per sweep."""
        d_ik = _rc(("i", 0, 0), ("i", 2, 0))
        d_kj = _rc(("i", 2, 0), ("i", 1, 0))
        naive = Placement(4, axis=0, policy="block")
        mapped = Placement(4, axis=2, policy="map")
        assert naive.split(d_ik, D_LAYOUT, GRID3, False).cross == 0
        assert mapped.split(d_ik, D_LAYOUT, GRID3, False).cross == 0
        s_naive = naive.split(d_kj, D_LAYOUT, GRID3, False)
        s_mapped = mapped.split(d_kj, D_LAYOUT, GRID3, False)
        assert s_naive.cross == 12 * 1024
        assert s_mapped.cross == 12 * 256
        assert s_naive.cross == 4 * s_mapped.cross

    def test_identity_reference_is_intra(self):
        pl = Placement(4, axis=0)
        s = pl.split(_rc(("i", 0, 0), ("i", 1, 0)), D_LAYOUT, (N, N), False)
        assert s.cross == 0
        assert s.intra == N * N

    def test_shift_crosses_only_the_halo(self):
        # a +1 shift along the partitioned axis ships one boundary row
        # to the next band, in the downward direction only
        pl = Placement(4, axis=0)
        s = pl.split(_rc(("i", 0, 1), ("i", 1, 0)), D_LAYOUT, (N, N), False)
        assert s.cross == 3 * N  # one row per interior boundary
        # VP band b reads the first row of band b+1: slabs flow downward
        assert all(a == b + 1 for (a, b), _c in s.pairs)

    def test_write_flips_pair_direction(self):
        pl = Placement(4, axis=0)
        rd = pl.split(_rc(("i", 0, 1), ("i", 1, 0)), D_LAYOUT, (N, N), False)
        wr = pl.split(_rc(("i", 0, 1), ("i", 1, 0)), D_LAYOUT, (N, N), True)
        assert {(b, a) for (a, b), _ in rd.pairs} == {p for p, _ in wr.pairs}

    def test_opaque_reference_is_uniform_all_to_all(self):
        pl = Placement(4, axis=0)
        s = pl.split(RefClass("router", axes=None), None, (N, N), False)
        per_pair = (N * N) // 16
        assert len(s.pairs) == 12
        assert all(c == per_pair for _p, c in s.pairs)
        assert s.intra + s.cross == N * N

    def test_permute_map_moves_owners(self):
        """Placement is map-driven: a transposing permute layout changes
        which shard owns each element, turning a transpose read from
        cross-shard into shard-local."""
        transpose = _rc(("i", 1, 0), ("i", 0, 0))
        plain = Layout("b", (N, N))
        permuted = Layout("b", (N, N), axis_perm=(1, 0))
        pl = Placement(4, axis=0)
        assert pl.split(transpose, plain, (N, N), False).cross > 0
        assert pl.split(transpose, permuted, (N, N), False).cross == 0

    def test_split_is_memoized(self):
        pl = Placement(4, axis=0)
        rc = _rc(("i", 0, 1), ("i", 1, 0))
        assert pl.split(rc, D_LAYOUT, (N, N), False) is pl.split(
            rc, D_LAYOUT, (N, N), False
        )

    def test_retire_redistributes_bands(self):
        pl = Placement(4, axis=0)
        pl.retire(1)
        assert pl.live == (0, 2, 3)
        owners = {pl.owner_of(c, 60) for c in range(60)}
        assert owners == {0, 2, 3}
        with pytest.raises(ValueError):
            pl.retire(0), pl.retire(2), pl.retire(3)
        pl.restore_all()
        assert pl.live == (0, 1, 2, 3)

    def test_dst_counts_cover_the_grid(self):
        pl = Placement(4, axis=0)
        s = pl.split(_rc(("i", 0, 0), ("i", 1, 0)), D_LAYOUT, (N, N), False)
        assert sum(s.dst_counts) == N * N


class TestAxisSearch:
    def test_apsp_n3_prefers_the_reduction_axis(self):
        defs = {"N": 16, "LOGN": 4}
        prog = UCProgram(W.APSP_N3_UC, defines=defs)
        scored = score_axes(prog.info, prog.layouts, 4)
        assert scored[0][1] == 2  # partition by k: d[i][k] goes intra
        assert scored[0][0] * 4 == scored[1][0]  # and it is exactly 4x

    def test_block_policy_skips_the_search(self):
        prog = UCProgram(W.APSP_N3_UC, defines={"N": 16, "LOGN": 4})
        pl = derive_placement(prog.info, prog.layouts, 4, policy="block")
        assert pl.axis == 0 and pl.policy == "block"


# ---------------------------------------------------------------------------
# Fingerprint stability + runtime ledger


APSP_SRC = W.APSP_N3_UC
APSP_DEFS = {"N": 16, "LOGN": 4}
DIST16 = random_distance_matrix(16, seed=7)


def _run(shards=None, placement="map", **kw):
    prog = UCProgram(
        APSP_SRC, defines=APSP_DEFS, shards=shards, placement=placement, **kw
    )
    return prog.run({"d": DIST16.copy()})


class TestShardedRuns:
    def test_fingerprints_bit_identical_for_all_k(self):
        base = _run()
        for k in (2, 4):
            r = _run(shards=k)
            assert r.fingerprint == base.fingerprint
            assert np.array_equal(r["d"], base["d"])

    def test_unsharded_run_reports_no_shard_stats(self):
        assert _run().shards == {}

    def test_map_placement_cuts_intershard_4x_vs_block(self):
        blk = _run(shards=4, placement="block")
        mapped = _run(shards=4, placement="map")
        assert blk.fingerprint == mapped.fingerprint
        ratio = blk.shards["intershard_cycles"] / mapped.shards["intershard_cycles"]
        assert ratio >= 3.0
        assert ratio == pytest.approx(4.0)

    def test_stats_shape_and_ledger_consistency(self):
        r = _run(shards=4)
        sh = r.shards
        assert sh["n_shards"] == 4
        assert sh["policy"] == "map" and sh["axis"] == 2
        assert sh["live"] == [0, 1, 2, 3]
        assert sh["intershard_bytes"] == sh["intershard_cycles"] * SLAB_ELEM_BYTES
        assert sum(t["elems"] for t in sh["pairs"].values()) == sh[
            "intershard_cycles"
        ]
        per = sh["per_shard"]
        assert len(per) == 4 and all(row["time_us"] > 0 for row in per)
        assert sum(row["intershard_cycles"] for row in per) == sh[
            "intershard_cycles"
        ]

    def test_env_override_forces_unsharded(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "1")
        assert _run(shards=4).shards == {}

    def test_env_override_forces_sharded(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        r = _run()
        assert r.shards["n_shards"] == 2
        assert r.fingerprint == _run(shards=None).fingerprint

    def test_intershard_count_is_observable_not_charged(self):
        r1, r4 = _run(), _run(shards=4)
        assert "intershard" not in r1.counts
        assert "intershard" not in r4.counts  # base clock never charges it
        assert r4.shards["intershard_cycles"] > 0


# ---------------------------------------------------------------------------
# Reduction gating: cross-shard pre-combining only under a UC501 verdict


FLOAT_SUM_SRC = (
    "index_set I:i = {0..63};\nfloat x[64], s_;\n"
    "main { s_ = $+(I; x[i]); }"
)
INT_SUM_SRC = (
    "index_set I:i = {0..63};\nint x[64], s_;\n"
    "main { s_ = $+(I; x[i]); }"
)
FLOAT_X = np.linspace(0.1, 6.4, 64)


def _run_red(src, inputs, shards=None):
    return UCProgram(src, shards=shards).run(
        {k: v.copy() for k, v in inputs.items()}
    )


class TestReductionGating:
    def test_float_sum_takes_ordered_path_and_matches_k1(self):
        """UC502 float sums must not pre-combine per shard: every K
        demotes to the order-preserving path and fingerprints like K=1."""
        base = _run_red(FLOAT_SUM_SRC, {"x": FLOAT_X})
        for k in (2, 4):
            r = _run_red(FLOAT_SUM_SRC, {"x": FLOAT_X}, shards=k)
            assert r["s_"] == base["s_"]
            assert r.fingerprint == base.fingerprint
            assert r.shards["reductions_ordered"] >= 1
            assert r.shards["reductions_precombined"] == 0

    def test_int_sum_precombines_under_uc501_verdict(self):
        x = np.arange(64, dtype=np.int64)
        base = _run_red(INT_SUM_SRC, {"x": x})
        r = _run_red(INT_SUM_SRC, {"x": x}, shards=4)
        assert r["s_"] == base["s_"]
        assert r.fingerprint == base.fingerprint
        assert r.shards["reductions_precombined"] >= 1
        assert r.shards["reductions_ordered"] == 0

    def test_ordered_fallback_keeps_the_ledger_consistent(self):
        """The demoted path ships raw bands to an owner shard — that
        traffic must still satisfy the pair/per-shard ledger invariant."""
        for k in (2, 4):
            sh = _run_red(FLOAT_SUM_SRC, {"x": FLOAT_X}, shards=k).shards
            assert sh["intershard_cycles"] > 0
            assert sum(t["elems"] for t in sh["pairs"].values()) == sh[
                "intershard_cycles"
            ]
            assert sum(
                row["intershard_cycles"] for row in sh["per_shard"]
            ) == sh["intershard_cycles"]


# ---------------------------------------------------------------------------
# Whole-shard faults


class TestShardKill:
    def test_shardkill_takes_down_the_whole_range(self):
        clean = _run(shards=4)
        faulty = _run(shards=4, faults="shardkill:1@alu#5")
        assert np.array_equal(faulty["d"], clean["d"])
        lo, hi = 4096, 8192  # shard 1 of a 16384-PE machine
        assert faulty.dead_pes == list(range(lo, hi))
        assert faulty.recovery["faults"] == 1
        assert faulty.recovery["retries"] == 1
        assert [e[1] for e in faulty.fault_log] == ["shardkill"]
        assert faulty.shards["live"] == [0, 2, 3]
        assert faulty.shards["per_shard"][1]["live"] is False

    def test_sink_retires_fully_dead_shard(self):
        cfg = MachineConfig(n_pes=64, name="tiny")
        m = Machine(cfg)
        sm = ShardedMachine(m, 4, Placement(4, axis=0))
        m.dead_pes.update(range(16, 32))  # shard 1's whole range
        sm.observe_ref(
            "router", _rc(("i", 0, 0), ("i", 1, 0)), D_LAYOUT, (N, N), False
        )
        assert sm.placement.live == (0, 2, 3)
        # a partially-dead shard stays in service
        m2 = Machine(cfg)
        sm2 = ShardedMachine(m2, 4, Placement(4, axis=0))
        m2.dead_pes.add(17)
        sm2.observe_ref(
            "router", _rc(("i", 0, 0), ("i", 1, 0)), D_LAYOUT, (N, N), False
        )
        assert sm2.placement.live == (0, 1, 2, 3)

    def test_shardkill_on_unsharded_machine_degrades_to_one_pe(self):
        prog = UCProgram(
            W.APSP_SOLVE_UC,
            defines={"N": 8},
            faults="shardkill:2@alu#5",
        )
        clean = UCProgram(W.APSP_SOLVE_UC, defines={"N": 8})
        d = random_distance_matrix(8, seed=3)
        faulty_r = prog.run({"dist": d.copy()})
        clean_r = clean.run({"dist": d.copy()})
        assert np.array_equal(faulty_r["dist"], clean_r["dist"])
        assert faulty_r.dead_pes == [2]

    def test_checkpoint_roundtrip_carries_the_ledger(self):
        cfg = MachineConfig(n_pes=64, name="tiny")
        m = Machine(cfg)
        sm = ShardedMachine(m, 4, Placement(4, axis=0))
        sm.observe_ref(
            "router", _rc(("i", 0, 1), ("i", 1, 0)), D_LAYOUT, (N, N), False
        )
        snap = m.clock.dump_state()
        before = dict(sm.pair_elems)
        sm.observe_ref(
            "router", RefClass("router", axes=None), None, (N, N), False
        )
        assert sm.pair_elems != before
        m.clock.load_state(snap)
        assert dict(sm.pair_elems) == before
        m.clock.reset()
        assert sm.pair_elems == {} and sm.intershard_elems == 0
