"""Scan / reduce / spread / enumerate tests."""

import numpy as np
import pytest

from repro.machine import INF, scan
from repro.machine.errors import ScanError


class TestReduce:
    @pytest.mark.parametrize(
        "op,values,expected",
        [
            ("add", [1, 2, 3, 4], 10),
            ("mul", [1, 2, 3, 4], 24),
            ("max", [3, 9, 1, 4], 9),
            ("min", [3, 9, 1, 4], 1),
            ("logand", [1, 1, 1, 1], True),
            ("logand", [1, 0, 1, 1], False),
            ("logor", [0, 0, 1, 0], True),
            ("logor", [0, 0, 0, 0], False),
            ("logxor", [1, 1, 1, 0], True),
        ],
    )
    def test_ops(self, machine, op, values, expected):
        f = machine.field(machine.vpset((4,)))
        f.data[:] = values
        assert scan.reduce(f, op) == expected

    @pytest.mark.parametrize(
        "op,identity",
        [
            ("add", 0),
            ("mul", 1),
            ("max", -INF),
            ("min", INF),
            ("logand", True),
            ("logor", False),
            ("logxor", False),
        ],
    )
    def test_empty_reduction_returns_identity(self, machine, op, identity):
        """The paper's table of identity values (§3.2)."""
        vps = machine.vpset((4,))
        f = machine.field(vps)
        with vps.where(np.zeros(4, bool)):
            assert scan.reduce(f, op) == identity

    def test_identity_of_table(self):
        assert scan.identity_of("add") == 0
        assert scan.identity_of("min") == INF
        assert scan.identity_of("arbitrary") == INF
        with pytest.raises(ScanError):
            scan.identity_of("median")

    def test_masked_reduce(self, machine):
        vps = machine.vpset((4,))
        f = machine.field(vps)
        f.data[:] = [1, 2, 3, 4]
        with vps.where(np.array([False, True, True, False])):
            assert scan.reduce(f, "add") == 5

    def test_arbitrary_picks_active_value(self, machine):
        vps = machine.vpset((4,))
        f = machine.field(vps)
        f.data[:] = [7, 8, 9, 10]
        with vps.where(np.array([False, True, False, True])):
            assert scan.reduce(f, "arbitrary") in (8, 10)

    def test_unknown_op(self, machine):
        f = machine.field(machine.vpset((2,)))
        with pytest.raises(ScanError):
            scan.reduce(f, "avg")

    def test_reduce_charges_scan_and_host(self, machine):
        f = machine.field(machine.vpset((1024,)))
        s0 = machine.clock.snapshot()
        scan.reduce(f, "add")
        d = machine.clock.snapshot() - s0
        assert d.counts["scan_step"] == 10
        assert d.counts["host_cm_latency"] == 1


class TestScan:
    def test_inclusive_add(self, machine):
        vps = machine.vpset((5,))
        f = machine.field(vps)
        f.data[:] = [1, 2, 3, 4, 5]
        out = machine.field(vps)
        scan.scan(out, f, "add")
        assert out.read().tolist() == [1, 3, 6, 10, 15]

    def test_exclusive_add(self, machine):
        vps = machine.vpset((5,))
        f = machine.field(vps)
        f.data[:] = [1, 2, 3, 4, 5]
        out = machine.field(vps)
        scan.scan(out, f, "add", inclusive=False)
        assert out.read().tolist() == [0, 1, 3, 6, 10]

    def test_max_scan(self, machine):
        vps = machine.vpset((5,))
        f = machine.field(vps)
        f.data[:] = [3, 1, 4, 1, 5]
        out = machine.field(vps)
        scan.scan(out, f, "max")
        assert out.read().tolist() == [3, 3, 4, 4, 5]

    def test_axis_selection(self, machine):
        vps = machine.vpset((2, 3))
        f = machine.field(vps)
        f.data[:] = [[1, 2, 3], [4, 5, 6]]
        out = machine.field(vps)
        scan.scan(out, f, "add", axis=0)
        assert out.read().tolist() == [[1, 2, 3], [5, 7, 9]]

    def test_masked_positions_pass_through(self, machine):
        vps = machine.vpset((4,))
        f = machine.field(vps)
        f.data[:] = [1, 10, 1, 10]
        out = machine.field(vps)
        with vps.where(np.array([True, False, True, False])):
            scan.scan(out, f, "add")
        # inactive positions contribute identity and receive nothing
        assert out.read().tolist() == [1, 0, 2, 0]

    def test_segmented_scan(self, machine):
        vps = machine.vpset((6,))
        f = machine.field(vps)
        f.data[:] = [1, 1, 1, 1, 1, 1]
        out = machine.field(vps)
        segs = np.array([True, False, False, True, False, False])
        scan.scan(out, f, "add", segment_mask=segs)
        assert out.read().tolist() == [1, 2, 3, 1, 2, 3]

    def test_segmented_wrong_shape(self, machine):
        vps = machine.vpset((4,))
        f, out = machine.field(vps), machine.field(vps)
        with pytest.raises(ScanError):
            scan.scan(out, f, "add", segment_mask=np.ones(3, bool))

    def test_unknown_scan_op(self, machine):
        vps = machine.vpset((4,))
        f, out = machine.field(vps), machine.field(vps)
        with pytest.raises(ScanError):
            scan.scan(out, f, "arbitrary")


class TestSpread:
    def test_spread_min_along_axis(self, machine):
        vps = machine.vpset((2, 3))
        f = machine.field(vps)
        f.data[:] = [[5, 2, 7], [1, 8, 3]]
        out = machine.field(vps)
        scan.spread(out, f, "min", axis=1)
        assert out.read().tolist() == [[2, 2, 2], [1, 1, 1]]

    def test_spread_add_axis0(self, machine):
        vps = machine.vpset((2, 3))
        f = machine.field(vps)
        f.data[:] = [[1, 2, 3], [10, 20, 30]]
        out = machine.field(vps)
        scan.spread(out, f, "add", axis=0)
        assert out.read().tolist() == [[11, 22, 33], [11, 22, 33]]

    def test_spread_unknown_op(self, machine):
        vps = machine.vpset((2, 2))
        f, out = machine.field(vps), machine.field(vps)
        with pytest.raises(ScanError):
            scan.spread(out, f, "arbitrary", axis=0)


class TestEnumerate:
    def test_ranks_of_active(self, machine):
        vps = machine.vpset((5,))
        f = machine.field(vps)
        with vps.where(np.array([True, False, True, True, False])):
            scan.enumerate_active(f)
        assert f.read().tolist() == [0, 0, 1, 2, 0]

    def test_global_count(self, machine):
        vps = machine.vpset((5,))
        with vps.where(np.array([True, False, True, False, False])):
            assert scan.global_count(vps) == 2
