"""Negative-path coverage: every machine error class raises, is caught as
:class:`MachineError`, and carries a message a user can act on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import (
    ContextError,
    FaultPlan,
    FieldError,
    GeometryError,
    LinkFault,
    MachineError,
    ProcessorFault,
    RouterError,
    ScanError,
    VPSetMismatchError,
    news,
    paris,
    router,
    scan,
)
from repro.machine.config import MachineConfig


class TestGeometryError:
    def test_empty_shape(self, machine):
        with pytest.raises(GeometryError, match="at least one dimension"):
            machine.vpset(())

    def test_nonpositive_extent(self, machine):
        with pytest.raises(GeometryError, match="must be positive"):
            machine.vpset((4, 0))

    def test_bad_machine_size(self):
        with pytest.raises(GeometryError, match="n_pes must be positive"):
            MachineConfig(n_pes=0)

    def test_news_axis_out_of_range(self, machine):
        f = machine.field(machine.vpset((8,)))
        with pytest.raises(GeometryError, match="axis 2 out of range"):
            news.news_shifted(f, 2, 1)

    def test_is_machine_error(self, machine):
        with pytest.raises(MachineError):
            machine.vpset((-1,))


class TestVPSetMismatchError:
    def test_cross_vpset_operand(self, machine):
        a = machine.field(machine.vpset((8,)))
        b = machine.field(machine.vpset((8, 8)))
        with pytest.raises(VPSetMismatchError, match="not on VP set"):
            paris.binop(a, "add", a, b)


class TestContextError:
    def test_pop_empty_stack(self, machine):
        vps = machine.vpset((8,))
        with pytest.raises(ContextError, match="empty context stack"):
            vps.pop_context()

    def test_wrong_shape_mask(self, machine):
        vps = machine.vpset((8,))
        with pytest.raises(ContextError, match="mask shape"):
            vps.push_context(np.ones((4,), dtype=bool))


class TestFieldError:
    def test_unknown_binop(self, machine):
        f = machine.field(machine.vpset((8,)))
        with pytest.raises(FieldError, match="unknown binary op"):
            paris.binop(f, "frobnicate", f, 1)

    def test_wrong_operand_shape(self, machine):
        f = machine.field(machine.vpset((8,)))
        with pytest.raises(FieldError, match="operand array shape"):
            paris.move(f, np.zeros((4,)))


class TestRouterError:
    def test_address_out_of_range(self, machine):
        vps = machine.vpset((8,))
        a, b = machine.field(vps), machine.field(vps)
        with pytest.raises(RouterError, match="address out of range"):
            router.get(a, b, np.full((8,), 99, dtype=np.int64))

    def test_unknown_combiner(self, machine):
        vps = machine.vpset((8,))
        a, b = machine.field(vps), machine.field(vps)
        with pytest.raises(RouterError, match="unknown combiner"):
            router.send(a, b, np.arange(8), combiner="median")

    def test_permute_collision(self, machine):
        vps = machine.vpset((8,))
        a, b = machine.field(vps), machine.field(vps)
        with pytest.raises(RouterError, match="colliding addresses"):
            router.permute(a, b, np.zeros((8,), dtype=np.int64))


class TestScanError:
    def test_unknown_reduce_op(self, machine):
        f = machine.field(machine.vpset((8,)))
        with pytest.raises(ScanError, match="unknown reduction op"):
            scan.reduce(f, "median")

    def test_unknown_scan_op(self, machine):
        vps = machine.vpset((8,))
        a, b = machine.field(vps), machine.field(vps)
        with pytest.raises(ScanError, match="unknown scan op"):
            scan.scan(a, b, "median")


class TestFaultErrors:
    def test_processor_fault_carries_pe(self, machine):
        machine.install_faults(FaultPlan.parse("kill:5@alu#1"))
        f = machine.field(machine.vpset((8,)))
        with pytest.raises(ProcessorFault, match="processor 5 failed") as ei:
            paris.move(f, 1)
        assert ei.value.pe == 5
        assert 5 in machine.dead_pes
        assert machine.n_live_pes == machine.config.n_pes - 1

    def test_link_fault_carries_op(self, machine):
        machine.install_faults(FaultPlan.parse("drop@router.send#1"))
        vps = machine.vpset((8,))
        a, b = machine.field(vps), machine.field(vps)
        with pytest.raises(LinkFault, match="dropped in transit") as ei:
            router.send(a, b, np.arange(8))
        assert ei.value.op == "router.send"

    def test_faults_are_machine_errors(self):
        assert issubclass(ProcessorFault, MachineError)
        assert issubclass(LinkFault, MachineError)
