"""Machine configuration and cost-table tests."""

import pytest

from repro.machine import MachineConfig, default_config, small_config
from repro.machine.config import COST_KINDS, HOST_KINDS, CostTable
from repro.machine.errors import GeometryError


class TestCostTable:
    def test_defaults_keep_cm2_cost_ordering(self):
        c = CostTable()
        assert c.alu < c.news < c.router_send <= c.router_get
        assert c.host < c.alu
        assert c.host_cm_latency > c.broadcast

    def test_scaled_multiplies_cm_side_costs(self):
        c = CostTable().scaled(2.0)
        base = CostTable()
        assert c.alu == base.alu * 2
        assert c.router_get == base.router_get * 2
        assert c.dispatch == base.dispatch * 2

    def test_scaled_preserves_host_costs(self):
        c = CostTable().scaled(5.0)
        base = CostTable()
        assert c.host == base.host
        assert c.host_cm_latency == base.host_cm_latency

    def test_every_cost_kind_has_an_attribute(self):
        c = CostTable()
        for kind in COST_KINDS:
            assert isinstance(getattr(c, kind), float)

    def test_host_kinds_subset_of_cost_kinds(self):
        assert HOST_KINDS <= set(COST_KINDS)


class TestMachineConfig:
    def test_default_is_16k(self):
        assert default_config().n_pes == 16384

    def test_small_config(self):
        assert small_config(2048).n_pes == 2048

    def test_rejects_nonpositive_pes(self):
        with pytest.raises(GeometryError):
            MachineConfig(n_pes=0)
        with pytest.raises(GeometryError):
            MachineConfig(n_pes=-5)

    def test_with_costs_overrides_single_entry(self):
        cfg = default_config().with_costs(router_get=9999.0)
        assert cfg.costs.router_get == 9999.0
        assert cfg.costs.alu == default_config().costs.alu

    def test_config_is_frozen(self):
        cfg = default_config()
        with pytest.raises(Exception):
            cfg.n_pes = 1  # type: ignore[misc]
