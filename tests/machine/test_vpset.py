"""VP-set geometry and activity-context tests."""

import numpy as np
import pytest

from repro.machine import Machine, small_config
from repro.machine.errors import ContextError, GeometryError


class TestGeometry:
    def test_shape_and_size(self, machine):
        vps = machine.vpset((8, 16))
        assert vps.shape == (8, 16)
        assert vps.n_vps == 128
        assert vps.rank == 2
        assert vps.axis_extent(1) == 16

    def test_vp_ratio_one_when_fits(self, machine):
        assert machine.vpset((128, 128)).vp_ratio == 1

    def test_vp_ratio_rounds_up(self, small_machine):
        # 1024 PEs; 3000 VPs -> ratio 3
        assert small_machine.vpset((3000,)).vp_ratio == 3

    def test_empty_shape_rejected(self, machine):
        with pytest.raises(GeometryError):
            machine.vpset(())

    def test_nonpositive_extent_rejected(self, machine):
        with pytest.raises(GeometryError):
            machine.vpset((4, 0))

    def test_self_addresses_row_major(self, machine):
        vps = machine.vpset((2, 3))
        addr = vps.self_addresses()
        assert addr[0, 0] == 0
        assert addr[0, 2] == 2
        assert addr[1, 0] == 3

    def test_coordinates(self, machine):
        vps = machine.vpset((2, 3))
        assert np.array_equal(vps.coordinates(0), [[0, 0, 0], [1, 1, 1]])
        assert np.array_equal(vps.coordinates(1), [[0, 1, 2], [0, 1, 2]])

    def test_coordinates_bad_axis(self, machine):
        with pytest.raises(GeometryError):
            machine.vpset((4,)).coordinates(1)


class TestContext:
    def test_default_context_all_active(self, machine):
        vps = machine.vpset((4,))
        assert vps.active_count() == 4
        assert vps.context.all()

    def test_push_pop(self, machine):
        vps = machine.vpset((4,))
        vps.push_context(np.array([True, False, True, False]))
        assert vps.active_count() == 2
        vps.pop_context()
        assert vps.active_count() == 4

    def test_nested_contexts_and(self, machine):
        vps = machine.vpset((4,))
        vps.push_context(np.array([True, True, False, False]))
        vps.push_context(np.array([True, False, True, False]))
        assert np.array_equal(vps.context, [True, False, False, False])

    def test_push_without_combine(self, machine):
        vps = machine.vpset((4,))
        vps.push_context(np.zeros(4, bool))
        vps.push_context(np.ones(4, bool), combine=False)
        assert vps.active_count() == 4

    def test_pop_empty_raises(self, machine):
        with pytest.raises(ContextError):
            machine.vpset((4,)).pop_context()

    def test_wrong_shape_mask_rejected(self, machine):
        with pytest.raises(ContextError):
            machine.vpset((4,)).push_context(np.ones(5, bool))

    def test_where_context_manager(self, machine):
        vps = machine.vpset((4,))
        with vps.where(np.array([True, False, False, False])):
            assert vps.active_count() == 1
        assert vps.active_count() == 4

    def test_everywhere_suspends_masking(self, machine):
        vps = machine.vpset((4,))
        with vps.where(np.zeros(4, bool)):
            with vps.everywhere():
                assert vps.active_count() == 4
            assert vps.active_count() == 0

    def test_context_ops_charge_clock(self, machine):
        vps = machine.vpset((4,))
        before = machine.clock.count("context")
        vps.push_context(np.ones(4, bool))
        vps.pop_context()
        assert machine.clock.count("context") == before + 2


class TestMachineObject:
    def test_cold_boot_resets(self, machine):
        vps = machine.vpset((4,))
        machine.field(vps)
        machine.cold_boot()
        assert machine.clock.time_us == 0
        assert machine.vpsets == []
        assert machine.fields == []

    def test_foreign_vpset_rejected(self, machine):
        other = Machine(small_config())
        vps = other.vpset((4,))
        with pytest.raises(ValueError):
            machine.field(vps)

    def test_elapsed_properties(self, machine):
        machine.vpset((4,))
        assert machine.elapsed_us >= 0
        assert machine.elapsed_ms == machine.elapsed_us / 1000


class TestSelfAddressCache:
    def test_cached_and_read_only(self, machine):
        vps = machine.vpset((4, 4))
        first = vps.self_addresses()
        assert vps.self_addresses() is first  # computed once per VP set
        assert not first.flags.writeable
        import pytest as _pytest

        with _pytest.raises(ValueError):
            first[0, 0] = 99

    def test_copy_is_mutable(self, machine):
        vps = machine.vpset((3,))
        mutable = vps.self_addresses().copy()
        mutable[0] = 42
        assert vps.self_addresses()[0] == 0
