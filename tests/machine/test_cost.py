"""Clock / cost-accounting tests."""

import math

import pytest

from repro.machine.config import CostTable
from repro.machine.cost import Clock


@pytest.fixture
def clock() -> Clock:
    return Clock(CostTable())


class TestCharging:
    def test_cm_charge_includes_one_dispatch(self, clock):
        c = clock.costs
        dt = clock.charge("alu")
        assert dt == pytest.approx(c.alu + c.dispatch)
        assert clock.count("alu") == 1
        assert clock.count("dispatch") == 1

    def test_count_scales_time_but_not_dispatch(self, clock):
        c = clock.costs
        dt = clock.charge("news", count=5)
        assert dt == pytest.approx(5 * c.news + c.dispatch)
        assert clock.count("dispatch") == 1

    def test_vp_ratio_scales_cm_charges(self, clock):
        c = clock.costs
        dt = clock.charge("alu", vp_ratio=4)
        assert dt == pytest.approx(4 * c.alu + c.dispatch)

    def test_vp_ratio_below_one_clamped(self, clock):
        c = clock.costs
        assert clock.charge("alu", vp_ratio=0) == pytest.approx(c.alu + c.dispatch)

    def test_host_charges_have_no_dispatch_or_ratio(self, clock):
        c = clock.costs
        dt = clock.charge("host", count=3, vp_ratio=16)
        assert dt == pytest.approx(3 * c.host)
        assert clock.count("dispatch") == 0

    def test_host_cm_latency_is_host_side(self, clock):
        dt = clock.charge("host_cm_latency")
        assert dt == pytest.approx(clock.costs.host_cm_latency)
        assert clock.count("dispatch") == 0

    def test_unknown_kind_rejected(self, clock):
        with pytest.raises(KeyError):
            clock.charge("warp_drive")

    def test_total_time_accumulates(self, clock):
        clock.charge("alu")
        clock.charge("host")
        expected = clock.costs.alu + clock.costs.dispatch + clock.costs.host
        assert clock.time_us == pytest.approx(expected)
        assert clock.time_ms == pytest.approx(expected / 1e3)
        assert clock.time_s == pytest.approx(expected / 1e6)


class TestScanCharge:
    def test_levels_are_log2(self, clock):
        clock.charge_scan(1024)
        assert clock.count("scan_step") == 10

    def test_minimum_one_level(self, clock):
        clock.charge_scan(1)
        assert clock.count("scan_step") == 1

    def test_non_power_of_two_rounds_up(self, clock):
        clock.charge_scan(1000)
        assert clock.count("scan_step") == 10

    def test_steps_per_level(self, clock):
        clock.charge_scan(16, steps_per_level=2)
        assert clock.count("scan_step") == 8


class TestAdvanceAndReset:
    def test_advance(self, clock):
        clock.advance(123.0)
        assert clock.time_us == 123.0

    def test_advance_rejects_negative(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_reset_zeroes_everything(self, clock):
        clock.charge("alu", count=7)
        clock.begin_region("x")
        clock.end_region()
        clock.reset()
        assert clock.time_us == 0.0
        assert clock.count("alu") == 0
        assert clock.regions == {}


class TestRegions:
    def test_region_accumulates_elapsed(self, clock):
        with clock.region("phase"):
            clock.charge("alu")
        assert clock.regions["phase"] == pytest.approx(
            clock.costs.alu + clock.costs.dispatch
        )

    def test_nested_regions(self, clock):
        clock.begin_region("outer")
        clock.begin_region("inner")
        clock.charge("alu")
        name, inner_t = clock.end_region()
        assert name == "inner"
        clock.charge("news")
        _, outer_t = clock.end_region()
        assert outer_t > inner_t

    def test_end_without_begin(self, clock):
        with pytest.raises(RuntimeError):
            clock.end_region()

    def test_repeated_region_sums(self, clock):
        for _ in range(2):
            with clock.region("r"):
                clock.charge("alu")
        assert clock.regions["r"] == pytest.approx(
            2 * (clock.costs.alu + clock.costs.dispatch)
        )


class TestSnapshotsAndLedger:
    def test_snapshot_delta(self, clock):
        s0 = clock.snapshot()
        clock.charge("router_get", vp_ratio=2)
        delta = clock.snapshot() - s0
        assert delta.counts["router_get"] == 1
        assert delta.time_us == pytest.approx(
            2 * clock.costs.router_get + clock.costs.dispatch
        )

    def test_ledger_sorted_by_time(self, clock):
        clock.charge("alu", count=1)
        clock.charge("router_get", count=1)
        ledger = clock.ledger()
        assert ledger[0].kind in ("router_get", "dispatch")
        kinds = {r.kind for r in ledger}
        assert {"alu", "router_get", "dispatch"} <= kinds

    def test_time_in(self, clock):
        clock.charge("alu", count=3)
        assert clock.time_in("alu") == pytest.approx(3 * clock.costs.alu)
