"""Machine-level integration tests: whole algorithms straight on Paris.

The simulator is a usable substrate on its own — these tests implement
real kernels at the Paris layer (no UC, no C*) and validate them, proving
the machine abstraction is complete enough to program directly.
"""

import numpy as np
import pytest

from repro.algorithms.grid_path import (
    grid_reference_distances,
    obstacle_mask,
)
from repro.machine import Machine, news, paris, router, scan


class TestParisObstacleRelaxation:
    """Figure 11's relaxation written directly against the machine."""

    def test_grid_relaxation_matches_bfs(self):
        r = 16
        big = 10_000
        m = Machine()
        vps = m.vpset((r, r), "grid")
        d = m.field(vps, name="dist")
        walls = obstacle_mask(r)

        d.load(np.zeros((r, r)))
        d.data[walls] = big
        nbr = m.field(vps, name="nbr")
        best = m.field(vps, name="best")
        changed = m.field(vps, bool, name="changed")

        for _sweep in range(8 * r):
            paris.move(best, big)
            for axis, off in ((0, 1), (0, -1), (1, 1), (1, -1)):
                news.get_from_news(nbr, d, axis, off, border=big)
                paris.binop(best, "min", best, nbr)
            paris.binop(best, "add", best, 1)
            # walls and the goal hold their values
            hold = walls.copy()
            hold[0, 0] = True
            paris.select(best, hold, d, best)
            paris.binop(changed, "ne", best, d)
            any_change = paris.global_or(vps, changed)
            paris.move(d, best)
            if not any_change:
                break

        ref = grid_reference_distances(r)
        free = ~walls
        assert np.array_equal(d.read()[free], ref[free])
        assert m.clock.count("news") > 0
        assert m.clock.count("router_get") == 0  # pure NEWS algorithm

    def test_histogram_via_router_combining(self):
        m = Machine()
        vps = m.vpset((1000,))
        rng = np.random.default_rng(3)
        samples = rng.integers(0, 10, 1000)
        src = m.field(vps)
        src.data[:] = 1
        hist_vps = m.vpset((10,))
        hist = m.field(hist_vps)
        router.send(hist, src, samples, combiner="add")
        assert np.array_equal(hist.read(), np.bincount(samples, minlength=10))

    def test_pack_active_elements_with_enumerate(self):
        """Stream compaction: enumerate ranks + router send."""
        m = Machine()
        vps = m.vpset((12,))
        data = m.field(vps)
        data.data[:] = np.arange(12) * 3
        keep = (np.arange(12) % 3) == 0
        ranks = m.field(vps)
        with vps.where(keep):
            scan.enumerate_active(ranks)
            out = m.field(vps)
            router.send(out, data, ranks.data)
        packed = out.read()[: keep.sum()]
        assert packed.tolist() == [0, 9, 18, 27]

    def test_matvec_with_spread_and_scan(self):
        """y = A @ x using spread (broadcast x along rows) + row reduce."""
        n = 8
        m = Machine()
        grid = m.vpset((n, n))
        rng = np.random.default_rng(1)
        a_np = rng.integers(0, 9, (n, n))
        x_np = rng.integers(0, 9, n)

        a = m.field(grid)
        a.load(a_np)
        x_spread = m.field(grid)
        x_spread.load(np.broadcast_to(x_np, (n, n)).copy())
        prod = m.field(grid)
        paris.binop(prod, "mul", a, x_spread)
        ysum = m.field(grid)
        scan.spread(ysum, prod, "add", axis=1)
        assert np.array_equal(ysum.read()[:, 0], a_np @ x_np)


class TestCStarNewsShift:
    def test_shift_semantics(self):
        from repro.cstar import CStarRuntime

        rt = CStarRuntime(Machine())
        d = rt.domain("D", (5,), {"v": int})
        d.load("v", np.array([10, 11, 12, 13, 14]))
        right = d["v"].shifted(0, 1, border=-1)
        assert right.to_array().tolist() == [11, 12, 13, 14, -1]
        left = d["v"].shifted(0, -2, border=0)
        assert left.to_array().tolist() == [0, 0, 10, 11, 12]

    def test_shift_charges_news_not_router(self):
        from repro.cstar import CStarRuntime

        rt = CStarRuntime(Machine())
        d = rt.domain("D", (8, 8), {"v": int})
        s0 = rt.machine.clock.snapshot()
        d["v"].shifted(1, 1)
        delta = rt.machine.clock.snapshot() - s0
        assert delta.counts["news"] == 1
        assert delta.counts["router_get"] == 0

    def test_cstar_grid_relaxation(self):
        """The figure-11 kernel in C* with NEWS shifts, vs BFS."""
        from repro.cstar import CStarRuntime

        r, big = 12, 10_000
        rt = CStarRuntime(Machine())
        g = rt.domain("G", (r, r), {"d": int, "wall": int})
        walls = obstacle_mask(r)
        init = np.zeros((r, r), dtype=np.int64)
        init[walls] = big
        g.load("d", init)
        g.load("wall", walls.astype(np.int64))

        is_goal = (g.coord(0) == 0) & (g.coord(1) == 0)
        for _ in range(8 * r):
            with g.activate():
                best = (
                    g["d"].shifted(0, 1, border=big)
                    .minimum(g["d"].shifted(0, -1, border=big))
                    .minimum(g["d"].shifted(1, 1, border=big))
                    .minimum(g["d"].shifted(1, -1, border=big))
                    + 1
                )
                before = g.read("d")
                with g.where((g["wall"] == 0) & ~is_goal):
                    g["d"] = best
                if np.array_equal(before, g.read("d")):
                    break
        ref = grid_reference_distances(r)
        free = ~walls
        assert np.array_equal(g.read("d")[free], ref[free])
