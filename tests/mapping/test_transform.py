"""Source-to-source subscript rewriting tests (paper §4 worked example)."""

import pytest

from repro.compiler.cstar_gen import expr_to_text
from repro.lang import analyze, parse_expression, parse_program, parse_statement
from repro.mapping.maps import build_layouts
from repro.mapping.transform import rewrite_program, rewrite_subscripts, simplify


def layouts_for(src, defines=None):
    info = analyze(parse_program(src), defines)
    return build_layouts(info), info


SRC = (
    "index_set I:i = {0..7};\nint a[8], b[9];\n"
    "map (I) { permute (I) b[i+1] :- a[i]; }\n"
    "main { par (I) a[i] = a[i] + b[i+1]; }"
)


class TestSimplify:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("i + 1 - 1", "i"),
            ("i + 0", "i"),
            ("0 + i", "i"),
            ("i - 0", "i"),
            ("1 + 2", "3"),
            ("i + 2 - 1", "i + 1"),
            ("i - 2 + 1", "i - 1"),
        ],
    )
    def test_cases(self, before, after):
        assert expr_to_text(simplify(parse_expression(before))) == after

    def test_leaves_other_expressions_alone(self):
        e = parse_expression("i * 2")
        assert expr_to_text(simplify(e)) == "i * 2"


class TestRewrite:
    def test_paper_worked_example(self):
        """a[i] = a[i] + b[i+1]  --permute-->  a[i] = a[i] + b[i]."""
        layouts, _ = layouts_for(SRC)
        stmt = parse_statement("a[i] = a[i] + b[i+1];")
        out = rewrite_subscripts(stmt, layouts)
        assert expr_to_text(out.expr) == "a[i] = a[i] + b[i]"

    def test_unshifted_reference_gains_offset(self):
        layouts, _ = layouts_for(SRC)
        stmt = parse_statement("x = b[i];")
        # x undeclared is fine: rewrite works on raw trees
        out = rewrite_subscripts(stmt, layouts)
        assert expr_to_text(out.expr) == "x = b[i - 1]"

    def test_original_tree_unmodified(self):
        layouts, _ = layouts_for(SRC)
        stmt = parse_statement("a[i] = b[i+1];")
        before = expr_to_text(stmt.expr)
        rewrite_subscripts(stmt, layouts)
        assert expr_to_text(stmt.expr) == before

    def test_rewrite_program_drops_map_sections(self):
        layouts, info = layouts_for(SRC)
        out = rewrite_program(info.program, layouts)
        assert out.maps == []
        assert info.program.maps  # original untouched

    def test_canonical_arrays_untouched(self):
        layouts, _ = layouts_for(SRC)
        stmt = parse_statement("a[i] = a[i + 2];")
        out = rewrite_subscripts(stmt, layouts)
        assert expr_to_text(out.expr) == "a[i] = a[i + 2]"
