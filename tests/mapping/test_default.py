"""Default-mapping tests (paper §4: conforming arrays co-located)."""

from repro.mapping.default import default_layouts


class TestDefaultLayouts:
    def test_all_arrays_canonical(self):
        table = default_layouts({"a": ("int", (8,)), "d": ("float", (4, 4))})
        assert table.get("a").is_canonical
        assert table.get("d").is_canonical
        assert table.get("d").shape == (4, 4)

    def test_conforming_arrays_share_positions(self):
        """Same-shape arrays put element x at the same grid position, so
        a[i] = b[i] is local under the default mapping."""
        table = default_layouts({"a": ("int", (8,)), "b": ("int", (8,))})
        for x in range(8):
            assert table.get("a").physical_position((x,)) == table.get(
                "b"
            ).physical_position((x,))

    def test_empty(self):
        table = default_layouts({})
        assert table.arrays() == []
