"""Layout descriptor tests."""

import pytest

from repro.lang.errors import UCSemanticError
from repro.mapping.layout import AxisFold, Layout, LayoutTable


class TestAxisFold:
    def test_wrap(self):
        f = AxisFold(axis=0, kind="wrap", param=4)
        assert f.physical(0) == 0
        assert f.physical(3) == 3
        assert f.physical(4) == 0
        assert f.physical(7) == 3

    def test_mirror(self):
        f = AxisFold(axis=0, kind="mirror", param=7)  # around 3.5
        assert f.physical(0) == 0
        assert f.physical(3) == 3
        assert f.physical(4) == 3
        assert f.physical(7) == 0


class TestLayout:
    def test_canonical_default(self):
        l = Layout("a", (4, 4))
        assert l.is_canonical
        assert l.offsets == (0, 0)
        assert l.physical_position((2, 3)) == (2, 3)

    def test_offsets(self):
        l = Layout("b", (8,), offsets=(-1,))
        assert not l.is_canonical
        assert l.physical_position((3,)) == (2,)

    def test_axis_perm(self):
        l = Layout("b", (4, 4)).with_axis_perm((1, 0))
        assert l.physical_position((1, 2)) == (2, 1)
        assert not l.is_canonical

    def test_fold_position(self):
        l = Layout("a", (8,)).with_fold(AxisFold(0, "wrap", 4))
        assert l.physical_position((5,)) == (1,)
        assert l.physical_position((2,)) == (2,)

    def test_copy_marker(self):
        l = Layout("v", (8,)).with_copy("k", 4)
        assert l.copy_elem == "k" and l.copy_extent == 4
        assert not l.is_canonical

    def test_offset_count_mismatch(self):
        with pytest.raises(UCSemanticError):
            Layout("a", (4, 4), offsets=(1,))

    def test_bad_perm(self):
        with pytest.raises(UCSemanticError):
            Layout("a", (4, 4), axis_perm=(0, 0))

    def test_position_rank_mismatch(self):
        with pytest.raises(UCSemanticError):
            Layout("a", (4,)).physical_position((1, 2))


class TestLayoutTable:
    def test_add_get(self):
        t = LayoutTable()
        t.add(Layout("a", (4,)))
        assert t.get("a").array == "a"
        assert "a" in t and "b" not in t

    def test_missing_raises(self):
        with pytest.raises(UCSemanticError):
            LayoutTable().get("nope")

    def test_non_canonical_listing(self):
        t = LayoutTable()
        t.add(Layout("a", (4,)))
        t.add(Layout("b", (4,), offsets=(-1,)))
        assert [l.array for l in t.non_canonical()] == ["b"]

    def test_replacement(self):
        t = LayoutTable()
        t.add(Layout("a", (4,)))
        t.add(Layout("a", (4,), offsets=(2,)))
        assert t.get("a").offsets == (2,)
