"""Map-declaration -> layout translation tests."""

import pytest

from repro.lang import analyze, parse_program
from repro.lang.errors import UCSemanticError
from repro.mapping.maps import affine_subscript, build_layouts
from repro.lang import parse_expression


def layouts_of(src, defines=None):
    info = analyze(parse_program(src), defines)
    return build_layouts(info), info


HEADER = "index_set I:i = {0..7}, J:j = I;\nint a[8], b[8], d[8][8], e[8][8];\n"


class TestAffineSubscript:
    ELEMS = {"i": "I", "j": "J"}

    def test_bare_element(self):
        s = affine_subscript(parse_expression("i"), self.ELEMS, {})
        assert (s.elem, s.scale, s.offset) == ("i", 1, 0)

    def test_plus_const(self):
        s = affine_subscript(parse_expression("i + 3"), self.ELEMS, {})
        assert (s.elem, s.scale, s.offset) == ("i", 1, 3)

    def test_const_minus_element(self):
        s = affine_subscript(parse_expression("7 - i"), self.ELEMS, {})
        assert (s.elem, s.scale, s.offset) == ("i", -1, 7)

    def test_pure_constant(self):
        s = affine_subscript(parse_expression("2 * 3"), self.ELEMS, {})
        assert (s.elem, s.offset) == (None, 6)

    def test_define_constant(self):
        s = affine_subscript(parse_expression("i + N"), self.ELEMS, {"N": 4})
        assert s.offset == 4

    def test_two_elements_rejected(self):
        with pytest.raises(UCSemanticError):
            affine_subscript(parse_expression("i + j"), self.ELEMS, {})

    def test_nonunit_scale_rejected(self):
        with pytest.raises(UCSemanticError):
            affine_subscript(parse_expression("2 * i"), self.ELEMS, {})


class TestPermute:
    def test_paper_example_offset(self):
        """permute (I) b[i+1] :- a[i]  =>  b shifted by -1."""
        table, _ = layouts_of(HEADER + "map (I) { permute (I) b[i+1] :- a[i]; }")
        assert table.get("b").offsets == (-1,)
        assert table.get("a").is_canonical

    def test_negative_direction(self):
        table, _ = layouts_of(HEADER + "map (I) { permute (I) b[i] :- a[i+2]; }")
        assert table.get("b").offsets == (2,)

    def test_transpose(self):
        table, _ = layouts_of(
            HEADER + "map (I, J) { permute (I, J) e[j][i] :- d[i][j]; }"
        )
        assert table.get("e").axis_perm == (1, 0)

    def test_transpose_with_shift(self):
        table, _ = layouts_of(
            HEADER + "map (I, J) { permute (I, J) e[j][i+1] :- d[i][j]; }"
        )
        l = table.get("e")
        assert l.axis_perm == (1, 0)
        assert l.offsets == (0, -1)

    def test_element_missing_from_source(self):
        with pytest.raises(UCSemanticError):
            layouts_of(HEADER + "map (I, J) { permute (I, J) b[i] :- a[j]; }")

    def test_source_must_be_canonical(self):
        with pytest.raises(UCSemanticError):
            layouts_of(
                HEADER
                + "map (I) { permute (I) b[i+1] :- a[i]; permute (I) a[i] :- b[i]; }"
            )


class TestFold:
    def test_wrap_fold(self):
        table, _ = layouts_of(HEADER + "map (I) { fold (I) a[i+4] :- a[i]; }")
        f = table.get("a").fold
        assert f is not None and f.kind == "wrap" and f.param == 4

    def test_mirror_fold(self):
        table, _ = layouts_of(HEADER + "map (I) { fold (I) a[7-i] :- a[i]; }")
        f = table.get("a").fold
        assert f is not None and f.kind == "mirror" and f.param == 7

    def test_identity_fold_rejected(self):
        with pytest.raises(UCSemanticError):
            layouts_of(HEADER + "map (I) { fold (I) a[i] :- a[i]; }")

    def test_negative_pivot_rejected(self):
        with pytest.raises(UCSemanticError):
            layouts_of(HEADER + "map (I) { fold (I) a[i-4] :- a[i]; }")


class TestCopy:
    def test_copy_extent_from_index_set(self):
        table, info = layouts_of(
            HEADER + "map (I, J) { copy (I, J) a[i][j] :- a[i]; }"
        )
        l = table.get("a")
        assert l.copy_elem == "j"
        assert l.copy_extent == len(info.index_sets["J"])

    def test_copy_without_new_element_rejected(self):
        with pytest.raises(UCSemanticError):
            layouts_of(HEADER + "map (I) { copy (I) d[i][i] :- d[i][0]; }")


class TestBuildLayouts:
    def test_apply_maps_false_keeps_canonical(self):
        src = HEADER + "map (I) { permute (I) b[i+1] :- a[i]; }"
        info = analyze(parse_program(src))
        table = build_layouts(info, apply_maps=False)
        assert table.get("b").is_canonical

    def test_every_array_gets_layout(self):
        table, info = layouts_of(HEADER)
        for name in info.arrays:
            assert name in table
