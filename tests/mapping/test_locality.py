"""Reference-classification tests: the heart of the cost model."""

import numpy as np
import pytest

from repro.mapping.layout import AxisFold, Layout
from repro.mapping.locality import classify_reference, classify_write


def grid(shape, elems=None):
    elems = elems or tuple(f"e{k}" for k in range(len(shape)))
    pos = list(np.indices(shape, dtype=np.int64))
    return shape, tuple(elems), pos


class TestReadClassification:
    def test_identity_is_local(self):
        shape, elems, pos = grid((8,), ("i",))
        rc = classify_reference([pos[0]], shape, elems, Layout("a", (8,)))
        assert rc.kind == "local"

    def test_constant_shift_is_news(self):
        shape, elems, pos = grid((8,), ("i",))
        rc = classify_reference([pos[0] + 1], shape, elems, Layout("a", (9,)))
        assert rc.kind == "news" and rc.news_distance == 1

    def test_larger_shift_distance(self):
        shape, elems, pos = grid((8,), ("i",))
        rc = classify_reference([pos[0] + 3], shape, elems, Layout("a", (11,)))
        assert rc.news_distance == 3

    def test_permute_offset_cancels_shift(self):
        shape, elems, pos = grid((8,), ("i",))
        layout = Layout("b", (9,), offsets=(-1,))
        rc = classify_reference([pos[0] + 1], shape, elems, layout)
        assert rc.kind == "local"

    def test_permute_offset_makes_identity_remote(self):
        shape, elems, pos = grid((8,), ("i",))
        layout = Layout("b", (9,), offsets=(-1,))
        rc = classify_reference([pos[0]], shape, elems, layout)
        assert rc.kind == "news" and rc.news_distance == 1

    def test_2d_identity_local(self):
        shape, elems, pos = grid((4, 4), ("i", "j"))
        rc = classify_reference([pos[0], pos[1]], shape, elems, Layout("d", (4, 4)))
        assert rc.kind == "local"

    def test_transpose_is_router(self):
        shape, elems, pos = grid((4, 4), ("i", "j"))
        rc = classify_reference([pos[1], pos[0]], shape, elems, Layout("d", (4, 4)))
        assert rc.kind == "router"

    def test_transpose_with_perm_layout_local(self):
        shape, elems, pos = grid((4, 4), ("i", "j"))
        layout = Layout("d", (4, 4)).with_axis_perm((1, 0))
        rc = classify_reference([pos[1], pos[0]], shape, elems, layout)
        assert rc.kind == "local"

    def test_mirror_is_router(self):
        shape, elems, pos = grid((8,), ("i",))
        rc = classify_reference([7 - pos[0]], shape, elems, Layout("a", (8,)))
        assert rc.kind == "router"

    def test_mirror_with_fold_local(self):
        shape, elems, pos = grid((8,), ("i",))
        layout = Layout("a", (8,)).with_fold(AxisFold(0, "mirror", 7))
        rc = classify_reference([7 - pos[0]], shape, elems, layout)
        assert rc.kind == "local"

    def test_wrap_shift_with_fold_local(self):
        shape, elems, pos = grid((4,), ("i",))
        layout = Layout("a", (8,)).with_fold(AxisFold(0, "wrap", 4))
        rc = classify_reference([pos[0] + 4], shape, elems, layout)
        assert rc.kind == "local"

    def test_all_uniform_is_broadcast(self):
        shape, elems, pos = grid((4, 4), ("i", "j"))
        rc = classify_reference([2, 3], shape, elems, Layout("d", (4, 4)))
        assert rc.kind == "broadcast"

    def test_unused_grid_axis_is_spread(self):
        """d[i][k] in an (i, j, k) grid: constant along j -> spread."""
        shape, elems, pos = grid((4, 4, 4), ("i", "j", "k"))
        rc = classify_reference([pos[0], pos[2]], shape, elems, Layout("d", (4, 4)))
        assert rc.kind == "spread"
        assert rc.spread_extent == 4

    def test_copy_absorbs_spread(self):
        shape, elems, pos = grid((4, 4), ("i", "k"))
        layout = Layout("v", (4,)).with_copy("k", 4)
        rc = classify_reference([pos[0]], shape, elems, layout)
        assert rc.kind == "local"

    def test_copy_wrong_element_still_spreads(self):
        shape, elems, pos = grid((4, 4), ("i", "k"))
        layout = Layout("v", (4,)).with_copy("z", 4)
        rc = classify_reference([pos[0]], shape, elems, layout)
        assert rc.kind == "spread"

    def test_data_dependent_is_router(self):
        shape, elems, pos = grid((8,), ("i",))
        rng = np.random.default_rng(0)
        rc = classify_reference(
            [rng.integers(0, 8, 8)], shape, elems, Layout("a", (8,))
        )
        assert rc.kind == "router"

    def test_uniform_row_with_identity_column_is_spread(self):
        """b[k][i] with scalar k: a row slice fetched by spreading."""
        shape, elems, pos = grid((8,), ("i",))
        rc = classify_reference([3, pos[0]], shape, elems, Layout("b", (8, 8)))
        assert rc.kind == "spread"

    def test_host_context_is_broadcast(self):
        rc = classify_reference([2], (), (), Layout("a", (8,)))
        assert rc.kind == "broadcast"

    def test_mixed_shift_axes_accumulate(self):
        shape, elems, pos = grid((4, 4), ("i", "j"))
        rc = classify_reference(
            [pos[0] + 1, pos[1] - 2], shape, elems, Layout("d", (6, 6))
        )
        assert rc.kind == "news" and rc.news_distance == 3

    def test_diagonal_subscript_is_router(self):
        """a[i+j] varies along two axes at once: no single-axis match."""
        shape, elems, pos = grid((4, 4), ("i", "j"))
        rc = classify_reference([pos[0] + pos[1]], shape, elems, Layout("a", (8,)))
        assert rc.kind == "router"


class TestWriteClassification:
    def test_local_write(self):
        shape, elems, pos = grid((8,), ("i",))
        rc = classify_write([pos[0]], shape, elems, Layout("a", (8,)))
        assert rc.kind == "local"

    def test_uniform_write_is_router(self):
        """All VPs writing one element must combine in the router."""
        shape, elems, pos = grid((8,), ("i",))
        rc = classify_write([3], shape, elems, Layout("a", (8,)))
        assert rc.kind == "router"

    def test_spreadlike_write_is_router(self):
        shape, elems, pos = grid((4, 4), ("i", "j"))
        rc = classify_write([pos[0]], shape, elems, Layout("a", (4,)))
        assert rc.kind == "router"

    def test_data_dependent_write_is_router(self):
        shape, elems, pos = grid((8,), ("i",))
        rc = classify_write(
            [np.arange(8)[::-1].copy()], shape, elems, Layout("a", (8,))
        )
        assert rc.kind == "router"

    def test_shift_write_is_news(self):
        shape, elems, pos = grid((8,), ("i",))
        rc = classify_write([pos[0] + 1], shape, elems, Layout("a", (9,)))
        assert rc.kind == "news"
