"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import Machine, MachineConfig, small_config


@pytest.fixture
def machine() -> Machine:
    """A default 16K-PE simulated CM-2."""
    return Machine(seed=1234)


@pytest.fixture
def small_machine() -> Machine:
    """A 1K-PE machine: VP ratios exceed 1 at modest sizes."""
    return Machine(small_config(1024), seed=1234)


def run_uc(source: str, inputs=None, seed: int = 20250704, **kwargs):
    """Parse + run a UC program, returning its RunResult."""
    from repro.interp.program import UCProgram

    return UCProgram(source, **kwargs).run(inputs or {}, seed=seed)
