"""Sequential Sun-4 model tests (figure 8 baseline)."""

import numpy as np
import pytest

from repro.algorithms.grid_path import grid_reference_distances, obstacle_mask
from repro.seqc import SunModel, sequential_obstacle_path
from repro.seqc.grid import OPS_PER_CELL


class TestSunModel:
    def test_charging(self):
        m = SunModel()
        m.charge_ops(100)
        assert m.ops == 100
        assert m.elapsed_us == pytest.approx(100 * m.op_cost_us)

    def test_optimized_factor(self):
        plain = SunModel()
        opt = SunModel(optimized=True)
        plain.charge_ops(1000)
        opt.charge_ops(1000)
        assert plain.elapsed_us / opt.elapsed_us == pytest.approx(plain.optimize_factor)

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            SunModel().charge_ops(-1)

    def test_reset(self):
        m = SunModel()
        m.charge_ops(10)
        m.reset()
        assert m.ops == 0 and m.elapsed_us == 0

    def test_elapsed_seconds(self):
        m = SunModel(op_cost_us=1.0)
        m.charge_ops(2_000_000)
        assert m.elapsed_s == pytest.approx(2.0)


class TestSequentialGrid:
    def test_distances_match_bfs(self):
        res = sequential_obstacle_path(20)
        ref = grid_reference_distances(20)
        free = ~obstacle_mask(20)
        assert np.array_equal(res.distances[free], ref[free])

    def test_cost_scales_with_cells_and_sweeps(self):
        res = sequential_obstacle_path(16)
        assert res.ops >= res.sweeps * 16 * 16 * OPS_PER_CELL

    def test_quadratic_ish_growth(self):
        t1 = sequential_obstacle_path(20).elapsed_us
        t2 = sequential_obstacle_path(40).elapsed_us
        # sweeps double and cells quadruple: expect ~8x
        assert 5 < t2 / t1 < 12

    def test_optimized_is_faster_same_answer(self):
        plain = sequential_obstacle_path(16)
        opt = sequential_obstacle_path(16, optimized=True)
        assert np.array_equal(plain.distances, opt.distances)
        assert opt.elapsed_us < plain.elapsed_us

    def test_custom_walls(self):
        walls = np.zeros((12, 12), dtype=bool)
        walls[5, 1:11] = True
        res = sequential_obstacle_path(12, walls=walls)
        ref = grid_reference_distances(12, walls)
        assert np.array_equal(res.distances[~walls], ref[~walls])

    def test_nonconvergence_guard(self):
        with pytest.raises(RuntimeError):
            sequential_obstacle_path(16, max_sweeps=2)
