"""Domain (activation, where, field access) tests."""

import numpy as np
import pytest

from repro.cstar import CStarRuntime
from repro.lang.errors import UCRuntimeError
from repro.machine import Machine


@pytest.fixture
def rt():
    return CStarRuntime(Machine(seed=7))


class TestFields:
    def test_declared_fields_zeroed(self, rt):
        d = rt.domain("D", (3, 3), {"a": int, "f": float})
        assert d.read("a").tolist() == [[0] * 3] * 3
        assert d.read("f").dtype == np.float64

    def test_unknown_field(self, rt):
        d = rt.domain("D", (2,), {"a": int})
        with pytest.raises(UCRuntimeError):
            d["nope"]
        with pytest.raises(UCRuntimeError):
            d["nope"] = 1

    def test_assignment_scalar(self, rt):
        d = rt.domain("D", (4,), {"a": int})
        with d.activate():
            d["a"] = 5
        assert d.read("a").tolist() == [5, 5, 5, 5]

    def test_float_truncation_into_int_field(self, rt):
        d = rt.domain("D", (2,), {"a": int})
        with d.activate():
            d["a"] = 1.9
        assert d.read("a").tolist() == [1, 1]

    def test_coord(self, rt):
        d = rt.domain("D", (2, 3), {"a": int})
        assert d.coord(1).to_array().tolist() == [[0, 1, 2], [0, 1, 2]]

    def test_load_shape_check(self, rt):
        d = rt.domain("D", (2, 3), {"a": int})
        with pytest.raises(UCRuntimeError):
            d.load("a", np.zeros((3, 2)))


class TestContexts:
    def test_where_masks_assignment(self, rt):
        d = rt.domain("D", (6,), {"a": int})
        with d.activate():
            with d.where(d.coord(0) % 2 == 0):
                d["a"] = 7
        assert d.read("a").tolist() == [7, 0, 7, 0, 7, 0]

    def test_nested_where_ands(self, rt):
        d = rt.domain("D", (8,), {"a": int})
        c = d.coord(0)
        with d.activate():
            with d.where(c >= 2):
                with d.where(c <= 5):
                    d["a"] = 1
        assert d.read("a").tolist() == [0, 0, 1, 1, 1, 1, 0, 0]

    def test_activate_resets_to_everywhere(self, rt):
        d = rt.domain("D", (4,), {"a": int})
        with d.where(d.coord(0) == 0):
            with d.activate():
                assert d.active_count() == 4
            assert d.active_count() == 1

    def test_min_max_assign(self, rt):
        d = rt.domain("D", (4,), {"a": int})
        d.load("a", np.array([5, 1, 7, 3]))
        with d.activate():
            d.min_assign("a", 4)
        assert d.read("a").tolist() == [4, 1, 4, 3]
        with d.activate():
            d.max_assign("a", 2)
        assert d.read("a").tolist() == [4, 2, 4, 3]

    def test_min_assign_respects_where(self, rt):
        d = rt.domain("D", (4,), {"a": int})
        d.load("a", np.array([5, 5, 5, 5]))
        with d.activate():
            with d.where(d.coord(0) < 2):
                d.min_assign("a", 1)
        assert d.read("a").tolist() == [1, 1, 5, 5]
