"""Pvar operator tests."""

import numpy as np
import pytest

from repro.cstar import CStarRuntime
from repro.lang.errors import UCRuntimeError
from repro.machine import Machine


@pytest.fixture
def rt():
    return CStarRuntime(Machine(seed=7))


@pytest.fixture
def dom(rt):
    d = rt.domain("D", (4,), {"x": int, "y": int})
    d.load("x", np.array([1, 2, 3, 4]))
    d.load("y", np.array([10, 20, 30, 40]))
    return d


class TestArithmetic:
    def test_add_sub_mul(self, dom):
        assert (dom["x"] + dom["y"]).to_array().tolist() == [11, 22, 33, 44]
        assert (dom["y"] - dom["x"]).to_array().tolist() == [9, 18, 27, 36]
        assert (dom["x"] * 2).to_array().tolist() == [2, 4, 6, 8]

    def test_reflected_ops(self, dom):
        assert (100 - dom["x"]).to_array().tolist() == [99, 98, 97, 96]
        assert (3 + dom["x"]).to_array().tolist() == [4, 5, 6, 7]

    def test_mod_floordiv_neg_abs(self, dom):
        assert (dom["y"] % 3).to_array().tolist() == [1, 2, 0, 1]
        assert (dom["y"] // 3).to_array().tolist() == [3, 6, 10, 13]
        assert (-dom["x"]).to_array().tolist() == [-1, -2, -3, -4]
        assert abs(-dom["x"]).to_array().tolist() == [1, 2, 3, 4]

    def test_minimum_maximum(self, dom):
        assert dom["x"].minimum(2).to_array().tolist() == [1, 2, 2, 2]
        assert dom["x"].maximum(2).to_array().tolist() == [2, 2, 3, 4]

    def test_comparisons(self, dom):
        assert (dom["x"] > 2).to_array().tolist() == [False, False, True, True]
        assert (dom["x"] == 3).to_array().tolist() == [False, False, True, False]
        assert (dom["x"] <= 2).to_array().tolist() == [True, True, False, False]

    def test_boolean_combination(self, dom):
        both = (dom["x"] > 1) & (dom["x"] < 4)
        assert both.to_array().tolist() == [False, True, True, False]
        either = (dom["x"] == 1) | (dom["x"] == 4)
        assert either.to_array().tolist() == [True, False, False, True]
        assert (~(dom["x"] > 2)).to_array().tolist() == [True, True, False, False]

    def test_cross_domain_rejected(self, rt, dom):
        other = rt.domain("E", (4,), {"z": int})
        with pytest.raises(UCRuntimeError):
            dom["x"] + other["z"]

    def test_ops_charge_alu(self, rt, dom):
        before = rt.machine.clock.count("alu")
        _ = dom["x"] + dom["y"]
        assert rt.machine.clock.count("alu") == before + 1


class TestAt:
    def test_gather_by_pvar(self, rt, dom):
        rev = 3 - dom.coord(0)
        got = dom["x"].at(rev)
        assert got.to_array().tolist() == [4, 3, 2, 1]

    def test_gather_scalar_subscript(self, rt):
        d = rt.domain("M", (2, 3), {"v": int})
        d.load("v", np.arange(6).reshape(2, 3))
        row = d["v"].at(1, d.coord(1))
        assert row.to_array()[0].tolist() == [3, 4, 5]

    def test_wrong_subscript_count(self, dom):
        with pytest.raises(UCRuntimeError):
            dom["x"].at(1, 2)

    def test_out_of_range(self, dom):
        with pytest.raises(UCRuntimeError):
            dom["x"].at(7)

    def test_remote_at_charges_router(self, rt, dom):
        before = rt.machine.clock.count("router_get")
        dom["x"].at(3 - dom.coord(0))  # mirrored: router class
        assert rt.machine.clock.count("router_get") == before + 1

    def test_local_at_charges_alu_only(self, rt, dom):
        s0 = rt.machine.clock.snapshot()
        dom["x"].at(dom.coord(0))
        d = rt.machine.clock.snapshot() - s0
        assert d.counts["router_get"] == 0
