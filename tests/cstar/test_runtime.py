"""C* runtime (reductions, global-or, inter-domain comms) tests."""

import numpy as np
import pytest

from repro.cstar import CStarRuntime
from repro.machine import Machine


@pytest.fixture
def rt():
    return CStarRuntime(Machine(seed=7))


class TestHostReductions:
    def test_reduce_ops(self, rt):
        d = rt.domain("D", (5,), {"a": int})
        d.load("a", np.array([3, 1, 4, 1, 5]))
        with d.activate():
            assert rt.reduce_to_host(d["a"], "add") == 14
            assert rt.reduce_to_host(d["a"], "min") == 1
            assert rt.reduce_to_host(d["a"], "max") == 5
            assert rt.reduce_to_host(d["a"] > 0, "logand") is True
            assert rt.reduce_to_host(d["a"] > 4, "logor") is True

    def test_reduce_respects_context(self, rt):
        d = rt.domain("D", (5,), {"a": int})
        d.load("a", np.array([3, 1, 4, 1, 5]))
        with d.activate():
            with d.where(d.coord(0) < 2):
                assert rt.reduce_to_host(d["a"], "add") == 4

    def test_empty_reduce(self, rt):
        d = rt.domain("D", (5,), {"a": int})
        with d.activate():
            with d.where(d.coord(0) > 99):
                assert rt.reduce_to_host(d["a"], "add") == 0

    def test_global_or(self, rt):
        d = rt.domain("D", (4,), {"flag": int})
        with d.activate():
            assert not rt.global_or(d["flag"])
            d["flag"] = 1
            assert rt.global_or(d["flag"])

    def test_host_loop_charges_latency(self, rt):
        before = rt.machine.clock.count("host_cm_latency")
        for _ in rt.host_loop(range(5)):
            pass
        assert rt.machine.clock.count("host_cm_latency") == before + 5


class TestInterDomain:
    def test_get_from_gathers_across_domains(self, rt):
        src = rt.domain("S", (3, 3), {"v": int})
        src.load("v", np.arange(9).reshape(3, 3))
        dst = rt.domain("T", (3, 3, 3), {"w": int})
        with dst.activate() as x:
            got = rt.get_from(dst, src, "v", x.coord(0), x.coord(2))
        assert got.to_array()[1, 0, 2] == src.read("v")[1, 2]

    def test_send_to_with_min_combining(self, rt):
        src = rt.domain("S", (2, 2, 2), {"v": int})
        vals = np.array([[[5, 9], [2, 7]], [[8, 1], [6, 3]]])
        src.load("v", vals)
        dst = rt.domain("T", (2, 2), {"best": int})
        dst.load("best", np.full((2, 2), 100))
        with src.activate() as x:
            rt.send_to(x["v"], dst, "best", x.coord(0), x.coord(1), combine="min")
        assert dst.read("best").tolist() == vals.min(axis=2).tolist()

    def test_send_to_add_combining(self, rt):
        src = rt.domain("S", (4,), {"v": int})
        src.load("v", np.array([1, 2, 3, 4]))
        dst = rt.domain("T", (2,), {"s": int})
        addr = src.coord(0) % 2
        with src.activate() as x:
            rt.send_to(x["v"], dst, "s", addr, combine="add")
        assert dst.read("s").tolist() == [4, 6]

    def test_send_respects_context(self, rt):
        src = rt.domain("S", (4,), {"v": int})
        src.load("v", np.array([1, 2, 3, 4]))
        dst = rt.domain("T", (4,), {"s": int})
        with src.activate() as x:
            with src.where(x.coord(0) < 2):
                rt.send_to(x["v"], dst, "s", x.coord(0), combine="overwrite")
        assert dst.read("s").tolist() == [1, 2, 0, 0]


class TestAppendixPrograms:
    def test_fig9_and_fig10_agree_with_reference(self):
        from repro.algorithms import floyd_warshall, random_distance_matrix
        from repro.cstar.programs import apsp_n2, apsp_n3

        d = random_distance_matrix(10, seed=11)
        ref = floyd_warshall(d)
        assert np.array_equal(apsp_n2(d).distances, ref)
        assert np.array_equal(apsp_n3(d).distances, ref)

    def test_fig10_paper_iteration_count_also_works(self):
        from repro.algorithms import floyd_warshall, random_distance_matrix
        from repro.cstar.programs import apsp_n3

        d = random_distance_matrix(6, seed=12)
        res = apsp_n3(d, iterations=6)  # the listing's conservative N sweeps
        assert np.array_equal(res.distances, floyd_warshall(d))

    def test_programs_report_elapsed_time(self):
        from repro.algorithms import random_distance_matrix
        from repro.cstar.programs import apsp_n2

        res = apsp_n2(random_distance_matrix(8, seed=1))
        assert res.elapsed_us > 0
