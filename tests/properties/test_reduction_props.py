"""Property tests: UC reductions agree with numpy on arbitrary data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from tests.conftest import run_uc

small_ints = st.integers(min_value=-50, max_value=50)
vec = arrays(np.int64, st.integers(min_value=1, max_value=24), elements=small_ints)


def _run_reduction(a, red_expr):
    n = len(a)
    src = (
        f"index_set I:i = {{0..{n-1}}};\nint a[{n}], out_;\n"
        f"main {{ out_ = {red_expr}; }}"
    )
    return run_uc(src, {"a": a})["out_"]


@settings(max_examples=40, deadline=None)
@given(vec)
def test_sum_matches_numpy(a):
    assert _run_reduction(a, "$+(I; a[i])") == a.sum()


@settings(max_examples=40, deadline=None)
@given(vec)
def test_min_max_match_numpy(a):
    assert _run_reduction(a, "$<(I; a[i])") == a.min()
    assert _run_reduction(a, "$>(I; a[i])") == a.max()


@settings(max_examples=40, deadline=None)
@given(vec, small_ints)
def test_predicated_sum_matches_mask(a, threshold):
    got = _run_reduction(a, f"$+(I st (a[i] > {threshold}) a[i])")
    assert got == a[a > threshold].sum()


@settings(max_examples=40, deadline=None)
@given(vec)
def test_abs_sum_with_others(a):
    got = _run_reduction(a, "$+(I st (a[i] > 0) a[i] others -a[i])")
    assert got == np.abs(a).sum()


@settings(max_examples=40, deadline=None)
@given(vec)
def test_logical_reductions_match(a):
    assert _run_reduction(a, "$||(I; a[i] != 0)") == int(np.any(a != 0))
    assert _run_reduction(a, "$&&(I; a[i] != 0)") == int(np.all(a != 0))
    assert _run_reduction(a, "$^(I; a[i] != 0)") == int(np.count_nonzero(a) % 2)


@settings(max_examples=30, deadline=None)
@given(vec)
def test_arbitrary_returns_an_enabled_operand(a):
    got = _run_reduction(a, "$,(I; a[i])")
    assert got in set(a.tolist())


@settings(max_examples=30, deadline=None)
@given(arrays(np.int64, st.tuples(st.integers(2, 8), st.integers(2, 8)), elements=small_ints))
def test_two_set_reduction_matches_full_sum(m):
    r, c = m.shape
    src = (
        f"index_set I:i = {{0..{r-1}}}, J:j = {{0..{c-1}}};\n"
        f"int m[{r}][{c}], out_;\n"
        "main { out_ = $+(I, J; m[i][j]); }"
    )
    assert run_uc(src, {"m": m})["out_"] == m.sum()
