"""Property tests over whole UC programs: sorting, prefix sums, APSP."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms import floyd_warshall
from tests.conftest import run_uc


@settings(max_examples=25, deadline=None)
@given(st.permutations(list(range(12))))
def test_ranksort_sorts_any_permutation(perm):
    src = (
        "index_set I:i = {0..11}, J:j = I;\nint a[12];\n"
        "main { par (I) { int rank; rank = $+(J st (a[j] < a[i]) 1); "
        "a[rank] = a[i]; } }"
    )
    r = run_uc(src, {"a": np.array(perm)})
    assert r["a"].tolist() == sorted(perm)


@settings(max_examples=15, deadline=None)
@given(st.permutations(list(range(10))), st.integers(0, 2**31 - 1))
def test_oneof_odd_even_sorts_any_permutation_any_schedule(perm, seed):
    src = (
        "int N = 10;\nindex_set I:i = {0..N-2};\nint x[10];\n"
        "main { *oneof (I)\n"
        "  st (i % 2 == 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);\n"
        "  st (i % 2 != 0 && x[i] > x[i+1]) swap(x[i], x[i+1]); }"
    )
    r = run_uc(src, {"x": np.array(perm)}, seed=seed)
    assert r["x"].tolist() == sorted(perm)


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        np.int64,
        st.integers(min_value=2, max_value=32),
        elements=st.integers(-100, 100),
    )
)
def test_star_par_prefix_sums_equal_cumsum(a):
    n = len(a)
    src = (
        f"int N = {n};\nindex_set I:i = {{0..N-1}};\nint a[{n}], cnt[{n}];\n"
        "int power2(int x) { return 1 << x; }\n"
        "main { par (I) cnt[i] = 0;\n"
        "*par (I) st (i >= power2(cnt[i])) {\n"
        "  a[i] = a[i] + a[i - power2(cnt[i])];\n"
        "  cnt[i] = cnt[i] + 1; } }"
    )
    r = run_uc(src, {"a": a})
    assert np.array_equal(r["a"], np.cumsum(a))


@settings(max_examples=15, deadline=None)
@given(
    arrays(
        np.int64,
        st.tuples(st.integers(2, 9), st.integers(2, 9)).filter(lambda t: t[0] == t[1]),
        elements=st.integers(1, 50),
    )
)
def test_apsp_n2_matches_floyd_warshall(d):
    np.fill_diagonal(d, 0)
    n = d.shape[0]
    src = (
        f"int N = {n};\nindex_set I:i = {{0..N-1}}, J:j = I, K:k = I;\n"
        f"int d[{n}][{n}];\n"
        "main { seq (K) par (I, J) st (d[i][k] + d[k][j] < d[i][j]) "
        "d[i][j] = d[i][k] + d[k][j]; }"
    )
    r = run_uc(src, {"d": d})
    assert np.array_equal(r["d"], floyd_warshall(d))


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=10))
def test_solve_strategies_agree_on_wavefront(n):
    src = (
        f"int N = {n};\nindex_set I:i = {{0..N-1}}, J:j = I;\nint a[{n}][{n}];\n"
        "main { solve (I, J) a[i][j] = (i == 0 || j == 0) ? 1 "
        ": a[i-1][j] + a[i-1][j-1] + a[i][j-1]; }"
    )
    s = run_uc(src, solve_strategy="scheduled")["a"]
    g = run_uc(src, solve_strategy="guarded")["a"]
    assert np.array_equal(s, g)
