"""THE paper property: data mappings never change program results (§4).

"As these modifications do not affect program correctness ... a number of
alternative mappings may be tested quickly."  We generate random inputs
and random shift amounts, run the same source with and without its map
section, and require bit-identical results (only the clock may differ).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.interp.program import UCProgram

small_ints = st.integers(min_value=-30, max_value=30)


def run_both(src_template, map_section, inputs, defines=None):
    unmapped = UCProgram(
        src_template.replace("MAYBE_MAP", ""), defines=defines
    ).run(dict(inputs))
    mapped = UCProgram(
        src_template.replace("MAYBE_MAP", map_section), defines=defines
    ).run(dict(inputs))
    return unmapped, mapped


def assert_same_results(unmapped, mapped):
    for name in unmapped.keys():
        assert np.array_equal(np.asarray(unmapped[name]), np.asarray(mapped[name]))


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.int64, 16, elements=small_ints),
    arrays(np.int64, 16, elements=small_ints),
    st.integers(min_value=1, max_value=4),
)
def test_permute_invariance_any_shift(a, b, shift):
    src = (
        f"index_set I:i = {{0..{15 - shift}}};\nint a[16], b[16];\n"
        "MAYBE_MAP\n"
        f"main {{ par (I) a[i] = a[i] + b[i + {shift}]; }}"
    )
    map_section = f"map (I) {{ permute (I) b[i+{shift}] :- a[i]; }}"
    unmapped, mapped = run_both(src, map_section, {"a": a, "b": b})
    assert_same_results(unmapped, mapped)


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.int64, (6, 6), elements=small_ints),
    arrays(np.int64, (6, 6), elements=small_ints),
)
def test_transpose_permute_invariance(a, b):
    src = (
        "index_set I:i = {0..5}, J:j = I;\nint a[6][6], b[6][6];\n"
        "MAYBE_MAP\n"
        "main { par (I, J) a[i][j] = a[i][j] + b[j][i]; }"
    )
    map_section = "map (I, J) { permute (I, J) b[j][i] :- a[i][j]; }"
    unmapped, mapped = run_both(src, map_section, {"a": a, "b": b})
    assert_same_results(unmapped, mapped)
    # and the mapped run must actually avoid the router
    assert mapped.counts.get("router_get", 0) == 0
    assert unmapped.counts.get("router_get", 0) > 0


@settings(max_examples=20, deadline=None)
@given(arrays(np.int64, 16, elements=small_ints))
def test_fold_invariance(a):
    src = (
        "index_set I:i = {0..7};\nint a[16], s[8];\n"
        "MAYBE_MAP\n"
        "main { par (I) s[i] = a[i] + a[i + 8]; }"
    )
    map_section = "map (I) { fold (I) a[i + 8] :- a[i]; }"
    unmapped, mapped = run_both(src, map_section, {"a": a})
    assert_same_results(unmapped, mapped)


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.int64, 6, elements=small_ints),
    arrays(np.int64, (6, 6), elements=small_ints),
)
def test_copy_invariance(v, m):
    src = (
        "index_set I:i = {0..5}, K:k = I;\nint v[6], m[6][6];\n"
        "MAYBE_MAP\n"
        "main { par (I, K) m[i][k] = m[i][k] + v[i]; }"
    )
    map_section = "map (I, K) { copy (I, K) v[i][k] :- v[i]; }"
    unmapped, mapped = run_both(src, map_section, {"v": v, "m": m})
    assert_same_results(unmapped, mapped)
    assert mapped.elapsed_us <= unmapped.elapsed_us
