"""UC501 order-independence property (the proof the sanitizer spot-checks):
permuting the operand order of every proven commutative+associative
builtin reduction leaves the result bit-identical in both engines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from tests.conftest import run_uc

small_ints = st.integers(min_value=-50, max_value=50)
vec = arrays(
    np.int64, st.integers(min_value=2, max_value=20), elements=small_ints
)

#: every builtin op the determinism pass classifies UC501 on int operands
UC501_OPS = ("$+", "$*", "$<", "$>", "$&&", "$||", "$^")


def _reduce(op, a, *, plans):
    n = len(a)
    src = (
        f"index_set I:i = {{0..{n-1}}};\nint a[{n}], out_;\n"
        f"main {{ out_ = {op}(I; a[i]); }}"
    )
    return run_uc(src, {"a": a.copy()}, plans=plans)["out_"]


@settings(max_examples=10, deadline=None)
@given(vec, st.integers(min_value=0, max_value=2**31))
def test_uc501_builtins_are_operand_order_independent(a, perm_seed):
    perm = np.random.default_rng(perm_seed).permutation(len(a))
    for op in UC501_OPS:
        for plans in (True, False):
            original = _reduce(op, a, plans=plans)
            permuted = _reduce(op, a[perm], plans=plans)
            assert original == permuted, (op, plans)
            assert type(original) is type(permuted), (op, plans)


@settings(max_examples=10, deadline=None)
@given(vec)
def test_engines_agree_on_every_uc501_builtin(a):
    for op in UC501_OPS:
        assert _reduce(op, a, plans=True) == _reduce(op, a, plans=False), op
