"""Property tests on the machine collectives: scans/reduces match numpy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.machine import Machine, scan

small_ints = st.integers(min_value=-100, max_value=100)
vec = arrays(np.int64, st.integers(min_value=1, max_value=64), elements=small_ints)
mask_for = lambda n: arrays(np.bool_, n)  # noqa: E731


@settings(max_examples=40, deadline=None)
@given(vec)
def test_reduce_add_matches_numpy(values):
    m = Machine()
    f = m.field(m.vpset((len(values),)))
    f.data[:] = values
    assert scan.reduce(f, "add") == values.sum()


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_masked_reduce_matches_numpy(data):
    values = data.draw(vec)
    mask = data.draw(
        arrays(np.bool_, len(values)).filter(lambda m: True)
    )
    m = Machine()
    vps = m.vpset((len(values),))
    f = m.field(vps)
    f.data[:] = values
    with vps.where(mask):
        got = scan.reduce(f, "add")
    assert got == values[mask].sum()


@settings(max_examples=40, deadline=None)
@given(vec)
def test_inclusive_scan_matches_cumsum(values):
    m = Machine()
    vps = m.vpset((len(values),))
    f = m.field(vps)
    f.data[:] = values
    out = m.field(vps)
    scan.scan(out, f, "add")
    assert np.array_equal(out.read(), np.cumsum(values))


@settings(max_examples=40, deadline=None)
@given(vec)
def test_exclusive_plus_value_equals_inclusive(values):
    m = Machine()
    vps = m.vpset((len(values),))
    f = m.field(vps)
    f.data[:] = values
    inc = m.field(vps)
    exc = m.field(vps)
    scan.scan(inc, f, "add")
    scan.scan(exc, f, "add", inclusive=False)
    assert np.array_equal(exc.read() + values, inc.read())


@settings(max_examples=40, deadline=None)
@given(vec)
def test_max_scan_is_monotone_and_dominates(values):
    m = Machine()
    vps = m.vpset((len(values),))
    f = m.field(vps)
    f.data[:] = values
    out = m.field(vps)
    scan.scan(out, f, "max")
    got = out.read()
    assert np.array_equal(got, np.maximum.accumulate(values))


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_router_send_add_matches_bincount(data):
    n = data.draw(st.integers(min_value=1, max_value=64))
    values = data.draw(arrays(np.int64, n, elements=st.integers(0, 20)))
    addr = data.draw(arrays(np.int64, n, elements=st.integers(0, n - 1)))
    from repro.machine import router

    m = Machine()
    vps = m.vpset((n,))
    src = m.field(vps)
    src.data[:] = values
    dst = m.field(vps)
    router.send(dst, src, addr, combiner="add")
    expect = np.bincount(addr, weights=values, minlength=n).astype(np.int64)
    assert np.array_equal(dst.read(), expect)
