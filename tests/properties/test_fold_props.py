"""Property test: peephole folding never changes program results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.cstar_gen import expr_to_text
from repro.compiler.peephole import fold_expr
from repro.lang import parse_expression
from tests.conftest import run_uc

# random expression strings over integer literals and the variables x, i
_leaf = st.sampled_from(["1", "2", "3", "7", "x", "i", "0"])


def _combine(children):
    binops = st.tuples(
        st.sampled_from(["+", "-", "*", "%", "<", "==", "&&", "||", "<<"]),
        children,
        children,
    ).map(lambda t: f"({t[1]} {t[0]} {t[2]})")
    ternary = st.tuples(children, children, children).map(
        lambda t: f"({t[0]} ? {t[1]} : {t[2]})"
    )
    unary = children.map(lambda c: f"(-{c})")
    return st.one_of(binops, ternary, unary)


expr_strings = st.recursive(_leaf, _combine, max_leaves=12)


@settings(max_examples=60, deadline=None)
@given(expr_strings, st.integers(-20, 20))
def test_folding_preserves_parallel_evaluation(expr_text, xv):
    # guard: % by a subexpression that evaluates to 0 must fail the same
    # way on both sides, so just run both and compare outcomes
    src = (
        "index_set I:i = {0..5};\nint a[6], x;\n"
        f"main {{ par (I) a[i] = {expr_text}; }}"
    )
    folded_text = expr_to_text(fold_expr(parse_expression(expr_text)))
    folded_src = (
        "index_set I:i = {0..5};\nint a[6], x;\n"
        f"main {{ par (I) a[i] = {folded_text}; }}"
    )
    try:
        original = run_uc(src, {"x": xv})["a"]
        ok = True
    except Exception as exc:
        original, ok = type(exc), False
    try:
        folded = run_uc(folded_src, {"x": xv})["a"]
        fok = True
    except Exception as exc:
        folded, fok = type(exc), False

    assert ok == fok
    if ok:
        assert np.array_equal(original, folded), (
            f"{expr_text!r} -> {folded_text!r} changed results"
        )


@settings(max_examples=60, deadline=None)
@given(expr_strings)
def test_folding_is_idempotent(expr_text):
    once = fold_expr(parse_expression(expr_text))
    twice = fold_expr(once)
    assert expr_to_text(once) == expr_to_text(twice)
