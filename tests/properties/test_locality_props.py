"""Property tests for the locality classifier.

The classifier decides what the clock charges; these properties pin its
behaviour for arbitrary shifts, offsets and grid sizes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.layout import AxisFold, Layout
from repro.mapping.locality import classify_reference


def _grid(n):
    return (n,), ("i",), list(np.indices((n,), dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 64), st.integers(-8, 8))
def test_shift_distance_is_absolute_offset(n, c):
    shape, elems, pos = _grid(n)
    layout = Layout("a", (n + 16,), offsets=(0,))
    rc = classify_reference([pos[0] + (c + 8)], shape, elems, layout)
    # subscripts shifted by c+8 >= 0 keep everything in range
    assert rc.kind in ("news", "local")
    assert rc.news_distance == abs(c + 8)
    if c + 8 == 0:
        assert rc.kind == "local"


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 64), st.integers(-6, 6))
def test_matching_permute_offset_always_localises(n, c):
    shape, elems, pos = _grid(n)
    layout = Layout("b", (n + 12,), offsets=(-(c + 6),))
    rc = classify_reference([pos[0] + (c + 6)], shape, elems, layout)
    assert rc.kind == "local"


@settings(max_examples=40, deadline=None)
@given(st.integers(4, 64))
def test_mirror_needs_matching_fold(n):
    shape, elems, pos = _grid(n)
    plain = Layout("a", (n,))
    folded = plain.with_fold(AxisFold(0, "mirror", n - 1))
    mirrored = [(n - 1) - pos[0]]
    assert classify_reference(mirrored, shape, elems, plain).kind == "router"
    assert classify_reference(mirrored, shape, elems, folded).kind == "local"


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 32), st.integers(0, 31))
def test_uniform_subscript_is_never_local(n, k):
    shape, elems, pos = _grid(n)
    layout = Layout("a", (32,))
    rc = classify_reference([min(k, 31)], shape, elems, layout)
    assert rc.kind == "broadcast"


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_random_permutation_subscripts_route(data):
    n = data.draw(st.integers(4, 32))
    perm = data.draw(st.permutations(list(range(n))))
    shape, elems, pos = _grid(n)
    sub = np.asarray(perm)
    rc = classify_reference([sub], shape, elems, Layout("a", (n,)))
    # identity and constant-shift permutations are the only cheap ones
    diffs = sub - pos[0]
    if len(set(diffs.tolist())) == 1:
        assert rc.kind in ("local", "news")
    else:
        sums = sub + pos[0]
        if len(set(sums.tolist())) == 1:
            assert rc.kind == "router"  # mirror without a fold
        else:
            assert rc.kind == "router"


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 16), st.integers(2, 16))
def test_2d_identity_always_local(r, c):
    shape = (r, c)
    pos = list(np.indices(shape, dtype=np.int64))
    rc = classify_reference(
        [pos[0], pos[1]], shape, ("i", "j"), Layout("d", (r, c))
    )
    assert rc.kind == "local"
