"""Property tests for sharded execution (``UCProgram(shards=K)``).

Sharding is pure bookkeeping: the K resident shard machines observe the
*same* instruction stream the single machine executes, so for any
program, any engine (tree oracle / compiled plans), any frontier or
fusion mode, and any shard count, the variable values AND the Clock cost
fingerprint must be bit-identical to the unsharded run.  These
properties drive the full engine x frontier x fusion x shards product
over the same randomized convergent ``*solve`` bodies the frontier
suite uses.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.program import UCProgram

from tests.properties.test_frontier_props import _inputs, _solve_programs

_SHARDS = (1, 2, 4)


def _run(src, inputs, *, plans, frontier, fusion, shards):
    prog = UCProgram(
        src, plans=plans, frontier=frontier, fusion=fusion, shards=shards
    )
    return prog.run({k: val.copy() for k, val in inputs.items()})


@settings(max_examples=10, deadline=None)
@given(_solve_programs())
def test_shards_invisible_across_engine_frontier_fusion_product(case):
    src, seed, template = case
    inputs = _inputs(seed, template)
    for plans in (True, False):
        for frontier in (True, False):
            for fusion in (True, False):
                if not plans and fusion:
                    continue  # fusion rides the plan engine only
                base = None
                for k in _SHARDS:
                    res = _run(
                        src,
                        inputs,
                        plans=plans,
                        frontier=frontier,
                        fusion=fusion,
                        shards=k,
                    )
                    if base is None:
                        base = res
                        assert res.shards == {}, src
                        continue
                    assert np.array_equal(res["v"], base["v"]), (
                        f"values diverged for plans={plans} "
                        f"frontier={frontier} fusion={fusion} K={k}\n{src}"
                    )
                    assert res.fingerprint == base.fingerprint, (
                        f"fingerprint diverged for plans={plans} "
                        f"frontier={frontier} fusion={fusion} K={k}\n{src}"
                    )
                    assert res.shards["n_shards"] == k, src


@settings(max_examples=8, deadline=None)
@given(_solve_programs(), st.sampled_from((2, 4)))
def test_shard_ledger_is_consistent(case, k):
    """The per-pair element ledger and the per-shard clocks agree with
    the global intershard counter (cycles = total slab elements)."""
    src, seed, template = case
    inputs = _inputs(seed, template)
    res = _run(src, inputs, plans=True, frontier=False, fusion=True, shards=k)
    stats = res.shards
    assert stats["n_shards"] == k
    pair_total = sum(p["elems"] for p in stats["pairs"].values())
    assert stats["intershard_cycles"] == pair_total
    assert stats["intershard_bytes"] == sum(
        p["bytes"] for p in stats["pairs"].values()
    )
    per_shard = sum(s["intershard_cycles"] for s in stats["per_shard"])
    assert per_shard == pair_total
    for key in stats["pairs"]:
        a, b = key.split("->")
        assert a != b, "a shard never exchanges a slab with itself"
