"""Property tests for the frontier (active-set) sweep engine.

The frontier engine replaces full-domain sweeps of ``solve``/``*solve``/
``*par`` with change-driven active sets.  Its contract is strict: for any
program, results are bit-identical to full sweeps under both execution
engines, and the simulated Clock is never higher.  These properties
exercise that contract on randomized affine solve bodies — shifted
neighbour reads, predicates, ternary guards and min-plus reductions —
which is exactly the fragment the active-set analysis claims to handle
(anything else must fall back to full sweeps, which is also correct by
construction).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.program import UCProgram

#: index values run 2..N+1 while arrays extend 0..N+3, so shifts of up to
#: ±2 stay in bounds without predicates (UC subscripts are *values*, not
#: grid coordinates)
_N = 7
_EXT = _N + 4

_SHIFT = st.integers(-2, 2)
_WEIGHT = st.integers(0, 9)


def _sub(elem, c):
    if c == 0:
        return elem
    return f"{elem}{'+' if c > 0 else '-'}{abs(c)}"


@st.composite
def _solve_programs(draw):
    """A convergent ``*solve`` body over affine references.

    Every template is monotone non-increasing in ``v`` (min with the
    current value, or a min-plus reduction), so the fixed point exists
    and the sweep limit is never hit.
    """
    template = draw(st.integers(0, 3))
    c1, c2 = draw(_SHIFT), draw(_SHIFT)
    w = draw(_WEIGHT)
    swap = draw(st.booleans())
    i1, j1 = ("j", "i") if swap else ("i", "j")
    if template == 0:
        # shifted neighbour relaxation (news/router tiers)
        body = (
            f"v[i][j] = min(v[i][j], "
            f"v[{_sub(i1, c1)}][{_sub(j1, c2)}] + a[i][j] + {w});"
        )
    elif template == 1:
        # two-way neighbour min (exercises nested calls + CSE)
        body = (
            f"v[i][j] = min(v[i][j], "
            f"min(v[{_sub('i', c1)}][j], v[i][{_sub('j', c2)}]) + {w});"
        )
    elif template == 2:
        # min-plus reduction (the delta-reduction path); k spans the
        # same values as i/j so v's diagonal keeps the current value in
        # the running min once seeded with zeros
        body = "v[i][j] = $<(K; v[i][k] + v[k][j]);"
    else:
        # ternary-guarded relaxation (mask refinement inside the arm)
        body = (
            f"v[i][j] = (a[i][j] > 4) ? v[i][j] "
            f": min(v[i][j], v[{_sub(i1, c1)}][{_sub(j1, c2)}] + {w});"
        )
    src = (
        f"index_set I:i = {{2..{_N + 1}}}, J:j = I, K:k = I;\n"
        f"int v[{_EXT}][{_EXT}];\n"
        f"int a[{_EXT}][{_EXT}];\n"
        f"main {{\n    *solve (I, J)\n        {body}\n}}"
    )
    seed = draw(st.integers(0, 2**31 - 1))
    return src, seed, template


def _inputs(seed, template):
    rng = np.random.default_rng(seed)
    v = rng.integers(0, 40, size=(_EXT, _EXT)).astype(np.int64)
    if template == 2:
        # min-plus needs a zero diagonal inside the index range so the
        # reduction can only improve on the current value
        np.fill_diagonal(v, 0)
    a = rng.integers(0, 9, size=(_EXT, _EXT)).astype(np.int64)
    return {"v": v, "a": a}


def _run(src, inputs, *, plans, frontier, fusion=True):
    prog = UCProgram(src, plans=plans, frontier=frontier, fusion=fusion)
    return prog.run({k: val.copy() for k, val in inputs.items()})


@settings(max_examples=40, deadline=None)
@given(_solve_programs())
def test_frontier_matches_full_sweeps_both_engines(case):
    src, seed, template = case
    inputs = _inputs(seed, template)
    runs = {
        (plans, frontier): _run(src, inputs, plans=plans, frontier=frontier)
        for plans in (True, False)
        for frontier in (True, False)
    }
    reference = runs[(True, False)]

    # 1. every engine/frontier combination computes the same values
    for key, res in runs.items():
        assert np.array_equal(res["v"], reference["v"]), (
            f"values diverged for plans={key[0]} frontier={key[1]}\n{src}"
        )

    # 2. the two full-sweep engines agree on the exact Clock fingerprint
    assert runs[(True, False)].fingerprint == runs[(False, False)].fingerprint, src

    # 3. the two frontier engines agree on the exact Clock fingerprint
    assert runs[(True, True)].fingerprint == runs[(False, True)].fingerprint, src

    # 4. active-set sweeps never cost more simulated time than full sweeps
    assert runs[(True, True)].elapsed_us <= reference.elapsed_us, src


@settings(max_examples=25, deadline=None)
@given(_solve_programs())
def test_fusion_matches_plan_engine_on_both_frontier_modes(case):
    """Kernel fusion is invisible: same values, same Clock fingerprint,
    whatever the frontier mode — and the tree oracle agrees on values."""
    src, seed, template = case
    inputs = _inputs(seed, template)
    oracle = _run(src, inputs, plans=False, frontier=False)
    for frontier in (True, False):
        fused = _run(src, inputs, plans=True, frontier=frontier, fusion=True)
        plain = _run(src, inputs, plans=True, frontier=frontier, fusion=False)
        assert np.array_equal(fused["v"], plain["v"]), (
            f"values diverged under fusion (frontier={frontier})\n{src}"
        )
        assert np.array_equal(fused["v"], oracle["v"]), (
            f"fused values diverged from the tree oracle "
            f"(frontier={frontier})\n{src}"
        )
        assert fused.fingerprint == plain.fingerprint, (
            f"fusion changed the Clock fingerprint (frontier={frontier})"
            f"\n{src}"
        )
        assert not plain.fusion, "fusion=False must not fuse"


@settings(max_examples=15, deadline=None)
@given(_solve_programs(), st.integers(2, 4))
def test_batch_lanes_match_solo_runs(case, n_lanes):
    """Lane ``i`` of ``run_batch`` is bit-identical — values and Clock
    fingerprint — to solo run ``i``, whatever the engine, frontier and
    fusion mode.  Frontier programs exercise the lane-demotion path
    (lanes whose sessions elect compressed sweeps finish solo)."""
    src, seed, template = case
    lane_inputs = [_inputs(seed ^ k, template) for k in range(n_lanes)]
    for plans, frontier, fusion in (
        (True, True, True),
        (True, False, True),
        (True, True, False),
        (False, False, False),
    ):
        solo = [
            UCProgram(src, plans=plans, frontier=frontier, fusion=fusion).run(
                {k: v.copy() for k, v in inp.items()}
            )
            for inp in lane_inputs
        ]
        batch = UCProgram(
            src, plans=plans, frontier=frontier, fusion=fusion
        ).run_batch(
            [{k: v.copy() for k, v in inp.items()} for inp in lane_inputs]
        )
        for i, (one, lane) in enumerate(zip(solo, batch)):
            assert np.array_equal(one["v"], lane["v"]), (
                f"lane {i} values diverged (plans={plans} "
                f"frontier={frontier} fusion={fusion})\n{src}"
            )
            assert one.fingerprint == lane.fingerprint, (
                f"lane {i} fingerprint diverged (plans={plans} "
                f"frontier={frontier} fusion={fusion})\n{src}"
            )


@settings(max_examples=15, deadline=None)
@given(_solve_programs())
def test_frontier_disable_flag_restores_full_sweep_fingerprint(case):
    src, seed, template = case
    inputs = _inputs(seed, template)
    by_flag = _run(src, inputs, plans=True, frontier=False)
    by_kwarg = UCProgram(src, plans=True, frontier=False).run(inputs)
    assert by_flag.fingerprint == by_kwarg.fingerprint
    assert not by_flag.frontier.get("compressed_sweeps", 0)
