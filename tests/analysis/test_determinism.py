"""The UC5xx determinism envelopes: classification, the legality oracle,
the order-permuting sanitizer, and the ``--explain`` code table."""

import numpy as np
import pytest

from repro.analysis import explain, lint_program
from repro.analysis.determinism import ReductionVerdict, determinism_claims
from repro.analysis.sanitize import Sanitizer
from repro.cli import main
from repro.interp import eval_expr as E
from repro.interp.program import UCProgram
from repro.lang import ast
from repro.lang.errors import UCSanitizerError

from tests.conftest import run_uc

EXAMPLES = ("apsp.uc", "histogram.uc", "shifted.uc")
EXAMPLE_DEFINES = {"apsp.uc": {"N": 8}, "histogram.uc": {"N": 16}}


def _example(name):
    return open(f"examples/uc/{name}").read()


def _find_reduction(prog) -> ast.Reduction:
    for node in ast.walk(prog.info.program):
        if isinstance(node, ast.Reduction):
            return node
    raise AssertionError("no reduction in program")


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------


class TestClassification:
    def test_builtin_min_max_logical_are_uc501(self):
        for op in ("$<", "$>", "$&&", "$||", "$^"):
            src = (
                "index_set I:i = {0..7};\nint x[8]; int m;\n"
                f"main {{ m = {op}(I; x[i]); par (I) x[i] = 0; }}"
            )
            rep = lint_program(src)
            assert rep.has("UC501"), op
            assert not rep.has("UC502") and not rep.has("UC503"), op

    def test_int_add_with_interval_proof(self):
        src = (
            "index_set I:i = {0..15};\nint s;\n"
            "main { s = $+(I; i * 2); }"
        )
        rep = lint_program(src)
        d = rep.by_code("UC501")
        assert d and "no-overflow" in d[0].message

    def test_int_add_unbounded_falls_back_to_wraparound(self):
        src = (
            "index_set I:i = {0..7};\nint x[8]; int s;\n"
            "main { s = $+(I; x[i]); par (I) x[i] = 0; }"
        )
        rep = lint_program(src)
        d = rep.by_code("UC501")
        assert d and "wraparound" in d[0].message

    def test_float_add_is_uc502_with_fixit(self):
        src = (
            "index_set I:i = {0..7};\nfloat x[8]; float s;\n"
            "main { s = $+(I; x[i]); par (I) x[i] = 0.0; }"
        )
        rep = lint_program(src)
        d = rep.by_code("UC502")
        assert d and d[0].severity == "warning" and d[0].hint
        assert not rep.has("UC501")

    def test_impure_body_is_uc503(self):
        src = "index_set I:i = {0..7};\nint s;\nmain { s = $+(I; rand() % 4); }"
        rep = lint_program(src)
        d = rep.by_code("UC503")
        assert d and "rand" in d[0].message and d[0].hint

    def test_escaping_arbitrary_is_uc504(self):
        src = (
            "index_set I:i = {0..7};\nint x[8]; int a;\n"
            'main { a = $,(I; x[i]); printf("%d", a); par (I) x[i] = 0; }'
        )
        rep = lint_program(src)
        assert rep.by_code("UC504")

    def test_local_arbitrary_is_quiet(self):
        src = (
            "index_set I:i = {0..7};\nint x[8]; int a;\n"
            "main { a = $,(I; x[i]); par (I) x[i] = 0; }"
        )
        assert not lint_program(src).has("UC504")

    def test_uc505_cross_references_the_verdict(self):
        src = (
            "index_set I:i = {0..7};\nint x[8]; int s;\n"
            "main { s = $+(I; x[i]); par (I) x[i] = 0; }"
        )
        rep = lint_program(src)
        d = rep.by_code("UC505")
        assert d and d[0].severity == "info" and "UC501" in d[0].message

    def test_every_example_reduction_gets_a_verdict(self):
        for name in EXAMPLES:
            prog = UCProgram(_example(name), defines=EXAMPLE_DEFINES.get(name))
            claims = determinism_claims(Sanitizer(prog.info, prog.layouts).model)
            n_reductions = sum(
                1 for n in ast.walk(prog.info.program)
                if isinstance(n, ast.Reduction)
            )
            assert len(claims) == n_reductions, name

    def test_examples_are_uc5xx_clean_under_werror(self):
        for name in EXAMPLES:
            src = _example(name)
            defines = EXAMPLE_DEFINES.get(name)
            rep = lint_program(src, defines=defines, filename=name)
            assert rep.exit_code(werror=True) == 0, (name, rep.render_text())


# ---------------------------------------------------------------------------
# the legality oracle
# ---------------------------------------------------------------------------


class TestLegalityOracle:
    INT_SUM = (
        "index_set I:i = {0..31};\nint x[32]; int s;\n"
        "main { par (I) x[i] = i; s = $+(I; x[i]); }"
    )
    FLOAT_SUM = (
        "index_set I:i = {0..31};\nfloat x[32]; float s;\n"
        "main { par (I) x[i] = 1.0 / (i + 1); s = $+(I; x[i]); }"
    )

    def test_interpreter_oracle_matches_lint(self):
        prog = UCProgram(self.INT_SUM)
        interp = prog.prepare().interp
        node = _find_reduction(prog)
        assert interp.reduction_order_safe(node)
        v = interp.reduction_verdict(node)
        assert v.code == "UC501" and v.proven

        progf = UCProgram(self.FLOAT_SUM)
        interpf = progf.prepare().interp
        nodef = _find_reduction(progf)
        assert not interpf.reduction_order_safe(nodef)
        assert interpf.reduction_verdict(nodef).code == "UC502"

    def test_fused_reduce_steps_carry_the_verdict(self, monkeypatch):
        from repro.interp import fuse as fuse_mod

        seen = []
        orig = fuse_mod._Reduce.__init__

        def spy(self, *args, **kwargs):
            orig(self, *args, **kwargs)
            seen.append(self.order_safe)

        monkeypatch.setattr(fuse_mod._Reduce, "__init__", spy)
        src = (
            "int N = 10;\nindex_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
            "int dist[10][10];\n"
            "main { *solve (I, J) dist[i][j] = $<(K; dist[i][k] + dist[k][j]); }\n"
        )
        d = np.full((10, 10), 10**6, dtype=np.int64)
        np.fill_diagonal(d, 0)
        for a in range(9):
            d[a, a + 1] = d[a + 1, a] = 3
        UCProgram(src, fusion=True).run({"dist": d.copy()})
        assert seen and all(seen), "min reductions must compile order-safe"

    def test_batch_demotes_unproven_sites_bit_identically(self, monkeypatch):
        """Forging every verdict to unproven must not change one bit of
        any lane: the blocked reorder falls back to the grouping-
        preserving path."""
        from repro.interp.interpreter import Interpreter

        src = (
            "int N = 14;\nindex_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
            "int dist[14][14];\n"
            "main { *solve (I, J) dist[i][j] = $<(K; dist[i][k] + dist[k][j]); }\n"
        )
        # distinct source text for the forged build: the cross-run compile
        # store keys on the source hash and must not serve the unforged
        # fused programs to the patched interpreter
        src_forged = src + "\n"

        def lanes(n, w):
            d = np.full((14, 14), 10**6, dtype=np.int64)
            np.fill_diagonal(d, 0)
            for a in range(13):
                d[a, a + 1] = d[a + 1, a] = w
            return {"dist": d}

        inputs = [lanes(14, w) for w in (2, 5, 9)]
        honest = UCProgram(src, fusion=True).run_batch(
            [{k: v.copy() for k, v in inp.items()} for inp in inputs]
        )
        monkeypatch.setattr(
            Interpreter, "reduction_order_safe", lambda self, node: False
        )
        forged = UCProgram(src_forged, fusion=True).run_batch(
            [{k: v.copy() for k, v in inp.items()} for inp in inputs]
        )
        for a, b in zip(honest, forged):
            assert np.array_equal(a["dist"], b["dist"])
            assert a.fingerprint == b.fingerprint


# ---------------------------------------------------------------------------
# the order-permuting sanitizer
# ---------------------------------------------------------------------------


class TestOrderPermutation:
    def test_uc501_sites_are_confirmed(self):
        res = run_uc(
            "index_set I:i = {0..31};\nint x[32]; int s;\n"
            "main { par (I) x[i] = i * 3; s = $+(I; x[i]); }",
            sanitize=True,
        )
        s = res.sanitizer
        assert s["reduction_sites_claimed"] == 1
        assert s["reductions_checked"] == 1
        assert s["reductions_confirmed"] == 1
        assert s["order_sensitivity_observed"] == 0

    def test_uc502_order_sensitivity_is_a_confirming_observation(self):
        res = run_uc(
            "index_set I:i = {0..63};\nfloat x[64]; float s;\n"
            "main { par (I) x[i] = 1.0 / (i + 1); s = $+(I; x[i]); }",
            sanitize=True,
        )
        s = res.sanitizer
        assert s["reductions_checked"] == 1
        # a permuted float sum differing is the CLAIMED behaviour: no raise
        assert s["order_sensitivity_observed"] == 1
        assert s["reductions_confirmed"] == 0

    def test_forged_uc501_claim_is_a_hard_failure(self):
        """The acceptance check: forge a commutativity proof onto a
        float site whose permuted sum really differs -> UCSanitizerError."""
        prog = UCProgram(
            "index_set I:i = {0..3};\nfloat x[4]; float s;\n"
            "main { s = $+(I; x[i]); par (I) x[i] = 0.0; }"
        )
        node = _find_reduction(prog)
        san = Sanitizer(prog.info, prog.layouts)
        assert san.red_claims[id(node)].code == "UC502"
        san.red_claims[id(node)] = ReductionVerdict(
            code="UC501", order_safe=True, op="add", reason="forged"
        )
        # catastrophic cancellation: any order change moves the result
        vals = np.array([2.0**53, 1.0, -(2.0**53), 1.0])
        perm = np.random.default_rng(0x5C501).permutation(4)
        ordered = np.add.reduce(vals)
        permuted = np.add.reduce(vals[perm])
        assert ordered != permuted, "precondition: the seeded permutation moves the sum"
        arm_values = [vals]
        arm_masks = [np.ones(4, dtype=bool)]
        result = E._reduce_op("add", arm_values, arm_masks, (0,))
        with pytest.raises(UCSanitizerError, match="UC501"):
            san.check_reduction(node, arm_values, arm_masks, (0,), result)

    def test_send_reduce_path_is_permutation_checked(self):
        # the digit-count pattern on a machine small enough to trigger
        # the processor optimization (product grid would not fit)
        src = (
            "index_set I:i = {0..255}, J:j = {0..9};\n"
            "int samples[256]; int count[10];\n"
            "main {\n"
            "    par (I) samples[i] = rand() % 10;\n"
            "    par (J) count[j] = $+(I st (samples[i] == j) 1);\n"
            "}\n"
        )
        from repro.machine import Machine, small_config

        prog = UCProgram(src, sanitize=True)
        res = prog.run(machine=Machine(small_config(64), seed=7))
        assert res.sanitizer["reductions_checked"] >= 1
        assert res.sanitizer["order_sensitivity_observed"] == 0

    def test_examples_fingerprints_unchanged_and_confirmed(self):
        """Order permutation is observational: sanitized runs keep the
        tier-logged fingerprint and confirm every UC501 proof."""
        for name in ("histogram.uc",):
            src = _example(name)
            defines = EXAMPLE_DEFINES.get(name)
            plain = UCProgram(src, defines=defines, log_tiers=True).run()
            san = UCProgram(src, defines=defines, sanitize=True).run()
            assert san.fingerprint == plain.fingerprint, name
            assert san.sanitizer["reductions_checked"] > 0, name
            assert san.sanitizer["order_sensitivity_observed"] == 0, name


# ---------------------------------------------------------------------------
# repro lint --explain
# ---------------------------------------------------------------------------


class TestExplainCli:
    def test_explain_prints_entry_for_every_family(self, capsys):
        for code in ("UC001", "UC101", "UC201", "UC301", "UC401", "UC501"):
            assert main(["lint", "--explain", code]) == 0
            out = capsys.readouterr().out
            assert code in out and "severity:" in out and "fix-it:" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert main(["lint", "--explain", "uc502"]) == 0
        assert "UC502" in capsys.readouterr().out

    def test_explain_unknown_code_fails(self):
        with pytest.raises(SystemExit):
            main(["lint", "--explain", "UC999"])

    def test_explain_then_lint_files(self, capsys, tmp_path):
        f = tmp_path / "p.uc"
        f.write_text(
            "index_set I:i = {0..7};\nint x[8]; int s;\n"
            "main { s = $+(I; x[i]); par (I) x[i] = 0; }\n"
        )
        assert main(["lint", "--explain", "UC505", str(f)]) == 0
        out = capsys.readouterr().out
        assert "UC505" in out and "0 error(s)" in out

    def test_lint_without_files_or_explain_fails(self):
        with pytest.raises(SystemExit):
            main(["lint"])

    def test_explain_matches_api(self, capsys):
        main(["lint", "--explain", "UC503"])
        assert capsys.readouterr().out.strip() == explain("UC503").strip()


# ---------------------------------------------------------------------------
# identity elements & empty selections
# ---------------------------------------------------------------------------


class TestIdentityElements:
    def _empty(self, op):
        src = (
            "index_set I:i = {0..7};\nint x[8]; int r;\n"
            f"main {{ r = {op}(I st (0) x[i]); par (I) x[i] = 5; }}"
        )
        return run_uc(src)["r"]

    def test_empty_selection_yields_identity(self):
        assert self._empty("$+") == 0
        assert self._empty("$*") == 1
        assert self._empty("$&&") == 1  # vacuous truth
        assert self._empty("$||") == 0
        assert self._empty("$^") == 0

    def test_empty_min_max_yield_infinities(self):
        from repro.machine.scan import INF

        assert self._empty("$<") == INF
        assert self._empty("$>") == -INF
