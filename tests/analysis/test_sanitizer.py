"""Runtime sanitizer tests: static claims vs observed engine behaviour."""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.sanitize import Sanitizer
from repro.interp.program import UCProgram
from repro.lang.errors import (
    UCMultipleAssignmentError,
    UCSanitizerError,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "uc"
EXAMPLE_DEFINES = {"apsp.uc": {"N": 8}, "histogram.uc": {"N": 16}}


def run_sanitized(src, inputs=None, **kwargs):
    prog = UCProgram(src, sanitize=True, **kwargs)
    return prog, prog.run(inputs or {})


class TestDifferential:
    """Every example runs clean under the sanitizer on both engines."""

    @pytest.mark.parametrize(
        "name", sorted(p.name for p in EXAMPLES.glob("*.uc"))
    )
    @pytest.mark.parametrize("plans", [True, False], ids=["plans", "oracle"])
    def test_example_is_contradiction_free(self, name, plans):
        src = (EXAMPLES / name).read_text()
        _prog, result = run_sanitized(
            src, defines=EXAMPLE_DEFINES.get(name, {}), plans=plans
        )
        assert result.sanitizer["writes_checked"] > 0
        assert result.sanitizer["tier_sites_verified"] == (
            result.sanitizer["tier_sites_observed"]
        )

    @pytest.mark.parametrize(
        "name", sorted(p.name for p in EXAMPLES.glob("*.uc"))
    )
    def test_sanitized_engines_fingerprint_match(self, name):
        src = (EXAMPLES / name).read_text()
        defines = EXAMPLE_DEFINES.get(name, {})
        fps = []
        for plans in (True, False):
            _prog, result = run_sanitized(src, defines=defines, plans=plans)
            fps.append(result.fingerprint)
        assert fps[0] == fps[1]

    @pytest.mark.parametrize(
        "name", sorted(p.name for p in EXAMPLES.glob("*.uc"))
    )
    def test_sanitize_off_fingerprint_unchanged(self, name):
        """The sanitizer must be cost-free: with it off, fingerprints are
        bit-identical to a plain run; with it on, they equal log_tiers
        runs (its only observable side channel is the tier log)."""
        src = (EXAMPLES / name).read_text()
        defines = EXAMPLE_DEFINES.get(name, {})
        plain = UCProgram(src, defines=defines).run().fingerprint
        off = UCProgram(src, defines=defines, sanitize=False).run().fingerprint
        assert plain == off
        logged = UCProgram(src, defines=defines, log_tiers=True).run().fingerprint
        sanitized = UCProgram(src, defines=defines, sanitize=True).run().fingerprint
        assert logged == sanitized


class TestEnvToggle:
    def test_repro_sanitize_env_arms_the_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        prog = UCProgram(
            "index_set I:i = {0..7};\nint a[8];\nmain { par (I) a[i] = i; }"
        )
        result = prog.run()
        assert prog.last_interpreter.sanitizer is not None
        assert result.sanitizer["writes_checked"] == 1

    def test_off_by_default(self):
        prog = UCProgram(
            "index_set I:i = {0..7};\nint a[8];\nmain { par (I) a[i] = i; }"
        )
        result = prog.run()
        assert prog.last_interpreter.sanitizer is None
        assert result.sanitizer == {}


class TestWriteClaims:
    SRC = (
        "index_set I:i = {0..7};\nint a[8], p[8];\n"
        "main { par (I) a[p[i]] = 1; }"
    )

    @pytest.mark.parametrize("plans", [True, False], ids=["plans", "oracle"])
    def test_benign_duplicates_at_unclaimed_site_pass(self, plans):
        # p collapses every lane onto element 0 with equal values: legal
        # under §3.4, and the analyzer claimed nothing (data-dependent)
        _prog, result = run_sanitized(
            self.SRC, {"p": np.zeros(8, dtype=np.int64)}, plans=plans
        )
        assert result.sanitizer["duplicate_writes"] > 0

    def test_duplicate_at_proven_injective_site_is_hard_failure(self):
        # simulate an analyzer/engine disagreement: upgrade the
        # data-dependent claim to 'injective', then feed a duplicate
        prog = UCProgram(self.SRC)
        san = Sanitizer(prog.info, prog.layouts)
        target = _find_index_node(prog.info.program, "a")
        san.write_claims[(target.line, target.col, target.base)] = "injective"
        with pytest.raises(UCSanitizerError) as exc:
            san.record_write(target, has_dup=True)
        assert "injective" in str(exc.value)


def _find_index_node(program, base):
    from repro.lang import ast

    found = []

    def walk(node):
        if isinstance(node, ast.Index) and node.base == base:
            found.append(node)
        for child in ast.children(node):
            walk(child)

    walk(program.main)
    return found[0]


class TestTierCrossCheck:
    def test_contradicting_tier_log_raises(self):
        src = (
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "main { par (I) a[i] = b[i + 1]; }"
        )
        prog = UCProgram(src, sanitize=True)
        prog.run()
        interp = prog.last_interpreter
        # the run verified cleanly; now forge an observation the static
        # verdict excludes and re-run the cross-check
        key = next(k for k in interp.tier_log if k[1] == "b")
        interp.tier_log[key].add("router")
        with pytest.raises(UCSanitizerError) as exc:
            interp.sanitizer.cross_check(interp)
        assert "contradict" in str(exc.value)

    def test_claims_respect_disabled_tiers(self):
        # with REPRO_NO_COMM_TIERS semantics the expected set is computed
        # with enabled=False, so a router observation is consistent
        src = (
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "main { par (I) a[i] = b[i + 1]; }"
        )
        prog = UCProgram(src, sanitize=True, comm_tiers=False)
        result = prog.run()
        assert result.sanitizer["tier_sites_verified"] == (
            result.sanitizer["tier_sites_observed"]
        )


class TestEnrichedErrors:
    """Satellite: the §3.4 runtime error names colliding VPs, element and
    construct (both engines)."""

    SRC = (
        "index_set I:i = {0..3}, J:j = I;\nint a[4], c[4];\n"
        "main { par (I, J) a[i] = c[j]; }"
    )

    @pytest.mark.parametrize("plans", [True, False], ids=["plans", "oracle"])
    def test_message_names_element_values_and_construct(self, plans):
        prog = UCProgram(self.SRC, plans=plans)
        with pytest.raises(UCMultipleAssignmentError) as exc:
            prog.run({"c": np.array([1, 2, 3, 4])})
        msg = str(exc.value)
        assert "[UC101]" in msg
        assert "element a[" in msg
        assert "VPs (" in msg
        assert "line 3" in msg  # the enclosing par
        assert "$," in msg
        assert exc.value.line == 3

    @pytest.mark.parametrize("plans", [True, False], ids=["plans", "oracle"])
    def test_scalar_message_reports_values(self, plans):
        src = "index_set I:i = {0..3};\nint s;\nmain { par (I) s = i; }"
        with pytest.raises(UCMultipleAssignmentError) as exc:
            UCProgram(src, plans=plans).run()
        msg = str(exc.value)
        assert "[UC101]" in msg and "scalar 's'" in msg and "$," in msg

    def test_plan_memo_path_also_enriched(self):
        # second sweep hits the scatter memo: the error must be as rich
        src = (
            "index_set I:i = {0..3}, J:j = I, K:k = {0..1};\n"
            "int a[4], c[4];\n"
            "main { seq (K) par (I, J) a[i] = c[j] + k - k; }"
        )
        prog = UCProgram(src, plans=True)
        with pytest.raises(UCMultipleAssignmentError) as exc:
            prog.run({"c": np.array([1, 2, 3, 4])})
        assert "[UC101]" in str(exc.value)


class TestStatsLine:
    def test_run_stats_prints_sanitizer_summary(self, capsys, tmp_path):
        from repro.cli import main

        f = tmp_path / "p.uc"
        f.write_text(
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "main { par (I) a[i] = b[i + 1]; }"
        )
        assert main(["run", str(f), "--sanitize", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer:" in out and "0 contradictions" in out
