"""Static-analyzer (repro lint) and sanitizer tests."""
