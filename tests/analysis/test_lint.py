"""Whole-program static analyzer (``repro lint``) tests."""

import json
from pathlib import Path

import pytest

from repro.analysis import CODES, Diagnostic, LintReport, lint_program

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "uc"
EXAMPLE_DEFINES = {"apsp.uc": {"N": 8}, "histogram.uc": {"N": 16}}


def codes(report):
    return [d.code for d in report.diagnostics]


class TestDiagnosticModel:
    def test_codes_are_documented(self):
        for code in ("UC101", "UC201", "UC301", "UC401"):
            assert code in CODES

    def test_render_has_position_and_code(self):
        d = Diagnostic(
            code="UC101",
            severity="error",
            message="boom",
            line=3,
            col=7,
            file="x.uc",
            hint="fix it",
        )
        text = d.render()
        assert "x.uc:3:7: error: UC101: boom" in text
        assert "hint: fix it" in text

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="UC999", severity="error", message="?")

    def test_exit_codes(self):
        rep = LintReport(file="x.uc")
        assert rep.exit_code() == 0
        rep.add(Diagnostic(code="UC102", severity="warning", message="w"))
        assert rep.exit_code() == 0
        assert rep.exit_code(werror=True) == 1
        rep.add(Diagnostic(code="UC101", severity="error", message="e"))
        assert rep.exit_code() == 1


class TestRaceDetection:
    def test_definite_race_is_uc101(self):
        rep = lint_program(
            "index_set I:i = {0..7}, J:j = I;\nint a[8];\n"
            "main { par (I, J) a[i] = j; }"
        )
        errs = [d for d in rep.errors if d.code == "UC101"]
        assert len(errs) == 1
        assert errs[0].line == 3
        assert "multiple distinct values" in errs[0].message
        assert "$," in errs[0].hint

    def test_benign_collapse_not_flagged(self):
        # all colliding lanes write the same value: §3.4 allows it
        rep = lint_program(
            "index_set I:i = {0..7}, J:j = I;\nint a[8];\n"
            "main { par (I, J) a[i] = i; }"
        )
        assert not rep.has("UC101")

    def test_injective_write_clean(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint a[8];\nmain { par (I) a[i] = i; }"
        )
        assert not rep.has("UC101") and not rep.has("UC102")

    def test_data_dependent_target_is_possible_race(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint a[8], p[8];\n"
            "main { par (I) a[p[i]] = i; }"
        )
        assert rep.has("UC102")

    def test_scalar_target_race(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint s;\nmain { par (I) s = i; }"
        )
        assert any(d.code == "UC101" and "scalar" in d.message for d in rep.errors)

    def test_cross_statement_overlap_is_uc103(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint a[8];\n"
            "main { par (I) { a[i] = i; a[7 - i] = i; } }"
        )
        assert rep.has("UC103")

    def test_static_out_of_bounds_is_uc104(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint a[8];\nmain { par (I) a[i + 4] = 0; }"
        )
        oob = [d for d in rep.diagnostics if d.code == "UC104"]
        assert oob and oob[0].severity == "error"
        assert "out of range" in oob[0].message


class TestSolveChecks:
    def test_zero_offset_cycle_is_uc201(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint x[8], y[8];\n"
            "main { solve (I) { x[i] = y[i] + 1; y[i] = x[i] * 2; } }"
        )
        errs = [d for d in rep.errors if d.code == "UC201"]
        assert errs and errs[0].line in (3,)
        assert "cycle" in errs[0].message

    def test_self_dependence_is_uc201(self):
        rep = lint_program(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { solve (I) a[i] = a[i] + 1; }"
        )
        assert rep.has("UC201")

    def test_shifted_recurrence_is_proper(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint f[8];\n"
            "main { solve (I) f[i] = (i < 2) ? 1 : f[i-1] + f[i-2]; }"
        )
        assert not rep.has("UC201")

    def test_star_solve_exempt_from_cycle_check(self):
        rep = lint_program(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { *solve (I) a[i] = a[i]; }"
        )
        assert not rep.has("UC201")

    def test_constant_solve_predicate_is_uc203(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint a[8];\n"
            "main { solve (I) st (0 == 1) a[i] = (i == 0) ? 1 : a[i - 1]; }"
        )
        assert rep.has("UC203")

    def test_unreachable_others_is_uc202(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint a[8];\n"
            "main { par (I) st (1) a[i] = 0; others a[i] = 1; }"
        )
        assert rep.has("UC202")


class TestCommLints:
    def test_data_dependent_router_is_uc301(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint a[8], p[8];\n"
            "main { par (I) a[i] = a[p[i]]; }"
        )
        routers = [d for d in rep.diagnostics if d.code == "UC301"]
        assert routers
        assert routers[0].line == 3
        assert "router" in routers[0].message

    def test_news_shift_is_uc303(self):
        rep = lint_program(
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "main { par (I) a[i] = b[i + 1]; }"
        )
        news = [d for d in rep.diagnostics if d.code == "UC303"]
        assert news and "permute" in news[0].hint

    def test_spread_is_uc302_with_copy_hint(self):
        rep = lint_program(
            "index_set I:i = {0..3}, K:k = I;\nint v[4], m[4][4];\n"
            "main { par (I, K) m[i][k] = v[i]; }"
        )
        spreads = [d for d in rep.diagnostics if d.code == "UC302"]
        assert spreads and "copy" in spreads[0].hint

    def test_permute_map_silences_the_lint(self):
        src = (
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "map (I) { permute (I) b[i+1] :- a[i]; }\n"
            "main { par (I) a[i] = a[i] + b[i + 1]; }"
        )
        assert not lint_program(src).has("UC303")
        assert lint_program(src, apply_maps=False).has("UC303")


class TestHygiene:
    def test_unused_index_set(self):
        rep = lint_program(
            "index_set I:i = {0..7}, DEAD:q = {0..3};\nint a[8];\n"
            "main { par (I) a[i] = i; }"
        )
        unused = [d for d in rep.diagnostics if d.code == "UC401"]
        assert unused and "DEAD" in unused[0].message

    def test_shadowed_element(self):
        rep = lint_program(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) par (I) a[i] = 0; }"
        )
        assert rep.has("UC402")

    def test_dead_arm(self):
        rep = lint_program(
            "index_set I:i = {0..7};\nint a[8];\n"
            "main { par (I) st (0) a[i] = 1; }"
        )
        assert rep.has("UC403")


class TestFrontEndErrors:
    def test_syntax_error_is_uc001(self):
        rep = lint_program("main { par (I a[i] = 0; }")
        assert rep.has("UC001") and rep.exit_code() == 1

    def test_semantic_error_is_uc002(self):
        rep = lint_program("index_set I:i = {0..N-1};\nmain { }")
        assert rep.has("UC002")
        assert rep.errors[0].line > 0


class TestReportFormats:
    SRC = (
        "index_set I:i = {0..7}, J:j = I;\nint a[8];\n"
        "main { par (I, J) a[i] = j; }"
    )

    def test_text_has_footer(self):
        text = lint_program(self.SRC, filename="race.uc").render_text()
        assert "race.uc:" in text and "error(s)" in text

    def test_json_roundtrips(self):
        data = json.loads(lint_program(self.SRC, filename="race.uc").render_json())
        assert data["file"] == "race.uc"
        assert data["errors"] >= 1
        assert any(d["code"] == "UC101" for d in data["diagnostics"])

    def test_diagnostics_sorted_by_position(self):
        rep = lint_program(self.SRC)
        lines = [d.line for d in rep.diagnostics]
        assert lines == sorted(lines)


class TestExamplesGate:
    """The shipped examples must stay lint-clean (no errors)."""

    @pytest.mark.parametrize(
        "name", sorted(p.name for p in EXAMPLES.glob("*.uc"))
    )
    def test_example_has_no_errors(self, name):
        rep = lint_program(
            (EXAMPLES / name).read_text(),
            defines=EXAMPLE_DEFINES.get(name, {}),
            filename=name,
        )
        assert rep.errors == [], rep.render_text()
        assert rep.warnings == [], rep.render_text()


class TestDslLint:
    def test_builder_lint_finds_structural_race(self):
        from repro.ucdsl import UCBuilder

        b = UCBuilder()
        I, i = b.index_set("I", "i", range(8))
        J, j = b.alias("J", "j", I)
        a = b.int_array("a", 8)
        with b.main():
            with b.par(I, J):
                a[i].set(j)
        rep = b.lint()
        assert any(d.code in ("UC101", "UC102") for d in rep.diagnostics)

    def test_builder_lint_clean_program(self):
        from repro.ucdsl import UCBuilder

        b = UCBuilder()
        I, i = b.index_set("I", "i", range(8))
        a = b.int_array("a", 8)
        with b.main():
            with b.par(I):
                a[i].set(i)
        rep = b.lint()
        assert rep.errors == []


class TestCli:
    def test_lint_subcommand_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.uc"
        good.write_text(
            "index_set I:i = {0..7};\nint a[8];\nmain { par (I) a[i] = i; }"
        )
        bad = tmp_path / "bad.uc"
        bad.write_text(
            "index_set I:i = {0..7}, J:j = I;\nint a[8];\n"
            "main { par (I, J) a[i] = j; }"
        )
        assert main(["lint", str(good)]) == 0
        capsys.readouterr()
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "UC101" in out

    def test_lint_werror_and_json(self, tmp_path, capsys):
        from repro.cli import main

        warn = tmp_path / "warn.uc"
        warn.write_text(
            "index_set I:i = {0..7}, DEAD:q = {0..3};\nint a[8];\n"
            "main { par (I) a[i] = i; }"
        )
        assert main(["lint", str(warn)]) == 0
        capsys.readouterr()
        assert main(["lint", str(warn), "--werror"]) == 1
        capsys.readouterr()
        assert main(["lint", str(warn), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["warnings"] >= 1
