"""Static solve-scheduling tests (paper §3.6 / reference [14])."""

import numpy as np
import pytest

from repro.compiler.solve_sched import _dependency_levels, _shift_levels, try_schedule
from repro.interp.env import Env
from repro.interp.eval_expr import ExecContext
from repro.interp.interpreter import Interpreter
from repro.interp.solve import _collect_assignments
from repro.interp.statements import enter_grid
from repro.interp.values import GridContext
from repro.interp.program import UCProgram
from repro.lang import ast as uc_ast
from repro.machine import Machine


def schedule_for(src, defines=None):
    prog = UCProgram(src, defines=defines)
    interp = Interpreter(prog.info, Machine(), prog.layouts)
    solve_stmt = next(
        s for s in uc_ast.walk(prog.info.program.main) if isinstance(s, uc_ast.UCStmt)
    )
    ctx = ExecContext(GridContext(), None, Env(interp.global_env))
    inner = enter_grid(interp, solve_stmt, ctx)
    return try_schedule(
        interp, solve_stmt, _collect_assignments(solve_stmt), inner
    )


WAVEFRONT = (
    "int N = 6;\nindex_set I:i = {0..N-1}, J:j = I;\nint a[6][6];\n"
    "main { solve (I, J) a[i][j] = (i == 0 || j == 0) ? 1 "
    ": a[i-1][j] + a[i-1][j-1] + a[i][j-1]; }"
)


class TestSchedule:
    def test_wavefront_levels_are_antidiagonals(self):
        sched = schedule_for(WAVEFRONT)
        assert sched is not None
        i, j = np.indices((6, 6))
        assert np.array_equal(sched.levels, i + j)
        assert sched.max_level == 10

    def test_1d_recurrence_levels(self):
        src = (
            "index_set I:i = {0..7};\nint f[8];\n"
            "main { solve (I) f[i] = (i == 0) ? 1 : f[i-1] * 2; }"
        )
        sched = schedule_for(src)
        assert sched is not None
        assert sched.levels.tolist() == list(range(8))

    def test_no_dependencies_single_level(self):
        src = (
            "index_set I:i = {0..7};\nint f[8];\n"
            "main { solve (I) f[i] = i * i; }"
        )
        sched = schedule_for(src)
        assert sched is not None
        assert sched.max_level == 0

    def test_data_dependent_reference_unschedulable(self):
        src = (
            "index_set I:i = {0..7};\nint f[8], p[8];\n"
            "main { solve (I) f[i] = (i == 0) ? 1 : f[p[i]]; }"
        )
        assert schedule_for(src) is None

    def test_forward_dependency_unschedulable(self):
        src = (
            "index_set I:i = {0..7};\nint f[8];\n"
            "main { solve (I) f[i] = (i == 7) ? 1 : f[i+1]; }"
        )
        assert schedule_for(src) is None

    def test_scalar_target_unschedulable(self):
        src = (
            "index_set I:i = {0..7};\nint s;\n"
            "main { solve (I) s = 3; }"
        )
        assert schedule_for(src) is None

    def test_reduction_over_target_unschedulable(self):
        src = (
            "index_set I:i = {0..7}, J:j = I;\nint f[8];\n"
            "main { solve (I) f[i] = $+(J st (j < i) f[j]); }"
        )
        assert schedule_for(src) is None


class TestLevelMachinery:
    def test_shift_levels_negative_offset(self):
        levels = np.arange(6).reshape(2, 3)
        out = _shift_levels(levels, (-1, 0))
        assert out.tolist() == [[-1, -1, -1], [0, 1, 2]]

    def test_shift_levels_positive_offset(self):
        levels = np.arange(6).reshape(2, 3)
        out = _shift_levels(levels, (0, 1))
        assert out.tolist() == [[1, 2, -1], [4, 5, -1]]

    def test_dependency_levels_simple_chain(self):
        levels = _dependency_levels((5,), [(-1,)])
        assert levels.tolist() == [0, 1, 2, 3, 4]

    def test_dependency_levels_empty_deps(self):
        levels = _dependency_levels((3, 3), [])
        assert levels.max() == 0

    def test_dependency_levels_two_offsets(self):
        levels = _dependency_levels((4, 4), [(-1, 0), (0, -1)])
        i, j = np.indices((4, 4))
        assert np.array_equal(levels, i + j)
