"""Communication-analysis (static classifier) tests."""

import pytest

from repro.compiler.comm_opt import analyze_communication
from repro.interp.program import UCProgram


def report_for(src, defines=None, apply_maps=True):
    prog = UCProgram(src, defines=defines, apply_maps=apply_maps)
    return analyze_communication(prog.info, prog.layouts)


class TestClassification:
    def test_local_reference(self):
        rep = report_for(
            "index_set I:i = {0..7};\nint a[8], b[8];\nmain { par (I) a[i] = b[i]; }"
        )
        assert all(r.kind == "local" for r in rep.references)
        assert rep.suggestions == []

    def test_shift_reported_as_news(self):
        rep = report_for(
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "main { par (I) a[i] = b[i + 1]; }"
        )
        kinds = {r.text: r.kind for r in rep.references}
        assert kinds["b[i + 1]"] == "news"
        assert any("permute" in s for s in rep.suggestions)

    def test_transpose_reported_as_router(self):
        rep = report_for(
            "index_set I:i = {0..3}, J:j = I;\nint a[4][4], b[4][4];\n"
            "main { par (I, J) a[i][j] = b[j][i]; }"
        )
        kinds = {r.text: r.kind for r in rep.references}
        assert kinds["b[j][i]"] == "router"

    def test_data_dependence_reported_as_router(self):
        rep = report_for(
            "index_set I:i = {0..7};\nint a[8], p[8];\n"
            "main { par (I) a[i] = a[p[i]]; }"
        )
        assert any(
            r.kind == "router" and "data-dependent" in r.note for r in rep.references
        )

    def test_spread_for_unused_axis(self):
        rep = report_for(
            "index_set I:i = {0..3}, K:k = I;\nint v[4], m[4][4];\n"
            "main { par (I, K) m[i][k] = v[i]; }"
        )
        kinds = {r.text: r.kind for r in rep.references}
        assert kinds["v[i]"] == "spread"
        assert any("copy" in s for s in rep.suggestions)

    def test_map_section_changes_verdict(self):
        src = (
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "map (I) { permute (I) b[i+1] :- a[i]; }\n"
            "main { par (I) a[i] = b[i + 1]; }"
        )
        mapped = report_for(src)
        unmapped = report_for(src, apply_maps=False)
        m_kinds = {r.text: r.kind for r in mapped.references}
        u_kinds = {r.text: r.kind for r in unmapped.references}
        assert m_kinds["b[i + 1]"] == "local"
        assert u_kinds["b[i + 1]"] == "news"

    def test_reduction_operand_classified(self):
        rep = report_for(
            "index_set I:i = {0..3}, J:j = I, K:k = I;\nint d[4][4], c[4][4];\n"
            "main { par (I, J) c[i][j] = $<(K; d[i][k] + d[k][j]); }"
        )
        spreads = [r for r in rep.references if r.kind in ("spread", "router")]
        assert len(spreads) >= 1

    def test_counts_helpers(self):
        rep = report_for(
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "main { par (I) a[i] = b[i + 1]; }"
        )
        assert rep.count("news") == 1
        assert rep.remote_count == 1

    def test_suggestions_deduplicated(self):
        rep = report_for(
            "index_set I:i = {0..5};\nint a[8], b[8];\n"
            "main { par (I) { a[i] = b[i + 2]; a[i] = b[i + 2]; } }"
        )
        assert len(rep.suggestions) == len(set(rep.suggestions))


class TestSeqElements:
    """seq-bound elements are run-time scalars: references subscripted by
    them are uniform per iteration, and the static pass must agree with
    the runtime tier dispatcher (the apsp inner loop is the motivating
    case: d[i][k] is a spread, not data-dependent router traffic)."""

    def test_seq_subscript_is_spread_not_router(self):
        report = report_for(
            "int N = 8;\n"
            "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
            "int d[N][N], c[N][N];\n"
            "main { seq (K) par (I, J) c[i][j] = d[i][k] + d[k][j]; }"
        )
        kinds = {r.text: r.kind for r in report.references}
        assert kinds["d[i][k]"] == "spread"
        assert kinds["d[k][j]"] == "spread"
        assert report.count("router") == 0

    def test_seq_only_subscripts_are_broadcast(self):
        report = report_for(
            "int N = 4;\n"
            "index_set I:i = {0..N-1}, K:k = I;\n"
            "int a[N], b[N];\n"
            "main { seq (K) par (I) a[i] = b[k]; }"
        )
        kinds = {r.text: r.kind for r in report.references}
        assert kinds["b[k]"] == "broadcast"

    def test_par_rebinding_shadows_seq_scalar(self):
        # the inner par re-binds k as a grid axis: b[k] is local again
        report = report_for(
            "int N = 4;\n"
            "index_set K:k = {0..N-1};\n"
            "int a[N], b[N];\n"
            "main { seq (K) par (K) a[k] = b[k]; }"
        )
        kinds = {r.text: r.kind for r in report.references}
        assert kinds["b[k]"] == "local"
        assert kinds["a[k]"] == "local"
