"""UC -> C* translation tests (paper appendix style)."""

import pytest

from repro.compiler.cstar_gen import CStarGenerator, expr_to_text, generate_cstar
from repro.interp.program import UCProgram
from repro.lang import parse_expression


class TestExprToText:
    @pytest.mark.parametrize(
        "src",
        [
            "a + b * c",
            "(a + b) * c",
            "a < b == c",
            "a ? b : c",
            "d[i][j]",
            "power2(i + 1)",
            "a[i] = a[i] + b[i]",
            "x += 2",
            "-a",
            "!x",
        ],
    )
    def test_round_trips(self, src):
        text = expr_to_text(parse_expression(src))
        again = expr_to_text(parse_expression(text))
        assert again == text  # stable under re-parse

    def test_parenthesisation_preserves_meaning(self):
        e = parse_expression("(a + b) * c")
        assert expr_to_text(e) == "(a + b) * c"
        e = parse_expression("a + b * c")
        assert expr_to_text(e) == "a + b * c"

    def test_reduction_rendering(self):
        e = parse_expression("$<(K; d[i][k] + d[k][j])")
        assert "$[min]" in expr_to_text(e)


FIG4 = """
int N = 8;
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int d[8][8];
main {
    seq (K)
      par (I, J)
        st (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
}
"""

FIG5 = """
int N = 8;
int LOGN = 3;
index_set I:i = {0..N-1}, J:j = I, K:k = I;
index_set L:l = {0..LOGN-1};
int d[8][8];
main {
    seq (L)
      par (I, J)
        d[i][j] = $<(K; d[i][k] + d[k][j]);
}
"""


class TestGeneration:
    def _gen(self, src, defines=None):
        prog = UCProgram(src, defines=defines)
        return generate_cstar(prog.info, prog.layouts)

    def test_fig4_produces_fig9_shape(self):
        out = self._gen(FIG4)
        assert "domain" in out
        assert "[8][8];" in out
        assert "::init()" in out
        assert "for (k = 0; k <= 7; k++)" in out
        assert "where (" in out

    def test_fig5_produces_min_assign_pattern(self):
        """The paper's `len <?= path[i][k].len + path[k][j].len` pattern."""
        out = self._gen(FIG5)
        assert "<?=" in out
        assert "for (k = 0; k <= 7; k++)" in out

    def test_domain_per_shape(self):
        src = (
            "index_set I:i = {0..3};\nint a[4], b[4], m[4][4];\n"
            "main { par (I) a[i] = b[i]; }"
        )
        prog = UCProgram(src)
        cs = CStarGenerator(prog.info, prog.layouts).generate()
        assert len(cs.domains) == 2  # one per distinct shape
        shapes = {d.shape for d in cs.domains}
        assert shapes == {(4,), (4, 4)}

    def test_mapping_compiled_away(self):
        src = (
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "map (I) { permute (I) b[i+1] :- a[i]; }\n"
            "main { par (I) a[i] = a[i] + b[i+1]; }"
        )
        out = self._gen(src)
        # the permute offset is folded into the subscripts: b[i+1] -> b[i]
        assert "b[i]" in out
        assert "b[i + 1]" not in out

    def test_star_par_becomes_global_or_loop(self):
        src = (
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { *par (I) st (a[i] > 0) a[i] = a[i] - 1; }"
        )
        out = self._gen(src)
        assert "while (" in out and "global-or" in out

    def test_host_scalars_declared(self):
        src = "int total;\nfloat avg;\nmain { total = 1; }"
        out = self._gen(src)
        assert "int total;" in out
        assert "float avg;" in out

    def test_structured_program_object(self):
        prog = UCProgram(FIG5)
        gen = CStarGenerator(prog.info, prog.layouts)
        cs = gen.generate()
        assert len(cs.domains) == 1
        d = cs.domains[0]
        assert d.shape == (8, 8)
        assert {f.name for f in d.fields} >= {"i", "j", "d"}
