"""Processor-optimization analysis tests (paper §4)."""

import pytest

from repro.compiler.processor_opt import (
    analyze_program,
    analyze_reduction,
    match_partition,
)
from repro.lang import analyze, parse_expression, parse_program

DIGIT_SRC = """
int N = 40;
index_set I:i = {0..N-1}, J:j = {0..9};
int samples[40];
int count[10];
main {
    par (J)
        count[j] = $+(I st (samples[i] == j) 1);
}
"""


class TestMatchPartition:
    def _red(self, text):
        return parse_expression(text)

    def test_paper_example_matches(self):
        red = self._red("$+(I st (samples[i] == j) 1)")
        assert match_partition(red, ["j"], ["i"])

    def test_reversed_equality_matches(self):
        red = self._red("$+(I st (j == samples[i]) 1)")
        assert match_partition(red, ["j"], ["i"])

    def test_conjunction_matches(self):
        red = self._red("$+(I st (samples[i] == j && i > 3) 1)")
        assert match_partition(red, ["j"], ["i"])

    def test_inequality_does_not_match(self):
        red = self._red("$+(I st (samples[i] < j) 1)")
        assert not match_partition(red, ["j"], ["i"])

    def test_par_element_on_both_sides_does_not_match(self):
        red = self._red("$+(I st (samples[i] + j == j) 1)")
        assert not match_partition(red, ["j"], ["i"])

    def test_no_predicate_does_not_match(self):
        red = self._red("$+(I; samples[i])")
        assert not match_partition(red, ["j"], ["i"])

    def test_equality_between_reduction_elems_only(self):
        red = self._red("$+(I st (samples[i] == i) 1)")
        assert not match_partition(red, ["j"], ["i"])


class TestAnalyzeProgram:
    def test_digit_count_plan(self):
        info = analyze(parse_program(DIGIT_SRC))
        plans = analyze_program(info)
        assert len(plans) == 1
        plan = plans[0]
        assert plan.partitioned
        assert plan.naive_vps == 10 * 40
        assert plan.optimized_vps == 40
        assert plan.saving == pytest.approx(10.0)

    def test_unpartitioned_reduction_keeps_naive_vps(self):
        src = DIGIT_SRC.replace("samples[i] == j", "samples[i] <= j")
        info = analyze(parse_program(src))
        plan = analyze_program(info)[0]
        assert not plan.partitioned
        assert plan.optimized_vps == plan.naive_vps

    def test_reduction_outside_par_not_planned(self):
        src = (
            "index_set I:i = {0..9};\nint a[10], s;\n"
            "main { s = $+(I; a[i]); }"
        )
        info = analyze(parse_program(src))
        assert analyze_program(info) == []

    def test_matmul_reduction_planned_unpartitioned(self):
        src = (
            "index_set I:i = {0..3}, J:j = I, K:k = I;\n"
            "int a[4][4], b[4][4], c[4][4];\n"
            "main { par (I, J) c[i][j] = $+(K; a[i][k] * b[k][j]); }"
        )
        info = analyze(parse_program(src))
        plans = analyze_program(info)
        assert len(plans) == 1
        assert not plans[0].partitioned
        assert plans[0].naive_vps == 4 * 4 * 4
