"""C* target-structure rendering tests."""

from repro.compiler.cstar_ast import CStarDomain, CStarField, CStarProgram


class TestDomainRender:
    def test_1d_domain(self):
        d = CStarDomain(
            "PATH", "path", (32,), [CStarField("i"), CStarField("len")]
        )
        out = d.render()
        assert "domain PATH {" in out
        assert "int i, len;" in out
        assert "} path[32];" in out

    def test_float_fields_grouped(self):
        d = CStarDomain(
            "D", "d", (4,), [CStarField("i"), CStarField("x", "float")]
        )
        out = d.render()
        assert "int i;" in out
        assert "float x;" in out

    def test_2d_init_address_arithmetic(self):
        """The paper's figure-9 init: i = offset/N; j = offset%N."""
        d = CStarDomain(
            "PATH", "path", (8, 8), [CStarField("i"), CStarField("j")]
        )
        out = d.render_init()
        assert "void PATH::init()" in out
        assert "(this - &path[0][0])" in out
        assert "j = offset % 8;" in out
        assert "i = (offset / 8) % 8;" in out

    def test_3d_init(self):
        """Figure 10's XMED init with three coordinates."""
        d = CStarDomain(
            "XMED",
            "xmed",
            (4, 4, 4),
            [CStarField("i"), CStarField("j"), CStarField("k")],
        )
        out = d.render_init()
        assert "i = (offset / 16) % 4;" in out
        assert "j = (offset / 4) % 4;" in out
        assert "k = offset % 4;" in out


class TestProgramRender:
    def test_full_program_structure(self):
        prog = CStarProgram()
        prog.domains.append(
            CStarDomain("G", "g", (4,), [CStarField("i"), CStarField("v")])
        )
        prog.host_decls.append("int total;")
        prog.main_lines.append("total = 0;")
        prog.notes.append("a note")
        out = prog.render()
        assert out.index("/* a note */") < out.index("domain G")
        assert "[domain G].{ init(); }" in out
        assert "void main() {" in out
        assert out.rstrip().endswith("}")

    def test_domain_for_shape_lookup(self):
        prog = CStarProgram()
        d = CStarDomain("G", "g", (4, 4), [CStarField("v")])
        prog.domains.append(d)
        assert prog.domain_for_shape((4, 4)) is d
        try:
            prog.domain_for_shape((5,))
            assert False
        except KeyError:
            pass
