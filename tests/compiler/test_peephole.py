"""Peephole constant-folding tests."""

import pytest

from repro.compiler.cstar_gen import expr_to_text
from repro.compiler.peephole import fold_expr, fold_program
from repro.lang import ast, parse_expression, parse_program


def folded(src):
    return expr_to_text(fold_expr(parse_expression(src)))


class TestConstantFolding:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("1 + 2", "3"),
            ("2 * 3 + 4", "10"),
            ("7 / 2", "3"),
            ("-7 / 2", "-3"),
            ("-7 % 2", "-1"),
            ("1 << 4", "16"),
            ("5 & 3", "1"),
            ("3 < 4", "1"),
            ("3 == 4", "0"),
            ("1 && 0", "0"),
            ("0 || 2", "1"),
            ("!3", "0"),
            ("-(4)", "-4"),
            ("~0", "-1"),
            ("1.5 + 2.5", "4.0"),
        ],
    )
    def test_folds(self, before, after):
        assert folded(before) == after

    def test_division_by_zero_left_unfolded(self):
        assert folded("1 / 0") == "1 / 0"
        assert folded("1 % 0") == "1 % 0"

    def test_ternary_constant_condition(self):
        assert folded("1 ? a : b") == "a"
        assert folded("0 ? a : b") == "b"

    def test_ternary_dynamic_condition_kept(self):
        assert folded("x ? 1 + 1 : 3") == "x ? 2 : 3"


class TestAlgebraicIdentities:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("x + 0", "x"),
            ("0 + x", "x"),
            ("x - 0", "x"),
            ("x * 1", "x"),
            ("1 * x", "x"),
            ("x * 0", "0"),
            ("0 * x", "0"),
        ],
    )
    def test_identities(self, before, after):
        assert folded(before) == after

    def test_nested_subexpressions_fold(self):
        assert folded("a[i + 1 - 1] + (2 * 3)") == "a[i] + 6"

    def test_call_arguments_fold(self):
        assert folded("power2(1 + 2)") == "power2(3)"

    def test_reduction_arms_fold(self):
        out = fold_expr(parse_expression("$+(I st (1 == 1) a[i] + 0)"))
        assert expr_to_text(out.arms[0].pred) == "1"
        assert expr_to_text(out.arms[0].expr) == "a[i]"


class TestProgramFolding:
    def test_fold_program_copies(self):
        p = parse_program("int x;\nmain { x = 1 + 2; }")
        out = fold_program(p)
        assert p is not out
        orig_stmt = p.main.stmts[0].expr
        new_stmt = out.main.stmts[0].expr
        assert expr_to_text(orig_stmt.value) == "1 + 2"
        assert expr_to_text(new_stmt.value) == "3"

    def test_folding_preserves_semantics(self):
        from tests.conftest import run_uc

        src = (
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) a[i] = (2 * 3) + i * 1 + 0; }"
        )
        assert run_uc(src)["a"].tolist() == [6, 7, 8, 9]
