"""Lexer tests."""

import pytest

from repro.lang.errors import UCSyntaxError
from repro.lang.lexer import tokenize


def kinds(src):
    return [(t.kind, t.value) for t in tokenize(src)[:-1]]


class TestBasics:
    def test_identifiers_and_keywords(self):
        toks = kinds("par foo int index_set st others")
        assert toks == [
            ("keyword", "par"),
            ("id", "foo"),
            ("keyword", "int"),
            ("keyword", "index_set"),
            ("keyword", "st"),
            ("keyword", "others"),
        ]

    def test_hyphenated_index_set_spelling(self):
        assert kinds("index-set")[0] == ("keyword", "index_set")

    def test_index_minus_set_needs_adjacency(self):
        # 'index - set' is subtraction of identifiers, not the keyword
        toks = kinds("index - set")
        assert toks[0] == ("id", "index")
        assert toks[1] == ("punct", "-")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestNumbers:
    def test_decimal(self):
        assert kinds("42") == [("int", 42)]

    def test_hex_and_octal(self):
        assert kinds("0x1F 010") == [("int", 31), ("int", 8)]

    def test_float_forms(self):
        assert kinds("1.5")[0] == ("float", 1.5)
        assert kinds("1e3")[0] == ("float", 1000.0)
        assert kinds("2.5e-1")[0] == ("float", 0.25)
        assert kinds(".5")[0] == ("float", 0.5)

    def test_range_dots_not_float(self):
        """'0..9' in an index-set definition must not lex as floats."""
        toks = kinds("0..9")
        assert toks == [("int", 0), ("punct", ".."), ("int", 9)]

    def test_range_after_expression(self):
        toks = kinds("{N-1..2*N}")
        values = [t[1] for t in toks]
        assert ".." in values


class TestStringsAndChars:
    def test_string(self):
        assert kinds('"hi"') == [("string", "hi")]

    def test_string_escapes(self):
        assert kinds(r'"a\nb\t\"q\""') == [("string", 'a\nb\t"q"')]

    def test_char_literal(self):
        assert kinds("'A'") == [("char", 65)]

    def test_char_escape(self):
        assert kinds(r"'\n'") == [("char", 10)]

    def test_unterminated_string(self):
        with pytest.raises(UCSyntaxError):
            tokenize('"abc')

    def test_unknown_escape(self):
        with pytest.raises(UCSyntaxError):
            tokenize(r'"\q"')


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("id", "a"), ("id", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("id", "a"), ("id", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(UCSyntaxError):
            tokenize("/* never ends")

    def test_preprocessor_lines_skipped(self):
        assert kinds("#define N 32\na") == [("id", "a")]


class TestOperators:
    def test_multichar_punct(self):
        toks = [t[1] for t in kinds("== != <= >= && || << >> += -=")]
        assert toks == ["==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-="]

    @pytest.mark.parametrize(
        "text,op",
        [
            ("$+", "add"),
            ("$*", "mul"),
            ("$&&", "logand"),
            ("$||", "logor"),
            ("$^", "logxor"),
            ("$>", "max"),
            ("$<", "min"),
            ("$,", "arbitrary"),
        ],
    )
    def test_reduction_operators(self, text, op):
        assert kinds(text) == [("redop", op)]

    def test_bad_reduction_operator(self):
        with pytest.raises(UCSyntaxError):
            tokenize("$%")

    def test_unexpected_character(self):
        with pytest.raises(UCSyntaxError):
            tokenize("a @ b")

    def test_inf_keyword(self):
        assert kinds("INF") == [("keyword", "INF")]
