"""Parser tests."""

import pytest

from repro.lang import ast, parse_expression, parse_program, parse_statement
from repro.lang.errors import UCSyntaxError


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_left_associativity(self):
        e = parse_expression("8 - 4 - 2")
        assert e.op == "-" and isinstance(e.left, ast.Binary)
        assert e.left.op == "-"

    def test_parentheses(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*" and isinstance(e.left, ast.Binary)

    def test_comparison_chain_levels(self):
        e = parse_expression("a < b == c")
        assert e.op == "=="

    def test_logical_levels(self):
        e = parse_expression("a || b && c")
        assert e.op == "||"
        assert isinstance(e.right, ast.Binary) and e.right.op == "&&"

    def test_ternary(self):
        e = parse_expression("a ? b : c ? d : e")
        assert isinstance(e, ast.Ternary)
        assert isinstance(e.els, ast.Ternary)  # right-associative

    def test_unary(self):
        e = parse_expression("-a")
        assert isinstance(e, ast.Unary) and e.op == "-"
        e = parse_expression("!x")
        assert e.op == "!"
        assert isinstance(parse_expression("+a"), ast.Name)  # unary plus folds

    def test_index_chain(self):
        e = parse_expression("d[i][j]")
        assert isinstance(e, ast.Index)
        assert e.base == "d" and len(e.subs) == 2

    def test_call(self):
        e = parse_expression("power2(i + 1)")
        assert isinstance(e, ast.Call)
        assert e.func == "power2" and len(e.args) == 1

    def test_call_no_args(self):
        e = parse_expression("rand()")
        assert isinstance(e, ast.Call) and e.args == []

    def test_assignment_right_assoc(self):
        e = parse_expression("a = b = 1")
        assert isinstance(e, ast.Assign)
        assert isinstance(e.value, ast.Assign)

    def test_compound_assignment(self):
        e = parse_expression("a[i] += 2")
        assert isinstance(e, ast.Assign) and e.op == "+"

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(UCSyntaxError):
            parse_expression("3 = x")

    def test_incdec(self):
        e = parse_expression("a++")
        assert isinstance(e, ast.IncDec) and e.op == "++"
        e = parse_expression("--a")
        assert isinstance(e, ast.IncDec) and e.op == "--"

    def test_inf(self):
        assert isinstance(parse_expression("INF"), ast.InfLit)

    def test_trailing_garbage(self):
        with pytest.raises(UCSyntaxError):
            parse_expression("a + b c")


class TestReductions:
    def test_simple_with_semicolon(self):
        e = parse_expression("$+(I; a[i])")
        assert isinstance(e, ast.Reduction)
        assert e.op == "add" and e.index_sets == ["I"]
        assert len(e.arms) == 1 and e.arms[0].pred is None

    def test_with_predicate(self):
        e = parse_expression("$<(I st (a[i] == mn) i)")
        assert e.op == "min"
        assert e.arms[0].pred is not None

    def test_multiple_index_sets(self):
        e = parse_expression("$>(I, J; a[i] + b[j])")
        assert e.index_sets == ["I", "J"]

    def test_multi_arm_with_others(self):
        e = parse_expression("$+(I st (a[i] > 0) a[i] others -a[i])")
        assert len(e.arms) == 1 and e.others is not None

    def test_two_arms(self):
        e = parse_expression("$+(I st (a[i] > 0) 1 st (a[i] < 0) 2)")
        assert len(e.arms) == 2

    def test_optional_semicolon_before_st(self):
        e = parse_expression("$+(I; st (a[i] > 0) a[i])")
        assert e.arms[0].pred is not None

    def test_nested_reduction(self):
        e = parse_expression("$>(I st (a[i] == $>(J; a[j])) i)")
        inner = e.arms[0].pred.right
        assert isinstance(inner, ast.Reduction)

    def test_missing_body_rejected(self):
        with pytest.raises(UCSyntaxError):
            parse_expression("$+(I)")


class TestStatements:
    def test_expression_statement(self):
        s = parse_statement("a = 1;")
        assert isinstance(s, ast.ExprStmt)

    def test_block(self):
        s = parse_statement("{ a = 1; b = 2; }")
        assert isinstance(s, ast.Block) and len(s.stmts) == 2

    def test_if_else(self):
        s = parse_statement("if (a) b = 1; else b = 2;")
        assert isinstance(s, ast.If) and s.els is not None

    def test_dangling_else_binds_inner(self):
        s = parse_statement("if (a) if (b) x = 1; else x = 2;")
        assert s.els is None
        assert isinstance(s.then, ast.If) and s.then.els is not None

    def test_while(self):
        assert isinstance(parse_statement("while (a) b = 1;"), ast.While)

    def test_do_while(self):
        assert isinstance(parse_statement("do a = 1; while (a);"), ast.DoWhile)

    def test_for(self):
        s = parse_statement("for (k = 0; k < N; k++) a = k;")
        assert isinstance(s, ast.For)
        assert s.init is not None and s.cond is not None and s.step is not None

    def test_for_empty_clauses(self):
        s = parse_statement("for (;;) a = 1;")
        assert s.init is None and s.cond is None and s.step is None

    def test_return_break_continue(self):
        assert isinstance(parse_statement("return 1 + 2;"), ast.Return)
        assert parse_statement("return;").value is None
        assert isinstance(parse_statement("break;"), ast.Break)
        assert isinstance(parse_statement("continue;"), ast.Continue)

    def test_goto_rejected(self):
        with pytest.raises(UCSyntaxError):
            parse_statement("goto label;")

    def test_local_decl(self):
        s = parse_statement("int rank;")
        assert isinstance(s, ast.VarDecl) and s.name == "rank"

    def test_local_decl_list_is_scopeless_group(self):
        s = parse_statement("int a, b;")
        assert isinstance(s, ast.DeclGroup) and len(s.decls) == 2

    def test_empty_statement(self):
        assert isinstance(parse_statement(";"), ast.EmptyStmt)

    def test_unterminated_block(self):
        with pytest.raises(UCSyntaxError):
            parse_statement("{ a = 1;")


class TestUCConstructs:
    def test_simple_par(self):
        s = parse_statement("par (I) a[i] = 0;")
        assert isinstance(s, ast.UCStmt)
        assert s.kind == "par" and not s.star
        assert s.index_sets == ["I"]
        assert len(s.blocks) == 1 and s.blocks[0].pred is None

    def test_star_par(self):
        s = parse_statement("*par (I) st (a[i]) a[i] = 0;")
        assert s.star

    def test_multiple_index_sets(self):
        s = parse_statement("par (I, J) d[i][j] = 0;")
        assert s.index_sets == ["I", "J"]

    def test_st_blocks_and_others(self):
        s = parse_statement(
            "par (I) st (i % 2 == 0) a[i] = 0; st (i % 3 == 0) a[i] = 1; "
            "others a[i] = 2;"
        )
        assert len(s.blocks) == 2
        assert s.others is not None

    def test_seq_solve_oneof(self):
        for kind in ("seq", "solve", "oneof"):
            s = parse_statement(f"{kind} (I) a[i] = 0;")
            assert s.kind == kind

    def test_nested_st_binds_innermost(self):
        """The dangling-st rule (§3.4): like C's dangling else."""
        s = parse_statement(
            "par (I) par (J) st (i == j) d[i][j] = 0; others d[i][j] = 1;"
        )
        outer = s
        assert outer.blocks[0].pred is None
        inner = outer.blocks[0].stmt
        assert isinstance(inner, ast.UCStmt)
        assert inner.blocks[0].pred is not None
        assert inner.others is not None

    def test_braces_force_outer_binding(self):
        s = parse_statement(
            "par (I) st (i > 0) { par (J) d[i][j] = 0; } others a[i] = 1;"
        )
        assert s.others is not None
        assert isinstance(s.blocks[0].stmt, ast.Block)

    def test_par_body_sequence(self):
        s = parse_statement("par (I) { int rank; rank = 1; a[rank] = a[i]; }")
        body = s.blocks[0].stmt
        assert isinstance(body, ast.Block) and len(body.stmts) == 3


class TestProgramLevel:
    def test_full_program(self):
        p = parse_program(
            """
            int N = 4;
            index_set I:i = {0..N-1}, J:j = I;
            int a[4], s;
            float avg;
            int helper(int x) { return x + 1; }
            map (I) { permute (I) a[i] :- a[i]; }
            main { par (I) a[i] = helper(i); }
            """
        )
        assert len([d for d in p.decls if isinstance(d, ast.IndexSetDecl)]) == 2
        assert len([d for d in p.decls if isinstance(d, ast.VarDecl)]) == 4
        assert len(p.funcs) == 1
        assert len(p.maps) == 1
        assert p.main is not None

    def test_index_set_forms(self):
        p = parse_program("index_set I:i = {0..9}, L:l = {4, 2, 9}, K:k = I;")
        specs = [d.spec.kind for d in p.decls]
        assert specs == ["range", "listing", "alias"]

    def test_void_main_form(self):
        p = parse_program("void main() { ; }")
        assert p.main is not None

    def test_int_main_form(self):
        p = parse_program("int main() { return 0; }")
        assert p.main is not None

    def test_main_with_parens(self):
        p = parse_program("main () { ; }")
        assert p.main is not None

    def test_function_with_array_params(self):
        p = parse_program("void f(int a[], int b[4][4], float x) { ; }")
        f = p.funcs[0]
        assert f.params[0].dims == 1
        assert f.params[1].dims == 2
        assert f.params[2].dims == 0

    def test_map_section_syntax(self):
        p = parse_program(
            """
            index_set I:i = {0..7};
            int a[8], b[8];
            map (I) {
                permute (I) b[i+1] :- a[i];
                fold (I) a[i+4] :- a[i];
                copy (I, I) b[i][i] :- b[i];
            }
            """
        )
        kinds = [d.kind for d in p.maps[0].decls]
        assert kinds == ["permute", "fold", "copy"]

    def test_top_level_garbage(self):
        with pytest.raises(UCSyntaxError):
            parse_program("42;")

    def test_walk_and_children(self):
        p = parse_program("main { par (I) a[i] = 0; }")
        nodes = list(ast.walk(p))
        assert any(isinstance(n, ast.UCStmt) for n in nodes)
        assert any(isinstance(n, ast.Assign) for n in nodes)
