"""Error-quality tests: positions and messages carry enough to act on."""

import pytest

from repro.lang import analyze, parse_program
from repro.lang.errors import (
    UCError,
    UCRuntimeError,
    UCSemanticError,
    UCSyntaxError,
)
from repro.lang.lexer import tokenize


def syntax_error(src):
    with pytest.raises(UCSyntaxError) as exc:
        parse_program(src)
    return exc.value


def semantic_error(src, defines=None):
    with pytest.raises(UCSemanticError) as exc:
        analyze(parse_program(src), defines)
    return exc.value


class TestPositions:
    def test_lexer_position(self):
        with pytest.raises(UCSyntaxError) as exc:
            tokenize("ok\nok @")
        assert exc.value.line == 2
        assert exc.value.col == 4

    def test_parser_position(self):
        err = syntax_error("int a[4];\nmain { par () a = 1; }")
        assert err.line == 2

    def test_semantic_position(self):
        err = semantic_error("int x;\n\nindex_set I:i = {0..y};")
        assert err.line == 3

    def test_position_in_message_text(self):
        err = semantic_error("index_set I:i = {5..2};")
        assert "line 1" in str(err)


class TestMessages:
    def test_goto_message_cites_the_paper_rule(self):
        err = syntax_error("main { goto out; }")
        assert "goto" in err.message

    def test_undeclared_names_the_identifier(self):
        err = semantic_error("main { mystery = 1; }")
        assert "mystery" in err.message

    def test_wrong_kind_says_what_it_is(self):
        err = semantic_error("index_set I:i = {0..3};\nmain { par (I) I = 1; }")
        assert "index_set" in err.message

    def test_arity_error_reports_counts(self):
        err = semantic_error(
            "int f(int a, int b) { return a; }\nmain { f(1); }"
        )
        assert "2" in err.message and "1" in err.message

    def test_multiple_assignment_mentions_the_fix(self):
        from repro.interp.program import UCProgram
        from repro.lang.errors import UCMultipleAssignmentError
        import numpy as np

        src = (
            "index_set I:i = {0..3}, J:j = I;\nint a[4], b[4];\n"
            "main { par (I, J) a[i] = b[j]; }"
        )
        with pytest.raises(UCMultipleAssignmentError) as exc:
            UCProgram(src).run({"b": np.array([1, 2, 3, 4])})
        assert "$," in str(exc.value)

    def test_subscript_error_reports_value_and_extent(self):
        from repro.interp.program import UCProgram

        src = "index_set I:i = {0..7};\nint a[4];\nmain { par (I) a[i] = 0; }"
        with pytest.raises(UCRuntimeError) as exc:
            UCProgram(src).run()
        msg = str(exc.value)
        assert "extent 4" in msg

    def test_error_hierarchy(self):
        assert issubclass(UCSyntaxError, UCError)
        assert issubclass(UCSemanticError, UCError)
        assert issubclass(UCRuntimeError, UCError)
