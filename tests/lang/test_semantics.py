"""Semantic-analysis tests."""

import pytest

from repro.lang import analyze, parse_program
from repro.lang.errors import UCSemanticError


def check(src, defines=None):
    return analyze(parse_program(src), defines)


class TestIndexSets:
    def test_range_values(self):
        info = check("index_set I:i = {0..4};")
        assert info.index_sets["I"].values == (0, 1, 2, 3, 4)
        assert info.index_sets["I"].elem_name == "i"

    def test_listing_values_keep_order(self):
        info = check("index_set L:l = {4, 2, 9};")
        assert info.index_sets["L"].values == (4, 2, 9)

    def test_alias_shares_values(self):
        info = check("index_set I:i = {0..3}, J:j = I;")
        assert info.index_sets["J"].values == info.index_sets["I"].values
        assert info.index_sets["J"].elem_name == "j"

    def test_defines_in_bounds(self):
        info = check("index_set I:i = {0..N-1};", defines={"N": 6})
        assert len(info.index_sets["I"]) == 6

    def test_const_scalar_as_bound(self):
        info = check("int N = 5;\nindex_set I:i = {0..N-1};")
        assert len(info.index_sets["I"]) == 5

    def test_constant_arithmetic(self):
        info = check("index_set I:i = {2*3..2*3+1};")
        assert info.index_sets["I"].values == (6, 7)

    def test_empty_range_rejected(self):
        with pytest.raises(UCSemanticError):
            check("index_set I:i = {5..2};")

    def test_unknown_alias_rejected(self):
        with pytest.raises(UCSemanticError):
            check("index_set J:j = K;")

    def test_non_constant_bound_rejected(self):
        with pytest.raises(UCSemanticError):
            check("int x;\nindex_set I:i = {0..x};")

    def test_duplicate_set_rejected(self):
        with pytest.raises(UCSemanticError):
            check("index_set I:i = {0..3};\nindex_set I:x = {0..3};")

    def test_element_collides_with_variable(self):
        with pytest.raises(UCSemanticError):
            check("int i;\nindex_set I:i = {0..3};")


class TestVariables:
    def test_array_dims_recorded(self):
        info = check("int d[4][8];")
        assert info.arrays["d"] == ("int", (4, 8))

    def test_scalar_types(self):
        info = check("float avg; int s;")
        assert info.scalars == {"avg": "float", "s": "int"}

    def test_const_initializer_becomes_constant(self):
        info = check("int N = 32;")
        assert info.constants["N"] == 32

    def test_zero_extent_rejected(self):
        with pytest.raises(UCSemanticError):
            check("int a[0];")

    def test_array_initializer_rejected(self):
        with pytest.raises(UCSemanticError):
            check("int a[4] = 1;")

    def test_non_constant_dim_rejected(self):
        with pytest.raises(UCSemanticError):
            check("int x; int a[x];")


class TestUseChecks:
    def test_undeclared_identifier(self):
        with pytest.raises(UCSemanticError):
            check("main { x = 1; }")

    def test_unknown_index_set_in_par(self):
        with pytest.raises(UCSemanticError):
            check("main { par (Q) x = 1; }")

    def test_element_visible_inside_construct(self):
        check(
            "index_set I:i = {0..3};\nint a[4];\nmain { par (I) a[i] = i; }"
        )

    def test_same_element_twice_in_product_rejected(self):
        with pytest.raises(UCSemanticError):
            check(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { par (I, I) a[i] = 0; }"
            )

    def test_distinct_elements_ok(self):
        check(
            "index_set I:i = {0..3}, J:j = I;\nint d[4][4];\n"
            "main { par (I, J) d[i][j] = 0; }"
        )

    def test_over_subscripting_rejected(self):
        with pytest.raises(UCSemanticError):
            check(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { par (I) a[i][i] = 0; }"
            )

    def test_reduction_elements_scoped(self):
        check(
            "index_set I:i = {0..3};\nint a[4], s;\n"
            "main { s = $+(I; a[i]); }"
        )
        with pytest.raises(UCSemanticError):
            check("index_set I:i = {0..3};\nint a[4], s;\nmain { s = a[i]; }")

    def test_shadowing_allowed(self):
        """§3.4: reuse of an index set rebinds its element."""
        check(
            "index_set I:i = {0..9};\nint a[10];\n"
            "main { par (I) st (i % 2 == 0) a[i] = $+(I; i); }"
        )

    def test_others_needs_st_arm(self):
        from repro.lang.errors import UCError

        with pytest.raises(UCError):  # rejected at parse or analysis time
            check(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { par (I) a[i] = 0; others a[i] = 1; }"
            )


class TestFunctions:
    def test_builtin_arity(self):
        with pytest.raises(UCSemanticError):
            check("main { power2(1, 2); }")

    def test_user_function_arity(self):
        src = "int f(int x) { return x; }\nmain { f(1, 2); }"
        with pytest.raises(UCSemanticError):
            check(src)

    def test_duplicate_function(self):
        with pytest.raises(UCSemanticError):
            check("int f() { return 0; }\nint f() { return 1; }")

    def test_user_function_overrides_builtin(self):
        info = check("int power2(int x) { return 1 << x; }")
        assert "power2" in info.functions

    def test_unknown_function(self):
        with pytest.raises(UCSemanticError):
            check("main { frobnicate(); }")


class TestSolveChecks:
    def test_proper_set_accepted(self):
        check(
            "index_set I:i = {0..3}, J:j = I;\nint a[4][4];\n"
            "main { solve (I, J) a[i][j] = 1; }"
        )

    def test_two_statements_same_target_rejected(self):
        with pytest.raises(UCSemanticError):
            check(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { solve (I) { a[i] = 1; a[i] = 2; } }"
            )

    def test_two_statements_distinct_targets_ok(self):
        check(
            "index_set I:i = {0..3};\nint a[4], b[4];\n"
            "main { solve (I) { a[i] = 1; b[i] = a[i]; } }"
        )

    def test_non_assignment_body_rejected(self):
        with pytest.raises(UCSemanticError):
            check(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { solve (I) if (a[i]) a[i] = 1; }"
            )

    def test_star_solve_exempt_from_single_assignment(self):
        check(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { *solve (I) { a[i] = 1; a[i] = a[i] + 0; } }"
        )


class TestMapSections:
    SRC = "index_set I:i = {0..7};\nint a[8], b[8];\n"

    def test_valid_permute(self):
        check(self.SRC + "map (I) { permute (I) b[i+1] :- a[i]; }")

    def test_unknown_array(self):
        with pytest.raises(UCSemanticError):
            check(self.SRC + "map (I) { permute (I) q[i] :- a[i]; }")

    def test_unknown_index_set(self):
        with pytest.raises(UCSemanticError):
            check(self.SRC + "map (Z) { permute (Z) b[z] :- a[z]; }")

    def test_rank_mismatch(self):
        with pytest.raises(UCSemanticError):
            check(self.SRC + "map (I) { permute (I) b[i][i] :- a[i]; }")

    def test_fold_must_fold_self(self):
        with pytest.raises(UCSemanticError):
            check(self.SRC + "map (I) { fold (I) b[i+4] :- a[i]; }")

    def test_copy_needs_extra_subscript(self):
        with pytest.raises(UCSemanticError):
            check(self.SRC + "map (I) { copy (I) b[i] :- b[i]; }")


class TestErrorPositions:
    """Analyzer errors must carry the offending source position (used by
    ``repro lint`` to anchor UC002 diagnostics) and a precise message."""

    @staticmethod
    def fails(src, defines=None):
        with pytest.raises(UCSemanticError) as exc:
            check(src, defines)
        return exc.value

    def test_non_constant_bound_names_symbol_and_line(self):
        err = self.fails("int x;\nindex_set I:i = {0..x};")
        assert "'x' is not a compile-time constant" in err.message
        assert err.line == 2 and err.col > 0

    def test_division_by_zero_in_constant(self):
        err = self.fails("index_set I:i = {0..4/0};")
        assert "division by zero in constant" in err.message
        assert err.line == 1 and err.col > 0

    def test_empty_range_reports_bounds(self):
        err = self.fails("index_set I:i = {5..2};")
        assert "empty index-set range {5..2} for 'I'" in err.message
        assert err.line == 1

    def test_unknown_alias_names_both_sets(self):
        err = self.fails("index_set I:i = {0..3};\nindex_set J:j = K;")
        assert "index set 'J' aliases unknown set 'K'" in err.message
        assert err.line == 2

    def test_element_collision_reports_existing_kind(self):
        err = self.fails("int i;\nindex_set I:i = {0..3};")
        assert "element name 'i' collides with a" in err.message
        assert err.line == 2

    def test_duplicate_function_positions_at_second_def(self):
        err = self.fails(
            "int f(int x) { return x; }\nint f(int y) { return y; }\nmain { }"
        )
        assert "duplicate function 'f'" in err.message
        assert err.line == 2

    def test_non_positive_extent_reports_value(self):
        err = self.fails("int a[0];")
        assert "array 'a' has non-positive extent 0" in err.message
        assert err.line == 1

    def test_array_initializer_rejected(self):
        err = self.fails("int a[4] = 3;")
        assert "array 'a' cannot have an initializer" in err.message
        assert err.line == 1

    def test_map_unknown_array(self):
        err = self.fails(
            "index_set I:i = {0..7};\nint a[8];\n"
            "map (I) { permute (I) q[i] :- a[i]; }"
        )
        assert "map section references unknown array 'q'" in err.message
        assert err.line == 3

    def test_map_rank_mismatch_reports_both_ranks(self):
        err = self.fails(
            "index_set I:i = {0..7};\nint a[8], b[8];\n"
            "map (I) { permute (I) b[i][i] :- a[i]; }"
        )
        assert "has 2 subscripts, array rank is 1" in err.message
        assert err.line == 3

    def test_duplicate_element_in_cartesian_product(self):
        err = self.fails(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I, I) a[i] = 0; }"
        )
        assert "element identifier 'i' appears twice" in err.message
        assert err.line == 3

    def test_fold_onto_other_array(self):
        err = self.fails(
            "index_set I:i = {0..7};\nint a[8], b[8];\n"
            "map (I) { fold (I) b[i+4] :- a[i]; }"
        )
        assert "fold mapping must fold an array onto itself" in err.message
        assert err.line == 3

    def test_solve_multiple_statements_per_array(self):
        err = self.fails(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { solve (I) { a[0] = 1; a[i] = a[i - 1]; } }"
        )
        assert (
            "solve body assigns 'a' in more than one statement" in err.message
        )
        assert err.line == 3

    def test_solve_body_non_assignment(self):
        err = self.fails(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { solve (I) { print(i); } }"
        )
        assert (
            "solve body must consist solely of assignment statements"
            in err.message
        )
        assert err.line == 3

    def test_over_subscripted_array_reports_ranks(self):
        err = self.fails(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) a[i][i] = 0; }"
        )
        assert "indexed with 2 subscripts, rank is 1" in err.message
        assert err.line == 3

    def test_assign_to_index_set_element(self):
        err = self.fails(
            "index_set I:i = {0..3};\nint a[4];\nmain { par (I) i = 0; }"
        )
        assert "cannot assign to 'i'" in err.message
        assert err.line == 3

    def test_user_function_arity_reports_counts(self):
        err = self.fails(
            "int f(int x) { return x; }\nint y;\nmain { y = f(1, 2); }"
        )
        assert "function 'f' takes 1 argument(s), got 2" in err.message
        assert err.line == 3

    def test_builtin_arity_reports_counts(self):
        err = self.fails("int y;\nmain { y = max(1); }")
        assert "builtin 'max' takes 2 argument(s), got 1" in err.message
        assert err.line == 2
