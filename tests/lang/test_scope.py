"""Scope / symbol-table tests."""

import pytest

from repro.lang.errors import UCSemanticError
from repro.lang.scope import IndexSetValue, Scope, ScopeStack, Symbol


class TestIndexSetValue:
    def test_basics(self):
        isv = IndexSetValue("I", "i", (0, 1, 2))
        assert len(isv) == 3
        assert list(isv) == [0, 1, 2]
        assert 2 in isv and 5 not in isv

    def test_with_element(self):
        isv = IndexSetValue("I", "i", (0, 1))
        j = isv.with_element("j")
        assert j.values == isv.values and j.elem_name == "j"


class TestScope:
    def test_declare_and_lookup(self):
        s = Scope()
        s.declare(Symbol("x", "scalar"))
        assert s.lookup("x").kind == "scalar"
        assert s.lookup("y") is None

    def test_duplicate_in_same_scope(self):
        s = Scope()
        s.declare(Symbol("x", "scalar"))
        with pytest.raises(UCSemanticError):
            s.declare(Symbol("x", "array"))

    def test_parent_chain(self):
        outer = Scope()
        outer.declare(Symbol("x", "scalar"))
        inner = Scope(outer)
        assert inner.lookup("x") is not None
        assert inner.lookup_local("x") is None

    def test_shadowing(self):
        outer = Scope()
        outer.declare(Symbol("x", "scalar"))
        inner = Scope(outer)
        inner.declare(Symbol("x", "element"))
        assert inner.lookup("x").kind == "element"
        assert outer.lookup("x").kind == "scalar"


class TestScopeStack:
    def test_push_pop(self):
        st = ScopeStack()
        st.declare(Symbol("g", "scalar"))
        st.push()
        st.declare(Symbol("l", "scalar"))
        assert st.lookup("l") is not None
        st.pop()
        assert st.lookup("l") is None
        assert st.lookup("g") is not None

    def test_cannot_pop_global(self):
        with pytest.raises(RuntimeError):
            ScopeStack().pop()

    def test_require_kind(self):
        st = ScopeStack()
        st.declare(Symbol("I", "index_set"))
        assert st.require("I", "index_set").name == "I"
        with pytest.raises(UCSemanticError):
            st.require("I", "array")
        with pytest.raises(UCSemanticError):
            st.require("missing")

    def test_scoped_context_manager(self):
        st = ScopeStack()
        with st.scoped():
            st.declare(Symbol("tmp", "scalar"))
            assert st.lookup("tmp") is not None
        assert st.lookup("tmp") is None
