"""Common-subexpression detection tests (§4's code optimization)."""

import numpy as np
import pytest

from repro.interp.program import UCProgram


def both(src, inputs=None, **kw):
    on = UCProgram(src, cse=True, **kw).run(dict(inputs or {}))
    off = UCProgram(src, cse=False, **kw).run(dict(inputs or {}))
    return on, off


RELAX = """
index_set I:i = {0..7}, J:j = I, K:k = I;
int d[8][8];
main {
    seq (K)
      par (I, J)
        st (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
}
"""


class TestEquivalence:
    def test_relaxation_same_results_cheaper(self):
        from repro.algorithms import floyd_warshall, random_distance_matrix

        dist = random_distance_matrix(8, seed=2)
        on, off = both(RELAX, {"d": dist})
        ref = floyd_warshall(dist)
        assert np.array_equal(on["d"], ref)
        assert np.array_equal(off["d"], ref)
        # pred and body share d[i][k] + d[k][j]: two spreads + adds saved
        assert on.elapsed_us < off.elapsed_us
        assert on.counts["scan_step"] < off.counts["scan_step"]

    def test_repeated_subexpression_in_one_statement(self):
        src = (
            "index_set I:i = {0..15};\nint a[16], b[16];\n"
            "main { par (I) a[i] = (b[i] * 3) + (b[i] * 3); }"
        )
        b = np.arange(16)
        on, off = both(src, {"b": b})
        assert np.array_equal(on["a"], b * 6)
        assert np.array_equal(off["a"], b * 6)
        assert on.counts["alu"] < off.counts["alu"]

    def test_obstacle_relaxation_matches(self):
        from repro.algorithms.grid_path import (
            BIG,
            grid_reference_distances,
            obstacle_mask,
        )
        from repro.bench.workloads import OBSTACLE_UC

        on, off = both(OBSTACLE_UC, defines={"R": 16, "WALL": BIG})
        ref = grid_reference_distances(16)
        free = ~obstacle_mask(16)
        assert np.array_equal(np.asarray(on["a"])[free], ref[free])
        assert np.array_equal(np.asarray(off["a"])[free], ref[free])
        assert on.elapsed_us < 0.75 * off.elapsed_us


class TestCorrectnessGuards:
    def test_rand_never_cached(self):
        """Impure expressions must evaluate each time they appear."""
        src = (
            "index_set I:i = {0..63};\nint a[64], b[64];\n"
            "main { par (I) { a[i] = rand() % 1000; b[i] = rand() % 1000; } }"
        )
        on = UCProgram(src, cse=True).run()
        assert not np.array_equal(on["a"], on["b"])

    def test_writes_invalidate_within_a_body(self):
        """The second statement must see the first statement's writes."""
        src = (
            "index_set I:i = {0..7};\nint a[8], b[8], c[8];\n"
            "main { par (I) { b[i] = a[i] + 1; a[i] = 9; c[i] = a[i] + 1; } }"
        )
        on, off = both(src)
        assert on["b"].tolist() == [1] * 8
        assert on["c"].tolist() == [10] * 8
        assert np.array_equal(on["c"], off["c"])

    def test_local_shadowing_invalidates(self):
        """A parallel local shadowing a global must not reuse stale values."""
        src = (
            "index_set I:i = {0..3};\nint x, a[4], b[4];\n"
            "main { x = 5; par (I) { a[i] = x + 1; int x; x = i; "
            "b[i] = x + 1; } }"
        )
        on, off = both(src)
        assert on["a"].tolist() == [6, 6, 6, 6]
        assert on["b"].tolist() == [1, 2, 3, 4]
        assert np.array_equal(on["b"], off["b"])

    def test_seq_rebinding_invalidates(self):
        """Cached expressions naming the seq element must refresh."""
        src = (
            "index_set I:i = {0..3}, K:k = {0..2};\nint m[3][4];\n"
            "main { par (I) seq (K) m[k][i] = k * 10 + i; }"
        )
        on, off = both(src)
        assert np.array_equal(on["m"], off["m"])
        assert on["m"][2][3] == 23

    def test_function_params_not_leaked(self):
        src = (
            "int plus1(int x) { return x + 1; }\n"
            "index_set I:i = {0..3};\nint a[4], b[4];\n"
            "main { par (I) { a[i] = plus1(i); b[i] = plus1(i * 10); } }"
        )
        on, off = both(src)
        assert on["a"].tolist() == [1, 2, 3, 4]
        assert on["b"].tolist() == [1, 11, 21, 31]
        assert np.array_equal(on["b"], off["b"])

    def test_masked_reuse_is_subset_safe(self):
        """A value computed under a narrow mask must not serve a wider one."""
        src = (
            "index_set I:i = {0..7};\nint a[8], b[8];\n"
            "main { par (I) st (i > 3) b[i] = a[i - 2]; "
            "others b[i] = 7; }"
        )
        a = np.arange(10, 18)
        on, off = both(src, {"a": a})
        assert np.array_equal(on["b"], off["b"])
        assert on["b"].tolist() == [7, 7, 7, 7, 12, 13, 14, 15]

    def test_star_par_sweeps_do_not_leak(self):
        """Each *par sweep re-evaluates its predicate against fresh state."""
        src = (
            "index_set I:i = {0..7};\nint a[8];\n"
            "main { par (I) a[i] = i; *par (I) st (a[i] > 0) a[i] = a[i] - 1; }"
        )
        on, off = both(src)
        assert on["a"].tolist() == [0] * 8
        assert np.array_equal(on["a"], off["a"])


class TestBroadEquivalence:
    """Every headline workload must be CSE-invariant."""

    def test_paper_workloads(self):
        from repro.algorithms import (
            floyd_warshall,
            random_distance_matrix,
            wavefront_matrix,
        )
        from repro.bench.workloads import (
            APSP_N3_UC,
            PREFIX_STARPAR_UC,
            RANKSORT_UC,
            WAVEFRONT_UC,
            log2_ceil,
        )

        dist = random_distance_matrix(8, seed=4)
        on, off = both(
            APSP_N3_UC, {"d": dist}, defines={"N": 8, "LOGN": log2_ceil(8)}
        )
        assert np.array_equal(on["d"], off["d"])
        assert np.array_equal(on["d"], floyd_warshall(dist))

        on, off = both(WAVEFRONT_UC, defines={"N": 8})
        assert np.array_equal(on["a"], wavefront_matrix(8))
        assert np.array_equal(on["a"], off["a"])

        on, off = both(PREFIX_STARPAR_UC, defines={"N": 32})
        assert np.array_equal(on["a"], np.cumsum(np.arange(32)))
        assert np.array_equal(on["a"], off["a"])

        data = np.random.default_rng(1).permutation(16)
        on, off = both(RANKSORT_UC, {"a": data}, defines={"N": 16})
        assert on["a"].tolist() == sorted(data.tolist())
        assert np.array_equal(on["a"], off["a"])


class TestTargetedInvalidation:
    """Writes only evict cache entries that *read* the written name — a
    cached subexpression survives writes to unrelated arrays."""

    SRC = (
        "index_set I:i = {0..15};\nint a[16], b[16], c[16], d[16];\n"
        "main { par (I) { b[i] = (a[i] * 3) + 1; c[i] = 7; "
        "d[i] = (a[i] * 3) + 2; } }"
    )
    #: same shape, but the middle write hits the array the subexpression
    #: reads, so the cache entry must die and a[i] * 3 recomputes
    SRC_CLOBBER = (
        "index_set I:i = {0..15};\nint a[16], b[16], c[16], d[16];\n"
        "main { par (I) { b[i] = (a[i] * 3) + 1; a[i] = a[i]; "
        "d[i] = (a[i] * 3) + 2; } }"
    )

    def test_survives_unrelated_write(self):
        a = np.arange(16)
        on, off = both(self.SRC, {"a": a})
        assert np.array_equal(on["d"], a * 3 + 2)
        assert np.array_equal(on["d"], off["d"])
        # a[i] * 3 is computed once under CSE: one multiply saved
        assert on.counts["alu"] < off.counts["alu"]

    def test_dies_on_related_write(self):
        a = np.arange(16)
        keep = UCProgram(self.SRC, cse=True).run({"a": a})
        clobber = UCProgram(self.SRC_CLOBBER, cse=True).run({"a": a})
        assert np.array_equal(keep["d"], clobber["d"])
        # the clobbering variant must recompute the multiply
        assert keep.counts["alu"] < clobber.counts["alu"]
