"""Processor-optimization (send-reduce) execution-path tests."""

import numpy as np
import pytest

from repro.machine import MachineConfig
from tests.conftest import run_uc

DIGIT = (
    "index_set I:i = {0..N-1}, J:j = {0..9};\n"
    "int samples[N];\nint count[10];\n"
    "main { par (J) count[j] = $+(I st (samples[i] == j) 1); }"
)


def both_ways(src, inputs, defines=None, **kw):
    on = run_uc(src, dict(inputs), defines=defines, processor_opt=True, **kw)
    off = run_uc(src, dict(inputs), defines=defines, processor_opt=False, **kw)
    return on, off


class TestEquivalence:
    def test_digit_count_matches_naive_and_reference(self):
        n = 300
        s = np.random.default_rng(8).integers(0, 10, n)
        # a small machine makes the optimization kick in at n=300
        cfg = MachineConfig(n_pes=256)
        on, off = both_ways(DIGIT, {"samples": s}, {"N": n}, machine_config=cfg)
        ref = np.bincount(s, minlength=10)
        assert np.array_equal(on["count"], ref)
        assert np.array_equal(off["count"], ref)

    def test_optimized_is_cheaper_when_vp_limited(self):
        n = 300
        s = np.random.default_rng(8).integers(0, 10, n)
        cfg = MachineConfig(n_pes=256)
        on, off = both_ways(DIGIT, {"samples": s}, {"N": n}, machine_config=cfg)
        assert on.elapsed_us < off.elapsed_us
        assert on.counts.get("router_send", 0) >= 1

    def test_no_change_when_product_fits(self):
        """The compiler keeps the naive form while 10*N fits the machine."""
        n = 64
        s = np.random.default_rng(8).integers(0, 10, n)
        on, off = both_ways(DIGIT, {"samples": s}, {"N": n})
        assert on.elapsed_us == pytest.approx(off.elapsed_us)

    @pytest.mark.parametrize("op,expected", [("$<", "min"), ("$>", "max")])
    def test_min_max_partitioned_reductions(self, op, expected):
        src = (
            "index_set I:i = {0..N-1}, J:j = {0..3};\n"
            "int key[N], val[N];\nint out[4];\n"
            f"main {{ par (J) out[j] = {op}(I st (key[i] == j) val[i]); }}"
        )
        n = 200
        rng = np.random.default_rng(3)
        key = rng.integers(0, 4, n)
        val = rng.integers(0, 1000, n)
        cfg = MachineConfig(n_pes=128)
        on, off = both_ways(src, {"key": key, "val": val}, {"N": n}, machine_config=cfg)
        fn = np.minimum if expected == "min" else np.maximum
        ref = [getattr(val[key == j], expected)() for j in range(4)]
        assert on["out"].tolist() == ref
        assert off["out"].tolist() == ref

    def test_extra_conjunct_respected(self):
        src = (
            "index_set I:i = {0..N-1}, J:j = {0..9};\n"
            "int samples[N];\nint count[10];\n"
            "main { par (J) count[j] = "
            "$+(I st (samples[i] == j && i % 2 == 0) 1); }"
        )
        n = 400
        s = np.random.default_rng(1).integers(0, 10, n)
        cfg = MachineConfig(n_pes=256)
        on, off = both_ways(src, {"samples": s}, {"N": n}, machine_config=cfg)
        ref = np.bincount(s[::2], minlength=10)
        assert np.array_equal(on["count"], ref)
        assert np.array_equal(off["count"], ref)

    def test_empty_buckets_get_identity(self):
        src = (
            "index_set I:i = {0..N-1}, J:j = {0..9};\n"
            "int samples[N];\nint count[10];\n"
            "main { par (J) count[j] = $+(I st (samples[i] == j) 1); }"
        )
        n = 300
        s = np.full(n, 4)  # everything in bucket 4
        cfg = MachineConfig(n_pes=64)
        on, _ = both_ways(src, {"samples": s}, {"N": n}, machine_config=cfg)
        assert on["count"].tolist() == [0, 0, 0, 0, n, 0, 0, 0, 0, 0]


class TestFallbacks:
    def test_non_partitioned_predicate_falls_back(self):
        """samples[i] < j does not partition; results must still be right."""
        src = (
            "index_set I:i = {0..N-1}, J:j = {0..9};\n"
            "int samples[N];\nint count[10];\n"
            "main { par (J) count[j] = $+(I st (samples[i] < j) 1); }"
        )
        n = 300
        s = np.random.default_rng(2).integers(0, 10, n)
        cfg = MachineConfig(n_pes=64)
        on, off = both_ways(src, {"samples": s}, {"N": n}, machine_config=cfg)
        ref = [(s < j).sum() for j in range(10)]
        assert on["count"].tolist() == ref
        assert on.elapsed_us == pytest.approx(off.elapsed_us)

    def test_masked_parent_falls_back(self):
        src = (
            "index_set I:i = {0..N-1}, J:j = {0..9};\n"
            "int samples[N];\nint count[10];\n"
            "main { par (J) st (j < 5) count[j] = "
            "$+(I st (samples[i] == j) 1); }"
        )
        n = 300
        s = np.random.default_rng(2).integers(0, 10, n)
        cfg = MachineConfig(n_pes=64)
        on, _ = both_ways(src, {"samples": s}, {"N": n}, machine_config=cfg)
        ref = np.bincount(s, minlength=10)
        ref[5:] = 0
        assert np.array_equal(on["count"], ref)
