"""Reduction tests (paper §3.2, figure 1)."""

import numpy as np
import pytest

from repro.machine.scan import INF
from tests.conftest import run_uc

HEADER = "index_set I:i = {0..9}, J:j = I;\nint a[10];\n"
A = np.array([5, 3, 8, 3, 9, 1, 7, 1, 9, 2])


def reduce_expr(expr, extra_decl="int out_;", out="out_", inputs=None):
    src = HEADER + extra_decl + "\nmain { " + f"{out} = {expr};" + " }"
    data = {"a": A}
    if inputs:
        data.update(inputs)
    return run_uc(src, data)[out]


class TestFigureOne:
    """The exact reductions of the paper's figure 1."""

    def test_sum_of_elements(self):
        assert reduce_expr("$+(I; i)") == 45

    def test_average(self):
        avg = reduce_expr("$+(I; a[i]) / 10.0", "float out_;")
        assert avg == pytest.approx(A.mean())

    def test_min_value(self):
        assert reduce_expr("$<(I; a[i])") == 1

    def test_first_occurrence_of_min(self):
        assert reduce_expr("$<(I st (a[i] == $<(J; a[j])) i)") == 5

    def test_arbitrary_occurrence_of_min(self):
        assert reduce_expr("$,(I st (a[i] == $<(J; a[j])) i)") in (5, 7)

    def test_last_occurrence_of_max_nested(self):
        assert reduce_expr("$>(I st (a[i] == $>(J; a[j])) i)") == 8


class TestOperators:
    def test_add(self):
        assert reduce_expr("$+(I; a[i])") == A.sum()

    def test_mul(self):
        assert reduce_expr("$*(I st (i < 4) a[i])") == 5 * 3 * 8 * 3

    def test_max(self):
        assert reduce_expr("$>(I; a[i])") == 9

    def test_logand(self):
        assert reduce_expr("$&&(I; a[i] > 0)") == 1
        assert reduce_expr("$&&(I; a[i] > 1)") == 0

    def test_logor(self):
        assert reduce_expr("$||(I; a[i] == 8)") == 1
        assert reduce_expr("$||(I; a[i] == 100)") == 0

    def test_logxor(self):
        # parity of the number of true operands
        assert reduce_expr("$^(I; a[i] == 9)") == 0  # two nines
        assert reduce_expr("$^(I; a[i] == 8)") == 1  # one eight

    def test_arbitrary_returns_an_operand(self):
        assert reduce_expr("$,(I; a[i])") in set(A.tolist())


class TestIdentities:
    """Empty reductions return the operator identity (§3.2 table)."""

    def test_add_identity(self):
        assert reduce_expr("$+(I st (a[i] > 100) a[i])") == 0

    def test_mul_identity(self):
        assert reduce_expr("$*(I st (a[i] > 100) a[i])") == 1

    def test_min_identity_is_inf(self):
        assert reduce_expr("$<(I st (a[i] > 100) a[i])", "float out_;") == INF

    def test_max_identity_is_minus_inf(self):
        assert reduce_expr("$>(I st (a[i] > 100) a[i])", "float out_;") == -INF

    def test_logand_identity(self):
        assert reduce_expr("$&&(I st (0 == 1) 1)") == 1

    def test_logor_identity(self):
        assert reduce_expr("$||(I st (0 == 1) 1)") == 0


class TestArmsAndOthers:
    def test_abs_sum_paper_example(self):
        src = (
            "index_set I:i = {0..5};\nint b[6], out_;\n"
            "main { out_ = $+(I st (b[i] > 0) b[i] others -b[i]); }"
        )
        b = np.array([3, -4, 5, -1, 0, 2])
        assert run_uc(src, {"b": b})["out_"] == np.abs(b).sum()

    def test_overlapping_arms_count_twice(self):
        """An element enabled for two arms contributes to both (§3.2)."""
        assert reduce_expr("$+(I st (a[i] > 8) 1 st (a[i] == 9) 10)") == 22

    def test_multiple_index_sets_cartesian(self):
        assert reduce_expr("$+(I, J; 1)") == 100
        assert reduce_expr("$+(I, J st (i == j) 1)") == 10


class TestInParallelContext:
    def test_reduction_per_lane(self):
        """matrix multiply: a reduction evaluated per (i, j) pair."""
        src = (
            "index_set I:i = {0..3}, J:j = I, K:k = I;\n"
            "int x[4][4], y[4][4], c[4][4];\n"
            "main { par (I, J) c[i][j] = $+(K; x[i][k] * y[k][j]); }"
        )
        rng = np.random.default_rng(5)
        x = rng.integers(0, 9, (4, 4))
        y = rng.integers(0, 9, (4, 4))
        r = run_uc(src, {"x": x, "y": y})
        assert np.array_equal(r["c"], x @ y)

    def test_index_set_shadowing(self):
        """§3.4: the inner use of I hides the outer predicate."""
        src = (
            "index_set I:i = {0..9};\nint a[10];\n"
            "main { par (I) st (i % 2 == 0) a[i] = $+(I; i); }"
        )
        r = run_uc(src)
        assert r["a"].tolist() == [45, 0, 45, 0, 45, 0, 45, 0, 45, 0]

    def test_ranksort_reduction(self):
        src = (
            "index_set I:i = {0..9}, J:j = I;\nint a[10];\n"
            "main { par (I) { int rank; rank = $+(J st (a[j] < a[i]) 1); "
            "a[rank] = a[i]; } }"
        )
        data = np.array([5, 2, 9, 1, 7, 3, 8, 0, 6, 4])
        assert run_uc(src, {"a": data})["a"].tolist() == sorted(data.tolist())

    def test_arbitrary_in_parallel_context(self):
        src = (
            "index_set I:i = {0..3}, J:j = I;\nint b[4], c[4];\n"
            "main { par (I) c[i] = $,(J; b[j]); }"
        )
        b = np.array([10, 20, 30, 40])
        r = run_uc(src, {"b": b})
        assert all(v in b for v in r["c"])

    def test_float_reduction_dtype(self):
        src = (
            "index_set I:i = {0..3};\nfloat f[4], out_;\n"
            "main { out_ = $+(I; f[i]); }"
        )
        f = np.array([0.5, 1.5, 2.0, 0.25])
        assert run_uc(src, {"f": f})["out_"] == pytest.approx(f.sum())
