"""oneof / *oneof construct tests (paper §3.7)."""

import numpy as np
import pytest

from repro.lang.errors import UCRuntimeError
from tests.conftest import run_uc

ODDEVEN = (
    "int N = 16;\nindex_set I:i = {0..N-2};\nint x[16];\n"
    "main { *oneof (I)\n"
    "  st (i % 2 == 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);\n"
    "  st (i % 2 != 0 && x[i] > x[i+1]) swap(x[i], x[i+1]); }"
)


class TestOneof:
    def test_single_enabled_block_behaves_like_par(self):
        r = run_uc(
            "index_set I:i = {0..5};\nint a[6];\n"
            "main { oneof (I) st (i < 3) a[i] = 1; }"
        )
        assert r["a"].tolist() == [1, 1, 1, 0, 0, 0]

    def test_nothing_enabled_is_noop(self):
        r = run_uc(
            "index_set I:i = {0..5};\nint a[6];\n"
            "main { oneof (I) st (a[i] > 10) a[i] = 1; }"
        )
        assert r["a"].tolist() == [0] * 6

    def test_exactly_one_block_executes(self):
        """With two enabled blocks, one and only one runs."""
        src = (
            "index_set I:i = {0..3};\nint a[4], b[4];\n"
            "main { oneof (I) st (1 == 1) a[i] = 1; st (1 == 1) b[i] = 1; }"
        )
        for seed in range(6):
            r = run_uc(src, seed=seed)
            ran_a = sum(r["a"]) == 4
            ran_b = sum(r["b"]) == 4
            assert ran_a != ran_b  # exactly one

    def test_both_choices_reachable(self):
        src = (
            "index_set I:i = {0..3};\nint a[4], b[4];\n"
            "main { oneof (I) st (1 == 1) a[i] = 1; st (1 == 1) b[i] = 1; }"
        )
        outcomes = set()
        for seed in range(20):
            r = run_uc(src, seed=seed)
            outcomes.add("a" if sum(r["a"]) else "b")
        assert outcomes == {"a", "b"}

    def test_block_runs_for_all_its_enabled_elements(self):
        r = run_uc(
            "index_set I:i = {0..5};\nint a[6];\n"
            "main { oneof (I) st (i % 2 == 0) a[i] = 7; }"
        )
        assert r["a"].tolist() == [7, 0, 7, 0, 7, 0]


class TestStarOneof:
    def test_odd_even_sort_terminates_sorted(self):
        data = np.random.default_rng(4).permutation(16)
        r = run_uc(ODDEVEN, {"x": data})
        assert r["x"].tolist() == sorted(data.tolist())

    def test_different_seeds_same_result(self):
        """No fairness guarantee, but the sorted fixed point is unique."""
        data = np.random.default_rng(9).permutation(16)
        results = {tuple(run_uc(ODDEVEN, {"x": data}, seed=s)["x"]) for s in range(5)}
        assert results == {tuple(sorted(data.tolist()))}

    def test_sorted_input_terminates_immediately(self):
        data = np.arange(16)
        r = run_uc(ODDEVEN, {"x": data})
        assert r["x"].tolist() == list(range(16))
        # one global-or poll discovers there is nothing to do
        assert r.counts["global_or"] <= 2

    def test_star_oneof_without_predicates_rejected(self):
        with pytest.raises(UCRuntimeError):
            run_uc(
                "index_set I:i = {0..3};\nint a[4];\nmain { *oneof (I) a[i] = 1; }"
            )
