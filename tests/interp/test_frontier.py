"""Frontier (active-set) sweep engine tests.

The frontier engine compresses iterated-construct sweeps onto the VPs
that can still change (see ``src/repro/interp/frontier.py``).  These
tests pin its observable contract: bit-identical results and fingerprints
with the escape hatch, a never-higher Clock with the engine on, honest
counters, and fallback on bodies it cannot analyze.
"""

import numpy as np

from repro.interp.program import UCProgram
from tests.conftest import run_uc

#: APSP over two disconnected communities: {11..63} is pairwise weight 3
#: (already closed under min-plus, so it quiesces after the first sweep)
#: while {0..10} is a chain whose long paths keep relaxing for several
#: more sweeps.  After sweep one only the 11x11 chain block can change,
#: so the active set collapses to ~7% of the domain — exactly the shape
#: the compression estimate accepts.  Smaller grids are correctly left
#: uncompressed (shallow reductions never amortize the sweep overhead),
#: which is why this test pays for a 64x64 run.
APSP = """
index_set I:i = {0..63}, J:j = I, K:k = I;
int d[64][64];
main {
    *solve (I, J)
        d[i][j] = $<(K; d[i][k] + d[k][j]);
}
"""


def _apsp_input():
    d = np.full((64, 64), 10**9, dtype=np.int64)
    d[11:, 11:] = 3
    np.fill_diagonal(d, 0)
    for v in range(10):
        d[v, v + 1] = d[v + 1, v] = 1
    return {"d": d}


GUARDED_CHAIN = (
    "index_set I:i = {0..4};\nint a[5], b[5];\n"
    "main { solve (I) { a[i] = (i == 0) ? 1 : b[i-1] + 1; "
    "b[i] = a[i] * 2; } }"
)

WAVEFRONT = (
    "int N = 8;\nindex_set I:i = {0..N-1}, J:j = I;\nint a[8][8];\n"
    "main { solve (I, J) a[i][j] = (i == 0 || j == 0) ? 1 "
    ": a[i-1][j] + a[i-1][j-1] + a[i][j-1]; }"
)


class TestStarFrontier:
    def test_compressed_sweeps_and_counters(self):
        r = run_uc(APSP, _apsp_input())
        assert r.frontier["constructs"] == 1
        assert r.frontier["full_sweeps"] >= 1
        assert r.frontier["compressed_sweeps"] >= 1
        assert r.frontier["active_lanes"] < r.frontier["domain_lanes"]
        assert r.frontier_trace, "compressed sweeps must leave a trace"
        assert all(a <= d for a, d in r.frontier_trace)

    def test_identical_results_and_never_higher_clock(self):
        on = run_uc(APSP, _apsp_input())
        off = run_uc(APSP, _apsp_input(), frontier=False)
        assert np.array_equal(on["d"], off["d"])
        assert on.elapsed_us <= off.elapsed_us
        assert not off.frontier

    def test_disable_flag_restores_full_sweep_fingerprint(self, monkeypatch):
        base = run_uc(APSP, _apsp_input(), frontier=False)
        monkeypatch.setenv("REPRO_NO_FRONTIER", "1")
        hatch = run_uc(APSP, _apsp_input())
        assert hatch.fingerprint == base.fingerprint
        assert not hatch.frontier

    def test_both_engines_agree_under_frontier(self):
        plans = run_uc(APSP, _apsp_input(), plans=True)
        tree = run_uc(APSP, _apsp_input(), plans=False)
        assert np.array_equal(plans["d"], tree["d"])
        assert plans.fingerprint == tree.fingerprint


class TestGuardedFrontier:
    def test_skips_quiescent_assignments(self):
        on = run_uc(GUARDED_CHAIN, solve_strategy="guarded")
        off = run_uc(GUARDED_CHAIN, solve_strategy="guarded", frontier=False)
        assert on.frontier["guarded_constructs"] == 1
        assert on.frontier["guarded_skips"] >= 1
        assert np.array_equal(on["a"], off["a"])
        assert np.array_equal(on["b"], off["b"])
        # skipping only fires when no lane could fire, so convergence
        # takes the same sweeps and the Clock never rises
        assert on.elapsed_us <= off.elapsed_us

    def test_single_assignment_falls_back(self):
        # with one assignment a skip can only happen when the sweep would
        # make no progress at all, so the bookkeeping is not armed
        r = run_uc(WAVEFRONT, solve_strategy="guarded")
        full = run_uc(WAVEFRONT, solve_strategy="guarded", frontier=False)
        assert r.frontier.get("fallbacks", 0) >= 1
        assert "guarded_constructs" not in r.frontier
        assert r.fingerprint == full.fingerprint

    def test_data_dependent_subscript_falls_back(self):
        src = (
            "index_set I:i = {0..3};\nint a[4], p[4], q[4];\n"
            "main { solve (I) { a[i] = (i == 0) ? 1 : a[p[i]] + 1; "
            "q[i] = a[i]; } }"
        )
        inputs = {"p": np.array([0, 0, 1, 2])}
        r = run_uc(src, inputs, solve_strategy="guarded")
        assert r.frontier.get("fallbacks", 0) >= 1
        assert r["a"].tolist() == [1, 2, 3, 4]


class TestProgramSurface:
    def test_runresult_exposes_frontier_stats(self):
        prog = UCProgram(APSP, frontier=True)
        r = prog.run(_apsp_input())
        assert isinstance(r.frontier, dict)
        assert isinstance(r.frontier_trace, list)

    def test_frontier_runs_are_deterministic(self):
        a = run_uc(APSP, _apsp_input())
        b = run_uc(APSP, _apsp_input())
        assert a.fingerprint == b.fingerprint
        assert dict(a.frontier) == dict(b.frontier)
        assert a.frontier_trace == b.frontier_trace
