"""Kernel-fusion backend tests (``src/repro/interp/fuse.py``).

The fusion pass lowers a compiled construct plan's charge-and-compute
statement sequence into whole-array register programs whose Clock cost
comes from a precomputed static charge table.  Its contract is strict:
results AND Clock fingerprints are bit-identical across every
engine x frontier x fusion combination; statements the pass cannot prove
static run as unfused plan segments inside the fused sweep; an armed
FaultPlan disables fusion entirely (fault triggers count individual
charges, which a table replay would reorder mid-sweep); and
``REPRO_NO_FUSION=1`` / ``UCProgram(fusion=False)`` restores the
per-closure plan engine exactly.
"""

import numpy as np
import pytest

from repro.interp.program import UCProgram
from tests.conftest import run_uc

#: APSP over two disconnected communities (same fixture as the frontier
#: tests): the clique quiesces after sweep one, the 11-vertex chain keeps
#: relaxing — so both full (fused) and compressed (frontier) sweeps run.
APSP = """
index_set I:i = {0..63}, J:j = I, K:k = I;
int d[64][64];
main {
    *solve (I, J)
        d[i][j] = $<(K; d[i][k] + d[k][j]);
}
"""


def _apsp_input():
    d = np.full((64, 64), 10**9, dtype=np.int64)
    d[11:, 11:] = 3
    np.fill_diagonal(d, 0)
    for v in range(10):
        d[v, v + 1] = d[v + 1, v] = 1
    return {"d": d}


#: wavefront recurrence as *solve: ternary border guard, NEWS gathers
WAVEFRONT_STAR = """
index_set I:i = {0..15}, J:j = I;
int a[16][16];
main {
    *solve (I, J)
        a[i][j] = (i == 0 || j == 0) ? 1
                : a[i-1][j] + a[i-1][j-1] + a[i][j-1];
}
"""

#: predicated arms + others: exercises arm masks and the others segment
PREDICATED = """
index_set I:i = {0..31};
int a[32], b[32];
main {
    par (I)
        st (a[i] % 2 == 0 && a[i] < 60) { a[i] = a[i] + b[i]; }
        others { b[i] = b[i] - 1; }
}
"""

#: a user function call splits the body into fused / unfused / fused
#: segments (calls run as interpreted plan closures, never as kernels);
#: the call statement shares no cacheable text with the fused ones, so
#: the one-cache-world overlap check lets the construct segment instead
#: of bailing
SPLIT_SEGMENTS = """
index_set I:i = {0..7};
int a[8], b[8], c[8];
int inc(int x) { return x + 1; }
main {
    par (I) {
        a[i] = i * 2;
        c[i] = inc(i);
        b[i] = a[i] + 1;
    }
}
"""

#: declarations anywhere in a body make the whole construct unfusable
UNFUSABLE_DECL = """
index_set I:i = {0..7};
int a[8];
main {
    par (I) {
        int t;
        t = i * 3;
        a[i] = t;
    }
}
"""


def _product_runs(src, inputs=None, **kw):
    runs = {}
    for plans in (True, False):
        for frontier in (True, False):
            for fusion in (True, False):
                runs[(plans, frontier, fusion)] = run_uc(
                    src,
                    {k: v.copy() for k, v in (inputs or {}).items()},
                    plans=plans,
                    frontier=frontier,
                    fusion=fusion,
                    **kw,
                )
    return runs


class TestBitEquality:
    @pytest.mark.parametrize(
        "src,inputs,kw",
        [
            (APSP, _apsp_input(), {}),
            (WAVEFRONT_STAR, None, {}),
            (
                PREDICATED,
                {
                    "a": np.arange(0, 64, 2, dtype=np.int64),
                    "b": np.arange(32, dtype=np.int64),
                },
                {},
            ),
            (SPLIT_SEGMENTS, None, {}),
            (UNFUSABLE_DECL, None, {}),
        ],
        ids=["apsp", "wavefront", "predicated", "split", "decl"],
    )
    def test_engine_frontier_fusion_product(self, src, inputs, kw):
        runs = _product_runs(src, inputs, **kw)
        ref = runs[(True, True, False)]
        ref_fp = {}
        for (plans, frontier, fusion), r in runs.items():
            for var in r.keys():
                a, b = r[var], ref[var]
                same = (
                    np.array_equal(a, b)
                    if isinstance(a, np.ndarray)
                    else a == b
                )
                assert same, (
                    f"{var!r} diverged at plans={plans} "
                    f"frontier={frontier} fusion={fusion}"
                )
            # fingerprints may differ across frontier modes (compressed
            # sweeps charge fewer VPs) but never across engine or fusion
            key = frontier
            if key not in ref_fp:
                ref_fp[key] = r.fingerprint
            assert r.fingerprint == ref_fp[key], (
                f"fingerprint diverged at plans={plans} "
                f"frontier={frontier} fusion={fusion}"
            )

    def test_fusion_only_runs_on_plan_engine(self):
        r = run_uc(APSP, _apsp_input(), plans=False)
        assert not r.fusion, "tree-walking oracle must never fuse"


class TestCounters:
    def test_apsp_fuses_and_replays_charge_tables(self):
        r = run_uc(APSP, _apsp_input(), frontier=False)
        assert r.fusion["constructs"] == 1
        assert r.fusion["fused_segments"] == 1
        assert r.fusion.get("unfused_segments", 0) == 0
        assert r.fusion["fused_sweeps"] >= 2
        assert r.fusion["charge_table_hits"] == r.fusion["fused_sweeps"]

    def test_user_call_splits_segments(self):
        r = run_uc(SPLIT_SEGMENTS)
        assert r.fusion["fused_segments"] == 2
        assert r.fusion["unfused_segments"] == 1
        assert r["a"].tolist() == [i * 2 for i in range(8)]
        assert r["c"].tolist() == [i + 1 for i in range(8)]
        assert r["b"].tolist() == [i * 2 + 1 for i in range(8)]

    def test_cache_seam_overlap_bails(self):
        # the unfused call statement reads a[i], which fused statements
        # also cache — one cache world per construct, so the pass must
        # bail rather than risk a cross-seam CSE divergence
        src = (
            "index_set I:i = {0..7};\nint a[8], b[8];\n"
            "int inc(int x) { return x + 1; }\n"
            "main { par (I) { a[i] = i * 2; b[i] = inc(a[i]); "
            "a[i] = a[i] + b[i]; } }"
        )
        r = run_uc(src)
        assert r.fusion.get("unfusable", 0) >= 1
        off = run_uc(src, fusion=False)
        assert r.fingerprint == off.fingerprint
        assert np.array_equal(r["a"], off["a"])

    def test_declaration_bails_whole_construct(self):
        r = run_uc(UNFUSABLE_DECL)
        assert r.fusion.get("unfusable", 0) >= 1
        assert r.fusion.get("fused_segments", 0) == 0
        assert r["a"].tolist() == [i * 3 for i in range(8)]

    def test_disabled_fusion_leaves_no_counters(self):
        r = run_uc(APSP, _apsp_input(), fusion=False)
        assert not r.fusion


class TestEscapeHatches:
    def test_env_flag_matches_kwarg(self, monkeypatch):
        base = run_uc(APSP, _apsp_input(), fusion=False)
        monkeypatch.setenv("REPRO_NO_FUSION", "1")
        hatch = run_uc(APSP, _apsp_input())
        assert hatch.fingerprint == base.fingerprint
        assert not hatch.fusion

    def test_kwarg_threads_through_ucprogram(self):
        prog = UCProgram(APSP, fusion=False)
        r = prog.run(_apsp_input())
        assert not r.fusion
        assert prog.last_interpreter.fusion_enabled is False


class TestFaultFallback:
    FAULTS = "drop@scan_step#40"

    def test_armed_fault_plan_disables_fusion(self):
        with_faults = run_uc(APSP, _apsp_input(), faults=self.FAULTS)
        assert not with_faults.fusion, (
            "fusion must fall back whenever a FaultPlan is armed"
        )

    def test_faulted_runs_agree_with_fusion_toggle(self):
        a = run_uc(APSP, _apsp_input(), faults=self.FAULTS)
        b = run_uc(APSP, _apsp_input(), faults=self.FAULTS, fusion=False)
        assert np.array_equal(a["d"], b["d"])
        assert a.fingerprint == b.fingerprint
        assert a.fault_log == b.fault_log


class TestStatsCLI:
    def test_run_stats_prints_fusion_counters(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "fused.uc"
        f.write_text(
            "index_set I:i = {0..7};\nint a[8];\n"
            "main { par (I) a[i] = i * i; }"
        )
        assert main(["run", str(f), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "fusion.constructs" in out
        assert "fusion.fused_sweeps" in out
        assert "fusion.charge_table_hits" in out
