"""UCProgram / RunResult public-API tests."""

import numpy as np
import pytest

from repro.interp.program import UCProgram
from repro.lang.errors import UCRuntimeError
from repro.machine import Machine, MachineConfig


SRC = """
int N = 4;
index_set I:i = {0..N-1};
int a[4], s;
main { par (I) a[i] = i; s = $+(I; a[i]); }
"""


class TestUCProgram:
    def test_basic_run(self):
        r = UCProgram(SRC).run()
        assert r["a"].tolist() == [0, 1, 2, 3]
        assert r["s"] == 6

    def test_defines_parameterise(self):
        src = "index_set I:i = {0..N-1};\nint a[N];\nmain { par (I) a[i] = 1; }"
        r = UCProgram(src, defines={"N": 7}).run()
        assert len(r["a"]) == 7

    def test_defines_readable_at_runtime(self):
        src = "int x;\nmain { x = N * 2; }"
        assert UCProgram(src, defines={"N": 21}).run()["x"] == 42

    def test_inputs_preload_arrays(self):
        src = "index_set I:i = {0..3};\nint a[4], s;\nmain { s = $+(I; a[i]); }"
        r = UCProgram(src).run({"a": np.array([1, 2, 3, 4])})
        assert r["s"] == 10

    def test_inputs_preload_scalars(self):
        src = "int k, x;\nmain { x = k + 1; }"
        assert UCProgram(src).run({"k": 9})["x"] == 10

    def test_unknown_input_rejected(self):
        with pytest.raises(UCRuntimeError):
            UCProgram(SRC).run({"zz": 1})

    def test_runs_are_independent(self):
        prog = UCProgram(SRC)
        r1 = prog.run()
        r2 = prog.run()
        assert r1["s"] == r2["s"]
        assert abs(r1.elapsed_us - r2.elapsed_us) < 1e-9

    def test_custom_machine_config(self):
        cfg = MachineConfig(n_pes=64)
        src = "index_set I:i = {0..255};\nint a[256];\nmain { par (I) a[i] = i; }"
        small = UCProgram(src, machine_config=cfg).run()
        big = UCProgram(src).run()
        # VP ratio 4 on the small machine makes everything pricier
        assert small.elapsed_us > big.elapsed_us

    def test_explicit_machine_instance(self):
        m = Machine()
        UCProgram(SRC).run(machine=m)
        assert m.clock.time_us > 0

    def test_no_main_rejected(self):
        prog = UCProgram("int a[4];")
        with pytest.raises(UCRuntimeError):
            prog.run()

    def test_bad_solve_strategy_rejected(self):
        with pytest.raises(ValueError):
            UCProgram(SRC, solve_strategy="telepathy").run()

    def test_top_level_initializers_run(self):
        src = "int N = 3;\nint x = N + 1;\nint y;\nmain { y = x; }"
        assert UCProgram(src).run()["y"] == 4


class TestRunResult:
    def test_mapping_protocol(self):
        r = UCProgram(SRC).run()
        assert "a" in r and "s" in r and "zz" not in r
        assert set(r.keys()) == {"N", "a", "s"}
        assert sorted(r) == ["N", "a", "s"]

    def test_timing_fields(self):
        r = UCProgram(SRC).run()
        assert r.elapsed_us > 0
        assert r.elapsed_ms == pytest.approx(r.elapsed_us / 1000)

    def test_counts_and_times(self):
        r = UCProgram(SRC).run()
        assert r.counts.get("alu", 0) > 0
        assert r.times.get("alu", 0) > 0

    def test_repr(self):
        r = UCProgram(SRC).run()
        assert "RunResult" in repr(r)

    def test_values_are_copies(self):
        prog = UCProgram(SRC)
        r = prog.run()
        r["a"][0] = 99
        assert prog.run()["a"][0] == 0


class TestInputLoadTiming:
    def test_input_io_not_billed_to_algorithm(self):
        src = "index_set I:i = {0..63};\nint a[64], s;\nmain { s = $+(I; a[i]); }"
        with_inputs = UCProgram(src).run({"a": np.ones(64, dtype=np.int64)})
        without = UCProgram(src).run()
        assert with_inputs.elapsed_us == pytest.approx(without.elapsed_us)
