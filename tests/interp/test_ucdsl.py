"""Embedded-DSL (UCBuilder) tests."""

import numpy as np
import pytest

from repro.lang.errors import UCMultipleAssignmentError
from repro.ucdsl import UCBuilder


class TestExpressions:
    def _run_expr(self, build):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(8))
        a = b.int_array("a", 8)
        with b.main():
            with b.par(I):
                a[i].set(build(b, i))
        return b.run()["a"]

    def test_arithmetic(self):
        out = self._run_expr(lambda b, i: i * 2 + 1)
        assert out.tolist() == [1, 3, 5, 7, 9, 11, 13, 15]

    def test_reflected_operators(self):
        out = self._run_expr(lambda b, i: 10 - i)
        assert out.tolist() == [10, 9, 8, 7, 6, 5, 4, 3]

    def test_division_and_mod(self):
        out = self._run_expr(lambda b, i: (i * 7) % 5 + i / 4)
        expect = [(k * 7) % 5 + k // 4 for k in range(8)]
        assert out.tolist() == expect

    def test_comparisons_and_logic(self):
        out = self._run_expr(lambda b, i: (i > 2) & (i < 6))
        assert out.tolist() == [0, 0, 0, 1, 1, 1, 0, 0]
        out = self._run_expr(lambda b, i: (i == 0) | (i == 7))
        assert out.tolist() == [1, 0, 0, 0, 0, 0, 0, 1]
        out = self._run_expr(lambda b, i: ~(i > 3))
        assert out.tolist() == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_conditional_expression(self):
        out = self._run_expr(lambda b, i: (i % 2 == 0).where(i, -i))
        assert out.tolist() == [0, -1, 2, -3, 4, -5, 6, -7]

    def test_shifts_and_neg(self):
        out = self._run_expr(lambda b, i: (1 << i) >> 1)
        assert out.tolist() == [0, 1, 2, 4, 8, 16, 32, 64]
        out = self._run_expr(lambda b, i: -i)
        assert out.tolist() == [0, -1, -2, -3, -4, -5, -6, -7]

    def test_builtins(self):
        out = self._run_expr(lambda b, i: b.power2(i) + b.abs(0 - i))
        assert out.tolist() == [2**k + k for k in range(8)]
        out = self._run_expr(lambda b, i: b.min2(i, 3) + b.max2(i, 5))
        assert out.tolist() == [min(k, 3) + max(k, 5) for k in range(8)]

    def test_bad_operand_type(self):
        with pytest.raises(TypeError):
            self._run_expr(lambda b, i: i + "three")


class TestReductions:
    def test_sum_min_max(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(10))
        a = b.int_array("a", 10)
        total = b.int_scalar("total")
        lo = b.int_scalar("lo")
        hi = b.int_scalar("hi")
        with b.main():
            total.set(b.sum(I, a[i]))
            lo.set(b.min(I, a[i]))
            hi.set(b.max(I, a[i]))
        data = np.array([4, 8, 1, 9, 2, 7, 3, 6, 0, 5])
        r = b.run({"a": data})
        assert r["total"] == data.sum()
        assert r["lo"] == 0 and r["hi"] == 9

    def test_predicated_and_logical(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(10))
        a = b.int_array("a", 10)
        evens = b.int_scalar("evens")
        any_big = b.int_scalar("any_big")
        all_pos = b.int_scalar("all_pos")
        with b.main():
            evens.set(b.sum(I, 1, where=(a[i] % 2 == 0)))
            any_big.set(b.any(I, a[i] > 7))
            all_pos.set(b.all(I, a[i] >= 0))
        r = b.run({"a": np.arange(10)})
        assert r["evens"] == 5
        assert r["any_big"] == 1
        assert r["all_pos"] == 1

    def test_arbitrary(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(5))
        a = b.int_array("a", 5)
        pick = b.int_scalar("pick")
        with b.main():
            pick.set(b.arbitrary(I, a[i]))
        data = np.array([11, 22, 33, 44, 55])
        assert b.run({"a": data})["pick"] in data

    def test_matmul_product_grid(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(4))
        J, j = b.alias("J", "j", I)
        K, k = b.alias("K", "k", I)
        x = b.int_array("x", 4, 4)
        y = b.int_array("y", 4, 4)
        c = b.int_array("c", 4, 4)
        with b.main():
            with b.par(I, J):
                c[i, j].set(b.sum(K, x[i, k] * y[k, j]))
        rng = np.random.default_rng(1)
        xv, yv = rng.integers(0, 9, (4, 4)), rng.integers(0, 9, (4, 4))
        r = b.run({"x": xv, "y": yv})
        assert np.array_equal(r["c"], xv @ yv)


class TestConstructs:
    def test_st_and_others(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(6))
        a = b.int_array("a", 6)
        with b.main():
            with b.par(I):
                with b.st(i % 2 == 1):
                    a[i].set(0)
                with b.others():
                    a[i].set(1)
        assert b.run()["a"].tolist() == [1, 0, 1, 0, 1, 0]

    def test_star_par(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(6))
        a = b.int_array("a", 6)
        with b.main():
            with b.par(I):
                a[i].set(i)
            with b.par(I, star=True):
                with b.st(a[i] > 0):
                    a[i].set(a[i] - 1)
        assert b.run()["a"].tolist() == [0] * 6

    def test_seq_order(self):
        b = UCBuilder()
        L, l = b.index_set("L", "l", [4, 2, 9])
        order = b.int_array("order", 10)
        n = b.int_scalar("n", 0)
        with b.main():
            with b.seq(L):
                n.add(1)
                order[l].set(n)
        r = b.run()
        assert r["order"][4] == 1 and r["order"][2] == 2 and r["order"][9] == 3

    def test_solve_wavefront(self):
        from repro.algorithms import wavefront_matrix

        b = UCBuilder()
        I, i = b.index_set("I", "i", range(6))
        J, j = b.alias("J", "j", I)
        a = b.int_array("a", 6, 6)
        with b.main():
            with b.solve(I, J):
                a[i, j].set(
                    ((i == 0) | (j == 0)).where(
                        1, a[i - 1, j] + a[i - 1, j - 1] + a[i, j - 1]
                    )
                )
        assert np.array_equal(b.run()["a"], wavefront_matrix(6))

    def test_oneof_star_sorts(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(7))
        x = b.int_array("x", 8)
        with b.main():
            with b.oneof(I, star=True):
                with b.st((i % 2 == 0) & (x[i] > x[i + 1])):
                    b.swap(x[i], x[i + 1])
                with b.st((i % 2 == 1) & (x[i] > x[i + 1])):
                    b.swap(x[i], x[i + 1])
        data = np.array([7, 3, 5, 0, 6, 2, 4, 1])
        assert b.run({"x": data})["x"].tolist() == sorted(data.tolist())

    def test_if_else_and_while(self):
        b = UCBuilder()
        n = b.int_scalar("n", 10)
        steps = b.int_scalar("steps", 0)
        parity = b.int_scalar("parity")
        with b.main():
            with b.while_(n > 1):
                with b.if_(n % 2 == 0):
                    n.set(n / 2)
                with b.else_():
                    n.set(3 * n + 1)
                steps.add(1)
        r = b.run()
        assert r["n"] == 1 and r["steps"] == 6  # collatz(10)

    def test_single_assignment_enforced(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(4))
        J, j = b.alias("J", "j", I)
        a = b.int_array("a", 4)
        c = b.int_array("c", 4)
        with b.main():
            with b.par(I, J):
                a[i].set(c[j])
        with pytest.raises(UCMultipleAssignmentError):
            b.run({"c": np.array([1, 2, 3, 4])})


class TestMappingsAndMisc:
    def test_permute_mapping_goes_local(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(7))
        a = b.int_array("a", 8)
        c = b.int_array("c", 8)
        b.permute(I, c[i + 1], a[i])
        with b.main():
            with b.par(I):
                a[i].set(a[i] + c[i + 1])
        r = b.run({"a": np.zeros(8, np.int64), "c": np.arange(8)})
        assert r["a"].tolist() == [1, 2, 3, 4, 5, 6, 7, 0]
        assert r.counts.get("news", 0) == 0

    def test_float_arrays_and_sqrt(self):
        b = UCBuilder()
        I, i = b.index_set("I", "i", range(5))
        f = b.float_array("f", 5)
        with b.main():
            with b.par(I):
                f[i].set(b.sqrt(i * i * 1.0))
        assert b.run()["f"].tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_errors(self):
        b = UCBuilder()
        with pytest.raises(RuntimeError):
            b.build()  # no main
        with pytest.raises(RuntimeError):
            with b.st(1):  # st outside construct
                pass
        b2 = UCBuilder()
        arr = b2.int_array("a", 4, 4)
        with pytest.raises(ValueError):
            arr[1]  # wrong subscript count
        with pytest.raises(RuntimeError):
            b2.else_().__enter__()  # else without if

    def test_wrong_subscript_rank(self):
        b = UCBuilder()
        a = b.int_array("a", 4)
        with pytest.raises(ValueError):
            a[1, 2]

    def test_run_seed_plumbs_through(self):
        def build():
            b = UCBuilder()
            I, i = b.index_set("I", "i", range(8))
            a = b.int_array("a", 8)
            with b.main():
                with b.par(I):
                    a[i].set(b.rand() % 100)
            return b

        r1 = build().run(seed=3)["a"]
        r2 = build().run(seed=3)["a"]
        r3 = build().run(seed=4)["a"]
        assert np.array_equal(r1, r2)
        assert not np.array_equal(r1, r3)
