"""Portable snapshots surviving a disk round-trip across processes.

The contract under test: ``take_portable`` → ``snapshot_to_bytes`` →
disk → a *fresh interpreter in a fresh process* → ``install_portable``
→ run to completion is indistinguishable from never having stopped —
same variable values, same stdout, same tier log, and a bit-identical
Clock fingerprint — in both the compiled plan engine and the
tree-walking oracle (``REPRO_NO_PLANS=1``).
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.interp import checkpoint as cp
from repro.interp.deadline import JobPreempted
from repro.interp.program import UCProgram

SRC = """
int N = 8;
index_set I:i = {0..N-1};
int a[8];
int b[8];
int total;
main {
  par (I) a[i] = i * i;
  printf("mid=%d\\n", a[3]);
  par (I) b[i] = a[i] + 1;
  *par (I) st (a[i] < 100) a[i] = a[i] + b[i];
  total = 0;
  seq (I) total = total + a[i];
  printf("total=%d\\n", total);
}
"""

SNAP_PC = 3  # after the first printf: stdout is non-empty in the snapshot

#: Runs in a fresh process: restore the snapshot, verify the round trip
#: field-by-field by re-taking it, finish the run, and report the result.
CHILD = """
import json, os, sys
import numpy as np
from repro.interp import checkpoint as cp
from repro.interp.program import UCProgram

def deep_eq(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, dict):
        return (isinstance(b, dict) and set(a) == set(b)
                and all(deep_eq(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)):
        return (isinstance(b, (list, tuple)) and len(a) == len(b)
                and all(deep_eq(x, y) for x, y in zip(a, b)))
    return a == b

snap_path, src_path = sys.argv[1], sys.argv[2]
with open(snap_path, "rb") as f:
    snap = cp.snapshot_from_bytes(f.read())
with open(src_path, "r") as f:
    src = f.read()

prog = UCProgram(src, log_tiers=True, compile_store=None)
pr = prog.prepare()
cp.install_portable(pr.interp, pr.context, snap)

# round-trip audit: a snapshot of the restored state must equal the one
# we loaded, field by field (env chain, RNGs, Clock, tier log, stdout)
again = cp.take_portable(pr.interp, pr.context, snap.pc)
for field in cp.PortableSnapshot.__slots__:
    a, b = getattr(snap, field), getattr(again, field)
    assert deep_eq(a, b), f"field {field!r} did not round-trip"

pr.interp.run_main_from(pr.context, snap.pc)
run = pr.finish()
tier_log = sorted(
    [list(k) + [sorted(v)] for k, v in pr.interp.tier_log.items()]
)
json.dump({
    "fingerprint_time_us": run.fingerprint[0],
    "fingerprint": [[k, c, t] for (k, c, t) in run.fingerprint[1]],
    "a": [int(x) for x in run["a"]],
    "total": int(run["total"]),
    "stdout": run.stdout,
    "tier_log": tier_log,
}, sys.stdout)
"""


def _take_snapshot_at(prog, pc):
    pr = prog.prepare()

    def boundary(at):
        if at == pc:
            raise JobPreempted(cp.take_portable(pr.interp, pr.context, at))

    with pytest.raises(JobPreempted) as exc_info:
        pr.interp.run_main_from(pr.context, 0, boundary)
    return exc_info.value.snapshot


@pytest.mark.parametrize("engine_env", [{}, {"REPRO_NO_PLANS": "1"}])
def test_disk_round_trip_across_process_boundary(tmp_path, engine_env):
    prog = UCProgram(SRC, log_tiers=True, compile_store=None)
    solo = prog.run()
    assert solo.stdout.startswith("mid=9\n")

    snap = _take_snapshot_at(prog, SNAP_PC)
    assert snap.pc == SNAP_PC
    assert snap.stdout == "mid=9\n"  # captured mid-run output rides along

    snap_path = tmp_path / "snap.bin"
    snap_path.write_bytes(cp.snapshot_to_bytes(snap))
    src_path = tmp_path / "prog.uc"
    src_path.write_text(SRC)

    env = dict(os.environ)
    env.pop("REPRO_NO_PLANS", None)
    env.update(engine_env)
    env["PYTHONPATH"] = os.path.abspath("src")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, str(snap_path), str(src_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    out = json.loads(proc.stdout)

    assert out["fingerprint_time_us"] == solo.fingerprint[0]
    assert (
        tuple((k, c, t) for k, c, t in out["fingerprint"]) == solo.fingerprint[1]
    )
    assert out["a"] == [int(x) for x in solo["a"]]
    assert out["total"] == int(solo["total"])
    assert out["stdout"] == solo.stdout
    solo_tier_log = sorted(
        [list(k) + [sorted(v)] for k, v in prog.last_interpreter.tier_log.items()]
    )
    assert out["tier_log"] == solo_tier_log


def test_snapshot_version_mismatch_rejected(tmp_path):
    prog = UCProgram(SRC, compile_store=None)
    snap = _take_snapshot_at(prog, SNAP_PC)
    payload = snap.to_payload()
    payload["version"] = cp.SNAPSHOT_VERSION + 1
    with pytest.raises(cp.SnapshotUnsupported):
        cp.PortableSnapshot.from_payload(payload)


def test_snapshot_refused_inside_construct():
    """Snapshots exist only at top-level boundaries — a context stack
    mid-construct must be refused, not half-captured."""
    prog = UCProgram(SRC, compile_store=None)
    pr = prog.prepare()
    child_env = pr.context.env.child()  # not a direct child of global
    ctx = type(pr.context)(pr.context.grid, pr.context.mask, child_env)
    with pytest.raises(cp.SnapshotUnsupported):
        cp.take_portable(pr.interp, ctx, 0)


def test_both_rng_states_round_trip():
    prog = UCProgram(SRC, compile_store=None)
    snap = _take_snapshot_at(prog, SNAP_PC)
    blob = cp.snapshot_to_bytes(snap)
    back = cp.snapshot_from_bytes(blob)
    assert back.pc == snap.pc
    for field in ("machine_rng", "interp_rng"):
        a, b = getattr(snap, field), getattr(back, field)
        assert json.dumps(a, default=str, sort_keys=True) == json.dumps(
            b, default=str, sort_keys=True
        )
    assert back.clock_state == snap.clock_state
    assert back.stdout == snap.stdout
    assert np.array_equal(
        np.asarray(back.dead_pes), np.asarray(snap.dead_pes)
    )
