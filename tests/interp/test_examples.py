"""Smoke tests: every example script runs to completion (small sizes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.parametrize(
    "script,args,expect",
    [
        ("quickstart.py", (), "OK"),
        ("shortest_path.py", ("8",), "simulated elapsed"),
        ("grid_navigation.py", ("16",), "obstacle moved"),
        ("sorting_oneof.py", (), "prefix sums"),
        ("wavefront_solve.py", (), "anti-diagonal wavefront"),
        ("mapping_tuning.py", (), "results are identical"),
        ("numerical_eigen.py", ("5",), "singular values"),
    ],
)
def test_example_runs(script, args, expect):
    out = _run(script, *args)
    assert expect in out
