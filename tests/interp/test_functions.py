"""Function-call tests: builtins, user functions, slices, swap."""

import numpy as np
import pytest

from repro.lang.errors import UCRuntimeError
from tests.conftest import run_uc


class TestBuiltins:
    def test_power2(self):
        r = run_uc("int x;\nmain { x = power2(10); }")
        assert r["x"] == 1024

    def test_power2_vectorised(self):
        r = run_uc(
            "index_set I:i = {0..4};\nint a[5];\nmain { par (I) a[i] = power2(i); }"
        )
        assert r["a"].tolist() == [1, 2, 4, 8, 16]

    def test_abs_both_spellings(self):
        r = run_uc("int x, y;\nmain { x = abs(0 - 5); y = ABS(0 - 7); }")
        assert r["x"] == 5 and r["y"] == 7

    def test_min_max(self):
        r = run_uc("int x, y;\nmain { x = min(3, 7); y = max(3, 7); }")
        assert r["x"] == 3 and r["y"] == 7

    def test_min_vectorised(self):
        r = run_uc(
            "index_set I:i = {0..4};\nint a[5];\nmain { par (I) a[i] = min(i, 2); }"
        )
        assert r["a"].tolist() == [0, 1, 2, 2, 2]

    def test_rand_deterministic_per_seed(self):
        src = "index_set I:i = {0..7};\nint a[8];\nmain { par (I) a[i] = rand() % 100; }"
        a1 = run_uc(src, seed=5)["a"]
        a2 = run_uc(src, seed=5)["a"]
        a3 = run_uc(src, seed=6)["a"]
        assert np.array_equal(a1, a2)
        assert not np.array_equal(a1, a3)

    def test_rand_range(self):
        r = run_uc(
            "index_set I:i = {0..63};\nint a[64];\nmain { par (I) a[i] = rand() % 10; }"
        )
        assert r["a"].min() >= 0 and r["a"].max() <= 9

    def test_srand_reseeds(self):
        src = (
            "int x, y;\nmain { srand(42); x = rand() % 1000; "
            "srand(42); y = rand() % 1000; }"
        )
        r = run_uc(src)
        assert r["x"] == r["y"]

    def test_printf(self):
        r = run_uc('int x;\nmain { x = 3; printf("x=%d\\n", x); }')
        assert r.stdout == "x=3\n"

    def test_printf_parallel_context_rejected(self):
        with pytest.raises(UCRuntimeError):
            run_uc(
                "index_set I:i = {0..3};\nint a[4];\n"
                'main { par (I) printf("%d", a[i]); }'
            )

    def test_swap(self):
        src = (
            "index_set I:i = {0..3};\nint x[8];\n"
            "main { par (I) swap(x[2 * i], x[2 * i + 1]); }"
        )
        r = run_uc(src, {"x": np.arange(8)})
        assert r["x"].tolist() == [1, 0, 3, 2, 5, 4, 7, 6]

    def test_unknown_function(self):
        with pytest.raises(Exception):
            run_uc("main { mystery(); }")


class TestUserFunctions:
    def test_host_function_with_control_flow(self):
        src = (
            "int fact(int n) { int r; r = 1; while (n > 1) { r = r * n; "
            "n = n - 1; } return r; }\n"
            "int x;\nmain { x = fact(5); }"
        )
        assert run_uc(src)["x"] == 120

    def test_recursion_on_host(self):
        src = (
            "int fib(int n) { if (n < 2) return n; "
            "return fib(n - 1) + fib(n - 2); }\n"
            "int x;\nmain { x = fib(10); }"
        )
        assert run_uc(src)["x"] == 55

    def test_straightline_function_vectorises(self):
        src = (
            "int double_plus(int x, int y) { int t; t = 2 * x; return t + y; }\n"
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) a[i] = double_plus(i, 1); }"
        )
        assert run_uc(src)["a"].tolist() == [1, 3, 5, 7]

    def test_loopy_function_rejected_in_parallel(self):
        src = (
            "int f(int n) { while (n > 0) n = n - 1; return n; }\n"
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) a[i] = f(i); }"
        )
        with pytest.raises(UCRuntimeError):
            run_uc(src)

    def test_array_parameter_by_reference(self):
        src = (
            "void bump(int v[], int k) { v[k] = v[k] + 1; }\n"
            "int a[4];\nmain { bump(a, 2); bump(a, 2); }"
        )
        assert run_uc(src)["a"].tolist() == [0, 0, 2, 0]

    def test_array_slice_argument(self):
        """Passing a row of a matrix — the paper's only pointer use."""
        src = (
            "int rowsum(int v[], int n) { int s, k; s = 0; "
            "for (k = 0; k < n; k++) s = s + v[k]; return s; }\n"
            "int m[3][4], x;\n"
            "main { x = rowsum(m[1], 4); }"
        )
        m = np.arange(12).reshape(3, 4)
        assert run_uc(src, {"m": m})["x"] == m[1].sum()

    def test_void_function_returns_zero(self):
        src = "void nop() { ; }\nint x;\nmain { x = nop(); }"
        assert run_uc(src)["x"] == 0

    def test_return_stops_execution(self):
        src = (
            "int early(int n) { if (n > 0) return 1; return 2; }\n"
            "int x;\nmain { x = early(5); }"
        )
        assert run_uc(src)["x"] == 1

    def test_user_power2_overrides_builtin(self):
        src = (
            "int power2(int x) { return 99; }\n"
            "int x;\nmain { x = power2(3); }"
        )
        assert run_uc(src)["x"] == 99

    def test_function_reading_globals(self):
        src = (
            "int N = 6;\nint twice_n() { return 2 * N; }\n"
            "int x;\nmain { x = twice_n(); }"
        )
        assert run_uc(src)["x"] == 12
