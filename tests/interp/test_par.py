"""par / *par construct tests (paper §3.4)."""

import numpy as np
import pytest

from repro.lang.errors import UCMultipleAssignmentError, UCRuntimeError
from tests.conftest import run_uc


class TestSimplePar:
    def test_assignment_over_set(self):
        r = run_uc("index_set I:i = {0..4};\nint a[5];\nmain { par (I) a[i] = i; }")
        assert r["a"].tolist() == [0, 1, 2, 3, 4]

    def test_predicate_selects_subset(self):
        r = run_uc(
            "index_set I:i = {0..5};\nint a[6];\n"
            "main { par (I) st (i % 2 == 1) a[i] = 9; }"
        )
        assert r["a"].tolist() == [0, 9, 0, 9, 0, 9]

    def test_reciprocal_example(self):
        """§3.4: the predicate protects the division."""
        src = (
            "index_set I:i = {0..3};\nfloat f[4];\n"
            "main { par (I) st (f[i] != 0) f[i] = 1.0 / f[i]; }"
        )
        r = run_uc(src, {"f": np.array([2.0, 0.0, 4.0, 0.5])})
        assert r["f"].tolist() == [0.5, 0.0, 0.25, 2.0]

    def test_st_and_others(self):
        """§3.4: odd elements to 0, others to 1."""
        r = run_uc(
            "index_set I:i = {0..5};\nint a[6];\n"
            "main { par (I) st (i % 2 == 1) a[i] = 0; others a[i] = 1; }"
        )
        assert r["a"].tolist() == [1, 0, 1, 0, 1, 0]

    def test_multiple_st_blocks(self):
        r = run_uc(
            "index_set I:i = {0..8};\nint a[9];\n"
            "main { par (I) st (i % 3 == 0) a[i] = 3; "
            "st (i % 3 == 1) a[i] = 1; others a[i] = 2; }"
        )
        assert r["a"].tolist() == [3, 1, 2, 3, 1, 2, 3, 1, 2]

    def test_sequence_body_is_synchronous(self):
        """Each statement completes for all lanes before the next starts:
        the second statement sees the first statement's writes."""
        r = run_uc(
            "index_set I:i = {0..3};\nint a[4], b[4];\n"
            "main { par (I) { a[i] = i + 1; b[i] = a[3 - i]; } }"
        )
        assert r["b"].tolist() == [4, 3, 2, 1]

    def test_rhs_reads_before_writes_within_statement(self):
        """a[i] = a[i-1] uses the OLD neighbour values (synchronous)."""
        src = (
            "index_set I:i = {1..3};\nint a[4];\n"
            "main { par (I) a[i] = a[i-1]; }"
        )
        r = run_uc(src, {"a": np.array([1, 2, 3, 4])})
        assert r["a"].tolist() == [1, 1, 2, 3]

    def test_cartesian_product(self):
        r = run_uc(
            "index_set I:i = {0..2}, J:j = I;\nint d[3][3];\n"
            "main { par (I, J) d[i][j] = 10 * i + j; }"
        )
        assert r["d"][2][1] == 21

    def test_nested_par_extends_grid(self):
        r = run_uc(
            "index_set I:i = {0..2}, J:j = I;\nint d[3][3];\n"
            "main { par (I) par (J) d[i][j] = i + j; }"
        )
        assert r["d"].tolist() == [[0, 1, 2], [1, 2, 3], [2, 3, 4]]


class TestSingleAssignment:
    def test_paper_illegal_example(self):
        """par (I,J) a[i] = b[j] assigns N values to each a[i] (§3.4)."""
        src = (
            "index_set I:i = {0..3}, J:j = I;\nint a[4], b[4];\n"
            "main { par (I, J) a[i] = b[j]; }"
        )
        with pytest.raises(UCMultipleAssignmentError):
            run_uc(src, {"b": np.array([1, 2, 3, 4])})

    def test_identical_values_allowed(self):
        src = (
            "index_set I:i = {0..3}, J:j = I;\nint a[4], b[4];\n"
            "main { par (I, J) a[i] = b[0]; }"
        )
        r = run_uc(src, {"b": np.array([7, 8, 9, 10])})
        assert r["a"].tolist() == [7, 7, 7, 7]

    def test_scalar_target_conflict(self):
        src = "index_set I:i = {0..3};\nint s;\nmain { par (I) s = i; }"
        with pytest.raises(UCMultipleAssignmentError):
            run_uc(src)

    def test_scalar_target_agreeing_values(self):
        src = "index_set I:i = {0..3};\nint s;\nmain { par (I) s = 5; }"
        assert run_uc(src)["s"] == 5

    def test_explicit_nondeterminism_via_arbitrary(self):
        """The paper's fix: use $, to choose one value explicitly."""
        src = (
            "index_set I:i = {0..3}, J:j = I;\nint a[4], b[4];\n"
            "main { par (I) a[i] = $,(J; b[j]); }"
        )
        b = np.array([1, 2, 3, 4])
        r = run_uc(src, {"b": b})
        assert all(v in b for v in r["a"])


class TestStarPar:
    def test_prefix_sums_figure2(self):
        src = (
            "int N = 32;\nindex_set I:i = {0..N-1};\nint a[32], cnt[32];\n"
            "int power2(int x) { return 1 << x; }\n"
            "main { par (I) { a[i] = i; cnt[i] = 0; }\n"
            "*par (I) st (i >= power2(cnt[i])) {\n"
            "  a[i] = a[i] + a[i - power2(cnt[i])];\n"
            "  cnt[i] = cnt[i] + 1; } }"
        )
        r = run_uc(src)
        assert np.array_equal(r["a"], np.cumsum(np.arange(32)))
        # every lane ran exactly ceil(log2(max(i,1)))-ish iterations
        assert r["cnt"][31] == 5

    def test_terminates_immediately_when_nothing_enabled(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { *par (I) st (a[i] > 100) a[i] = 0; }"
        )
        assert r["a"].tolist() == [0, 0, 0, 0]

    def test_star_par_without_predicate_rejected(self):
        with pytest.raises(UCRuntimeError):
            run_uc(
                "index_set I:i = {0..3};\nint a[4];\nmain { *par (I) a[i] = 0; }"
            )

    def test_star_par_with_others_rejected(self):
        with pytest.raises(UCRuntimeError):
            run_uc(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { *par (I) st (a[i] < 0) a[i] = 0; others a[i] = 1; }"
            )

    def test_countdown(self):
        src = (
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) a[i] = i; *par (I) st (a[i] > 0) a[i] = a[i] - 1; }"
        )
        assert run_uc(src)["a"].tolist() == [0, 0, 0, 0]


class TestParallelControlFlow:
    def test_if_inside_par_masks(self):
        r = run_uc(
            "index_set I:i = {0..5};\nint a[6];\n"
            "main { par (I) { if (i < 3) a[i] = 1; else a[i] = 2; } }"
        )
        assert r["a"].tolist() == [1, 1, 1, 2, 2, 2]

    def test_while_with_grid_condition_rejected(self):
        with pytest.raises(UCRuntimeError):
            run_uc(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { par (I) { while (a[i] < 3) a[i] = a[i] + 1; } }"
            )

    def test_array_decl_in_parallel_body_rejected(self):
        with pytest.raises(UCRuntimeError):
            run_uc(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { par (I) { int t[2]; a[i] = 0; } }"
            )

    def test_seq_loop_inside_par(self):
        """figure 3's structure."""
        src = (
            "int N = 16;\nint LOGN = 4;\n"
            "index_set I:i = {0..N-1}, J:j = {0..LOGN-1};\nint a[16];\n"
            "int power2(int x) { return 1 << x; }\n"
            "main { par (I) { a[i] = i;\n"
            "  seq (J) st (i - power2(j) >= 0) a[i] = a[i] + a[i - power2(j)]; } }"
        )
        r = run_uc(src)
        assert np.array_equal(r["a"], np.cumsum(np.arange(16)))
