"""solve / *solve construct tests (paper §3.6)."""

import numpy as np
import pytest

from repro.algorithms import floyd_warshall, random_distance_matrix, wavefront_matrix
from repro.lang.errors import UCRuntimeError
from tests.conftest import run_uc

WAVEFRONT = (
    "int N = 8;\nindex_set I:i = {0..N-1}, J:j = I;\nint a[8][8];\n"
    "main { solve (I, J) a[i][j] = (i == 0 || j == 0) ? 1 "
    ": a[i-1][j] + a[i-1][j-1] + a[i][j-1]; }"
)


class TestSolve:
    @pytest.mark.parametrize("strategy", ["auto", "scheduled", "guarded"])
    def test_wavefront_all_strategies(self, strategy):
        r = run_uc(WAVEFRONT, solve_strategy=strategy)
        assert np.array_equal(r["a"], wavefront_matrix(8))

    def test_strategies_agree_exactly(self):
        a = run_uc(WAVEFRONT, solve_strategy="scheduled")["a"]
        b = run_uc(WAVEFRONT, solve_strategy="guarded")["a"]
        assert np.array_equal(a, b)

    def test_scheduled_is_cheaper_than_guarded(self):
        s = run_uc(WAVEFRONT, solve_strategy="scheduled")
        g = run_uc(WAVEFRONT, solve_strategy="guarded")
        assert s.elapsed_us < g.elapsed_us

    def test_one_dimensional_recurrence(self):
        src = (
            "index_set I:i = {0..9};\nint f[10];\n"
            "main { solve (I) f[i] = (i < 2) ? 1 : f[i-1] + f[i-2]; }"
        )
        r = run_uc(src)
        assert r["f"].tolist() == [1, 1, 2, 3, 5, 8, 13, 21, 34, 55]

    def test_constant_body(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint a[4];\nmain { solve (I) a[i] = 5; }"
        )
        assert r["a"].tolist() == [5, 5, 5, 5]

    def test_multiple_proper_assignments(self):
        src = (
            "index_set I:i = {0..4};\nint a[5], b[5];\n"
            "main { solve (I) { a[i] = (i == 0) ? 1 : b[i-1] + 1; "
            "b[i] = a[i] * 2; } }"
        )
        r = run_uc(src, solve_strategy="guarded")
        assert r["a"].tolist() == [1, 3, 7, 15, 31]
        assert r["b"].tolist() == [2, 6, 14, 30, 62]

    def test_circular_dependency_detected(self):
        src = (
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { solve (I) a[i] = a[(i + 1) % 4] + 1; }"
        )
        with pytest.raises(UCRuntimeError):
            run_uc(src, solve_strategy="guarded")

    def test_scheduled_strategy_rejects_unschedulable(self):
        src = (
            "index_set I:i = {0..3};\nint a[4], p[4];\n"
            "main { solve (I) a[i] = (i == 0) ? 1 : a[p[i]] + 1; }"
        )
        with pytest.raises(UCRuntimeError):
            run_uc(src, {"p": np.array([0, 0, 1, 2])}, solve_strategy="scheduled")

    def test_auto_falls_back_to_guarded(self):
        """Data-dependent references are fine under 'auto' if acyclic."""
        src = (
            "index_set I:i = {0..3};\nint a[4], p[4];\n"
            "main { solve (I) a[i] = (i == 0) ? 1 : a[p[i]] + 1; }"
        )
        r = run_uc(src, {"p": np.array([0, 0, 1, 2])})
        assert r["a"].tolist() == [1, 2, 3, 4]


class TestStarSolve:
    def test_apsp_fixed_point(self):
        src = (
            "int N = 8;\nindex_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
            "int dist[8][8];\n"
            "main { *solve (I, J) dist[i][j] = $<(K; dist[i][k] + dist[k][j]); }"
        )
        d = random_distance_matrix(8, seed=2)
        r = run_uc(src, {"dist": d})
        assert np.array_equal(r["dist"], floyd_warshall(d))

    def test_already_at_fixed_point_stops_fast(self):
        src = (
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { *solve (I) a[i] = a[i]; }"
        )
        r = run_uc(src)
        assert r.counts["global_or"] <= 2

    def test_star_solve_not_single_assignment_restricted(self):
        """§3.6: *solve statements need not be single-assignment."""
        src = (
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { *solve (I) { a[i] = a[i] + 0; a[i] = (a[i] > 3) ? 3 : a[i]; } }"
        )
        r = run_uc(src, {"a": np.array([1, 9, 2, 8])})
        assert r["a"].tolist() == [1, 3, 2, 3]
