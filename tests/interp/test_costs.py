"""Cost-accounting tests: the simulated clock tells the paper's story."""

import numpy as np
import pytest

from repro.machine import MachineConfig
from tests.conftest import run_uc


class TestReferenceCosts:
    def test_local_assignment_uses_no_communication(self):
        r = run_uc(
            "index_set I:i = {0..7};\nint a[8], b[8];\nmain { par (I) a[i] = b[i]; }"
        )
        assert r.counts.get("router_get", 0) == 0
        assert r.counts.get("news", 0) == 0

    def test_shifted_reference_uses_news(self):
        r = run_uc(
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "main { par (I) a[i] = b[i + 1]; }"
        )
        assert r.counts.get("news", 0) >= 1
        assert r.counts.get("router_get", 0) == 0

    def test_permute_map_removes_news(self):
        src = (
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "MAP\nmain { par (I) a[i] = b[i + 1]; }"
        )
        mapped = run_uc(src.replace("MAP", "map (I) { permute (I) b[i+1] :- a[i]; }"))
        unmapped = run_uc(src.replace("MAP", ""))
        assert unmapped.counts.get("news", 0) > mapped.counts.get("news", 0)
        assert mapped.elapsed_us < unmapped.elapsed_us

    def test_data_dependent_reference_uses_router(self):
        r = run_uc(
            "index_set I:i = {0..7};\nint a[8], b[8], p[8];\n"
            "main { par (I) a[i] = b[p[i]]; }",
            {"p": np.arange(8)[::-1].copy()},
        )
        assert r.counts.get("router_get", 0) >= 1

    def test_scatter_write_uses_router_send(self):
        r = run_uc(
            "index_set I:i = {0..7};\nint a[8], p[8];\n"
            "main { par (I) a[p[i]] = i; }",
            {"p": np.arange(8)[::-1].copy()},
        )
        assert r.counts.get("router_send", 0) >= 1

    def test_transpose_read_uses_router_until_mapped(self):
        src = (
            "index_set I:i = {0..7}, J:j = I;\nint a[8][8], b[8][8];\n"
            "MAP\nmain { par (I, J) a[i][j] = b[j][i]; }"
        )
        unmapped = run_uc(src.replace("MAP", ""))
        mapped = run_uc(
            src.replace("MAP", "map (I, J) { permute (I, J) b[j][i] :- a[i][j]; }")
        )
        assert unmapped.counts.get("router_get", 0) >= 1
        assert mapped.counts.get("router_get", 0) == 0

    def test_spread_for_reduction_operands(self):
        r = run_uc(
            "index_set I:i = {0..7}, J:j = I, K:k = I;\nint d[8][8], c[8][8];\n"
            "main { par (I, J) c[i][j] = $<(K; d[i][k] + d[k][j]); }"
        )
        assert r.counts.get("scan_step", 0) > 0

    def test_broadcast_for_uniform_reference(self):
        r = run_uc(
            "index_set I:i = {0..7};\nint a[8], b[8];\n"
            "main { par (I) a[i] = b[3]; }"
        )
        assert r.counts.get("broadcast", 0) >= 1


class TestVPRatioScaling:
    def test_bigger_grids_cost_more_past_machine_size(self):
        cfg = MachineConfig(n_pes=64)
        src = "index_set I:i = {0..SZ-1};\nint a[SZ];\nmain { par (I) a[i] = i; }"
        t_fit = run_uc(src.replace("SZ", "64"), machine_config=cfg).elapsed_us
        t_over = run_uc(src.replace("SZ", "256"), machine_config=cfg).elapsed_us
        # per-VP work quadruples but the fixed dispatch overhead does not
        assert t_over > t_fit * 1.2

    def test_same_cost_while_grid_fits(self):
        src = "index_set I:i = {0..SZ-1};\nint a[SZ];\nmain { par (I) a[i] = i; }"
        t_small = run_uc(src.replace("SZ", "64")).elapsed_us
        t_large = run_uc(src.replace("SZ", "8192")).elapsed_us
        assert t_large == pytest.approx(t_small, rel=0.05)


class TestIterationCosts:
    def test_star_par_pays_per_sweep(self):
        src = (
            "index_set I:i = {0..7};\nint a[8];\n"
            "main { par (I) a[i] = LIMIT; *par (I) st (a[i] > 0) a[i] = a[i] - 1; }"
        )
        short = run_uc(src, defines={"LIMIT": 2})
        long = run_uc(src, defines={"LIMIT": 12})
        assert long.counts["global_or"] > short.counts["global_or"]
        assert long.elapsed_us > short.elapsed_us

    def test_dispatch_dominates_small_programs(self):
        """A host-driven SIMD machine pays dispatch per instruction."""
        r = run_uc("index_set I:i = {0..7};\nint a[8];\nmain { par (I) a[i] = i; }")
        assert r.times.get("dispatch", 0) > r.times.get("alu", 0)
