"""Per-statement profiling tests."""

import pytest

from repro.cli import main
from repro.interp.program import UCProgram

SRC = """
index_set I:i = {0..15}, J:j = I, K:k = I;
int d[16][16], s;
main {
    par (I, J) d[i][j] = i + j;
    seq (K)
      par (I, J) st (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
    s = $+(I, J; d[i][j]);
}
"""


class TestProfile:
    def test_profile_covers_all_statements(self):
        r = UCProgram(SRC).run(profile=True)
        assert len(r.profile) == 3
        kinds = sorted(r.profile)
        assert any("par" in k for k in kinds)
        assert any("seq" in k for k in kinds)

    def test_profile_times_sum_to_elapsed(self):
        r = UCProgram(SRC).run(profile=True)
        assert sum(r.profile.values()) == pytest.approx(r.elapsed_us)

    def test_hot_statement_is_the_seq_loop(self):
        r = UCProgram(SRC).run(profile=True)
        hottest = max(r.profile.items(), key=lambda kv: kv[1])[0]
        assert "seq" in hottest

    def test_profile_off_by_default(self):
        r = UCProgram(SRC).run()
        assert r.profile == {}

    def test_results_identical_with_profiling(self):
        import numpy as np

        plain = UCProgram(SRC).run()
        prof = UCProgram(SRC).run(profile=True)
        assert np.array_equal(plain["d"], prof["d"])
        assert plain.elapsed_us == pytest.approx(prof.elapsed_us)

    def test_cli_profile_flag(self, tmp_path, capsys):
        f = tmp_path / "p.uc"
        f.write_text(SRC)
        main(["run", str(f), "--profile", "--print", "s"])
        out = capsys.readouterr().out
        assert "per-statement profile" in out
        assert "%" in out
