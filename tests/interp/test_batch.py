"""Batched lane execution (``UCProgram.run_batch``).

The contract under test: lane ``i`` of ``run_batch(inputs)`` is
bit-identical — variable values, stdout and the Clock cost fingerprint —
to ``run(inputs[i])``, under every engine/frontier/fusion combination,
and ``REPRO_NO_BATCH=1`` restores the plain sequential loop.
"""

import numpy as np
import pytest

from repro.interp import batch as batch_mod
from repro.interp.program import UCProgram
from repro.lang.errors import UCRuntimeError

APSP = (
    "int N = 12;\n"
    "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
    "int dist[12][12];\n"
    "main {\n"
    "    *solve (I, J) dist[i][j] = $<(K; dist[i][k] + dist[k][j]);\n"
    "}\n"
)

DRAIN = (
    "int N = 10;\n"
    "index_set I:i = {0..N-1}, J:j = I;\n"
    "int a[10][10];\n"
    "int b[10][10];\n"
    "main {\n"
    "    *par (I, J) st (a[i][j] > 0) {\n"
    "        b[i][j] = b[i][j] + a[i][j];\n"
    "        a[i][j] = a[i][j] - 1;\n"
    "    }\n"
    "}\n"
)

_FLAGS = [
    {"frontier": True, "fusion": True},
    {"frontier": True, "fusion": False},
    {"frontier": False, "fusion": True},
    {"frontier": False, "fusion": False},
]


def _chain(n, w):
    d = np.full((n, n), 10**9, dtype=np.int64)
    np.fill_diagonal(d, 0)
    for a in range(n - 1):
        d[a, a + 1] = w
        d[a + 1, a] = w
    return d


def _copy(inp):
    if inp is None:
        return None
    return {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in inp.items()}


def _assert_lanes_match(solo, batch, names):
    assert len(solo) == len(batch)
    for i, (a, b) in enumerate(zip(solo, batch)):
        for name in names:
            assert np.array_equal(a[name], b[name]), f"lane {i}: {name} differs"
        assert a.fingerprint == b.fingerprint, f"lane {i}: fingerprint differs"
        assert a.stdout == b.stdout, f"lane {i}: stdout differs"
        assert a.frontier == b.frontier, f"lane {i}: frontier counters differ"
        assert a.fusion == b.fusion, f"lane {i}: fusion counters differ"


class TestSolveIdentity:
    @pytest.mark.parametrize("flags", _FLAGS)
    def test_lanes_bit_identical_to_solo(self, flags):
        inputs = [{"dist": _chain(12, w)} for w in (1, 2, 3, 5, 8)]
        solo = [
            UCProgram(APSP, compile_store=None, **flags).run(_copy(inp))
            for inp in inputs
        ]
        batch = UCProgram(APSP, compile_store=None, **flags).run_batch(
            [_copy(inp) for inp in inputs]
        )
        _assert_lanes_match(solo, batch, ["dist"])

    def test_batched_lanes_marker(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
        inputs = [{"dist": _chain(12, w)} for w in (1, 2, 3)]
        prog = UCProgram(APSP, compile_store=None)
        batch = prog.run_batch(inputs)
        for r in batch:
            assert r.compile["batched_lanes"] == 3.0

    def test_shared_compile_store_counts_one_backend(self):
        from repro.interp.compile_store import CompileStore

        store = CompileStore()
        prog = UCProgram(APSP, compile_store=store)
        results = prog.run_batch([{"dist": _chain(12, w)} for w in (1, 2)])
        stats = results[-1].store
        assert stats["backend_entries"] == 1
        assert stats["backend_misses"] == 1


class TestParIdentity:
    @pytest.mark.parametrize("flags", _FLAGS)
    def test_lanes_bit_identical_to_solo(self, flags):
        rng = np.random.default_rng(11)
        inputs = [
            {
                "a": rng.integers(0, 5, size=(10, 10)).astype(np.int64),
                "b": np.zeros((10, 10), dtype=np.int64),
            }
            for _ in range(4)
        ]
        solo = [
            UCProgram(DRAIN, compile_store=None, **flags).run(_copy(inp))
            for inp in inputs
        ]
        batch = UCProgram(DRAIN, compile_store=None, **flags).run_batch(
            [_copy(inp) for inp in inputs]
        )
        _assert_lanes_match(solo, batch, ["a", "b"])

    def test_staggered_retirement(self):
        """Lanes whose predicates drain at different sweeps retire
        independently; late lanes are unaffected by early retirees."""
        inputs = [
            {
                "a": np.full((10, 10), depth, dtype=np.int64),
                "b": np.zeros((10, 10), dtype=np.int64),
            }
            for depth in (1, 7, 3, 0)
        ]
        solo = [
            UCProgram(DRAIN, compile_store=None).run(_copy(inp)) for inp in inputs
        ]
        batch = UCProgram(DRAIN, compile_store=None).run_batch(
            [_copy(inp) for inp in inputs]
        )
        _assert_lanes_match(solo, batch, ["a", "b"])
        assert all(np.all(r["a"] == 0) for r in batch)


class TestScalarLanes:
    SRC = (
        "int N = 8;\n"
        "index_set I:i = {0..N-1};\n"
        "int x[8];\n"
        "int y[8];\n"
        "int total;\n"
        "main {\n"
        "    total = $+(I; x[i]);\n"
        "    par (I) y[i] = x[i] * total;\n"
        "}\n"
    )

    def test_divergent_scalars_stay_per_lane(self):
        rng = np.random.default_rng(3)
        inputs = [
            {"x": rng.integers(0, 50, size=8).astype(np.int64)} for _ in range(5)
        ]
        solo = [
            UCProgram(self.SRC, compile_store=None).run(_copy(inp))
            for inp in inputs
        ]
        batch = UCProgram(self.SRC, compile_store=None).run_batch(
            [_copy(inp) for inp in inputs]
        )
        _assert_lanes_match(solo, batch, ["x", "y", "total"])
        totals = {int(r["total"]) for r in batch}
        assert len(totals) > 1, "lanes should really have diverged"


class TestFallbacks:
    def test_empty_inputs(self):
        prog = UCProgram(APSP, compile_store=None)
        assert prog.run_batch([]) == []

    def test_none_inputs_use_defaults(self):
        prog = UCProgram(APSP, compile_store=None)
        solo = [
            UCProgram(APSP, compile_store=None).run(None) for _ in range(2)
        ]
        batch = prog.run_batch([None, None])
        _assert_lanes_match(solo, batch, ["dist"])

    def test_single_input_matches_solo(self):
        inp = {"dist": _chain(12, 2)}
        solo = UCProgram(APSP, compile_store=None).run(_copy(inp))
        [batch] = UCProgram(APSP, compile_store=None).run_batch([_copy(inp)])
        assert np.array_equal(solo["dist"], batch["dist"])
        assert solo.fingerprint == batch.fingerprint

    def test_single_input_skips_lane_machinery(self, monkeypatch):
        entered = []
        orig = batch_mod._BatchRun.execute

        def spy(self):
            entered.append(1)
            return orig(self)

        monkeypatch.setattr(batch_mod._BatchRun, "execute", spy)
        inp = {"dist": _chain(12, 3)}
        solo = UCProgram(APSP, compile_store=None).run(_copy(inp))
        [batch] = UCProgram(APSP, compile_store=None).run_batch([_copy(inp)])
        assert np.array_equal(solo["dist"], batch["dist"])
        assert solo.fingerprint == batch.fingerprint
        assert not entered, "a batch of one must dispatch straight to run()"

    def test_sharded_program_takes_the_sequential_loop(self, monkeypatch):
        entered = []
        orig = batch_mod._BatchRun.execute

        def spy(self):
            entered.append(1)
            return orig(self)

        monkeypatch.setattr(batch_mod._BatchRun, "execute", spy)
        prog = UCProgram(APSP, compile_store=None, shards=2)
        assert not batch_mod.batchable(prog)
        inputs = [{"dist": _chain(12, w)} for w in (1, 2)]
        batch = prog.run_batch([_copy(inp) for inp in inputs])
        solo = [
            UCProgram(APSP, compile_store=None, shards=2).run(_copy(inp))
            for inp in inputs
        ]
        _assert_lanes_match(solo, batch, ["dist"])
        assert not entered, "sharded programs must not enter the lane engine"
        assert all(r.shards.get("n_shards") == 2 for r in batch)

    def test_no_batch_env_restores_loop(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        calls = []
        orig = batch_mod._BatchRun.execute

        def spy(self):
            calls.append(1)
            return orig(self)

        monkeypatch.setattr(batch_mod._BatchRun, "execute", spy)
        inputs = [{"dist": _chain(12, w)} for w in (1, 2, 3)]
        solo = [
            UCProgram(APSP, compile_store=None).run(_copy(inp)) for inp in inputs
        ]
        batch = UCProgram(APSP, compile_store=None).run_batch(
            [_copy(inp) for inp in inputs]
        )
        _assert_lanes_match(solo, batch, ["dist"])
        assert not calls, "REPRO_NO_BATCH=1 must not enter the lane engine"

    def test_lane_error_matches_solo_error(self):
        src = (
            "int d;\n"
            "int out;\n"
            "main { out = 100 / d; }\n"
        )
        inputs = [{"d": 5}, {"d": 0}, {"d": 2}]
        with pytest.raises(UCRuntimeError) as solo_err:
            UCProgram(src, compile_store=None).run(_copy(inputs[1]))
        with pytest.raises(UCRuntimeError) as batch_err:
            UCProgram(src, compile_store=None).run_batch(
                [_copy(inp) for inp in inputs]
            )
        assert str(solo_err.value) == str(batch_err.value)

    def test_faulted_program_still_matches(self):
        """Fault injection forces the sequential path; results match."""
        inputs = [{"dist": _chain(12, w)} for w in (1, 4)]
        solo = [
            UCProgram(APSP, compile_store=None, faults="drop@router_send#2").run(
                _copy(inp)
            )
            for inp in inputs
        ]
        batch = UCProgram(
            APSP, compile_store=None, faults="drop@router_send#2"
        ).run_batch([_copy(inp) for inp in inputs])
        _assert_lanes_match(solo, batch, ["dist"])


class TestBlockedReduceNarrowing:
    """The int32 window of the blocked reduction must be bit-exact."""

    def test_bounds_straddling_int32_stay_int64(self):
        n = 48  # big enough that the blocked-reduce slab path engages
        src = (
            f"int N = {n};\n"
            "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
            f"int dist[{n}][{n}];\n"
            "main {\n"
            "    *solve (I, J) dist[i][j] = $<(K; dist[i][k] + dist[k][j]);\n"
            "}\n"
        )
        # 2^31 is exactly one past INT32_MAX after one addition: the
        # narrowing window must refuse and the int64 path must agree
        # with solo to the bit
        big = 2**30
        inputs = []
        for w in (1, 3):
            d = np.full((n, n), big, dtype=np.int64)
            np.fill_diagonal(d, 0)
            for a in range(n - 1):
                d[a, a + 1] = w
                d[a + 1, a] = w
            inputs.append({"dist": d})
        solo = [
            UCProgram(src, compile_store=None).run(_copy(inp)) for inp in inputs
        ]
        batch = UCProgram(src, compile_store=None).run_batch(
            [_copy(inp) for inp in inputs]
        )
        _assert_lanes_match(solo, batch, ["dist"])

    def test_int32_window_rejects_overflowing_ops(self):
        w = batch_mod._int32_window
        m = batch_mod._INT32_MAX
        assert w("+", "min", (0, 100), (0, 100), 16)
        assert not w("+", "min", (0, m), (0, 1), 16)
        assert not w("+", "min", (0, m + 1), (0, 0), 16)  # operand too wide
        assert w("*", "max", (0, 46000), (0, 46000), 4)
        assert not w("*", "max", (0, 47000), (0, 47000), 4)
        assert w("+", "add", (0, 100), (0, 100), 16)
        assert not w("+", "add", (0, m // 4), (0, 0), 16)  # partial sums
        assert not w("+", "mul", (1, 2), (1, 2), 16)  # products explode
        assert not w("<<", "min", (0, 1), (0, 1), 4)  # shifts never narrow
