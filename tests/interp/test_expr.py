"""Expression-evaluation tests (scalar and vectorised)."""

import numpy as np
import pytest

from repro.lang.errors import UCRuntimeError
from tests.conftest import run_uc


def eval_scalar(expr, decls="", inputs=None):
    src = f"{decls}\nint out_;\nmain {{ out_ = {expr}; }}"
    return run_uc(src, inputs)["out_"]


def eval_float(expr, decls="", inputs=None):
    src = f"{decls}\nfloat out_;\nmain {{ out_ = {expr}; }}"
    return run_uc(src, inputs)["out_"]


class TestArithmetic:
    def test_basic_ops(self):
        assert eval_scalar("2 + 3 * 4") == 14
        assert eval_scalar("(2 + 3) * 4") == 20
        assert eval_scalar("10 - 4 - 3") == 3

    def test_c_division_truncates_toward_zero(self):
        assert eval_scalar("7 / 2") == 3
        assert eval_scalar("-7 / 2") == -3
        assert eval_scalar("7 / -2") == -3

    def test_c_mod_sign(self):
        assert eval_scalar("7 % 3") == 1
        assert eval_scalar("-7 % 3") == -1
        assert eval_scalar("7 % -3") == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(UCRuntimeError):
            eval_scalar("1 / 0")
        with pytest.raises(UCRuntimeError):
            eval_scalar("1 % 0")

    def test_float_arithmetic(self):
        assert eval_float("1.0 / 4") == pytest.approx(0.25)
        assert eval_float("1.5 + 2") == pytest.approx(3.5)

    def test_bitwise(self):
        assert eval_scalar("5 & 3") == 1
        assert eval_scalar("5 | 3") == 7
        assert eval_scalar("5 ^ 3") == 6
        assert eval_scalar("1 << 4") == 16
        assert eval_scalar("16 >> 2") == 4

    def test_comparisons_are_ints(self):
        assert eval_scalar("3 < 4") == 1
        assert eval_scalar("3 > 4") == 0
        assert eval_scalar("(1 == 1) + (2 != 2)") == 1

    def test_unary(self):
        assert eval_scalar("-(3)") == -3
        assert eval_scalar("!0") == 1
        assert eval_scalar("!7") == 0
        assert eval_scalar("~0") == -1

    def test_logical_short_circuit_scalar(self):
        # 1/0 must not evaluate when short-circuited
        assert eval_scalar("0 && (1 / 0)") == 0
        assert eval_scalar("1 || (1 / 0)") == 1

    def test_ternary_scalar(self):
        assert eval_scalar("1 ? 10 : 20") == 10
        assert eval_scalar("0 ? 10 : 20") == 20

    def test_float_to_int_truncation(self):
        assert eval_scalar("1.9 + 0.0") == 1

    def test_inf_constant(self):
        assert eval_float("INF") > 1e15


class TestParallelValues:
    def test_element_values(self):
        r = run_uc(
            "index_set I:i = {0..4};\nint a[5];\nmain { par (I) a[i] = i * 2; }"
        )
        assert r["a"].tolist() == [0, 2, 4, 6, 8]

    def test_listing_set_element_values(self):
        r = run_uc(
            "index_set L:l = {4, 2, 9};\nint a[10];\nmain { par (L) a[l] = l; }"
        )
        assert r["a"].tolist() == [0, 0, 2, 0, 4, 0, 0, 0, 0, 9]

    def test_vectorised_ternary_guards_oob(self):
        """Disabled lanes of a ?: must never dereference (i-1 at i==0)."""
        r = run_uc(
            "index_set I:i = {0..4};\nint a[5];\n"
            "main { par (I) a[i] = (i == 0) ? 100 : a[i-1] + 1; }"
        )
        assert r["a"][0] == 100

    def test_shortcircuit_and_guards_oob(self):
        r = run_uc(
            "index_set I:i = {0..4};\nint a[5], b[5];\n"
            "main { par (I) st (i < 4 && a[i+1] == 0) b[i] = 1; }"
        )
        assert r["b"].tolist() == [1, 1, 1, 1, 0]

    def test_unguarded_oob_raises(self):
        with pytest.raises(UCRuntimeError):
            run_uc(
                "index_set I:i = {0..4};\nint a[5];\n"
                "main { par (I) a[i] = a[i + 1]; }"
            )

    def test_scalar_broadcast_into_parallel(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint a[4], k;\n"
            "main { k = 7; par (I) a[i] = k + i; }"
        )
        assert r["a"].tolist() == [7, 8, 9, 10]

    def test_parallel_local_scalar(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) { int t; t = i * i; a[i] = t + 1; } }"
        )
        assert r["a"].tolist() == [1, 2, 5, 10]

    def test_parallel_local_with_initializer(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) { int t = i + 1; a[i] = t; } }"
        )
        assert r["a"].tolist() == [1, 2, 3, 4]

    def test_array_without_subscripts_rejected(self):
        with pytest.raises(UCRuntimeError):
            run_uc("int a[4], x;\nmain { x = a + 1; }")

    def test_compound_assignment(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) a[i] = i; par (I) a[i] += 10; }"
        )
        assert r["a"].tolist() == [10, 11, 12, 13]

    def test_incdec_statement(self):
        r = run_uc("int x;\nmain { x = 5; x++; x++; x--; }")
        assert r["x"] == 6

    def test_float_array(self):
        r = run_uc(
            "index_set I:i = {0..3};\nfloat f[4];\n"
            "main { par (I) f[i] = i / 2.0; }"
        )
        assert r["f"].tolist() == [0.0, 0.5, 1.0, 1.5]

    def test_int_array_truncates_float_values(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) a[i] = i + 0.9; }"
        )
        assert r["a"].tolist() == [0, 1, 2, 3]


class TestHostArrayAccess:
    def test_host_element_read_write(self):
        r = run_uc("int a[4], x;\nmain { a[2] = 42; x = a[2] + 1; }")
        assert r["x"] == 43

    def test_host_oob_raises(self):
        with pytest.raises(UCRuntimeError):
            run_uc("int a[4];\nmain { a[4] = 1; }")

    def test_host_negative_index_raises(self):
        with pytest.raises(UCRuntimeError):
            run_uc("int a[4], x;\nmain { x = a[0-1]; }")
