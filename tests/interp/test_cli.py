"""CLI tests (run/check/cstar/analyze)."""

import pytest

from repro.cli import main


@pytest.fixture
def apsp_file(tmp_path):
    f = tmp_path / "apsp.uc"
    f.write_text(
        """
        index_set I:i = {0..N-1}, J:j = I, K:k = I;
        int d[N][N];
        main {
            par (I, J) st (i == j) d[i][j] = 0;
              others d[i][j] = rand() % N + 1;
            seq (K)
              par (I, J)
                st (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
        }
        """
    )
    return str(f)


@pytest.fixture
def mapped_file(tmp_path):
    f = tmp_path / "shift.uc"
    f.write_text(
        """
        int N = 16;
        index_set I:i = {0..N-2};
        int a[16], b[16];
        map (I) { permute (I) b[i+1] :- a[i]; }
        main { par (I) a[i] = a[i] + b[i+1]; }
        """
    )
    return str(f)


class TestRun:
    def test_run_prints_variables_and_timing(self, apsp_file, capsys):
        assert main(["run", apsp_file, "-D", "N=4"]) == 0
        out = capsys.readouterr().out
        assert "d =" in out
        assert "simulated elapsed" in out

    def test_run_selected_variable(self, apsp_file, capsys):
        main(["run", apsp_file, "-D", "N=4", "--print", "d"])
        out = capsys.readouterr().out
        assert out.count(" = ") == 1

    def test_run_unknown_variable(self, apsp_file):
        with pytest.raises(SystemExit):
            main(["run", apsp_file, "-D", "N=4", "--print", "zz"])

    def test_run_ledger(self, apsp_file, capsys):
        main(["run", apsp_file, "-D", "N=4", "--ledger"])
        out = capsys.readouterr().out
        assert "instruction ledger" in out
        assert "alu" in out

    def test_run_with_pes_override(self, apsp_file, capsys):
        assert main(["run", apsp_file, "-D", "N=4", "--pes", "64"]) == 0

    def test_missing_define_fails_cleanly(self, apsp_file):
        with pytest.raises(SystemExit):
            main(["check", apsp_file])

    def test_bad_define_syntax(self, apsp_file):
        with pytest.raises(SystemExit):
            main(["run", apsp_file, "-D", "N"])
        with pytest.raises(SystemExit):
            main(["run", apsp_file, "-D", "N=four"])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["run", "/nonexistent.uc"])


class TestCheck:
    def test_check_ok(self, apsp_file, capsys):
        assert main(["check", apsp_file, "-D", "N=8"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_reports_mapped_arrays(self, mapped_file, capsys):
        main(["check", mapped_file])
        assert "1 mapped arrays" in capsys.readouterr().out

    def test_check_semantic_error(self, tmp_path):
        f = tmp_path / "bad.uc"
        f.write_text("index_set I:i = {5..2};")
        with pytest.raises(SystemExit):
            main(["check", str(f)])


class TestCstar:
    def test_emits_domains(self, apsp_file, capsys):
        main(["cstar", apsp_file, "-D", "N=8"])
        out = capsys.readouterr().out
        assert "domain" in out and "where (" in out

    def test_mapping_rewritten_away(self, mapped_file, capsys):
        main(["cstar", mapped_file])
        out = capsys.readouterr().out
        assert "b[i + 1]" not in out


class TestAnalyze:
    def test_reports_and_suggestions(self, mapped_file, capsys):
        main(["analyze", mapped_file, "--no-maps"])
        out = capsys.readouterr().out
        assert "news" in out
        assert "permute" in out

    def test_mapped_program_reports_local(self, mapped_file, capsys):
        main(["analyze", mapped_file])
        out = capsys.readouterr().out
        assert "local" in out

    def test_processor_opt_reported(self, tmp_path, capsys):
        f = tmp_path / "hist.uc"
        f.write_text(
            "index_set I:i = {0..63}, J:j = {0..9};\n"
            "int samples[64];\nint count[10];\n"
            "main { par (J) count[j] = $+(I st (samples[i] == j) 1); }"
        )
        main(["analyze", str(f)])
        out = capsys.readouterr().out
        assert "processor optimization" in out
        assert "64 VPs" in out


class TestStats:
    def test_run_stats_prints_counters(self, apsp_file, capsys):
        assert main(["run", apsp_file, "-D", "N=4", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "execution stats" in out
        assert "plan_cache." in out
        assert "tier." in out

    def test_run_without_stats_silent(self, apsp_file, capsys):
        main(["run", apsp_file, "-D", "N=4"])
        out = capsys.readouterr().out
        assert "execution stats" not in out
