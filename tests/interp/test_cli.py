"""CLI tests (run/check/cstar/analyze)."""

import pytest

from repro.cli import main


@pytest.fixture
def apsp_file(tmp_path):
    f = tmp_path / "apsp.uc"
    f.write_text(
        """
        index_set I:i = {0..N-1}, J:j = I, K:k = I;
        int d[N][N];
        main {
            par (I, J) st (i == j) d[i][j] = 0;
              others d[i][j] = rand() % N + 1;
            seq (K)
              par (I, J)
                st (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
        }
        """
    )
    return str(f)


@pytest.fixture
def mapped_file(tmp_path):
    f = tmp_path / "shift.uc"
    f.write_text(
        """
        int N = 16;
        index_set I:i = {0..N-2};
        int a[16], b[16];
        map (I) { permute (I) b[i+1] :- a[i]; }
        main { par (I) a[i] = a[i] + b[i+1]; }
        """
    )
    return str(f)


class TestRun:
    def test_run_prints_variables_and_timing(self, apsp_file, capsys):
        assert main(["run", apsp_file, "-D", "N=4"]) == 0
        out = capsys.readouterr().out
        assert "d =" in out
        assert "simulated elapsed" in out

    def test_run_selected_variable(self, apsp_file, capsys):
        main(["run", apsp_file, "-D", "N=4", "--print", "d"])
        out = capsys.readouterr().out
        assert out.count(" = ") == 1

    def test_run_unknown_variable(self, apsp_file):
        with pytest.raises(SystemExit):
            main(["run", apsp_file, "-D", "N=4", "--print", "zz"])

    def test_run_ledger(self, apsp_file, capsys):
        main(["run", apsp_file, "-D", "N=4", "--ledger"])
        out = capsys.readouterr().out
        assert "instruction ledger" in out
        assert "alu" in out

    def test_run_with_pes_override(self, apsp_file, capsys):
        assert main(["run", apsp_file, "-D", "N=4", "--pes", "64"]) == 0

    def test_missing_define_fails_cleanly(self, apsp_file):
        with pytest.raises(SystemExit):
            main(["check", apsp_file])

    def test_bad_define_syntax(self, apsp_file):
        with pytest.raises(SystemExit):
            main(["run", apsp_file, "-D", "N"])
        with pytest.raises(SystemExit):
            main(["run", apsp_file, "-D", "N=four"])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["run", "/nonexistent.uc"])


class TestCheck:
    def test_check_ok(self, apsp_file, capsys):
        assert main(["check", apsp_file, "-D", "N=8"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_reports_mapped_arrays(self, mapped_file, capsys):
        main(["check", mapped_file])
        assert "1 mapped arrays" in capsys.readouterr().out

    def test_check_semantic_error(self, tmp_path):
        f = tmp_path / "bad.uc"
        f.write_text("index_set I:i = {5..2};")
        with pytest.raises(SystemExit):
            main(["check", str(f)])


class TestCstar:
    def test_emits_domains(self, apsp_file, capsys):
        main(["cstar", apsp_file, "-D", "N=8"])
        out = capsys.readouterr().out
        assert "domain" in out and "where (" in out

    def test_mapping_rewritten_away(self, mapped_file, capsys):
        main(["cstar", mapped_file])
        out = capsys.readouterr().out
        assert "b[i + 1]" not in out


class TestAnalyze:
    def test_reports_and_suggestions(self, mapped_file, capsys):
        main(["analyze", mapped_file, "--no-maps"])
        out = capsys.readouterr().out
        assert "news" in out
        assert "permute" in out

    def test_mapped_program_reports_local(self, mapped_file, capsys):
        main(["analyze", mapped_file])
        out = capsys.readouterr().out
        assert "local" in out

    def test_processor_opt_reported(self, tmp_path, capsys):
        f = tmp_path / "hist.uc"
        f.write_text(
            "index_set I:i = {0..63}, J:j = {0..9};\n"
            "int samples[64];\nint count[10];\n"
            "main { par (J) count[j] = $+(I st (samples[i] == j) 1); }"
        )
        main(["analyze", str(f)])
        out = capsys.readouterr().out
        assert "processor optimization" in out
        assert "64 VPs" in out


class TestStats:
    def test_run_stats_prints_counters(self, apsp_file, capsys):
        assert main(["run", apsp_file, "-D", "N=4", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "execution stats" in out
        assert "plan_cache." in out
        assert "tier." in out

    def test_run_without_stats_silent(self, apsp_file, capsys):
        main(["run", apsp_file, "-D", "N=4"])
        out = capsys.readouterr().out
        assert "execution stats" not in out


class TestShards:
    def test_run_sharded_stats_prints_shard_counters(self, apsp_file, capsys):
        assert main(["run", apsp_file, "-D", "N=4", "--shards", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "shards: 2 (map placement" in out
        assert "shards.cross_refs" in out
        assert "shards.intershard" in out
        assert "shards.shard[0]" in out and "shards.shard[1]" in out

    def test_run_block_placement_accepted(self, apsp_file, capsys):
        rc = main(
            [
                "run",
                apsp_file,
                "-D",
                "N=4",
                "--shards",
                "2",
                "--placement",
                "block",
                "--stats",
            ]
        )
        assert rc == 0
        assert "shards: 2 (block placement" in capsys.readouterr().out

    def test_unsharded_stats_has_no_shard_section(self, apsp_file, capsys):
        assert main(["run", apsp_file, "-D", "N=4", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "execution stats" in out
        assert "shards:" not in out

    def test_sharded_fingerprint_matches_unsharded(self, apsp_file, capsys):
        main(["run", apsp_file, "-D", "N=4", "--fingerprint"])
        solo = capsys.readouterr().out
        main(["run", apsp_file, "-D", "N=4", "--shards", "4", "--fingerprint"])
        sharded = capsys.readouterr().out
        fp = [l for l in solo.splitlines() if "fingerprint" in l]
        assert fp and fp == [l for l in sharded.splitlines() if "fingerprint" in l]


SLOW_UC = """
int N = 32;
index_set I:i = {0..N-1};
int a[32];
main {
    par (I) a[i] = 2000;
    *par (I) st (a[i] > 0) a[i] = a[i] - 1;
}
"""

SERVE_UC = """
int N = 8;
index_set I:i = {0..N-1};
int a[8];
main {
  par (I) a[i] = i * i;
  *par (I) st (a[i] < 100) a[i] = a[i] + 1;
}
"""


class TestRunTimeout:
    def test_timeout_cancels_with_diagnostic(self, tmp_path, capsys):
        from repro.cli import TIMEOUT_EXIT

        f = tmp_path / "slow.uc"
        f.write_text(SLOW_UC)
        rc = main(["run", str(f), "--timeout", "0.001"])
        assert rc == TIMEOUT_EXIT
        err = capsys.readouterr().err
        assert "timeout: wall deadline exceeded" in err
        # checkpoint-position diagnostic: where the run was cancelled
        assert "cancelled at" in err

    def test_generous_timeout_is_harmless(self, apsp_file, capsys):
        assert main(["run", apsp_file, "-D", "N=4", "--timeout", "600"]) == 0
        assert "simulated elapsed" in capsys.readouterr().out

    def test_timeout_rejected_with_batch(self, tmp_path):
        f = tmp_path / "slow.uc"
        f.write_text(SLOW_UC)
        batch = tmp_path / "batch.json"
        batch.write_text("[]")
        with pytest.raises(SystemExit, match="--timeout"):
            main(["run", str(f), "--timeout", "1", "--batch", str(batch)])


class TestServe:
    @pytest.fixture
    def jobs_file(self, tmp_path):
        import json

        f = tmp_path / "jobs.json"
        f.write_text(json.dumps([{"source": SERVE_UC}, {"source": SERVE_UC}]))
        return str(f)

    def test_serve_runs_jobs_file(self, jobs_file, capsys):
        assert main(["serve", jobs_file, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("done") >= 2
        assert "fingerprint" in out
        assert "0 lost" in out

    def test_serve_reports_failures_per_job(self, tmp_path, capsys):
        import json

        f = tmp_path / "jobs.json"
        f.write_text(
            json.dumps([{"source": SERVE_UC}, {"source": "main { par ("}])
        )
        assert main(["serve", str(f)]) == 0  # failed != lost
        out = capsys.readouterr().out
        assert "failed" in out
        assert "1 failed" in out

    def test_serve_deadline_and_retry_keys(self, tmp_path, capsys):
        import json

        f = tmp_path / "jobs.json"
        f.write_text(
            json.dumps(
                [
                    {
                        "source": SERVE_UC,
                        "deadline": {"clock_us": 1.0},
                        "retry": {"max_attempts": 2},
                    }
                ]
            )
        )
        assert main(["serve", str(f)]) == 0
        out = capsys.readouterr().out
        assert "clock" in out

    def test_serve_resume_round_trip(self, jobs_file, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        assert main(["serve", jobs_file, "--spool", spool]) == 0
        capsys.readouterr()
        # a fresh process would do exactly this: replay the journal
        assert main(["serve", "--resume", spool]) == 0
        out = capsys.readouterr().out
        assert "resumed 2 journalled jobs" in out
        assert "0 lost" in out

    def test_serve_requires_jobs_or_resume(self):
        with pytest.raises(SystemExit, match="jobs file"):
            main(["serve"])

    def test_serve_bad_budget_spec(self, jobs_file):
        with pytest.raises(SystemExit, match="budget"):
            main(["serve", jobs_file, "--budget", "nonsense"])

    def test_serve_chaos_matches_clean_fingerprints(self, jobs_file, capsys):
        import re

        assert main(["serve", jobs_file, "--no-coalesce"]) == 0
        clean = re.findall(r"fingerprint (\w+)", capsys.readouterr().out)
        assert main(
            ["serve", jobs_file, "--no-coalesce", "--chaos", "0.7", "--seed", "5"]
        ) == 0
        chaotic = re.findall(r"fingerprint (\w+)", capsys.readouterr().out)
        assert clean and sorted(clean) == sorted(chaotic)
