"""seq / *seq construct tests (paper §3.5)."""

import numpy as np
import pytest

from tests.conftest import run_uc


class TestSeq:
    def test_iterates_in_declaration_order(self):
        r = run_uc(
            "index_set I:i = {0..4};\nint a[5], n;\n"
            "main { n = 0; seq (I) { a[i] = n; n = n + 1; } }"
        )
        assert r["a"].tolist() == [0, 1, 2, 3, 4]

    def test_listing_order_respected(self):
        """Elements are chosen 'in the order that they appear' (§3.5)."""
        r = run_uc(
            "index_set L:l = {4, 2, 9};\nint a[10], n;\n"
            "main { n = 1; seq (L) { a[l] = n; n = n + 1; } }"
        )
        assert r["a"][4] == 1 and r["a"][2] == 2 and r["a"][9] == 3

    def test_scalar_predicate_skips_iterations(self):
        r = run_uc(
            "index_set I:i = {0..5};\nint s;\n"
            "main { s = 0; seq (I) st (i % 2 == 0) s = s + i; }"
        )
        assert r["s"] == 0 + 2 + 4

    def test_seq_drives_nested_par_apsp(self):
        """figure 4's structure validated against Floyd-Warshall."""
        from repro.algorithms import floyd_warshall, random_distance_matrix

        src = (
            "int N = 8;\nindex_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
            "int d[8][8];\n"
            "main { seq (K) par (I, J) st (d[i][k] + d[k][j] < d[i][j]) "
            "d[i][j] = d[i][k] + d[k][j]; }"
        )
        dist = random_distance_matrix(8, seed=3)
        r = run_uc(src, {"d": dist})
        assert np.array_equal(r["d"], floyd_warshall(dist))

    def test_cartesian_seq(self):
        r = run_uc(
            "index_set I:i = {0..1}, J:j = I;\nint order[4], n;\n"
            "main { n = 0; seq (I, J) { order[n] = 10 * i + j; n = n + 1; } }"
        )
        assert r["order"].tolist() == [0, 1, 10, 11]

    def test_grid_predicate_masks_lanes(self):
        """seq inside par: the predicate selects lanes per iteration."""
        src = (
            "index_set I:i = {0..3}, J:j = {0..2};\nint a[4];\n"
            "main { par (I) { a[i] = 0; seq (J) st (i >= j) a[i] = a[i] + 1; } }"
        )
        r = run_uc(src)
        assert r["a"].tolist() == [1, 2, 3, 3]

    def test_others_in_seq_scalar(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint hits, misses;\n"
            "main { hits = 0; misses = 0; seq (I) st (i == 2) hits = hits + 1; "
            "others misses = misses + 1; }"
        )
        assert r["hits"] == 1 and r["misses"] == 3


class TestStarSeq:
    def test_star_seq_until_no_predicate_true(self):
        src = (
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { par (I) a[i] = i; *seq (I) st (a[i] > 0) a[i] = a[i] - 1; }"
        )
        r = run_uc(src)
        assert r["a"].tolist() == [0, 0, 0, 0]

    def test_star_seq_runs_no_sweep_when_disabled(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint s;\n"
            "main { s = 0; *seq (I) st (0 == 1) s = s + 1; }"
        )
        assert r["s"] == 0


class TestSeqCosts:
    def test_each_iteration_pays_front_end_latency(self):
        r1 = run_uc("index_set I:i = {0..1};\nint s;\nmain { seq (I) s = i; }")
        r2 = run_uc("index_set I:i = {0..9};\nint s;\nmain { seq (I) s = i; }")
        assert r2.counts["host_cm_latency"] > r1.counts["host_cm_latency"]
