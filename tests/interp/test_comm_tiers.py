"""Communication-tier dispatcher tests.

The tier dispatcher (``repro.interp.commtiers``) must be an invisible
optimization within each mode: both engines pick the same tiers and
produce bit-identical clocks, the NEWS window fast path reproduces the
general gather exactly, and ``REPRO_NO_COMM_TIERS=1`` (or
``comm_tiers=False``) restores router-only charging for the ablation
benchmark.  The static classifier (``repro.compiler.comm_opt``) must
agree with the runtime dispatcher on every shipped example.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.compiler.comm_opt import analyze_communication
from repro.interp.program import UCProgram
from tests.interp.test_plans import assert_identical, run_both

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "uc"

STENCIL = """
index_set I:i = {1..N-2}, J:j = I, T:t = {0..REPS-1};
int a[N][N], b[N][N];
main {
    seq (T)
        par (I, J) b[i][j] = a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1];
}
"""

PERMUTED = """
index_set I:i = {0..N-1}, J:j = I;
int a[N][N], b[N][N];
map (I, J) { permute (I, J) b[j][i] :- a[i][j]; }
main {
    par (I, J) a[i][j] = a[i][j] + b[i][j];
}
"""


@pytest.fixture(autouse=True)
def _tiers_env_clear(monkeypatch):
    """These tests control the escape hatch explicitly."""
    monkeypatch.delenv("REPRO_NO_COMM_TIERS", raising=False)


def tier_counts(prog: UCProgram):
    return dict(prog.last_interpreter.machine.clock.tier_counts)


class TestNewsWindowFastPath:
    def test_interior_stencil_dispatches_news(self):
        prog = UCProgram(STENCIL, defines={"N": 8, "REPS": 2})
        r = prog.run()
        counts = tier_counts(prog)
        assert counts.get("news", 0) > 0
        assert r.counts.get("router_get", 0) == 0
        # the window copy must equal the clipped-gather reference result
        a = np.arange(64, dtype=np.int64).reshape(8, 8)
        prog2 = UCProgram(STENCIL, defines={"N": 8, "REPS": 1})
        got = prog2.run({"a": a})["b"]
        expect = np.zeros((8, 8), dtype=np.int64)
        expect[1:7, 1:7] = (
            a[0:6, 1:7] + a[2:8, 1:7] + a[1:7, 0:6] + a[1:7, 2:8]
        )
        assert np.array_equal(got, expect)

    def test_stencil_identical_across_engines(self):
        assert_identical(STENCIL, {"N": 10, "REPS": 3})

    def test_tier_counts_identical_across_engines(self):
        progs = []
        for plans in (True, False):
            prog = UCProgram(STENCIL, defines={"N": 9, "REPS": 2}, plans=plans)
            prog.run()
            progs.append(prog)
        assert tier_counts(progs[0]) == tier_counts(progs[1])

    def test_full_grid_shift_still_news(self):
        src = (
            "index_set I:i = {0..6};\nint a[8], b[8];\n"
            "main { par (I) a[i] = b[i + 1]; }"
        )
        prog = UCProgram(src)
        r = prog.run({"b": np.arange(8)})
        assert tier_counts(prog).get("news", 0) >= 1
        assert list(r["a"][:7]) == list(range(1, 8))

    def test_long_shift_demoted_to_router(self):
        # 26 hops at news=100 cost more than one router_get (2500): the
        # dispatcher must fall back to the router, as the compilers did
        src = (
            "index_set I:i = {0..3};\nint a[32], b[32];\n"
            "main { par (I) a[i] = b[i + 26]; }"
        )
        prog = UCProgram(src)
        r = prog.run({"b": np.arange(32)})
        counts = tier_counts(prog)
        assert counts.get("router", 0) >= 1
        assert counts.get("news", 0) == 0
        assert r.counts.get("news", 0) == 0
        assert list(r["a"][:4]) == [26, 27, 28, 29]


class TestPermuteTier:
    def test_transposed_read_under_permute_map_uses_permute_cycle(self):
        prog = UCProgram(PERMUTED, defines={"N": 8})
        b = np.arange(64, dtype=np.int64).reshape(8, 8)
        r = prog.run({"b": b})
        counts = tier_counts(prog)
        assert counts.get("permute", 0) >= 1
        assert r.counts.get("router_permute", 0) >= 1
        assert r.counts.get("router_get", 0) == 0
        assert np.array_equal(r["a"], b)

    def test_permute_cheaper_than_router_but_dearer_than_news(self):
        prog = UCProgram(PERMUTED, defines={"N": 8})
        prog.run()
        costs = prog.last_interpreter.machine.clock.costs
        assert costs.news < costs.router_permute < costs.router_get

    def test_unmapped_transpose_still_router(self):
        src = (
            "index_set I:i = {0..7}, J:j = I;\nint a[8][8], b[8][8];\n"
            "main { par (I, J) a[i][j] = b[j][i]; }"
        )
        prog = UCProgram(src)
        r = prog.run()
        assert tier_counts(prog).get("permute", 0) == 0
        assert r.counts.get("router_get", 0) >= 1

    def test_permuted_identical_across_engines(self):
        assert_identical(PERMUTED, {"N": 8})


class TestEscapeHatch:
    def test_kwarg_disables_tiers(self):
        prog = UCProgram(STENCIL, defines={"N": 8, "REPS": 2}, comm_tiers=False)
        r = prog.run()
        counts = tier_counts(prog)
        assert set(counts) <= {"local", "router"}
        assert r.counts.get("news", 0) == 0
        assert r.counts.get("router_get", 0) > 0

    def test_env_var_disables_tiers(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COMM_TIERS", "1")
        prog = UCProgram(STENCIL, defines={"N": 8, "REPS": 2})
        prog.run()
        assert set(tier_counts(prog)) <= {"local", "router"}

    def test_env_and_kwarg_agree(self, monkeypatch):
        by_kwarg = UCProgram(
            STENCIL, defines={"N": 8, "REPS": 2}, comm_tiers=False
        )
        r_kwarg = by_kwarg.run()
        monkeypatch.setenv("REPRO_NO_COMM_TIERS", "1")
        by_env = UCProgram(STENCIL, defines={"N": 8, "REPS": 2})
        r_env = by_env.run()
        fp_kwarg = by_kwarg.last_interpreter.machine.clock.fingerprint()
        fp_env = by_env.last_interpreter.machine.clock.fingerprint()
        assert fp_kwarg == fp_env
        assert np.array_equal(r_kwarg["b"], r_env["b"])

    def test_results_identical_with_and_without_tiers(self):
        a = np.arange(100, dtype=np.int64).reshape(10, 10)
        on = UCProgram(STENCIL, defines={"N": 10, "REPS": 3}).run({"a": a})
        off = UCProgram(
            STENCIL, defines={"N": 10, "REPS": 3}, comm_tiers=False
        ).run({"a": a})
        assert np.array_equal(on["b"], off["b"])
        # ...but the simulated clock is strictly cheaper with tiers
        assert on.elapsed_us < off.elapsed_us

    def test_engines_identical_under_ablation(self):
        assert_identical(STENCIL, {"N": 10, "REPS": 3}, comm_tiers=False)
        assert_identical(PERMUTED, {"N": 8}, comm_tiers=False)


class TestTierObservability:
    def test_tier_counts_excluded_from_fingerprint(self):
        prog = UCProgram(STENCIL, defines={"N": 8, "REPS": 2})
        prog.run()
        clock = prog.last_interpreter.machine.clock
        fp = clock.fingerprint()
        clock.tier_counts.clear()
        assert clock.fingerprint() == fp

    def test_tier_counts_cleared_on_reset(self):
        prog = UCProgram(STENCIL, defines={"N": 8, "REPS": 2})
        prog.run()
        clock = prog.last_interpreter.machine.clock
        assert clock.tier_counts
        clock.reset()
        assert clock.tier_counts == {}

    def test_tier_log_records_sites(self):
        prog = UCProgram(STENCIL, defines={"N": 8, "REPS": 2}, log_tiers=True)
        prog.run()
        log = prog.last_interpreter.tier_log
        assert log is not None
        assert any("news" in tiers for tiers in log.values())

    def test_tier_log_off_by_default(self):
        prog = UCProgram(STENCIL, defines={"N": 8, "REPS": 1})
        prog.run()
        assert prog.last_interpreter.tier_log is None


class TestStaticRuntimeParity:
    """The static comm_opt verdict matches the runtime dispatcher on
    every reference of every shipped example (CSE and the processor
    optimization are disabled so every reference actually dispatches)."""

    @pytest.mark.parametrize(
        "name,defines",
        [("apsp.uc", {"N": 8}), ("histogram.uc", {"N": 32}), ("shifted.uc", None)],
    )
    def test_examples_parity(self, name, defines):
        src = (EXAMPLES / name).read_text()
        prog = UCProgram(
            src,
            defines=defines,
            log_tiers=True,
            cse=False,
            processor_opt=False,
        )
        prog.run()
        runtime = {
            key: set(tiers)
            for key, tiers in prog.last_interpreter.tier_log.items()
        }
        static = {}
        for ref in analyze_communication(prog.info, prog.layouts).references:
            static.setdefault((ref.line, ref.array), set()).add(ref.kind)
        assert runtime == static, (
            f"{name}: static verdicts {static} != runtime tiers {runtime}"
        )
