"""Cross-run content-addressed compile store + plan-cache eviction.

Two properties matter: a warm store makes the second program instance
compile-free (``recompiles == 0``), and the store key captures every
effective engine flag — mutating a ``REPRO_NO_*`` escape hatch between
runs must *miss* rather than serve a stale artifact.
"""

import numpy as np
import pytest

from repro.interp.compile_store import CompileStore
from repro.interp.plan_cache import PlanCache
from repro.interp.program import UCProgram

SRC = (
    "int N = 10;\n"
    "index_set I:i = {0..N-1}, J:j = I;\n"
    "int a[10][10];\n"
    "main {\n"
    "    *solve (I, J) a[i][j] = (i == 0 || j == 0) ? 1\n"
    "        : $<(J; a[i-1][j] + 1);\n"
    "}\n"
)


def _inp(seed=0):
    rng = np.random.default_rng(seed)
    return {"a": rng.integers(0, 9, size=(10, 10)).astype(np.int64)}


class TestWarmStore:
    def test_second_program_compiles_nothing(self):
        store = CompileStore()
        cold = UCProgram(SRC, compile_store=store).run(_inp())
        assert cold.compile["recompiles"] > 0
        assert cold.compile["frontend_cached"] == 0.0
        warm = UCProgram(SRC, compile_store=store).run(_inp())
        assert warm.compile["recompiles"] == 0
        assert warm.compile["frontend_cached"] == 1.0
        assert warm.compile["parse_s"] == 0.0
        assert np.array_equal(cold["a"], warm["a"])
        assert cold.fingerprint == warm.fingerprint

    def test_store_counters_reported(self):
        store = CompileStore()
        UCProgram(SRC, compile_store=store).run(_inp())
        result = UCProgram(SRC, compile_store=store).run(_inp())
        assert result.store["frontend_hits"] == 1
        assert result.store["frontend_misses"] == 1
        assert result.store["backend_hits"] == 1
        assert result.store["backend_misses"] == 1
        assert result.store["frontend_entries"] == 1
        assert result.store["backend_entries"] == 1

    def test_distinct_defines_miss(self):
        store = CompileStore()
        src = (
            "index_set I:i = {0..N-1};\nint a[16];\n"
            "main { par (I) a[i] = i * W; }\n"
        )
        UCProgram(src, defines={"N": 16, "W": 2}, compile_store=store).run(None)
        UCProgram(src, defines={"N": 16, "W": 3}, compile_store=store).run(None)
        assert store.stats()["frontend_misses"] == 2


class TestFlagStaleness:
    def test_no_comm_tiers_env_flip_misses_backend(self, monkeypatch):
        """Flipping REPRO_NO_COMM_TIERS between runs changes effective
        tier behaviour, so the backend entry must not be reused."""
        store = CompileStore()
        monkeypatch.delenv("REPRO_NO_COMM_TIERS", raising=False)
        UCProgram(SRC, compile_store=store).run(_inp())
        before = store.stats()
        assert before["backend_entries"] == 1

        monkeypatch.setenv("REPRO_NO_COMM_TIERS", "1")
        flipped = UCProgram(SRC, compile_store=store).run(_inp())
        after = store.stats()
        assert after["backend_misses"] == before["backend_misses"] + 1
        assert after["backend_entries"] == 2
        assert flipped.compile["recompiles"] > 0
        # the frontend (parse/semantics/layouts) is flag-independent
        assert after["frontend_hits"] == before["frontend_hits"] + 1

    def test_engine_kwargs_get_separate_backends(self):
        store = CompileStore()
        UCProgram(SRC, compile_store=store, fusion=True).run(_inp())
        UCProgram(SRC, compile_store=store, fusion=False).run(_inp())
        assert store.stats()["backend_entries"] == 2

    def test_flag_flip_results_still_correct(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_COMM_TIERS", raising=False)
        store = CompileStore()
        plain = UCProgram(SRC, compile_store=store).run(_inp())
        monkeypatch.setenv("REPRO_NO_COMM_TIERS", "1")
        flipped = UCProgram(SRC, compile_store=store).run(_inp())
        assert np.array_equal(plain["a"], flipped["a"])


class TestPlanCacheEviction:
    """Documented eviction semantics: bounded LRU, counters survive,
    eviction can never resurrect a stale plan."""

    def test_lru_eviction_order_and_counters(self):
        cache = PlanCache(capacity=2)
        n1, n2, n3 = object(), object(), object()
        cache.get_or_build("k", n1, (), lambda: "p1")
        cache.get_or_build("k", n2, (), lambda: "p2")
        cache.get_or_build("k", n1, (), lambda: "p1-again")  # refresh n1
        cache.get_or_build("k", n3, (), lambda: "p3")  # evicts n2 (LRU)
        assert cache.evictions == 1
        assert len(cache) == 2
        built = []
        cache.get_or_build("k", n2, (), lambda: built.append(1) or "p2'")
        assert built, "evicted entry must rebuild, not resurrect"
        assert cache.evictions == 2  # rebuilding n2 pushed out LRU n1
        assert cache.get_or_build("k", n3, (), lambda: "never") == "p3"

    def test_clear_keeps_counters(self):
        cache = PlanCache(capacity=4)
        node = object()
        cache.get_or_build("k", node, (), lambda: "p")
        cache.get_or_build("k", node, (), lambda: "p")
        hits, misses = cache.hits, cache.misses
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_node_identity_guard(self):
        """id() reuse cannot alias: the entry stores the node and
        re-checks it, so a different node object always misses."""
        cache = PlanCache(capacity=4)

        class N:
            pass

        a, b = N(), N()
        cache.get_or_build("k", a, (), lambda: "pa")
        # same key tuple shape, different node object with (potentially)
        # recycled id: the stored-node identity check must force a miss
        entry_key = ("k", id(a), ())
        cache._entries[entry_key] = (b, "stale")
        assert cache.get_or_build("k", a, (), lambda: "rebuilt") == "rebuilt"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
