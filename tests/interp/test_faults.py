"""Fault injection, checkpoint/restore, and degraded-mode recovery.

The acceptance bar (see ``docs/ROBUSTNESS.md``): a seeded fault run must
recover via checkpoint restore (+ remap for processor kills) and finish
with results equal to the fault-free run, in *both* engines, with
identical Clock fingerprints between engines.  With faults disabled,
fingerprints must stay bit-identical to a build without the fault layer.
"""

import numpy as np
import pytest

from repro.algorithms.shortest_path import random_distance_matrix
from repro.bench import workloads as W
from repro.interp.program import UCProgram
from repro.interp.recovery import RecoveryPolicy
from repro.lang.errors import UCRuntimeError
from repro.machine.faults import FaultEvent, FaultPlan

N = 8
DIST = random_distance_matrix(N, seed=3)
APSP_DEFS = {"N": N}
SEQPAR_DEFS = {"N": N, "LOGN": 3}

# trigger choices are tied to the N=8 charge profiles:
#   *solve APSP:  alu=9, scan_step=27   → alu#5 / scan_step#20 fire mid-run
#   seq/par APSP: alu=6, scan_step=27   → alu#4 fires mid-run
KILL_MID_SOLVE = "kill:2@alu#5"
KILL_MID_SEQPAR = "kill:2@alu#4"
TRANSIENT_DROP = "drop@scan_step#20"


def run_apsp(src, defines, inputs, **kw):
    prog = UCProgram(src, defines=defines, **kw)
    return prog.run({k: v.copy() for k, v in inputs.items()})


# ---------------------------------------------------------------------------
# FaultPlan parsing


class TestFaultSpecParsing:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse("kill:3@alu#5; drop@router_send#2; link@news@2500")
        assert [e.kind for e in plan.events] == ["kill", "drop", "link"]
        kill, drop, link = plan.events
        assert (kill.pe, kill.op, kill.at_count) == (3, "alu", 5)
        assert (drop.op, drop.at_count) == ("router_send", 2)
        assert (link.op, link.at_us) == ("news", 2500.0)

    def test_parse_dotted_module_op(self):
        (ev,) = FaultPlan.parse("drop@router.send#1").events
        assert ev.op == "router.send"
        assert ev.at_count == 1

    @pytest.mark.parametrize(
        "bad",
        ["explode@alu#1", "kill@", "drop", "kill:x@alu#1", "drop@alu#0#0"],
    )
    def test_parse_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_event_validates_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="meltdown")

    def test_events_fire_once(self):
        plan = FaultPlan.parse("drop@alu#1")
        plan.reset()
        assert plan.events[0].fired is False


# ---------------------------------------------------------------------------
# Recovery: results must match the fault-free run


@pytest.mark.parametrize("plans", [True, False], ids=["plans", "oracle"])
class TestRecovery:
    def test_kill_mid_solve_recovers(self, plans):
        clean = run_apsp(W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST}, plans=plans)
        faulty = run_apsp(
            W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST},
            plans=plans, faults=KILL_MID_SOLVE,
        )
        assert np.array_equal(faulty["dist"], clean["dist"])
        assert faulty.dead_pes == [2]
        assert faulty.recovery["faults"] == 1
        assert faulty.recovery["retries"] == 1
        assert faulty.recovery["remaps"] == 1
        assert faulty.recovery["checkpoints"] >= 1
        assert [entry[1] for entry in faulty.fault_log] == ["kill"]

    def test_kill_mid_seqpar_recovers(self, plans):
        clean = run_apsp(W.APSP_N3_UC, SEQPAR_DEFS, {"d": DIST}, plans=plans)
        faulty = run_apsp(
            W.APSP_N3_UC, SEQPAR_DEFS, {"d": DIST},
            plans=plans, faults=KILL_MID_SEQPAR,
        )
        assert np.array_equal(faulty["d"], clean["d"])
        assert faulty.dead_pes == [2]
        assert faulty.recovery["retries"] == 1

    def test_transient_drop_retried(self, plans):
        clean = run_apsp(W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST}, plans=plans)
        faulty = run_apsp(
            W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST},
            plans=plans, faults=TRANSIENT_DROP,
        )
        assert np.array_equal(faulty["dist"], clean["dist"])
        # a dropped message is transient: no processor dies, no remap
        assert faulty.dead_pes == []
        assert faulty.recovery["remaps"] == 0
        assert faulty.recovery["retries"] == 1

    def test_recovery_is_charged(self, plans):
        clean = run_apsp(W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST}, plans=plans)
        faulty = run_apsp(
            W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST},
            plans=plans, faults=KILL_MID_SOLVE,
        )
        assert "recovery" not in clean.counts
        assert faulty.counts["recovery"] == faulty.recovery["recovery_cycles"] > 0
        # the retried sweeps and the remap permutes cost simulated time too
        assert faulty.elapsed_us > clean.elapsed_us

    def test_multiple_faults_one_run(self, plans):
        clean = run_apsp(W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST}, plans=plans)
        faulty = run_apsp(
            W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST},
            plans=plans, faults=f"{KILL_MID_SOLVE};{TRANSIENT_DROP}",
        )
        assert np.array_equal(faulty["dist"], clean["dist"])
        assert faulty.recovery["faults"] == 2
        # exponential backoff: attempt 2 charges base * factor cycles
        policy = RecoveryPolicy()
        assert faulty.recovery["recovery_cycles"] == (
            policy.backoff_cycles(1) + policy.backoff_cycles(2)
        )


# ---------------------------------------------------------------------------
# Engine parity and fingerprint stability


def test_engine_parity_under_faults():
    fps, results = [], []
    for plans in (True, False):
        r = run_apsp(
            W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST},
            plans=plans, faults=f"{KILL_MID_SOLVE};{TRANSIENT_DROP}",
        )
        fps.append(r.fingerprint)
        results.append(r)
    assert fps[0] == fps[1], "cost ledgers diverge between engines under faults"
    assert results[0].fault_log == results[1].fault_log
    assert results[0].recovery == results[1].recovery
    assert np.array_equal(results[0]["dist"], results[1]["dist"])


def test_no_faults_fingerprint_is_baseline():
    base = run_apsp(W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST})
    armed = run_apsp(
        W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST}, checkpoints=True
    )
    # checkpoints are host-side bookkeeping: zero simulated cost, and the
    # zero-count 'recovery' kind never shows up in the fingerprint
    assert armed.fingerprint == base.fingerprint
    assert np.array_equal(armed["dist"], base["dist"])
    assert armed.recovery["checkpoints"] >= 1
    assert armed.recovery["faults"] == 0


def test_never_firing_plan_is_invisible():
    base = run_apsp(W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST})
    armed = run_apsp(
        W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST}, faults="kill:1@alu#100000"
    )
    assert armed.fingerprint == base.fingerprint
    assert armed.fault_log == []
    assert armed.dead_pes == []


# ---------------------------------------------------------------------------
# Recovery exhaustion


def test_recovery_exhaustion_raises_located_error():
    prog = UCProgram(
        W.APSP_SOLVE_UC,
        defines=APSP_DEFS,
        faults="drop@alu#3;drop@alu#5",
        recovery=RecoveryPolicy(max_attempts=2),
    )
    with pytest.raises(UCRuntimeError, match="recovery exhausted after 2 attempts"):
        prog.run({"dist": DIST.copy()})


def test_fault_without_recovery_manager_escapes(small_machine):
    """Machine-level faults with no interpreter recovery kill the run."""
    from repro.machine import ProcessorFault, paris

    small_machine.install_faults(FaultPlan.parse("kill:0@alu#1"))
    f = small_machine.field(small_machine.vpset((4,)))
    with pytest.raises(ProcessorFault):
        paris.move(f, 7)


# ---------------------------------------------------------------------------
# Satellite: configurable solve sweep limit


class TestSolveSweepLimit:
    def test_param_caps_sweeps(self):
        prog = UCProgram(
            W.APSP_SOLVE_UC, defines=APSP_DEFS, solve_sweep_limit=1
        )
        with pytest.raises(UCRuntimeError) as ei:
            prog.run({"dist": DIST.copy()})
        msg = str(ei.value)
        assert "sweep limit (1" in msg
        assert "REPRO_SOLVE_SWEEP_LIMIT" in msg
        # the diagnostic names what was still changing
        assert "dist" in msg

    def test_env_var_caps_sweeps(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_SWEEP_LIMIT", "1")
        prog = UCProgram(W.APSP_SOLVE_UC, defines=APSP_DEFS)
        with pytest.raises(UCRuntimeError, match="sweep limit"):
            prog.run({"dist": DIST.copy()})

    def test_param_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_SWEEP_LIMIT", "1")
        prog = UCProgram(
            W.APSP_SOLVE_UC, defines=APSP_DEFS, solve_sweep_limit=100
        )
        r = prog.run({"dist": DIST.copy()})  # converges well under 100
        assert r["dist"].shape == (N, N)

    def test_rejects_nonpositive_limit(self):
        prog = UCProgram(
            W.APSP_SOLVE_UC, defines=APSP_DEFS, solve_sweep_limit=0
        )
        with pytest.raises(ValueError, match="positive"):
            prog.run({"dist": DIST.copy()})


# ---------------------------------------------------------------------------
# Satellite (PR 8): capped + jittered retry backoff


class TestBackoffPolicy:
    def test_cap_clamps_runaway_backoff(self):
        policy = RecoveryPolicy(max_attempts=64, backoff_cap=500)
        cycles = [policy.backoff_cycles(k) for k in range(1, 20)]
        assert max(cycles) == 500  # 50 * 2**18 would be ~13M uncapped
        assert cycles == sorted(cycles)  # still monotone up to the cap

    def test_cap_validation(self):
        with pytest.raises(ValueError, match="backoff_cap"):
            RecoveryPolicy(backoff_cap=0)
        with pytest.raises(ValueError, match="jitter"):
            RecoveryPolicy(jitter=1.5)

    def test_jitter_is_seeded_and_bounded(self):
        a = RecoveryPolicy(jitter=0.5, jitter_seed=1)
        b = RecoveryPolicy(jitter=0.5, jitter_seed=1)
        c = RecoveryPolicy(jitter=0.5, jitter_seed=2)
        xs = [a.backoff_cycles(k) for k in range(1, 8)]
        assert xs == [b.backoff_cycles(k) for k in range(1, 8)]  # reproducible
        assert xs != [c.backoff_cycles(k) for k in range(1, 8)]  # decorrelated
        plain = RecoveryPolicy()
        for k, x in enumerate(xs, start=1):
            base = plain.backoff_cycles(k)
            assert base <= x <= min(int(base * 1.5), a.backoff_cap)

    def test_defaults_leave_fingerprints_unchanged(self, plans=None):
        """The new cap sits above the largest default-schedule backoff, so
        a faulted run under an explicit default policy matches one that
        never heard of the cap."""
        implicit = run_apsp(
            W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST}, faults=KILL_MID_SOLVE
        )
        explicit = run_apsp(
            W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST},
            faults=KILL_MID_SOLVE, recovery=RecoveryPolicy(),
        )
        assert implicit.fingerprint == explicit.fingerprint

    def test_jittered_policy_is_reproducible_end_to_end(self):
        """Same jittered policy, same seed -> bit-identical fingerprints;
        different jitter seeds -> different recovery charges."""
        pol = RecoveryPolicy(jitter=0.3, jitter_seed=11)
        runs = [
            run_apsp(
                W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST},
                faults=KILL_MID_SOLVE, recovery=pol,
            )
            for _ in range(2)
        ]
        assert runs[0].fingerprint == runs[1].fingerprint
        other = run_apsp(
            W.APSP_SOLVE_UC, APSP_DEFS, {"dist": DIST},
            faults=KILL_MID_SOLVE,
            recovery=RecoveryPolicy(jitter=0.3, jitter_seed=12),
        )
        assert other.counts["recovery"] != runs[0].counts["recovery"]

    def test_fork_yields_fresh_unfired_plan(self):
        plan = FaultPlan.parse("kill:2@alu#5; drop@scan_step#20")
        child = plan.fork()
        assert child is not plan
        assert [(e.kind, e.op, e.at_count) for e in child.events] == [
            (e.kind, e.op, e.at_count) for e in plan.events
        ]
        assert not any(e.fired for e in child.events)
