"""Differential tests: the compiled plan engine vs the tree-walking oracle.

The plan engine (``repro.interp.plan``) must be an *invisible*
optimization: for every program, results, stdout, and the full cost
ledger (``Clock.fingerprint()``) must be bit-identical to the
tree-walker's.  These tests run every workload and example under both
engines and compare everything.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.shortest_path import random_distance_matrix
from repro.bench import workloads as W
from repro.bench.workloads import log2_ceil
from repro.interp.plan_cache import PlanCache
from repro.interp.program import UCProgram

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "uc"
BIG = 1 << 20


def run_both(src, defines=None, inputs=None, seed=20250704, **kw):
    """One run per engine; returns (plans_result, tree_result, fingerprints)."""
    prints = []
    results = []
    for plans in (True, False):
        prog = UCProgram(src, defines=defines, plans=plans, **kw)
        results.append(prog.run(dict(inputs or {}), seed=seed))
        prints.append(prog.last_interpreter.machine.clock.fingerprint())
    return results[0], results[1], prints


def assert_identical(src, defines=None, inputs=None, **kw):
    on, off, (fp_on, fp_off) = run_both(src, defines, inputs, **kw)
    assert fp_on == fp_off, "cost ledgers diverge between engines"
    assert on.elapsed_us == off.elapsed_us
    assert on.counts == off.counts
    assert on.stdout == off.stdout
    for name in on.keys():
        va, vb = on[name], off[name]
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f"variable {name!r} diverges"
        else:
            assert va == vb, f"variable {name!r} diverges"


RNG = np.random.default_rng(11)


WORKLOADS = {
    "apsp_solve": (W.APSP_SOLVE_UC, {"N": 16}, {"dist": random_distance_matrix(16, seed=3)}, {}),
    "apsp_solve_guarded": (
        W.APSP_SOLVE_UC,
        {"N": 16},
        {"dist": random_distance_matrix(16, seed=3)},
        {"solve_strategy": "guarded"},
    ),
    "apsp_n2": (W.APSP_N2_UC, {"N": 16}, {"d": random_distance_matrix(16, seed=3)}, {}),
    "apsp_n2_selfinit": (W.APSP_N2_UC_SELFINIT, {"N": 16}, None, {}),
    "apsp_n3": (
        W.APSP_N3_UC,
        {"N": 16, "LOGN": log2_ceil(16)},
        {"d": random_distance_matrix(16, seed=3)},
        {},
    ),
    "wavefront": (W.WAVEFRONT_UC, {"N": 10}, None, {}),
    "wavefront_guarded": (W.WAVEFRONT_UC, {"N": 10}, None, {"solve_strategy": "guarded"}),
    "obstacle": (W.OBSTACLE_UC, {"R": 12, "WALL": BIG}, None, {}),
    "prefix_starpar": (W.PREFIX_STARPAR_UC, {"N": 16}, None, {}),
    "prefix_seq": (W.PREFIX_SEQ_UC, {"N": 16, "LOGN": 4}, None, {}),
    "oddeven": (W.ODDEVEN_UC, {"N": 16}, {"x": RNG.integers(0, 99, 16)}, {}),
    "ranksort": (W.RANKSORT_UC, {"N": 16}, {"a": RNG.permutation(16)}, {}),
    "digit_count": (W.DIGIT_COUNT_UC, {"N": 16}, {"samples": RNG.integers(0, 10, 16)}, {}),
    "matmul": (
        W.MATMUL_UC,
        {"N": 8},
        {"a": RNG.integers(0, 9, (8, 8)), "b": RNG.integers(0, 9, (8, 8))},
        {},
    ),
    "apsp_no_cse": (
        W.APSP_SOLVE_UC,
        {"N": 12},
        {"dist": random_distance_matrix(12, seed=3)},
        {"cse": False},
    ),
    "apsp_no_procopt": (
        W.APSP_SOLVE_UC,
        {"N": 12},
        {"dist": random_distance_matrix(12, seed=3)},
        {"processor_opt": False},
    ),
}


class TestWorkloadsDifferential:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_identical_results_and_clock(self, name):
        src, defines, inputs, kw = WORKLOADS[name]
        assert_identical(src, defines, inputs, **kw)

    def test_dynamic_obstacle(self):
        walls = (np.random.default_rng(5).random((10, 10)) < 0.2).astype(np.int64)
        walls[0, 0] = 0
        assert_identical(
            W.DYNAMIC_OBSTACLE_UC, {"R": 10, "WALL": BIG}, {"walls": walls}
        )


class TestExamplesDifferential:
    """Every shipped .uc example behaves identically under both engines
    (same seed -> same rand() stream -> comparable outputs)."""

    @pytest.mark.parametrize(
        "script,defines",
        [("apsp.uc", {"N": 8}), ("histogram.uc", {"N": 32}), ("shifted.uc", None)],
    )
    def test_example(self, script, defines):
        src = (EXAMPLES / script).read_text()
        assert_identical(src, defines)


class TestPlanCache:
    def test_iterated_construct_hits_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_PLANS", raising=False)
        src = """
        index_set I:i = {0..15}, K:k = {0..7};
        int a[16];
        main {
            par (I) a[i] = i;
            seq (K) par (I) a[i] = a[i] + 1;
        }
        """
        prog = UCProgram(src)
        res = prog.run()
        assert list(res["a"]) == [i + 8 for i in range(16)]
        cache = prog.last_interpreter.plan_cache
        stats = cache.stats()
        # the seq-in-par body compiles once, then hits on every iteration
        assert stats["misses"] >= 1
        assert stats["hits"] >= 7

    def test_disable_via_constructor(self):
        src = "index_set I:i = {0..7}; int a[8]; main { par (I) a[i] = i; }"
        prog = UCProgram(src, plans=False)
        prog.run()
        assert prog.last_interpreter.plans_enabled is False
        assert len(prog.last_interpreter.plan_cache) == 0

    def test_disable_via_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PLANS", "1")
        src = "index_set I:i = {0..7}; int a[8]; main { par (I) a[i] = i; }"
        prog = UCProgram(src, plans=True)
        prog.run()
        assert prog.last_interpreter.plans_enabled is False

    def test_node_identity_guard(self):
        """A recycled id() can never resurrect a stale plan."""
        cache = PlanCache(capacity=4)
        node_a = object()
        plan_a = cache.get_or_build("construct", node_a, (), lambda: "plan-a")
        assert plan_a == "plan-a"
        # same key coordinates but a different node object -> rebuild
        class Fake:
            pass

        fake = Fake()
        cache._entries[("construct", id(fake), ())] = (object(), "stale")
        rebuilt = cache.get_or_build("construct", fake, (), lambda: "fresh")
        assert rebuilt == "fresh"

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        nodes = [object() for _ in range(3)]
        for k, node in enumerate(nodes):
            cache.get_or_build("construct", node, (), lambda k=k: f"plan-{k}")
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        # oldest entry evicted; newest two still hit
        cache.get_or_build("construct", nodes[2], (), lambda: "rebuilt")
        assert cache.stats()["hits"] == 1


class TestRecipeGeometry:
    """Grids chosen to stress the np.ix_ recipe construction: transposed
    subscripts, constant axes, negative/overflow offsets (oob replay)."""

    def test_transposed_gather(self):
        src = """
        index_set I:i = {0..5}, J:j = {0..6}, K:k = {0..7};
        int a[8][7], out[6][7][8];
        main {
            seq (K) st (k < 4) par (I, J) out[i][j][k] = a[k][j] + i;
        }
        """
        assert_identical(src)

    def test_offset_gather_with_oob_guard(self):
        src = """
        index_set I:i = {0..9}, K:k = {0..2};
        int a[10], b[10];
        main {
            par (I) b[i] = i;
            seq (K) par (I) st (i > 0) a[i] = b[i-1] + a[i] + 1;
        }
        """
        assert_identical(src)

    def test_constant_subscript(self):
        assert_identical(
            """
            index_set I:i = {0..7}, K:k = {0..3};
            int m[4][8], v[8];
            main {
                par (I, K) m[k][i] = i * 4 + k;
                seq (K) par (I) v[i] = v[i] + m[0][i] + m[k][i];
            }
            """
        )
