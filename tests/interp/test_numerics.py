"""Numerical workloads (§5's announced experiments): Jacobi & Laplace."""

import numpy as np
import pytest

from repro.bench.numerics import (
    random_symmetric,
    run_jacobi_eigen,
    run_laplace,
)
from tests.conftest import run_uc


class TestJacobiEigen:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_eigenvalues_match_numpy(self, n):
        a = random_symmetric(n, seed=n)
        eig, _ = run_jacobi_eigen(a, eps=1e-9)
        assert np.allclose(eig, np.sort(np.linalg.eigvalsh(a)), atol=1e-6)

    def test_diagonal_matrix_converges_immediately(self):
        a = np.diag([3.0, 1.0, 2.0])
        eig, res = run_jacobi_eigen(a)
        assert np.allclose(eig, [1.0, 2.0, 3.0])
        # the while condition fails on the first front-end test
        assert res.counts.get("host_cm_latency", 0) < 20

    def test_off_diagonal_below_eps_after_run(self):
        a = random_symmetric(5, seed=2)
        _, res = run_jacobi_eigen(a, eps=1e-8)
        final = np.asarray(res["a"])
        off = final[~np.eye(5, dtype=bool)]
        assert np.abs(off).max() <= 1e-8

    def test_trace_preserved(self):
        a = random_symmetric(6, seed=3)
        eig, _ = run_jacobi_eigen(a)
        assert np.isclose(eig.sum(), np.trace(a))

    def test_non_symmetric_rejected(self):
        with pytest.raises(ValueError):
            run_jacobi_eigen(np.arange(9.0).reshape(3, 3))


class TestLaplace:
    def test_boundary_held_fixed(self):
        b = np.zeros((8, 8), dtype=np.int64)
        b[0, :] = 400
        r = run_laplace(b)
        t = np.asarray(r["t"])
        assert (t[0] == 400).all()
        assert (t[-1] == 0).all()

    def test_interior_is_discrete_harmonic(self):
        """At the fixed point every interior cell equals the truncated
        average of its neighbours — the *solve termination condition."""
        b = np.zeros((10, 10), dtype=np.int64)
        b[0, :] = 1000
        b[:, 0] = 500
        t = np.asarray(run_laplace(b)["t"])
        inner = t[1:-1, 1:-1]
        avg = (t[:-2, 1:-1] + t[2:, 1:-1] + t[1:-1, :-2] + t[1:-1, 2:]) // 4
        assert np.array_equal(inner, avg)

    def test_monotone_between_boundaries(self):
        b = np.zeros((12, 12), dtype=np.int64)
        b[0, :] = 1200
        t = np.asarray(run_laplace(b)["t"])
        col = t[:, 6]
        assert (np.diff(col) <= 0).all()  # cools away from the hot edge


class TestSqrtBuiltin:
    def test_host_sqrt(self):
        r = run_uc("float x;\nmain { x = sqrt(2.0); }")
        assert r["x"] == pytest.approx(2**0.5)

    def test_vectorised_sqrt(self):
        r = run_uc(
            "index_set I:i = {0..4};\nfloat f[5];\n"
            "main { par (I) f[i] = sqrt(i * i * 1.0); }"
        )
        assert r["f"].tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_negative_sqrt_rejected_on_host(self):
        from repro.lang.errors import UCRuntimeError

        with pytest.raises(UCRuntimeError):
            run_uc("float x;\nmain { x = sqrt(0.0 - 1.0); }")

    def test_fabs(self):
        r = run_uc("float x;\nmain { x = fabs(0.0 - 2.5); }")
        assert r["x"] == 2.5
