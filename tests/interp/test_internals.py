"""Interpreter-internal unit tests: grid contexts, environments, errors."""

import numpy as np
import pytest

from repro.interp.env import Env
from repro.interp.values import (
    GridContext,
    ParallelLocal,
    ScalarVar,
    coerce_scalar,
    numpy_ctype,
)
from repro.lang.errors import UCRuntimeError
from repro.lang.scope import IndexSetValue
from tests.conftest import run_uc


class TestGridContext:
    def _sets(self):
        return [
            IndexSetValue("I", "i", (0, 1, 2)),
            IndexSetValue("J", "j", (10, 20)),
        ]

    def test_host_context(self):
        g = GridContext()
        assert g.is_host and g.rank == 0 and g.size == 1
        assert g.axis_elems == ()

    def test_extend_appends_axes(self):
        g = GridContext().extend(self._sets())
        assert g.shape == (3, 2)
        assert g.axis_elems == ("i", "j")
        assert g.size == 6

    def test_axis_values_broadcast(self):
        g = GridContext().extend(self._sets())
        vi = g.axis_values(0)
        vj = g.axis_values(1)
        assert vi.shape == (3, 2) and vj.shape == (3, 2)
        assert vi[2, 0] == 2
        assert vj[0, 1] == 20  # listing values, not positions

    def test_positions_cached(self):
        g = GridContext().extend(self._sets())
        assert g.positions() is g.positions()
        assert g.positions()[0][2, 1] == 2

    def test_broadcast_from_parent(self):
        parent = GridContext().extend(self._sets()[:1])
        child = parent.extend(self._sets()[1:])
        v = np.array([5, 6, 7])
        out = child.broadcast_from(v, parent.rank)
        assert out.shape == (3, 2)
        assert out[1, 0] == 6 and out[1, 1] == 6

    def test_broadcast_scalar_passthrough(self):
        g = GridContext().extend(self._sets())
        assert g.broadcast_from(42, 0) == 42

    def test_nested_extension_keeps_earlier_axes(self):
        g1 = GridContext().extend([IndexSetValue("I", "i", (0, 1))])
        g2 = g1.extend([IndexSetValue("I2", "i", (0, 1, 2))])  # shadowing elem
        assert g2.shape == (2, 3)
        assert g2.axis_elems == ("i", "i")


class TestEnv:
    def test_lookup_chain_and_shadowing(self):
        root = Env()
        root.declare("x", 1)
        child = root.child()
        child.declare("x", 2)
        assert child.lookup("x") == 2
        assert root.lookup("x") == 1

    def test_missing_lookup_raises(self):
        with pytest.raises(UCRuntimeError):
            Env().lookup("ghost")

    def test_try_lookup_returns_none(self):
        assert Env().try_lookup("ghost") is None

    def test_set_existing_updates_owner_scope(self):
        root = Env()
        root.declare("x", 1)
        child = root.child()
        child.set_existing("x", 9)
        assert root.lookup("x") == 9

    def test_set_existing_missing_raises(self):
        with pytest.raises(UCRuntimeError):
            Env().set_existing("ghost", 1)


class TestValueHelpers:
    def test_numpy_ctype(self):
        assert numpy_ctype("int") == np.dtype(np.int64)
        assert numpy_ctype("float") == np.dtype(np.float64)

    def test_coerce_scalar(self):
        assert coerce_scalar("int", 3.9) == 3
        assert coerce_scalar("float", 3) == 3.0
        assert isinstance(coerce_scalar("float", 3), float)


class TestRuntimeErrors:
    def test_assign_to_index_element(self):
        from repro.lang.errors import UCError

        with pytest.raises(UCError):  # now rejected statically
            run_uc(
                "index_set I:i = {0..3};\nint a[4];\nmain { par (I) i = 5; }"
            )

    def test_scalar_used_as_array(self):
        from repro.lang.errors import UCError

        with pytest.raises(UCError):  # caught at semantic-analysis time
            run_uc("int s, x;\nmain { s = 1; x = s[0]; }")

    def test_too_few_subscripts_in_expression(self):
        with pytest.raises(Exception):
            run_uc("int m[2][2], x;\nmain { x = m[1] + 1; }")

    def test_parallel_local_not_an_array(self):
        from repro.lang.errors import UCError

        with pytest.raises(UCError):
            run_uc(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { par (I) { int t; a[i] = t[0]; } }"
            )

    def test_grid_value_escaping_to_host_scalar(self):
        """A grid-shaped value cannot be stored in a host scalar outside
        a parallel assignment context with agreement."""
        from repro.lang.errors import UCMultipleAssignmentError

        with pytest.raises(UCMultipleAssignmentError):
            run_uc("index_set I:i = {0..3};\nint s;\nmain { par (I) s = i % 2; }")

    def test_solve_with_others_rejected(self):
        from repro.lang.errors import UCError

        with pytest.raises(UCError):
            run_uc(
                "index_set I:i = {0..3};\nint a[4];\n"
                "main { solve (I) st (i > 0) a[i] = 1; others a[i] = 2; }"
            )

    def test_runaway_while_guard(self):
        with pytest.raises(UCRuntimeError):
            run_uc("int x;\nmain { x = 1; while (x) x = 1; }")


class TestLocalIndexSets:
    def test_block_local_index_set(self):
        r = run_uc(
            "int a[4];\n"
            "main { index_set Q:q = {0..3}; par (Q) a[q] = q * q; }"
        )
        assert r["a"].tolist() == [0, 1, 4, 9]

    def test_local_alias(self):
        r = run_uc(
            "index_set I:i = {0..3};\nint a[4];\n"
            "main { index_set Q:q = I; par (Q) a[q] = q; }"
        )
        assert r["a"].tolist() == [0, 1, 2, 3]

    def test_local_listing(self):
        r = run_uc(
            "int a[10];\n"
            "main { index_set L:l = {9, 1, 5}; par (L) a[l] = 7; }"
        )
        assert r["a"].tolist() == [0, 7, 0, 0, 0, 7, 0, 0, 0, 7]
