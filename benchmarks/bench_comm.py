"""Communication-tier benchmark — tiered dispatch vs the router-only path.

The tier dispatcher (``repro.interp.commtiers``) services each remote
reference with the cheapest mechanism the classifier can prove safe:
constant-offset stencils become clamped NEWS window copies, values
constant along a construct axis become log-depth spreads, and pure
axis-order transposes under an active ``permute`` map use the
precomputed-permutation cycle.  ``REPRO_NO_COMM_TIERS=1`` (here: the
``comm_tiers=False`` constructor toggle) restores the router-only
behaviour: every remote reference is charged a router cycle and serviced
by the full general gather on every sweep.

Each row runs one workload on one engine (compiled plans or the
tree-walking oracle) with tiers on and off, and reports host wall-clock
and simulated Clock time for both.  Acceptance: on the constant-offset
stencil, the tiered plan engine must be at least 2x faster in wall-clock
AND strictly cheaper on the simulated Clock than the router-only path.

Writes ``BENCH_comm.json`` at the repository root plus the usual text
report under ``benchmarks/results/``.

Run small (CI smoke): ``python benchmarks/bench_comm.py --smoke``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import pytest

from repro.bench.report import format_table
from repro.interp.program import UCProgram

from _common import save_report

REPO_ROOT = Path(__file__).resolve().parents[1]
REPS = 3

STENCIL_UC = """
index_set I:i = {1..N-2}, J:j = I, T:t = {0..REPS-1};
int a[N][N], b[N][N];
main {
    seq (T)
        par (I, J) b[i][j] = a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1];
}
"""

#: ``row[j]`` is constant along ``i``: one spread replaces a router get
BROADCAST_UC = """
index_set I:i = {0..N-1}, J:j = I, T:t = {0..REPS-1};
int c[N][N], row[N];
main {
    seq (T)
        par (I, J) c[i][j] = c[i][j] + row[j];
}
"""

#: ``b`` is stored transposed (permute map), so reading it in natural
#: order is a pure axis permutation — the precomputed-permutation tier
TRANSPOSE_UC = """
index_set I:i = {0..N-1}, J:j = I, T:t = {0..REPS-1};
int a[N][N], b[N][N];
map (I, J) { permute (I, J) b[j][i] :- a[i][j]; }
main {
    seq (T)
        par (I, J) a[i][j] = a[i][j] + b[i][j];
}
"""

FULL_SIZES = {"stencil": (256, 30), "broadcast": (192, 30), "transpose": (128, 20)}
SMOKE_SIZES = {"stencil": (48, 6), "broadcast": (32, 6), "transpose": (24, 4)}

WORKLOADS = {
    "stencil": STENCIL_UC,
    "broadcast": BROADCAST_UC,
    "transpose": TRANSPOSE_UC,
}


def _best_of(src, defines, *, plans, comm_tiers):
    # fusion pinned off so the ratio isolates the tier dispatcher (fused
    # kernels speed both modes alike and compress it toward 1x; the
    # fused path is benchmarked in bench_fusion.py)
    prog = UCProgram(
        src, defines=defines, plans=plans, comm_tiers=comm_tiers, fusion=False
    )
    best = None
    result = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        result = prog.run()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    clock = prog.last_interpreter.machine.clock
    return best, result, clock.fingerprint(), dict(clock.tier_counts)


def _row(name, src, defines, *, plans):
    engine = "plans" if plans else "tree"
    t_on, r_on, fp_on, tiers_on = _best_of(
        src, defines, plans=plans, comm_tiers=True
    )
    t_off, r_off, fp_off, tiers_off = _best_of(
        src, defines, plans=plans, comm_tiers=False
    )
    for var in r_on.keys():
        a, b = r_on[var], r_off[var]
        same = np.array_equal(a, b) if isinstance(a, np.ndarray) else a == b
        assert same, f"{name}/{engine}: {var!r} diverges between tier modes"
    assert set(tiers_off) <= {"local", "router"}, (
        f"{name}/{engine}: router-only mode dispatched {sorted(tiers_off)}"
    )
    return {
        "workload": name,
        "engine": engine,
        "tiers_ms": t_on * 1e3,
        "router_ms": t_off * 1e3,
        "speedup": t_off / t_on,
        "tiers_clock_us": r_on.elapsed_us,
        "router_clock_us": r_off.elapsed_us,
        "tier_counts": tiers_on,
        "fingerprint_on": fp_on,
        "fingerprint_off": fp_off,
    }


def run_bench(small: bool = False):
    sizes = SMOKE_SIZES if small else FULL_SIZES
    rows = []
    for name, src in WORKLOADS.items():
        n, t = sizes[name]
        defines = {"N": n, "REPS": t}
        plan_row = _row(f"{name} n={n}", src, defines, plans=True)
        tree_row = _row(f"{name} n={n}", src, defines, plans=False)
        # the two engines must agree per tier mode: bit-identical clocks
        for key in ("fingerprint_on", "fingerprint_off"):
            assert plan_row[key] == tree_row[key], (
                f"{name}: {key} diverges between engines"
            )
        rows.extend([plan_row, tree_row])
    return rows, small


def check_bench(rows, small: bool) -> None:
    expected_tiers = {"stencil": "news", "broadcast": "spread", "transpose": "permute"}
    for row in rows:
        kind = row["workload"].split()[0]
        tier = expected_tiers[kind]
        assert row["tier_counts"].get(tier, 0) > 0, (
            f"{row['workload']}/{row['engine']}: expected {tier} dispatches, "
            f"got {row['tier_counts']}"
        )
        # the simulated Clock is deterministic, so the cost claim holds at
        # any size: tiers must be strictly cheaper than router-only
        assert row["tiers_clock_us"] < row["router_clock_us"], (
            f"{row['workload']}/{row['engine']}: tiers did not reduce the "
            f"simulated Clock"
        )
        if not small and kind == "stencil" and row["engine"] == "plans":
            assert row["speedup"] >= 2.0, (
                f"{row['workload']}: speedup {row['speedup']:.2f}x below 2x"
            )
        if small:
            assert row["speedup"] >= 0.3, (
                f"{row['workload']}/{row['engine']}: tiers slower than a "
                f"third of the router-only path"
            )


def write_json(rows, small: bool) -> Path:
    out = REPO_ROOT / "BENCH_comm.json"
    payload = [
        {k: v for k, v in r.items() if not k.startswith("fingerprint")}
        for r in rows
    ]
    out.write_text(
        json.dumps(
            {
                "benchmark": "communication tiers vs router-only dispatch",
                "mode": "small" if small else "full",
                "reps": REPS,
                "escape_hatch": "REPRO_NO_COMM_TIERS=1",
                "rows": payload,
            },
            indent=2,
        )
        + "\n"
    )
    return out


def report(rows, small: bool) -> None:
    table = format_table(
        [
            "workload",
            "engine",
            "router (ms)",
            "tiers (ms)",
            "speedup",
            "router clock (us)",
            "tiers clock (us)",
        ],
        [
            (
                r["workload"],
                r["engine"],
                r["router_ms"],
                r["tiers_ms"],
                f"{r['speedup']:.2f}x",
                r["router_clock_us"],
                r["tiers_clock_us"],
            )
            for r in rows
        ],
        title="Communication tiers vs router-only dispatch "
        "(identical results per mode, identical clocks across engines)",
    )
    save_report("bench_comm", table)
    path = write_json(rows, small)
    print(f"wrote {path}")


@pytest.mark.benchmark(group="comm")
def test_comm_tier_speedup(benchmark):
    rows, small = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    check_bench(rows, small)
    report(rows, small)


if __name__ == "__main__":
    is_small = "--smoke" in sys.argv[1:] or "--small" in sys.argv[1:]
    bench_rows, bench_small = run_bench(small=is_small)
    check_bench(bench_rows, bench_small)
    report(bench_rows, bench_small)
