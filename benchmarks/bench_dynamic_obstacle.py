"""Figure 8's dynamic variant — "the obstacles may also be moved
dynamically in a random manner to simulate a dynamic graph" (§5).

A random obstacle field moves every step (each wall cell drifts one cell
in a random direction); the *same* self-stabilising relaxation program
re-converges from the previous distance field.  Every step is validated
against a fresh BFS; we report warm re-convergence vs cold solve per step
and assert that the program handles arbitrary motion correctly and that
re-convergence stays within a small factor of a cold start (Jacobi
relaxation cannot exploit locality much when distances must *grow*, which
is why the paper's dynamic story is about *not rewriting the program*,
not about big warm-start savings).

Finding: re-convergence is bimodal.  Ordinary motion adapts in ~0.5x of
a cold solve; a step that newly encloses a region forces that region's
stale distances to count up to WALL one sweep at a time — the worst case
of the self-stabilising update, bounded by choosing WALL as a tight
upper bound on reachable distances rather than a huge "infinity".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.grid_path import (
    BIG,
    grid_reference_distances,
    random_obstacle_mask,
)
from repro.bench.report import format_table
from repro.bench.workloads import DYNAMIC_OBSTACLE_UC, OBSTACLE_UC
from repro.interp.program import UCProgram

from _common import save_report

R = 32
STEPS = 6
#: "infinity" for the relaxation: a tight upper bound on any reachable
#: distance, so cells that obstacles enclose stabilise at WALL within
#: O(WALL) sweeps instead of counting toward 10^6
WALL = 8 * R


def _drift(walls: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Move every wall cell one step in a random direction (staying on
    the grid and off the goal)."""
    r = walls.shape[0]
    out = np.zeros_like(walls)
    ii, jj = np.nonzero(walls)
    moves = rng.integers(0, 4, len(ii))
    di = np.where(moves == 0, -1, np.where(moves == 1, 1, 0))
    dj = np.where(moves == 2, -1, np.where(moves == 3, 1, 0))
    ni = np.clip(ii + di, 0, r - 1)
    nj = np.clip(jj + dj, 0, r - 1)
    out[ni, nj] = True
    out[0, 0] = False
    return out


def run_dynamic():
    rng = np.random.default_rng(99)
    walls = random_obstacle_mask(R, density=0.08, seed=5)
    prog = UCProgram(DYNAMIC_OBSTACLE_UC, defines={"R": R, "WALL": WALL})

    # cold start: relax *from above* (everything "disconnected", goal 0);
    # monotone decrease converges in O(diameter) sweeps and enclosed cells
    # simply stay at WALL
    state = _cold_state()
    first = prog.run({"a": state, "walls": walls.astype(np.int64)})
    _validate(first, walls)
    cold_us = first.elapsed_us
    state = np.asarray(first["a"])

    rows = []
    for step in range(1, STEPS + 1):
        old_walls = walls
        walls = _drift(walls, rng)
        # freed cells restart from "disconnected", the rest stay warm
        state = state.copy()
        state[old_walls & ~walls] = WALL
        warm = prog.run({"a": state, "walls": walls.astype(np.int64)})
        _validate(warm, walls)
        state = np.asarray(warm["a"])

        cold = prog.run({"a": _cold_state(), "walls": walls.astype(np.int64)})
        _validate(cold, walls)
        rows.append(
            (
                step,
                int(walls.sum()),
                warm.elapsed_us / 1e3,
                cold.elapsed_us / 1e3,
                warm.elapsed_us / cold.elapsed_us,
            )
        )
    return cold_us, rows


def _cold_state() -> np.ndarray:
    state = np.full((R, R), WALL, dtype=np.int64)
    state[0, 0] = 0
    return state


def _validate(run, walls) -> None:
    ref = grid_reference_distances(R, walls)
    got = np.asarray(run["a"])
    free = ~walls
    reachable = ref[free] < BIG
    assert (ref[free][reachable] < WALL).all(), "WALL bound too tight"
    assert np.array_equal(got[free][reachable], ref[free][reachable])
    # enclosed free cells stabilise at exactly WALL ("disconnected")
    assert (got[free][~reachable] == WALL).all()


def check_dynamic(rows) -> None:
    for step, n_walls, warm_ms, cold_ms, ratio in rows:
        assert n_walls > 0
        # same program, arbitrary motion, always correct.  Re-convergence
        # is bimodal: local changes adapt in a fraction of a cold solve;
        # steps that newly *enclose* a region force its stale cells to
        # count up to WALL (the self-stabilising rule's worst case).
        assert 0.02 <= ratio <= WALL / 10, f"step {step}: ratio {ratio:.2f}"
    ratios = [r[4] for r in rows]
    assert min(ratios) < 0.9, "warm starts never helped"
    assert sum(1 for x in ratios if x < 0.9) >= len(ratios) // 2


@pytest.mark.benchmark(group="dynamic")
def test_dynamic_obstacles(benchmark):
    cold_us, rows = benchmark.pedantic(run_dynamic, iterations=1, rounds=1)
    check_dynamic(rows)
    save_report(
        "dynamic_obstacles",
        format_table(
            ["step", "wall cells", "re-converge (ms)", "cold solve (ms)", "warm/cold"],
            rows,
            title=(
                f"Dynamic obstacles on a {R}x{R} grid "
                f"(initial cold solve: {cold_us/1e3:.1f} ms)"
            ),
        ),
    )


if __name__ == "__main__":
    cold_us, rows = run_dynamic()
    check_dynamic(rows)
    save_report(
        "dynamic_obstacles",
        format_table(
            ["step", "wall cells", "re-converge (ms)", "cold solve (ms)", "warm/cold"],
            rows,
        ),
    )
