"""Shard benchmark — map-driven placement vs naive block placement.

``UCProgram(shards=K)`` partitions the VP grid across K simulated CM-2
shards and charges every slab that crosses a shard boundary on the
``intershard`` tier — the most expensive row of the cost model.  The
placement policy decides *which* grid axis the partition cuts:

* ``block`` slices axis 0, the naive distribution every shard paper
  warns about;
* ``map`` scores each candidate axis with the same static reference
  classifier the uclint/runtime tier decider uses and picks the axis
  whose cross-shard slab volume is smallest.

On the n^3 APSP kernel ``d[i][j] = $<(K; d[i][k] + d[k][j])`` over grid
(I, J, K), axis 0 leaves every ``d[k][j]`` read remote (a full n x n
slab per shard pair per sweep) while axis 2 localizes it down to the
reduction frontier — a 4x intershard-cycle reduction at K=4.  That
factor is the benchmark payload; acceptance pins it at >= 3x in both
modes, and every sharded run must keep the Clock fingerprint
bit-identical to the unsharded run on both engines (K in {1, 2, 4}).

Writes ``BENCH_shard.json`` at the repository root plus the usual text
report under ``benchmarks/results/``.

Run small (CI smoke): ``python benchmarks/bench_shard.py --smoke``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import pytest

from repro.algorithms.shortest_path import random_distance_matrix
from repro.bench.report import format_table
from repro.bench.workloads import APSP_N3_UC
from repro.interp.program import UCProgram

from _common import save_report

REPO_ROOT = Path(__file__).resolve().parents[1]
REPS = 3

#: shard count the headline ratio is measured at (matches uclint UC305)
K = 4

FULL_N = 64
SMOKE_N = 16


def _defines(n: int) -> dict:
    return {"N": n, "LOGN": max(1, (n - 1).bit_length())}


def _run_once(src, defines, inputs, *, plans, shards, placement):
    prog = UCProgram(
        src, defines=defines, plans=plans, shards=shards, placement=placement
    )
    best = None
    result = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        result = prog.run({k: v.copy() for k, v in inputs.items()})
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, result


def _row(name, src, defines, inputs, *, plans):
    engine = "plans" if plans else "tree"
    t_map, r_map = _run_once(
        src, defines, inputs, plans=plans, shards=K, placement="map"
    )
    t_block, r_block = _run_once(
        src, defines, inputs, plans=plans, shards=K, placement="block"
    )
    _, r_solo = _run_once(
        src, defines, inputs, plans=plans, shards=1, placement="map"
    )
    # placement is pure bookkeeping: values and the Clock fingerprint
    # must not depend on the partition (or on sharding at all)
    assert np.array_equal(r_map["d"], r_solo["d"]), f"{name}/{engine}: values"
    assert np.array_equal(r_block["d"], r_solo["d"]), f"{name}/{engine}: values"
    assert r_map.fingerprint == r_solo.fingerprint == r_block.fingerprint, (
        f"{name}/{engine}: sharding changed the Clock fingerprint"
    )
    cyc_map = r_map.shards["intershard_cycles"]
    cyc_block = r_block.shards["intershard_cycles"]
    return {
        "workload": name,
        "engine": engine,
        "shards": K,
        "map_axis": r_map.shards["axis"],
        "block_axis": r_block.shards["axis"],
        "map_intershard_cycles": cyc_map,
        "block_intershard_cycles": cyc_block,
        "map_intershard_bytes": r_map.shards["intershard_bytes"],
        "block_intershard_bytes": r_block.shards["intershard_bytes"],
        "speedup": cyc_block / cyc_map,
        "map_ms": t_map * 1e3,
        "block_ms": t_block * 1e3,
        "fingerprint": r_map.fingerprint,
    }


def _check_all_k_fingerprints(src, defines, inputs):
    """K in {1, 2, 4} and both engines agree on the exact fingerprint."""
    fps = set()
    for plans in (True, False):
        for shards in (1, 2, 4):
            _, res = _run_once(
                src, defines, inputs, plans=plans, shards=shards, placement="map"
            )
            fps.add(res.fingerprint)
    assert len(fps) == 1, f"fingerprints diverge across engines/K: {fps}"


def run_bench(small: bool = False):
    n = SMOKE_N if small else FULL_N
    defines = _defines(n)
    inputs = {"d": random_distance_matrix(n, seed=7)}
    name = f"apsp-n3 n={n}"
    rows = [
        _row(name, APSP_N3_UC, defines, inputs, plans=True),
        _row(name, APSP_N3_UC, defines, inputs, plans=False),
    ]
    assert rows[0]["fingerprint"] == rows[1]["fingerprint"], (
        f"{name}: engines disagree on the sharded fingerprint"
    )
    _check_all_k_fingerprints(APSP_N3_UC, defines, inputs)
    return rows, small


def check_bench(rows, small: bool) -> None:
    for row in rows:
        # both placements partition the same grid; only the axis differs
        assert row["map_axis"] != row["block_axis"], (
            f"{row['workload']}/{row['engine']}: map placement picked the "
            f"naive axis"
        )
        assert row["speedup"] >= 3.0, (
            f"{row['workload']}/{row['engine']}: map placement cut "
            f"intershard cycles only {row['speedup']:.2f}x (< 3x) vs block"
        )


def write_json(rows, small: bool) -> Path:
    out = REPO_ROOT / "BENCH_shard.json"
    payload = [{k: v for k, v in r.items() if k != "fingerprint"} for r in rows]
    out.write_text(
        json.dumps(
            {
                "benchmark": "map-driven vs block placement, "
                f"{K}-way sharded execution",
                "mode": "small" if small else "full",
                "reps": REPS,
                "escape_hatch": "REPRO_SHARDS=1",
                "rows": payload,
            },
            indent=2,
        )
        + "\n"
    )
    return out


def report(rows, small: bool) -> None:
    table = format_table(
        [
            "workload",
            "engine",
            "block cycles",
            "map cycles",
            "speedup",
            "block axis",
            "map axis",
        ],
        [
            (
                r["workload"],
                r["engine"],
                r["block_intershard_cycles"],
                r["map_intershard_cycles"],
                f"{r['speedup']:.2f}x",
                r["block_axis"],
                r["map_axis"],
            )
            for r in rows
        ],
        title=f"Intershard slab traffic at K={K}: map-driven vs block "
        "placement (bit-identical fingerprints for K in {1,2,4})",
    )
    save_report("bench_shard", table)
    path = write_json(rows, small)
    print(f"wrote {path}")


@pytest.mark.benchmark(group="shard")
def test_shard_placement_speedup(benchmark):
    rows, small = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    check_bench(rows, small)
    report(rows, small)


if __name__ == "__main__":
    is_small = "--smoke" in sys.argv[1:] or "--small" in sys.argv[1:]
    bench_rows, bench_small = run_bench(small=is_small)
    check_bench(bench_rows, bench_small)
    report(bench_rows, bench_small)
