"""Machine-size ablation — the design choice DESIGN.md calls out.

The simulator's headline behaviours are (a) VP-ratio time-slicing: work
beyond the physical machine multiplies instruction cost, and (b) fixed
per-instruction front-end dispatch: small machines and small problems pay
the same instruction overheads.  This ablation runs the figure-8 workload
across machine sizes and checks both effects — including the paper's
implicit claim that a 16K CM-2 holds the (up to) 120-row grid at VP
ratio 1, i.e. the near-flat UC curve *depends on* the machine being big
enough.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Sweep
from repro.bench.report import format_series_table
from repro.bench.workloads import OBSTACLE_UC
from repro.algorithms.grid_path import BIG
from repro.interp.program import UCProgram
from repro.machine import MachineConfig

from _common import save_report

ROWS = 48  # 2304 cells
PE_COUNTS = (256, 1024, 4096, 16384, 65536)


def run_ablation() -> Sweep:
    sweep = Sweep(
        f"Machine-size ablation: {ROWS}x{ROWS} obstacle grid", "physical PEs"
    )
    for pes in PE_COUNTS:
        cfg = MachineConfig(n_pes=pes, name=f"CM/{pes}")
        run = UCProgram(
            OBSTACLE_UC, defines={"R": ROWS, "WALL": BIG}, machine_config=cfg
        ).run()
        sweep.record("UC obstacle", pes, run.elapsed_us / 1e6)
    return sweep


def check_ablation(sweep: Sweep) -> None:
    s = sweep.series["UC obstacle"]
    # undersized machines pay the VP ratio: 256 PEs hold 2304 cells at
    # ratio 9 — clearly slower than the 16K machine (though dispatch
    # overhead, which no amount of PEs removes, damps the difference)
    assert s.at(256) > 2 * s.at(16384)
    # monotone non-increasing in machine size
    ys = s.ys()
    assert all(a >= b * 0.999 for a, b in zip(ys, ys[1:]))
    # once the grid fits (4096 PEs and up), extra hardware buys nothing:
    # the dispatch/latency floor dominates — the SIMD host-driven effect
    assert s.at(16384) == pytest.approx(s.at(65536), rel=0.01)
    assert s.at(4096) == pytest.approx(s.at(16384), rel=0.15)


@pytest.mark.benchmark(group="ablation")
def test_machine_size_ablation(benchmark):
    sweep = benchmark.pedantic(run_ablation, iterations=1, rounds=1)
    check_ablation(sweep)
    floor = sweep.series["UC obstacle"].at(65536)
    save_report(
        "ablation_machine_size",
        format_series_table(sweep)
        + f"\n\ndispatch/latency floor: {floor:.3f} s regardless of extra PEs",
    )


if __name__ == "__main__":
    s = run_ablation()
    check_ablation(s)
    save_report("ablation_machine_size", format_series_table(s))
