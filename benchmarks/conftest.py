"""Make the benchmark directory importable regardless of invocation cwd."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
