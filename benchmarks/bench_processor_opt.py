"""Table P — processor optimization (paper §4).

The digit-count program

    par (J) count[j] = $+(I st (samples[i] == j) 1);

naively needs 10·N virtual processors (one reduction grid per digit); the
compiler deduces from the predicate that every sample affects at most one
count and implements the whole thing as one combining router send with
max(N, 10) VPs.  We report, per N: the deduced VP requirement (static
analysis) and the simulated elapsed time with the optimization off/on —
the saving materialises exactly when the naive VP set outgrows the 16K
physical machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.bench.workloads import DIGIT_COUNT_UC
from repro.compiler.processor_opt import analyze_program
from repro.interp.program import UCProgram

from _common import save_report

NS = (64, 1024, 8192, 32768, 131072)


def run_table_p():
    rows = []
    for n in NS:
        samples = np.random.default_rng(3).integers(0, 10, n)
        reference = np.bincount(samples, minlength=10)

        prog_naive = UCProgram(DIGIT_COUNT_UC, defines={"N": n}, processor_opt=False)
        plans = analyze_program(prog_naive.info)
        assert len(plans) == 1 and plans[0].partitioned
        plan = plans[0]

        naive = prog_naive.run({"samples": samples})
        opt = UCProgram(DIGIT_COUNT_UC, defines={"N": n}, processor_opt=True).run(
            {"samples": samples}
        )
        assert np.array_equal(naive["count"], reference)
        assert np.array_equal(opt["count"], reference)
        rows.append(
            (
                n,
                plan.naive_vps,
                plan.optimized_vps,
                naive.elapsed_us / 1e3,
                opt.elapsed_us / 1e3,
                naive.elapsed_us / opt.elapsed_us,
            )
        )
    return rows


def check_table_p(rows) -> None:
    for n, naive_vps, opt_vps, t_naive, t_opt, speedup in rows:
        assert naive_vps == 10 * n
        assert opt_vps == max(n, 10)
        # never slower, and clearly faster once 10*N exceeds the machine
        assert speedup >= 0.95
        if naive_vps > 16384 >= opt_vps or naive_vps // 16384 > max(1, opt_vps // 16384):
            assert speedup > 2.0, f"expected a real saving at N={n}"
    assert max(r[5] for r in rows) > 5.0


@pytest.mark.benchmark(group="processor-opt")
def test_processor_opt(benchmark):
    rows = benchmark.pedantic(run_table_p, iterations=1, rounds=1)
    check_table_p(rows)
    save_report(
        "table_processor_opt",
        format_table(
            ["N", "naive VPs", "optimized VPs", "naive (ms)", "optimized (ms)", "speedup"],
            rows,
            title="Table P: VP deduction for the digit-count reduction (16K PEs)",
        ),
    )


if __name__ == "__main__":
    rows = run_table_p()
    check_table_p(rows)
    save_report(
        "table_processor_opt",
        format_table(
            ["N", "naive VPs", "optimized VPs", "naive (ms)", "optimized (ms)", "speedup"],
            rows,
        ),
    )
