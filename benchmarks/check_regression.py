"""Benchmark regression gate — compare measured speedups to baselines.

Reads the ``BENCH_*.json`` files the benchmark scripts just wrote and
compares every row's ``speedup`` field against the committed floors in
``benchmarks/baselines.json``.  A row regresses when its measured
speedup drops more than ``TOLERANCE`` (20%) below its baseline; a
baselined row that is missing from the measured file counts as a
failure too (losing coverage must be loud, not silent).

Baselines are keyed by benchmark file, then by the run mode recorded in
the JSON (CI runs the small/smoke sizes, local full runs use the full
sizes — wall-clock ratios differ a lot between the two), then by
``workload[/engine]``.  The committed floors are deliberately
conservative: smoke-size wall clocks on shared CI runners are noisy, so
the gate is tuned to catch real regressions (an engine fast path
silently disabled, a plan no longer cached) rather than scheduler
jitter.  Extra measured rows are reported but never fail the gate, so
adding a workload does not require touching the baselines in the same
change.

Usage: ``python benchmarks/check_regression.py`` (after running the
benchmark scripts; exits non-zero on any regression).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINES = Path(__file__).resolve().parent / "baselines.json"

#: a row fails when measured < baseline * (1 - TOLERANCE)
TOLERANCE = 0.20

#: benchmark JSON files covered by the gate (missing files are skipped
#: with a note so the gate can run after any subset of the benchmarks)
BENCH_FILES = (
    "BENCH_interp.json",
    "BENCH_comm.json",
    "BENCH_frontier.json",
    "BENCH_fusion.json",
    "BENCH_batch.json",
    "BENCH_serve.json",
    "BENCH_shard.json",
)


def _row_key(row: dict) -> str:
    key = row["workload"]
    if "engine" in row:
        key += "/" + row["engine"]
    return key


def check(bench_name: str, data: dict, baselines: dict) -> list:
    failures = []
    mode = data.get("mode", "full")
    floors = baselines.get(bench_name, {}).get(mode)
    if floors is None:
        print(f"  {bench_name}: no baselines for mode {mode!r}, skipping")
        return failures
    measured = {_row_key(row): row["speedup"] for row in data["rows"]}
    for key, floor in floors.items():
        gate = floor * (1.0 - TOLERANCE)
        got = measured.get(key)
        if got is None:
            failures.append(f"{bench_name}: baselined row {key!r} not measured")
            continue
        verdict = "ok" if got >= gate else "REGRESSION"
        print(
            f"  {bench_name:20s} {key:38s} "
            f"speedup {got:5.2f}x  floor {gate:5.2f}x  {verdict}"
        )
        if got < gate:
            failures.append(
                f"{bench_name}: {key} speedup {got:.2f}x fell below "
                f"{gate:.2f}x (baseline {floor:.2f}x - {TOLERANCE:.0%})"
            )
    for key in sorted(set(measured) - set(floors)):
        print(f"  {bench_name:20s} {key:38s} speedup {measured[key]:5.2f}x  (no baseline)")
    return failures


def main() -> int:
    baselines = json.loads(BASELINES.read_text())
    failures = []
    seen = 0
    for name in BENCH_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            print(f"  {name}: not found, skipping")
            continue
        seen += 1
        failures.extend(check(name, json.loads(path.read_text()), baselines))
    if not seen:
        print("no benchmark output found — run the bench scripts first")
        return 1
    if failures:
        print("\nbenchmark regressions:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nall benchmarked speedups within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
