"""Fault-tolerance benchmark — checkpoint overhead and recovery latency.

Two questions (see ``docs/ROBUSTNESS.md``):

1. **Checkpoint overhead.**  ``UCProgram(checkpoints=True)`` snapshots
   full execution state at every outermost ``par``/``solve`` boundary
   with no fault plan installed.  On the repeated-squaring APSP workload
   (``seq`` over ``par``, one checkpoint per squaring step) the
   wall-clock overhead must stay under 5%, and the simulated Clock
   fingerprint must be bit-identical to the un-checkpointed run —
   checkpoints are host memory traffic, never simulated work.

2. **Recovery latency vs fault rate.**  Injecting k transient router
   faults into the ``*solve`` APSP run costs k backoff charges plus k
   partial replays.  The simulated-time delta per fault is reported and
   must grow monotonically with the fault count.

Writes ``BENCH_faults.json`` at the repository root plus the usual text
report under ``benchmarks/results/``.

Run small (CI smoke): ``python benchmarks/bench_faults.py --smoke``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import pytest

from repro.algorithms.shortest_path import random_distance_matrix
from repro.bench.report import format_table
from repro.bench.workloads import APSP_N3_UC, APSP_SOLVE_UC, log2_ceil
from repro.interp.program import UCProgram

from _common import save_report

REPO_ROOT = Path(__file__).resolve().parents[1]

#: (checkpoint-overhead N, recovery N, wall-clock reps)
FULL_SIZES = (96, 16, 7)
SMOKE_SIZES = (32, 8, 3)

#: wall-clock overhead ceilings: the 5% target needs runs long enough to
#: dwarf timer noise, so the smoke sizes get a looser sanity bound
OVERHEAD_LIMIT_FULL = 0.05
OVERHEAD_LIMIT_SMOKE = 0.25

FAULT_COUNTS = (0, 1, 2, 4)


def _interleaved_best(progs, inputs, reps):
    """Min-of-``reps`` wall clock per program, measured interleaved.

    Back-to-back A/A*... B/B* loops see different CPU-frequency and cache
    regimes and report phantom overheads bigger than the effect under
    test; alternating A/B/A/B keeps both programs in the same regime.
    """
    best = [None] * len(progs)
    results = [None] * len(progs)
    for _ in range(reps):
        for idx, prog in enumerate(progs):
            payload = {k: v.copy() for k, v in inputs.items()}
            t0 = time.perf_counter()
            results[idx] = prog.run(payload)
            dt = time.perf_counter() - t0
            if best[idx] is None or dt < best[idx]:
                best[idx] = dt
    return best, results


def bench_checkpoint_overhead(n, reps):
    defines = {"N": n, "LOGN": log2_ceil(n)}
    inputs = {"d": random_distance_matrix(n, seed=3)}
    base_prog = UCProgram(APSP_N3_UC, defines=defines)
    ck_prog = UCProgram(APSP_N3_UC, defines=defines, checkpoints=True)
    # one unmeasured warm-up each: plan compilation happens per run but
    # allocator and branch-predictor state settle after the first pass
    base_prog.run({k: v.copy() for k, v in inputs.items()})
    ck_prog.run({k: v.copy() for k, v in inputs.items()})
    (t_base, t_ck), (r_base, r_ck) = _interleaved_best(
        [base_prog, ck_prog], inputs, reps
    )
    assert np.array_equal(r_base["d"], r_ck["d"]), "checkpointing changed results"
    assert r_base.fingerprint == r_ck.fingerprint, (
        "checkpointing must not touch the simulated Clock"
    )
    return {
        "workload": f"apsp seq/par n={n}",
        "checkpoints_per_run": r_ck.recovery["checkpoints"],
        "baseline_ms": t_base * 1e3,
        "checkpointed_ms": t_ck * 1e3,
        "overhead": t_ck / t_base - 1.0,
    }


def _drop_spec(k):
    """k transient router-message drops, spread across the solve sweeps."""
    return ";".join(f"drop@scan_step#{8 * (i + 1)}" for i in range(k))


def bench_recovery_latency(n):
    defines = {"N": n}
    inputs = {"dist": random_distance_matrix(n, seed=3)}
    rows = []
    clean_us = None
    for k in FAULT_COUNTS:
        prog = UCProgram(
            APSP_SOLVE_UC, defines=defines, faults=_drop_spec(k) or None
        )
        result = prog.run({key: v.copy() for key, v in inputs.items()})
        if clean_us is None:
            clean_us = result.elapsed_us
            clean = result
        else:
            assert np.array_equal(result["dist"], clean["dist"]), (
                f"{k} faults: recovery changed the answer"
            )
        retries = result.recovery.get("retries", 0)
        assert retries == k, f"expected {k} retries, saw {retries}"
        delta = result.elapsed_us - clean_us
        rows.append(
            {
                "workload": f"apsp *solve n={n}",
                "faults": k,
                "elapsed_us": result.elapsed_us,
                "delta_us": delta,
                "delta_per_fault_us": delta / k if k else 0.0,
                "recovery_cycles": result.recovery.get("recovery_cycles", 0),
            }
        )
    return rows


def run_bench(small: bool = False):
    ck_n, rec_n, reps = SMOKE_SIZES if small else FULL_SIZES
    overhead = bench_checkpoint_overhead(ck_n, reps)
    recovery = bench_recovery_latency(rec_n)
    return {"checkpoint_overhead": overhead, "recovery": recovery}, small


def check_bench(payload, small: bool) -> None:
    limit = OVERHEAD_LIMIT_SMOKE if small else OVERHEAD_LIMIT_FULL
    over = payload["checkpoint_overhead"]
    assert over["checkpoints_per_run"] > 1, (
        "workload must checkpoint more than once for the overhead to mean "
        "anything"
    )
    assert over["overhead"] < limit, (
        f"checkpoint overhead {over['overhead']:.1%} exceeds the "
        f"{limit:.0%} budget"
    )
    elapsed = [row["elapsed_us"] for row in payload["recovery"]]
    assert elapsed == sorted(elapsed), (
        "simulated time must grow monotonically with the fault count"
    )
    for row in payload["recovery"]:
        if row["faults"]:
            assert row["delta_us"] > 0, "a recovered fault must cost time"
            assert row["recovery_cycles"] > 0


def write_json(payload, small: bool) -> Path:
    out = REPO_ROOT / "BENCH_faults.json"
    out.write_text(
        json.dumps(
            {
                "benchmark": "checkpoint overhead and fault-recovery latency",
                "mode": "small" if small else "full",
                "overhead_budget": (
                    OVERHEAD_LIMIT_SMOKE if small else OVERHEAD_LIMIT_FULL
                ),
                **payload,
            },
            indent=2,
        )
        + "\n"
    )
    return out


def report(payload, small: bool) -> None:
    over = payload["checkpoint_overhead"]
    over_table = format_table(
        ["workload", "checkpoints", "baseline (ms)", "checkpointed (ms)", "overhead"],
        [
            (
                over["workload"],
                over["checkpoints_per_run"],
                over["baseline_ms"],
                over["checkpointed_ms"],
                f"{over['overhead']:+.1%}",
            )
        ],
        title="Checkpoint overhead (identical results and Clock fingerprint)",
    )
    rec_table = format_table(
        ["workload", "faults", "clock (us)", "delta (us)", "per fault (us)", "recovery cycles"],
        [
            (
                row["workload"],
                row["faults"],
                row["elapsed_us"],
                row["delta_us"],
                row["delta_per_fault_us"],
                row["recovery_cycles"],
            )
            for row in payload["recovery"]
        ],
        title="Recovery latency vs fault rate (transient router drops)",
    )
    save_report("bench_faults", over_table + "\n\n" + rec_table)
    path = write_json(payload, small)
    print(f"wrote {path}")


@pytest.mark.benchmark(group="faults")
def test_fault_tolerance_costs(benchmark):
    payload, small = benchmark.pedantic(
        run_bench, kwargs={"small": True}, iterations=1, rounds=1
    )
    check_bench(payload, small)
    report(payload, small)


if __name__ == "__main__":
    is_small = "--smoke" in sys.argv[1:] or "--small" in sys.argv[1:]
    bench_payload, bench_small = run_bench(small=is_small)
    check_bench(bench_payload, bench_small)
    report(bench_payload, bench_small)
