"""Execution-service benchmark — throughput, tail latency, and chaos.

``repro serve`` exists to keep many tenants' jobs flowing through a
bounded pool of simulated machines, so this benchmark measures the
service as a service:

* **throughput rows** — S identical-shape jobs (mixed tenants) pushed
  through ``ExecutionService``; the baseline is the honest sequential
  loop a tenant would otherwise run (fresh ``UCProgram`` per job,
  compile store disabled).  The service wins by coalescing identical
  programs into ``run_batch`` lanes and sharing one compile store, and
  the row records throughput (jobs/s) plus p50/p99 per-job latency
  (submit -> terminal result, queueing included).  Full mode runs
  S=1000 and S=4000; ``--small``/``--smoke`` run S=64 for CI.
* **chaos rows** — the acceptance configuration, once per engine
  (compiled plans and the ``REPRO_NO_PLANS=1`` oracle): a job mix where
  a third carry a seeded fault-storm plan that exhausts in-run recovery
  (service-level retry re-runs them clean), random snapshot preemptions
  fire at top-level boundaries, and the service is killed mid-drain and
  resumed from its spool.  The row asserts **zero lost jobs** and that
  every completed job's Clock fingerprint is bit-identical to a
  fault-free solo run of the same program.

Writes ``BENCH_serve.json`` at the repository root plus the usual text
report under ``benchmarks/results/``.

Run small (CI smoke): ``python benchmarks/bench_serve.py --small``
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import pytest

from repro.bench.report import format_table
from repro.interp.program import UCProgram
from repro.service import ExecutionService, JobSpec, RetryPolicy, ServiceConfig

from _common import save_report

REPO_ROOT = Path(__file__).resolve().parents[1]

#: the job body: three top-level statements so preemption has
#: boundaries to land on, and a *par drain for some real sweep work
JOB_UC = """
int N = 16;
index_set I:i = {0..N-1};
int a[16];
int b[16];
main {
  par (I) a[i] = i * i;
  par (I) b[i] = a[i] + 1;
  *par (I) st (a[i] < 400) a[i] = a[i] + b[i];
}
"""

#: enough transient drops to exhaust the default in-run recovery
#: manager, forcing a service-level retry (attempt 2 runs clean)
STORM = ";".join(f"drop@alu#{k}" for k in range(1, 9))

TENANTS = ("alice", "bob", "carol", "dave")

FULL = {"sizes": (1000, 4000), "chaos": 96, "workers": 8}
SMALL = {"sizes": (64,), "chaos": 24, "workers": 4}


def _percentile(xs, q):
    return float(np.percentile(np.asarray(xs, dtype=np.float64), q))


def _solo_loop_s(count: int) -> float:
    """The baseline: what `count` jobs cost run back to back, cold."""
    t0 = time.perf_counter()
    for _ in range(count):
        UCProgram(JOB_UC, compile_store=None).run()
    return time.perf_counter() - t0


def _throughput_row(size: int, workers: int, probe: int) -> dict:
    """S clean jobs from mixed tenants through the service."""
    svc = ExecutionService(ServiceConfig(workers=workers, max_queue=size + 1))
    t0 = time.perf_counter()
    ids = [
        svc.submit(JobSpec(source=JOB_UC, tenant=TENANTS[k % len(TENANTS)]))
        for k in range(size)
    ]
    results = svc.drain()
    service_s = time.perf_counter() - t0
    assert svc.lost_jobs() == [], "throughput run lost jobs"
    assert all(results[j].ok for j in ids)
    latencies_ms = [results[j].wall_s * 1e3 for j in ids]
    # baseline extrapolated from a probe: the full cold loop at S=4000
    # would dominate the benchmark's wall clock without informing it
    probe = min(probe, size)
    solo_s = _solo_loop_s(probe) * (size / probe)
    return {
        "workload": f"serve S={size}",
        "engine": "service",
        "jobs": size,
        "workers": workers,
        "ms": service_s * 1e3,
        "solo_loop_ms": solo_s * 1e3,
        "speedup": solo_s / service_s,
        "throughput_jobs_s": size / service_s,
        "p50_ms": _percentile(latencies_ms, 50),
        "p99_ms": _percentile(latencies_ms, 99),
        "coalesced_lanes": svc.stats["coalesced_lanes"],
        "batches": svc.stats["batches"],
    }


def _chaos_row(size: int, workers: int, engine: str) -> dict:
    """Fault storms + chaos preemption + mid-drain kill/resume.

    Every job must reach a terminal state (zero lost) and every DONE
    fingerprint must equal the fault-free solo run's, bit for bit.
    """
    solo_fp = UCProgram(JOB_UC, compile_store=None).run().fingerprint
    with tempfile.TemporaryDirectory() as tmp:
        spool = os.path.join(tmp, "spool")
        config = dict(
            workers=workers,
            max_queue=size + 1,
            coalesce=False,  # chaos wants every job on the preemptable path
            preempt_probability=0.25,
            seed=1234,
        )
        svc = ExecutionService(ServiceConfig(spool_dir=spool, **config))
        t0 = time.perf_counter()
        ids = []
        for k in range(size):
            faults = [STORM] if k % 3 == 0 else None
            ids.append(
                svc.submit(
                    JobSpec(
                        source=JOB_UC,
                        tenant=TENANTS[k % len(TENANTS)],
                        faults=faults,
                        retry=RetryPolicy(max_attempts=3),
                    )
                )
            )
        # run part-way, then kill the service mid-drain (abandon the
        # object, as a crash would) and recover from the spool
        for _ in range(3 + size // 8):
            svc.step()
        in_flight_at_kill = len(svc.lost_jobs())
        svc.spool.close()
        svc = ExecutionService.resume(spool, ServiceConfig(**config))
        results = svc.drain()
        chaos_s = time.perf_counter() - t0

        lost = svc.lost_jobs()
        assert lost == [], f"chaos run lost jobs: {lost}"
        mismatched = [
            j for j in ids if results[j].ok and results[j].fingerprint != solo_fp
        ]
        assert mismatched == [], (
            f"chaos run fingerprints diverged from the fault-free solo "
            f"run: {mismatched}"
        )
        done = [j for j in ids if results[j].ok]
        assert len(done) == size, (
            f"chaos run: {size - len(done)} jobs failed outright "
            f"(retry should have recovered every storm)"
        )
        retried = [j for j in ids if results[j].attempts > 1]
        preempted = sum(results[j].preemptions for j in ids)
        solo_s = _solo_loop_s(min(16, size)) * (size / min(16, size))
    return {
        "workload": f"chaos S={size}",
        "engine": engine,
        "jobs": size,
        "workers": workers,
        "ms": chaos_s * 1e3,
        "speedup": solo_s / chaos_s,
        "lost": len(lost),
        "done": len(done),
        "retried_jobs": len(retried),
        "preemptions": preempted,
        "in_flight_at_kill": in_flight_at_kill,
        "fingerprints_equal_solo": True,
    }


def run_bench(small: bool = False):
    sizes = SMALL if small else FULL
    rows = []
    for size in sizes["sizes"]:
        rows.append(
            _throughput_row(size, sizes["workers"], probe=64 if small else 200)
        )
    # chaos acceptance, once per engine
    rows.append(_chaos_row(sizes["chaos"], sizes["workers"], "plans"))
    os.environ["REPRO_NO_PLANS"] = "1"
    try:
        rows.append(_chaos_row(sizes["chaos"], sizes["workers"], "oracle"))
    finally:
        os.environ.pop("REPRO_NO_PLANS", None)
    return rows, small


def check_bench(rows, small: bool) -> None:
    by_key = {(r["workload"], r["engine"]): r for r in rows}
    for r in rows:
        if r["workload"].startswith("chaos"):
            assert r["lost"] == 0
            assert r["fingerprints_equal_solo"]
    if not small:
        # acceptance: >= 10^3 concurrent jobs with a measured tail, and
        # the coalescing service beats the tenants' own sequential loops
        row = by_key[(f"serve S=1000", "service")]
        assert row["p99_ms"] > 0.0 and row["p50_ms"] > 0.0
        assert row["speedup"] >= 2.0, (
            f"serve S=1000: speedup {row['speedup']:.2f}x below the 2x bar"
        )


def write_json(rows, small: bool) -> Path:
    out = REPO_ROOT / "BENCH_serve.json"
    out.write_text(
        json.dumps(
            {
                "benchmark": "execution service throughput/latency + chaos "
                "(faults, preemption, kill/resume) acceptance",
                "mode": "small" if small else "full",
                "baseline": "sequential cold loop (fresh UCProgram per job, "
                "no compile store)",
                "chaos": "1/3 jobs carry a fault storm (service retry), "
                "p=0.25 snapshot preemption, service killed mid-drain and "
                "resumed from its spool; zero lost jobs and solo-equal "
                "fingerprints asserted in both engines",
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return out


def report(rows, small: bool) -> None:
    table = format_table(
        ["workload", "engine", "total (ms)", "speedup", "p50 (ms)", "p99 (ms)"],
        [
            (
                r["workload"],
                r["engine"],
                r["ms"],
                f"{r['speedup']:.2f}x",
                f"{r.get('p50_ms', 0.0):.1f}",
                f"{r.get('p99_ms', 0.0):.1f}",
            )
            for r in rows
        ],
        title="Execution service vs sequential tenant loops "
        "(chaos rows: zero lost jobs, fingerprints equal fault-free solo runs)",
    )
    save_report("bench_serve", table)
    path = write_json(rows, small)
    print(f"wrote {path}")


@pytest.mark.benchmark(group="serve")
def test_serve_bench(benchmark):
    rows, small = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    check_bench(rows, small)
    report(rows, small)


if __name__ == "__main__":
    is_small = "--smoke" in sys.argv[1:] or "--small" in sys.argv[1:]
    bench_rows, bench_small = run_bench(small=is_small)
    check_bench(bench_rows, bench_small)
    report(bench_rows, bench_small)
