"""Interpreter engine benchmark — compiled plans vs the tree-walker.

Unlike the other benchmarks (which measure *simulated* CM time), this one
measures the harness itself: host wall-clock for iterated ``solve``
workloads under the compiled-plan engine (``plans=True``, the default)
against the tree-walking oracle (``plans=False``).  Both engines must
produce bit-identical results and bit-identical cost ledgers — the plan
engine is an invisible optimization — so the only thing allowed to
differ is how long the host takes.

Writes ``BENCH_interp.json`` at the repository root with the measured
series, plus the usual text report under ``benchmarks/results/``.

Run small (CI smoke): ``python benchmarks/bench_plan_cache.py --small``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import pytest

from repro.algorithms.shortest_path import random_distance_matrix
from repro.bench.report import format_table
from repro.bench.workloads import APSP_SOLVE_UC, WAVEFRONT_UC
from repro.interp.program import UCProgram

from _common import save_report

REPO_ROOT = Path(__file__).resolve().parents[1]
REPS = 3

#: the headline workload: fig-7 APSP as a ``*solve`` fixed point — the
#: acceptance bar is >= 2x on this at n=64 with identical clocks
FULL_APSP_N = 64
SMALL_APSP_N = 12
FULL_WAVEFRONT_N = 48
SMALL_WAVEFRONT_N = 10


def _best_of(prog: UCProgram, inputs) -> tuple:
    best = None
    result = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        result = prog.run(dict(inputs or {}))
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    fp = prog.last_interpreter.machine.clock.fingerprint()
    return best, result, fp


def _compare(name, src, defines, inputs, **kw):
    """One row: run both engines, check equivalence, report the speedup."""
    t_plan, r_plan, fp_plan = _best_of(
        UCProgram(src, defines=defines, plans=True, **kw), inputs
    )
    t_tree, r_tree, fp_tree = _best_of(
        UCProgram(src, defines=defines, plans=False, **kw), inputs
    )
    assert fp_plan == fp_tree, f"{name}: cost ledgers diverge between engines"
    for var in r_plan.keys():
        a, b = r_plan[var], r_tree[var]
        same = np.array_equal(a, b) if isinstance(a, np.ndarray) else a == b
        assert same, f"{name}: variable {var!r} diverges between engines"
    return {
        "workload": name,
        "tree_ms": t_tree * 1e3,
        "plans_ms": t_plan * 1e3,
        "speedup": t_tree / t_plan,
        "clock_us": r_plan.elapsed_us,
    }


def run_bench(small: bool = False):
    apsp_n = SMALL_APSP_N if small else FULL_APSP_N
    wf_n = SMALL_WAVEFRONT_N if small else FULL_WAVEFRONT_N
    dist = random_distance_matrix(apsp_n, seed=7)
    rows = [
        _compare(
            f"apsp *solve n={apsp_n}",
            APSP_SOLVE_UC,
            {"N": apsp_n},
            {"dist": dist},
        ),
        _compare(
            f"apsp *solve n={apsp_n} (guarded)",
            APSP_SOLVE_UC,
            {"N": apsp_n},
            {"dist": dist},
            solve_strategy="guarded",
        ),
        _compare(
            f"wavefront solve n={wf_n} (guarded)",
            WAVEFRONT_UC,
            {"N": wf_n},
            None,
            solve_strategy="guarded",
        ),
    ]
    return rows, small


def check_bench(rows, small: bool) -> None:
    for row in rows:
        # at full size the compiled engine must stay well ahead of the
        # tree-walker on the headline APSP workload; small (CI smoke)
        # sizes only check that plans are not a slowdown disaster.  The
        # floor is 1.5x (was 2x): the classifier fast paths and the
        # frontier's compressed sweeps are shared by both engines, which
        # narrowed the gap by speeding the tree-walker up, not by slowing
        # plans down
        if not small and row["workload"].startswith("apsp"):
            assert row["speedup"] >= 1.5, (
                f"{row['workload']}: speedup {row['speedup']:.2f}x below 1.5x"
            )
        if small:
            assert row["speedup"] >= 0.5, (
                f"{row['workload']}: plans slower than half the tree-walker"
            )


def write_json(rows, small: bool) -> Path:
    out = REPO_ROOT / "BENCH_interp.json"
    out.write_text(
        json.dumps(
            {
                "benchmark": "compiled plans vs tree-walking interpreter",
                "mode": "small" if small else "full",
                "reps": REPS,
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return out


def report(rows, small: bool) -> None:
    table = format_table(
        ["workload", "tree (ms)", "plans (ms)", "speedup", "sim clock (us)"],
        [
            (
                r["workload"],
                r["tree_ms"],
                r["plans_ms"],
                f"{r['speedup']:.2f}x",
                r["clock_us"],
            )
            for r in rows
        ],
        title="Interpreter engines: compiled plans vs tree-walker "
        "(identical results + clocks)",
    )
    save_report("bench_plan_cache", table)
    path = write_json(rows, small)
    print(f"wrote {path}")


@pytest.mark.benchmark(group="interp")
def test_plan_cache_speedup(benchmark):
    rows, small = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    check_bench(rows, small)
    report(rows, small)


if __name__ == "__main__":
    is_small = "--small" in sys.argv[1:]
    bench_rows, bench_small = run_bench(small=is_small)
    check_bench(bench_rows, bench_small)
    report(bench_rows, bench_small)
