"""Figure 8 — grid shortest path with an obstacle: sequential C vs UC.

Paper: the iterative relaxation runs as sequential C on the Sun-4 front
end (plain ``cc`` and ``cc -O``) and as a UC ``*par`` program on the 16K
CM.  Sequential time grows like sweeps × cells (steeply, to ~40 s by 120
rows); the CM curve stays nearly flat because a sweep is a constant
number of Paris instructions while the grid fits the machine.  The
curves cross at a few tens of rows.

Reproduced here over rows = 20..120, all three executions validated
against BFS distances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.grid_path import grid_reference_distances, obstacle_mask
from repro.bench.harness import Sweep
from repro.bench.report import ascii_plot, format_series_table
from repro.bench.workloads import run_obstacle
from repro.seqc import sequential_obstacle_path

from _common import save_report

ROWS = (10, 20, 40, 60, 80, 100, 120)


def run_figure8() -> Sweep:
    sweep = Sweep("Figure 8: shortest path with obstacle", "rows")
    for r in ROWS:
        reference = grid_reference_distances(r)
        free = ~obstacle_mask(r)

        seq = sequential_obstacle_path(r)
        assert np.array_equal(seq.distances[free], reference[free])
        sweep.record("C (seq)", r, seq.elapsed_us / 1e6)

        seq_o = sequential_obstacle_path(r, optimized=True)
        assert np.array_equal(seq_o.distances[free], reference[free])
        sweep.record("C -O (seq)", r, seq_o.elapsed_us / 1e6)

        uc = run_obstacle(r)
        assert np.array_equal(np.asarray(uc["a"])[free], reference[free])
        sweep.record("UC (16K CM)", r, uc.elapsed_us / 1e6)
    return sweep


def check_figure8(sweep: Sweep) -> None:
    # sequential C grows steeply; -O is a constant factor below it
    for r in ROWS:
        ratio = sweep.ratio("C (seq)", "C -O (seq)", r)
        assert 1.8 <= ratio <= 3.2, f"-O factor {ratio:.2f} out of band at {r} rows"
    # the CM wins by roughly an order of magnitude at 120 rows (paper ~10x)
    big = sweep.ratio("C (seq)", "UC (16K CM)", 120)
    assert 5.0 <= big <= 40.0, f"seq/UC factor {big:.1f} at 120 rows (expect ~10x)"
    # the crossover falls in the tens of rows: sequential still wins at 10,
    # loses by 60
    assert sweep.ratio("C (seq)", "UC (16K CM)", 10) < 1.0
    assert sweep.ratio("C (seq)", "UC (16K CM)", 60) > 1.0
    # the CM curve is nearly flat relative to the sequential one
    uc_growth = sweep.series["UC (16K CM)"].at(120) / sweep.series["UC (16K CM)"].at(20)
    seq_growth = sweep.series["C (seq)"].at(120) / sweep.series["C (seq)"].at(20)
    assert seq_growth > 10 * uc_growth, "sequential curve should grow far faster"


@pytest.mark.benchmark(group="fig8")
def test_fig8_obstacle(benchmark):
    sweep = benchmark.pedantic(run_figure8, iterations=1, rounds=1)
    check_figure8(sweep)
    cross = sweep.crossover("C (seq)", "UC (16K CM)")
    save_report(
        "fig8_obstacle",
        format_series_table(sweep)
        + "\n\n" + ascii_plot(sweep)
        + f"\n\ncrossover (sequential loses) at ~{cross} rows; "
        + f"seq/UC factor at 120 rows: {sweep.ratio('C (seq)', 'UC (16K CM)', 120):.1f}x",
    )


if __name__ == "__main__":
    s = run_figure8()
    check_figure8(s)
    save_report("fig8_obstacle", format_series_table(s))
