"""Kernel-fusion benchmark — fused register programs vs per-closure plans.

The fusion backend (``repro.interp.fuse``) lowers a compiled construct
plan's statement sequence into whole-array register programs: gathers
and scatters replay the memoized index recipes, arithmetic and guards
run as vectorized numpy ops, and the Clock cost of each sweep is
replayed from a precomputed static charge table instead of per-statement
``Clock.charge`` calls.  ``REPRO_NO_FUSION=1`` (here: the
``fusion=False`` constructor toggle) restores the per-closure plan
engine with bit-identical results and fingerprints.

Workloads, chosen to show every face honestly:

* ``apsp`` (n=64 and n=128) — min-plus APSP over a connected chain
  graph: the active set never collapses, the frontier engine declines to
  compress, and every sweep is a full fused sweep.  This is fusion's
  home turf.  The headline metric is the *steady-state* per-sweep cost:
  the marginal wall time of one extra sweep, measured by differencing a
  long (chain) run against a short (already transitively closed) run of
  the same compiled program — parse, analysis, plan and kernel builds
  cancel out exactly.  Whole-run ratios are reported alongside.
* ``wavefront`` (n=48) — the wavefront recurrence as ``*solve``:
  ternary border guards, short-circuit predicates and NEWS-tier gathers
  all through the fused path.
* ``split`` — a construct body with a user function call in the middle:
  the call runs as an unfused plan closure between two fused segments.
  Fusion must still win nothing silently — the row asserts the honest
  segment counters and bit-identical fingerprints.
* ``unfusable`` — a body with a declaration, which the pass refuses
  entirely (``unfusable`` counter).  The fused build must cost parity:
  this row catches any overhead the bail path leaks into steady sweeps.

Every row asserts bit-identical results and Clock fingerprints between
fused and unfused runs across {tree, plans, plans+frontier,
plans+frontier+fusion}.  Acceptance (full sizes): the APSP n=64
steady-state per-sweep speedup of fused plans+frontier over
plans+frontier is at least 2x.

Writes ``BENCH_fusion.json`` at the repository root plus the usual text
report under ``benchmarks/results/``.

Run small (CI smoke): ``python benchmarks/bench_fusion.py --smoke``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import pytest

from repro.bench.report import format_table
from repro.interp.program import UCProgram

from _common import save_report

REPO_ROOT = Path(__file__).resolve().parents[1]
REPS = 3

APSP_UC = """
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int dist[N][N];
main {
    *solve (I, J)
        dist[i][j] = $<(K; dist[i][k] + dist[k][j]);
}
"""

WAVEFRONT_STAR_UC = """
index_set I:i = {0..N-1}, J:j = I;
int a[N][N];
main {
    *solve (I, J)
        a[i][j] = (i == 0 || j == 0) ? 1
                : a[i-1][j] + a[i-1][j-1] + a[i][j-1];
}
"""

SPLIT_UC = """
index_set I:i = {0..N-1};
int a[N], b[N], c[N];
int inc(int x) { return x + 1; }
main {
    *par (I) st (a[i] < 3 * N) {
        a[i] = a[i] + 2;
        c[i] = inc(i);
        b[i] = a[i] + 1;
    }
}
"""

UNFUSABLE_UC = """
index_set I:i = {0..N-1};
int a[N];
main {
    *par (I) st (a[i] < 2 * N) {
        int t;
        t = a[i] + 2;
        a[i] = t;
    }
}
"""

FULL_SIZES = {"apsp64": 64, "apsp128": 128, "wavefront": 48, "split": 512, "unfusable": 512}
SMOKE_SIZES = {"apsp64": 16, "apsp128": 24, "wavefront": 12, "split": 64, "unfusable": 64}


def _chain_input(n: int) -> dict:
    """A connected weight-1 chain: long shortest paths keep every sweep
    busy, so the frontier engine never compresses and fusion carries all
    of them."""
    d = np.full((n, n), 10**9, dtype=np.int64)
    np.fill_diagonal(d, 0)
    for v in range(n - 1):
        d[v, v + 1] = 1
        d[v + 1, v] = 1
    return {"dist": d}


def _closed_input(n: int) -> dict:
    """Already transitively closed: quiesces after the reference sweep.
    Differencing against the chain run cancels all one-time costs."""
    d = np.full((n, n), 3, dtype=np.int64)
    np.fill_diagonal(d, 0)
    return {"dist": d}


MODES = {
    "tree": dict(plans=False, frontier=False),
    "plans": dict(plans=True, frontier=False, fusion=False),
    "plans+frontier": dict(plans=True, frontier=True, fusion=False),
    "plans+frontier+fusion": dict(plans=True, frontier=True, fusion=True),
}


def _best_of(src, defines, inputs, **kw):
    prog = UCProgram(src, defines=defines, **kw)
    best = None
    result = None
    for _ in range(REPS):
        run_inputs = {k: v.copy() for k, v in inputs.items()} if inputs else None
        t0 = time.perf_counter()
        result = prog.run(run_inputs)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, result


def _sweeps(result) -> int:
    return result.frontier.get("full_sweeps", 0) + result.frontier.get(
        "compressed_sweeps", 0
    )


def _measure_modes(name, src, defines, inputs):
    """Run every mode; assert value + fingerprint equality; return stats."""
    out = {}
    for mode, kw in MODES.items():
        t, r = _best_of(src, defines, inputs, **kw)
        out[mode] = (t, r)
    ref = out["plans"][1]
    for mode, (_t, r) in out.items():
        for var in r.keys():
            a, b = r[var], ref[var]
            same = np.array_equal(a, b) if isinstance(a, np.ndarray) else a == b
            assert same, f"{name}/{mode}: {var!r} diverges from the plans mode"
    # fusion must be fingerprint-invisible within each frontier mode
    assert (
        out["plans+frontier+fusion"][1].fingerprint
        == out["plans+frontier"][1].fingerprint
    ), f"{name}: fusion changed the Clock fingerprint"
    assert out["plans"][1].fingerprint == out["tree"][1].fingerprint, (
        f"{name}: the two engines disagree on the full-sweep fingerprint"
    )
    return out


def _apsp_row(label, n):
    defines = {"N": n}
    long_runs = _measure_modes(label, APSP_UC, defines, _chain_input(n))
    short_runs = _measure_modes(label + " (closed)", APSP_UC, defines, _closed_input(n))

    fused = long_runs["plans+frontier+fusion"][1]
    assert fused.fusion.get("fused_sweeps", 0) >= 2, (
        f"{label}: expected fused sweeps, got {dict(fused.fusion)}"
    )
    assert fused.fusion.get("charge_table_hits", 0) >= 2, (
        f"{label}: charge tables never replayed: {dict(fused.fusion)}"
    )

    def steady(mode):
        t_long, r_long = long_runs[mode]
        t_short, r_short = short_runs[mode]
        ds = _sweeps(r_long) - _sweeps(r_short)
        assert ds > 0, f"{label}/{mode}: no extra steady-state sweeps to charge"
        return (t_long - t_short) / ds

    steady_fused = steady("plans+frontier+fusion")
    steady_plain = steady("plans+frontier")
    whole_fused = long_runs["plans+frontier+fusion"][0]
    whole_plain = long_runs["plans+frontier"][0]
    return [
        {
            "workload": label,
            "engine": "steady",
            "fused_ms_per_sweep": steady_fused * 1e3,
            "unfused_ms_per_sweep": steady_plain * 1e3,
            "speedup": steady_plain / steady_fused,
            "sweeps": _sweeps(long_runs["plans+frontier+fusion"][1]),
            "counters": dict(fused.fusion),
        },
        {
            "workload": label,
            "engine": "whole",
            "fused_ms": whole_fused * 1e3,
            "unfused_ms": whole_plain * 1e3,
            "tree_ms": long_runs["tree"][0] * 1e3,
            "plans_ms": long_runs["plans"][0] * 1e3,
            "speedup": whole_plain / whole_fused,
        },
    ]


def _simple_row(label, src, defines, inputs, *, expect):
    runs = _measure_modes(label, src, defines, inputs)
    fused = runs["plans+frontier+fusion"][1]
    if expect == "fused":
        assert fused.fusion.get("fused_sweeps", 0) >= 1, (
            f"{label}: nothing fused: {dict(fused.fusion)}"
        )
    elif expect == "split":
        assert fused.fusion.get("fused_segments", 0) >= 2, dict(fused.fusion)
        assert fused.fusion.get("unfused_segments", 0) >= 1, dict(fused.fusion)
    elif expect == "unfusable":
        assert fused.fusion.get("unfusable", 0) >= 1, dict(fused.fusion)
        assert fused.fusion.get("fused_segments", 0) == 0, dict(fused.fusion)
    return {
        "workload": label,
        "engine": "whole",
        "fused_ms": runs["plans+frontier+fusion"][0] * 1e3,
        "unfused_ms": runs["plans+frontier"][0] * 1e3,
        "tree_ms": runs["tree"][0] * 1e3,
        "plans_ms": runs["plans"][0] * 1e3,
        "speedup": runs["plans+frontier"][0] / runs["plans+frontier+fusion"][0],
        "counters": dict(fused.fusion),
    }


def run_bench(small: bool = False):
    sizes = SMOKE_SIZES if small else FULL_SIZES
    rows = []
    rows.extend(_apsp_row(f"apsp n={sizes['apsp64']}", sizes["apsp64"]))
    rows.extend(_apsp_row(f"apsp n={sizes['apsp128']}", sizes["apsp128"]))
    n = sizes["wavefront"]
    rows.append(
        _simple_row(
            f"wavefront n={n}", WAVEFRONT_STAR_UC, {"N": n}, None, expect="fused"
        )
    )
    n = sizes["split"]
    rows.append(
        _simple_row(
            f"split n={n}",
            SPLIT_UC,
            {"N": n},
            {"a": np.zeros(n, dtype=np.int64)},
            expect="split",
        )
    )
    n = sizes["unfusable"]
    rows.append(
        _simple_row(
            f"unfusable n={n}",
            UNFUSABLE_UC,
            {"N": n},
            {"a": np.zeros(n, dtype=np.int64)},
            expect="unfusable",
        )
    )
    return rows, small


def check_bench(rows, small: bool) -> None:
    by_key = {(r["workload"], r["engine"]): r for r in rows}
    if not small:
        # the acceptance row: fused steady-state sweeps at least 2x
        # cheaper than the per-closure plan engine's
        key = next(k for k in by_key if k[0].startswith("apsp n=64"))
        row = by_key[(key[0], "steady")]
        assert row["speedup"] >= 2.0, (
            f"{key[0]}: steady-state fusion speedup {row['speedup']:.2f}x "
            f"below the 2x acceptance bar"
        )
    for r in rows:
        if r["workload"].startswith("unfusable"):
            # the bail path must cost wall-clock parity, not a cliff
            assert r["speedup"] >= 0.5, (
                f"{r['workload']}: unfusable fallback overhead exceeded 2x "
                f"({r['speedup']:.2f}x)"
            )


def write_json(rows, small: bool) -> Path:
    out = REPO_ROOT / "BENCH_fusion.json"
    out.write_text(
        json.dumps(
            {
                "benchmark": "kernel fusion: fused register programs vs "
                "per-closure plans",
                "mode": "small" if small else "full",
                "reps": REPS,
                "escape_hatch": "REPRO_NO_FUSION=1",
                "steady_state_metric": "marginal wall time per extra sweep, "
                "chain input minus transitively-closed input",
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return out


def report(rows, small: bool) -> None:
    table = format_table(
        [
            "workload",
            "metric",
            "unfused (ms)",
            "fused (ms)",
            "speedup",
        ],
        [
            (
                r["workload"],
                "ms/sweep" if r["engine"] == "steady" else "whole run",
                r.get("unfused_ms", r.get("unfused_ms_per_sweep")),
                r.get("fused_ms", r.get("fused_ms_per_sweep")),
                f"{r['speedup']:.2f}x",
            )
            for r in rows
        ],
        title="Kernel fusion vs per-closure plans "
        "(identical results and Clock fingerprints in every mode)",
    )
    save_report("bench_fusion", table)
    path = write_json(rows, small)
    print(f"wrote {path}")


@pytest.mark.benchmark(group="fusion")
def test_fusion_speedup(benchmark):
    rows, small = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    check_bench(rows, small)
    report(rows, small)


if __name__ == "__main__":
    is_small = "--smoke" in sys.argv[1:] or "--small" in sys.argv[1:]
    bench_rows, bench_small = run_bench(small=is_small)
    check_bench(bench_rows, bench_small)
    report(bench_rows, bench_small)
