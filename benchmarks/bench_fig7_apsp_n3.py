"""Figure 7 — shortest path with O(N³) parallelism: UC vs C*.

Paper: the log-N-iteration min-plus algorithm is far cheaper than the
O(N²)-parallel one at equal N; UC and C* nearly coincide.  The paper also
stresses the *programmability* point: the C* program must explicitly
declare a 3-D XMED domain to get N³-way parallelism, while the UC program
differs from its O(N²) sibling only in the inner statement — we assert
that contrast structurally (domain count) as well.

Reproduced here over N = 4..32 on the simulated 16K CM-2 (N = 32 gives
32³ = 32768 virtual processors, VP ratio 2 — the curves steepen exactly
where the machine runs out of physical processors).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import floyd_warshall, random_distance_matrix
from repro.bench.harness import Sweep
from repro.bench.report import ascii_plot, format_series_table
from repro.bench.workloads import run_apsp_n2, run_apsp_n3
from repro.cstar.programs import apsp_n3 as cstar_apsp_n3

from _common import save_report

NS = (4, 8, 12, 16, 20, 24, 28, 32)


def run_figure7() -> Sweep:
    sweep = Sweep("Figure 7: shortest path, O(N^3) parallelism", "rows")
    for n in NS:
        dist = random_distance_matrix(n, seed=1)
        reference = floyd_warshall(dist)

        uc = run_apsp_n3(n, dist)
        assert np.array_equal(uc["d"], reference), f"UC wrong at N={n}"
        sweep.record("UC", n, uc.elapsed_us / 1e6)

        cs = cstar_apsp_n3(dist)
        assert np.array_equal(cs.distances, reference), f"C* wrong at N={n}"
        sweep.record("C*", n, cs.elapsed_us / 1e6)
        assert len(cs.runtime.domains) == 2, "C* needs the extra XMED domain"
    return sweep


def check_figure7(sweep: Sweep) -> None:
    for n in NS:
        ratio = sweep.ratio("UC", "C*", n)
        assert 0.5 <= ratio <= 2.0, f"UC/C* ratio {ratio:.2f} out of band at N={n}"
    # the O(N^3) algorithm beats the O(N^2) one at larger N (log N vs N
    # iterations), which is the reason the paper presents both
    n = 32
    n2_time = run_apsp_n2(n).elapsed_us / 1e6
    n3_time = sweep.series["UC"].at(n)
    assert n3_time < n2_time, "O(N^3)-parallel algorithm should win at N=32"


@pytest.mark.benchmark(group="fig7")
def test_fig7_apsp_n3(benchmark):
    sweep = benchmark.pedantic(run_figure7, iterations=1, rounds=1)
    check_figure7(sweep)
    save_report(
        "fig7_apsp_n3",
        format_series_table(sweep)
        + "\n\n" + ascii_plot(sweep)
        + f"\n\nUC/C* ratio at N=32: {sweep.ratio('UC', 'C*', 32):.2f}",
    )


if __name__ == "__main__":
    s = run_figure7()
    check_figure7(s)
    save_report("fig7_apsp_n3", format_series_table(s))
