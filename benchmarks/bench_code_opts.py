"""Table O — code optimizations (§4): common-subexpression detection.

§4 classifies the compiler's work into *code optimizations* (peephole,
CSE), *processor optimizations* (bench_processor_opt) and *communication
optimizations* (bench_mappings).  This table completes the trio: the same
programs run with the CSE pass on and off, results asserted identical.

The savings concentrate where one statement evaluates an expensive
expression twice — a relaxation predicate and its body, or the figure-11
neighbour minimum appearing in both the ``st`` clause and the update.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import floyd_warshall, random_distance_matrix
from repro.algorithms.grid_path import BIG, grid_reference_distances, obstacle_mask
from repro.bench.report import format_table
from repro.bench.workloads import APSP_N2_UC, OBSTACLE_UC, RANKSORT_UC
from repro.interp.program import UCProgram

from _common import save_report


def run_table_o():
    rows = []

    # figure-4 relaxation: pred and body share d[i][k] + d[k][j]
    dist = random_distance_matrix(16, seed=1)
    ref = floyd_warshall(dist)
    on = UCProgram(APSP_N2_UC, defines={"N": 16}, cse=True).run({"d": dist})
    off = UCProgram(APSP_N2_UC, defines={"N": 16}, cse=False).run({"d": dist})
    assert np.array_equal(on["d"], ref) and np.array_equal(off["d"], ref)
    rows.append(("APSP relaxation (fig 4), N=16", off.elapsed_us / 1e3,
                 on.elapsed_us / 1e3, off.elapsed_us / on.elapsed_us))

    # figure-11 grid: the 4-neighbour min appears in st() and in the update
    obs_on = UCProgram(OBSTACLE_UC, defines={"R": 32, "WALL": BIG}, cse=True).run()
    obs_off = UCProgram(OBSTACLE_UC, defines={"R": 32, "WALL": BIG}, cse=False).run()
    gref = grid_reference_distances(32)
    free = ~obstacle_mask(32)
    assert np.array_equal(np.asarray(obs_on["a"])[free], gref[free])
    assert np.array_equal(np.asarray(obs_off["a"])[free], gref[free])
    rows.append(("obstacle grid (fig 11), R=32", obs_off.elapsed_us / 1e3,
                 obs_on.elapsed_us / 1e3, obs_off.elapsed_us / obs_on.elapsed_us))

    # ranksort: no shared subexpressions — CSE must cost nothing
    data = np.random.default_rng(3).permutation(32)
    rs_on = UCProgram(RANKSORT_UC, defines={"N": 32}, cse=True).run({"a": data})
    rs_off = UCProgram(RANKSORT_UC, defines={"N": 32}, cse=False).run({"a": data})
    assert rs_on["a"].tolist() == sorted(data.tolist())
    assert rs_off["a"].tolist() == sorted(data.tolist())
    rows.append(("ranksort (3.4), N=32", rs_off.elapsed_us / 1e3,
                 rs_on.elapsed_us / 1e3, rs_off.elapsed_us / rs_on.elapsed_us))
    return rows


def check_table_o(rows) -> None:
    by_name = {name: speedup for name, _off, _on, speedup in rows}
    assert by_name["APSP relaxation (fig 4), N=16"] > 1.2
    assert by_name["obstacle grid (fig 11), R=32"] > 1.2
    # no shared work -> no change (and, crucially, no slowdown)
    assert 0.98 <= by_name["ranksort (3.4), N=32"] <= 1.05


@pytest.mark.benchmark(group="code-opts")
def test_code_optimizations(benchmark):
    rows = benchmark.pedantic(run_table_o, iterations=1, rounds=1)
    check_table_o(rows)
    save_report(
        "table_code_opts",
        format_table(
            ["workload", "CSE off (ms)", "CSE on (ms)", "speedup"],
            rows,
            title="Table O: code optimizations (§4) — common-subexpression detection",
        ),
    )


if __name__ == "__main__":
    rows = run_table_o()
    check_table_o(rows)
    save_report(
        "table_code_opts",
        format_table(["workload", "CSE off (ms)", "CSE on (ms)", "speedup"], rows),
    )
