"""Shared helpers for the benchmark suite.

Each benchmark regenerates one figure or table of the paper: it runs the
workload sweep on the simulated CM-2, prints the series the paper plots,
writes them under ``benchmarks/results/``, and asserts the qualitative
shape (who wins, rough factors, crossovers).  pytest-benchmark measures
the harness wall time; the scientific payload is the *simulated* elapsed
time series.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
