"""Figure 6 — shortest path with O(N²) parallelism: UC vs C*.

Paper: elapsed time grows roughly linearly in the number of rows N (the
outer ``seq (K)`` contributes N front-end turnarounds and N parallel
relaxation steps); the UC curve tracks the hand-written C* curve with a
small constant factor above it.

Reproduced here: the figure-4 UC program and the figure-9 C* program run
on the same simulated 16K CM-2 over N = 4..32, both validated against
Floyd–Warshall.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import floyd_warshall, random_distance_matrix
from repro.bench.harness import Sweep
from repro.bench.report import ascii_plot, format_series_table
from repro.bench.workloads import run_apsp_n2
from repro.cstar.programs import apsp_n2 as cstar_apsp_n2

from _common import save_report

NS = (4, 8, 12, 16, 20, 24, 28, 32)


def run_figure6() -> Sweep:
    sweep = Sweep("Figure 6: shortest path, O(N^2) parallelism", "rows")
    for n in NS:
        dist = random_distance_matrix(n, seed=1)
        reference = floyd_warshall(dist)

        uc = run_apsp_n2(n, dist)
        assert np.array_equal(uc["d"], reference), f"UC wrong at N={n}"
        sweep.record("UC", n, uc.elapsed_us / 1e6)

        cs = cstar_apsp_n2(dist)
        assert np.array_equal(cs.distances, reference), f"C* wrong at N={n}"
        sweep.record("C*", n, cs.elapsed_us / 1e6)
    return sweep


def check_figure6(sweep: Sweep) -> None:
    """The paper's qualitative claims."""
    for n in NS:
        ratio = sweep.ratio("UC", "C*", n)
        # "the performance of UC programs matches that of C*": same order,
        # UC paying a small constant factor for its generality
        assert 0.8 <= ratio <= 2.5, f"UC/C* ratio {ratio:.2f} out of band at N={n}"
    # both curves grow with N (the seq(K) loop) ...
    for name in ("UC", "C*"):
        ys = sweep.series[name].ys()
        assert ys[-1] > ys[0] * 3, f"{name} curve unexpectedly flat"
    # ... roughly linearly: doubling N from 16 to 32 should roughly double
    # the time, not quadruple it
    for name in ("UC", "C*"):
        s = sweep.series[name]
        growth = s.at(32) / s.at(16)
        assert 1.4 <= growth <= 3.2, f"{name} growth {growth:.2f} not near-linear"


@pytest.mark.benchmark(group="fig6")
def test_fig6_apsp_n2(benchmark):
    sweep = benchmark.pedantic(run_figure6, iterations=1, rounds=1)
    check_figure6(sweep)
    save_report(
        "fig6_apsp_n2",
        format_series_table(sweep)
        + "\n\n" + ascii_plot(sweep)
        + f"\n\nUC/C* ratio at N=32: {sweep.ratio('UC', 'C*', 32):.2f}",
    )


if __name__ == "__main__":
    s = run_figure6()
    check_figure6(s)
    save_report("fig6_apsp_n2", format_series_table(s))
