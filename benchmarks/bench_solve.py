"""Table C — solve strategies (paper §3.6).

The paper describes two implementations of ``solve`` and their trade-off:

* the *scheduled* translation (source transformation into seq/par, [14])
  executes each dependency level once — fast, but only applies when the
  references are affine in the index elements;
* the *guarded* translation (the general ``*par`` with impossible-value
  bookkeeping) applies always but "the programmer need not save redundant
  intermediate states" — i.e. it costs more.

Also measured: ``*solve`` (fixed-point iteration) against the explicit
``seq``-driven figure-5 program for APSP — the paper notes ``*solve``
yields concise programs at some run-time cost (the fixed-point detection
runs one extra sweep and saves state every sweep).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import floyd_warshall, random_distance_matrix, wavefront_matrix
from repro.bench.report import format_table
from repro.bench.workloads import APSP_N3_UC, APSP_SOLVE_UC, WAVEFRONT_UC, log2_ceil
from repro.interp.program import UCProgram

from _common import save_report

#: wavefront values grow like 5.8^N — keep N small enough for int64
WAVEFRONT_NS = (8, 12, 16)
APSP_NS = (8, 16, 32)


def run_table_c():
    rows = []
    for n in WAVEFRONT_NS:
        reference = wavefront_matrix(n)
        scheduled = UCProgram(
            WAVEFRONT_UC, defines={"N": n}, solve_strategy="scheduled"
        ).run()
        guarded = UCProgram(
            WAVEFRONT_UC, defines={"N": n}, solve_strategy="guarded"
        ).run()
        assert np.array_equal(scheduled["a"], reference)
        assert np.array_equal(guarded["a"], reference)
        rows.append(
            (
                f"wavefront N={n}",
                "scheduled vs guarded",
                scheduled.elapsed_us / 1e3,
                guarded.elapsed_us / 1e3,
                guarded.elapsed_us / scheduled.elapsed_us,
            )
        )
    for n in APSP_NS:
        dist = random_distance_matrix(n, seed=1)
        reference = floyd_warshall(dist)
        explicit = UCProgram(
            APSP_N3_UC, defines={"N": n, "LOGN": log2_ceil(n)}
        ).run({"d": dist})
        star_solve = UCProgram(APSP_SOLVE_UC, defines={"N": n}).run({"dist": dist})
        assert np.array_equal(explicit["d"], reference)
        assert np.array_equal(star_solve["dist"], reference)
        rows.append(
            (
                f"APSP N={n}",
                "explicit seq/par vs *solve",
                explicit.elapsed_us / 1e3,
                star_solve.elapsed_us / 1e3,
                star_solve.elapsed_us / explicit.elapsed_us,
            )
        )
    return rows


def check_table_c(rows) -> None:
    for name, what, fast_ms, general_ms, overhead in rows:
        if what.startswith("scheduled"):
            # guarded solve pays for readiness bookkeeping every sweep
            assert 1.0 <= overhead <= 6.0, f"{name}: overhead {overhead:.2f}"
        else:
            # *solve pays for fixed-point detection but may also *win* by
            # stopping as soon as the distances converge (§3.5's point
            # about iterating only while something changes)
            assert 0.4 <= overhead <= 6.0, f"{name}: overhead {overhead:.2f}"


@pytest.mark.benchmark(group="solve")
def test_solve_strategies(benchmark):
    rows = benchmark.pedantic(run_table_c, iterations=1, rounds=1)
    check_table_c(rows)
    save_report(
        "table_solve",
        format_table(
            ["workload", "comparison", "specialised (ms)", "general (ms)", "overhead"],
            rows,
            title="Table C: solve implementation strategies (§3.6)",
        ),
    )


if __name__ == "__main__":
    rows = run_table_c()
    check_table_c(rows)
    save_report(
        "table_solve",
        format_table(
            ["workload", "comparison", "specialised (ms)", "general (ms)", "overhead"],
            rows,
        ),
    )
