"""Table M — the mapping ablation (paper §4 and technical report [2]).

"The execution efficiency of some programs was improved by a factor of
10, simply by specifying an efficient mapping for the program data."

Four kernels, each run twice from the *same source* with the map section
toggled (mappings never change program logic — results are asserted
identical, which is the paper's central correctness claim):

* shift    — ``a[i] += b[i+1]``: default mapping costs a NEWS hop per
             reference; ``permute (I) b[i+1] :- a[i]`` makes it local.
* transpose— ``a[i][j] += b[j][i]``: default mapping routes every
             reference through the general router; a transposing permute
             makes it local (this is where the big factors come from).
* fold     — ``s[i] = a[i] + a[i+N/2]``: wrap-fold co-locates the halves.
* copy     — ``m[i][k] += v[i]``: the vector must be spread along k every
             sweep; replicating it (copy) makes the reference local.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.bench.workloads import (
    COPY_KERNEL_MAP,
    COPY_KERNEL_UC,
    FOLD_KERNEL_MAP,
    FOLD_KERNEL_UC,
    SHIFT_KERNEL_MAP,
    SHIFT_KERNEL_UC,
    TRANSPOSE_KERNEL_MAP,
    TRANSPOSE_KERNEL_UC,
    with_map,
)
from repro.interp.program import UCProgram

from _common import save_report

KERNELS = [
    ("shift (permute)", SHIFT_KERNEL_UC, SHIFT_KERNEL_MAP, {"N": 65536, "REPS": 10}),
    ("transpose (permute)", TRANSPOSE_KERNEL_UC, TRANSPOSE_KERNEL_MAP, {"N": 256, "REPS": 10}),
    ("fold (wrap)", FOLD_KERNEL_UC, FOLD_KERNEL_MAP, {"N": 256, "REPS": 10}),
    ("copy (replicate)", COPY_KERNEL_UC, COPY_KERNEL_MAP, {"N": 128, "REPS": 10}),
]

#: expected speedup bands (mapped vs unmapped simulated time)
EXPECTED = {
    "shift (permute)": (1.02, 3.0),
    "transpose (permute)": (3.0, 25.0),
    "fold (wrap)": (1.5, 25.0),
    "copy (replicate)": (1.2, 15.0),
}


def _inputs(defines, rng):
    n = defines["N"]
    return {
        "shift (permute)": lambda: {"a": rng.integers(0, 50, n), "b": rng.integers(0, 50, n)},
        "transpose (permute)": lambda: {
            "a": rng.integers(0, 50, (n, n)),
            "b": rng.integers(0, 50, (n, n)),
            "c": rng.integers(0, 50, (n, n)),
        },
        "fold (wrap)": lambda: {"a": rng.integers(0, 50, n)},
        "copy (replicate)": lambda: {
            "v": rng.integers(0, 50, n),
            "w": rng.integers(0, 50, n),
            "m": rng.integers(0, 50, (n, n)),
        },
    }


def run_mapping_table():
    rows = []
    for name, src, map_src, defines in KERNELS:
        rng = np.random.default_rng(7)
        inputs = _inputs(defines, rng)[name]()
        unmapped = UCProgram(with_map(src, map_src, False), defines=defines).run(
            dict(inputs)
        )
        mapped = UCProgram(with_map(src, map_src, True), defines=defines).run(
            dict(inputs)
        )
        # the paper's correctness claim: mappings never change results
        for var in unmapped.keys():
            assert np.array_equal(
                np.asarray(unmapped[var]), np.asarray(mapped[var])
            ), f"mapping changed the result of {var!r} in kernel {name!r}"
        speedup = unmapped.elapsed_us / mapped.elapsed_us
        rows.append(
            (
                name,
                unmapped.elapsed_us / 1e3,
                mapped.elapsed_us / 1e3,
                speedup,
                unmapped.counts.get("router_get", 0) + unmapped.counts.get("router_send", 0),
                mapped.counts.get("router_get", 0) + mapped.counts.get("router_send", 0),
            )
        )
    return rows


def check_mapping_table(rows) -> None:
    for name, _un, _m, speedup, routers_before, routers_after in rows:
        lo, hi = EXPECTED[name]
        assert lo <= speedup <= hi, f"{name}: speedup {speedup:.2f} outside [{lo}, {hi}]"
    # the headline: at least one kernel gains close to an order of magnitude
    assert max(r[3] for r in rows) >= 5.0, "no kernel reached the ~10x band"
    # router-bound kernels stop using the router entirely once mapped
    transpose = [r for r in rows if r[0].startswith("transpose")][0]
    assert transpose[4] > 0 and transpose[5] == 0


@pytest.mark.benchmark(group="mappings")
def test_mapping_ablation(benchmark):
    rows = benchmark.pedantic(run_mapping_table, iterations=1, rounds=1)
    check_mapping_table(rows)
    save_report(
        "table_mappings",
        format_table(
            ["kernel", "default (ms)", "mapped (ms)", "speedup", "router ops before", "after"],
            rows,
            title="Table M: data-mapping ablation (same source, map section toggled)",
        ),
    )


if __name__ == "__main__":
    rows = run_mapping_table()
    check_mapping_table(rows)
    save_report(
        "table_mappings",
        format_table(
            ["kernel", "default (ms)", "mapped (ms)", "speedup", "router ops before", "after"],
            rows,
        ),
    )
