"""Numerical-kernel comparison — §5's "both numerical computations and
graph algorithms were used as benchmarks and the results were similar".

Figures 6–8 cover the graph algorithms; this bench covers the numerical
side with the paper's own §3.4 kernel, matrix multiply
(``c[i][j] = $+(K; a[i][k] * b[k][j])``), run as UC and as hand-written
C* (gather the two operands into an (i,j,k) domain, multiply locally,
combining-send the sum), both validated against numpy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import Sweep
from repro.bench.report import format_series_table
from repro.bench.workloads import MATMUL_UC
from repro.cstar import CStarRuntime
from repro.interp.program import UCProgram
from repro.machine import Machine

from _common import save_report

NS = (4, 8, 16, 24, 32)


def cstar_matmul(a: np.ndarray, b: np.ndarray):
    """Matrix multiply in the mini C* runtime (XMED-domain style)."""
    n = a.shape[0]
    rt = CStarRuntime(Machine())
    grid = rt.domain("GRID", (n, n), {"a": int, "b": int, "c": int})
    cube = rt.domain("CUBE", (n, n, n), {"prod": int})
    grid.load("a", a)
    grid.load("b", b)
    rt.machine.clock.reset()
    with cube.activate() as x:
        av = rt.get_from(cube, grid, "a", x.coord(0), x.coord(2))
        bv = rt.get_from(cube, grid, "b", x.coord(2), x.coord(1))
        x["prod"] = av * bv
        rt.send_to(x["prod"], grid, "c", x.coord(0), x.coord(1), combine="add")
    return grid.read("c"), rt.elapsed_us


def run_numerical() -> Sweep:
    sweep = Sweep("Matrix multiply (numerical kernel): UC vs C*", "N")
    rng = np.random.default_rng(13)
    for n in NS:
        a = rng.integers(0, 20, (n, n))
        b = rng.integers(0, 20, (n, n))
        ref = a @ b

        uc = UCProgram(MATMUL_UC, defines={"N": n}).run({"a": a, "b": b})
        assert np.array_equal(uc["c"], ref), f"UC matmul wrong at N={n}"
        sweep.record("UC", n, uc.elapsed_us / 1e3, unit="ms")

        cs, cs_us = cstar_matmul(a, b)
        assert np.array_equal(cs, ref), f"C* matmul wrong at N={n}"
        sweep.record("C*", n, cs_us / 1e3, unit="ms")
    return sweep


def check_numerical(sweep: Sweep) -> None:
    # "the results were similar": same story as the graph kernels
    for n in NS:
        ratio = sweep.ratio("UC", "C*", n)
        assert 0.3 <= ratio <= 3.0, f"UC/C* ratio {ratio:.2f} out of band at N={n}"
    # one N^3-parallel step: near-flat until the cube outgrows the machine
    uc = sweep.series["UC"]
    assert uc.at(32) < uc.at(4) * 12


@pytest.mark.benchmark(group="numerical")
def test_numerical_matmul(benchmark):
    sweep = benchmark.pedantic(run_numerical, iterations=1, rounds=1)
    check_numerical(sweep)
    save_report(
        "numerical_matmul",
        format_series_table(sweep)
        + f"\n\nUC/C* ratio at N=32: {sweep.ratio('UC', 'C*', 32):.2f}",
    )


if __name__ == "__main__":
    s = run_numerical()
    check_numerical(s)
    save_report("numerical_matmul", format_series_table(s))
