"""Sanitizer order-permutation overhead (the UC5xx determinism checks).

``REPRO_SANITIZE=1`` re-executes every observed reduction under a seeded
operand permutation to cross-check the determinism pass's UC501 proofs
(docs/ANALYSIS.md, "Determinism envelopes").  This benchmark measures
what that costs on reduction-heavy workloads and asserts the contract:
results are unchanged, every reduction site is permuted, and every
permuted site either confirms its UC501 proof or records the expected
order sensitivity.  The overhead ratio is reported, not gated — wall
clock is too noisy for a CI assertion.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import workloads as W
from repro.interp.program import UCProgram

from _common import save_report

CASES = (
    ("digit-count", W.DIGIT_COUNT_UC, {"N": 4096}, "samples"),
    ("matmul", W.MATMUL_UC, {"N": 24}, None),
    ("apsp-n3", W.APSP_N3_UC, {"N": 16, "LOGN": 4}, None),
)


def _inputs(defines, sample_key):
    if sample_key is None:
        return {}
    rng = np.random.default_rng(11)
    return {sample_key: rng.integers(0, 10, size=defines["N"])}


def _timed(src, defines, inputs, *, sanitize):
    prog = UCProgram(src, defines=defines, sanitize=sanitize)
    prog.run({k: v.copy() for k, v in inputs.items()})  # warm compile caches
    t0 = time.perf_counter()
    run = prog.run({k: v.copy() for k, v in inputs.items()})
    return run, time.perf_counter() - t0


def run_bench():
    lines = ["sanitizer order-permutation overhead", ""]
    lines.append(f"{'workload':<12} {'plain':>9} {'sanitize':>9} {'ratio':>7}  permuted")
    for name, src, defines, sample_key in CASES:
        inputs = _inputs(defines, sample_key)
        plain, t_plain = _timed(src, defines, inputs, sanitize=False)
        san, t_san = _timed(src, defines, inputs, sanitize=True)
        stats = san.sanitizer
        checked = stats["reductions_checked"]
        confirmed = stats["reductions_confirmed"]
        for arr in plain.keys():
            assert np.array_equal(
                np.asarray(plain[arr]), np.asarray(san[arr])
            ), (name, arr)
        assert checked > 0, f"{name}: no reductions permuted"
        assert confirmed + stats["order_sensitivity_observed"] == checked
        ratio = t_san / t_plain
        lines.append(
            f"{name:<12} {t_plain:>8.3f}s {t_san:>8.3f}s {ratio:>6.2f}x"
            f"  {checked} sites ({confirmed} confirmed UC501)"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    save_report("sanitize_overhead", run_bench())
