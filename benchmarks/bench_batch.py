"""Batched lane execution benchmark — ``run_batch`` vs instance loops.

Parameter sweeps run one UC program over many inputs.  The baseline is
the honest cold loop: a fresh ``UCProgram`` per instance with the
compile store disabled, paying parse/analysis/plan/kernel builds every
time.  Two optimizations attack it from different sides:

* the **cross-run compile store** (``warm-store`` rows) keeps the cold
  loop but shares a :class:`CompileStore`, so instances 2..S reuse the
  compiled artifacts and pay execution only;
* the **batched lane engine** (``batched`` rows,
  ``UCProgram.run_batch``) stacks all S instances on a lane axis and
  executes them in a single pass — one fused sweep serves every lane,
  and each lane's Clock replays the static charge table so per-lane
  fingerprints stay bit-identical to S solo runs (asserted below).

Workloads:

* ``apsp`` — min-plus APSP over connected chain graphs with per-lane
  edge weights: every lane sweeps the full fixed-point depth, so this
  measures pure lane-stacking throughput.  The acceptance row: batched
  instance throughput at S=32 must be at least 4x the sequential cold
  loop (full sizes).
* ``wavefront`` — the wavefront recurrence with per-lane border seeds:
  ternary guards, NEWS gathers and lane-varying values through the
  fused path.
* ``divergent`` — a ``*par st`` drain whose lanes converge at very
  different sweep counts (depth k for lane k): lanes retire one by one
  and the stack compacts, so this row keeps the retirement path honest
  rather than showing off.

Writes ``BENCH_batch.json`` at the repository root plus the usual text
report under ``benchmarks/results/``.

Run small (CI smoke): ``python benchmarks/bench_batch.py --small``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import pytest

from repro.bench.report import format_table
from repro.interp.compile_store import CompileStore
from repro.interp.program import UCProgram

from _common import save_report

REPO_ROOT = Path(__file__).resolve().parents[1]
REPS = 3

APSP_UC = """
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int dist[N][N];
main {
    *solve (I, J)
        dist[i][j] = $<(K; dist[i][k] + dist[k][j]);
}
"""

WAVEFRONT_UC = """
index_set I:i = {0..N-1}, J:j = I;
int a[N][N];
main {
    *solve (I, J)
        a[i][j] = (i == 0 || j == 0) ? a[i][j]
                : a[i-1][j] + a[i-1][j-1] + a[i][j-1];
}
"""

DRAIN_UC = """
index_set I:i = {0..N-1}, J:j = I;
int a[N][N];
int b[N][N];
main {
    *par (I, J) st (a[i][j] > 0) {
        b[i][j] = b[i][j] + a[i][j];
        a[i][j] = a[i][j] - 1;
    }
}
"""

FULL = {"apsp": 64, "wavefront": 48, "drain": 64, "batches": (1, 4, 16, 32, 64), "divergent": 32}
SMALL = {"apsp": 16, "wavefront": 12, "drain": 16, "batches": (1, 4, 8), "divergent": 8}


def _chain_input(n: int, w: int) -> dict:
    d = np.full((n, n), 10**9, dtype=np.int64)
    np.fill_diagonal(d, 0)
    for v in range(n - 1):
        d[v, v + 1] = w
        d[v + 1, v] = w
    return {"dist": d}


def _wavefront_input(n: int, seed: int) -> dict:
    a = np.zeros((n, n), dtype=np.int64)
    rng = np.random.default_rng(seed)
    a[0, :] = rng.integers(1, 9, size=n)
    a[:, 0] = rng.integers(1, 9, size=n)
    return {"a": a}


def _drain_input(n: int, depth: int) -> dict:
    return {
        "a": np.full((n, n), depth, dtype=np.int64),
        "b": np.zeros((n, n), dtype=np.int64),
    }


def _copies(inputs):
    return [{k: v.copy() for k, v in inp.items()} for inp in inputs]


def _time_seq(src, defines, inputs, store):
    """Fresh ``UCProgram`` per instance; ``store`` is None (cold) or a
    shared CompileStore (warm)."""
    best = None
    results = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        results = [
            UCProgram(src, defines=defines, compile_store=store).run(inp)
            for inp in _copies(inputs)
        ]
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, results


def _time_batch(src, defines, inputs):
    best = None
    results = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        results = UCProgram(src, defines=defines, compile_store=None).run_batch(
            _copies(inputs)
        )
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, results


def _assert_lanes_identical(name, solo, batch):
    for i, (a, b) in enumerate(zip(solo, batch)):
        for var in a.keys():
            va, vb = a[var], b[var]
            same = (
                np.array_equal(va, vb) if isinstance(va, np.ndarray) else va == vb
            )
            assert same, f"{name}: lane {i} diverged on {var!r}"
        assert a.fingerprint == b.fingerprint, (
            f"{name}: lane {i} Clock fingerprint diverged from the solo run"
        )


def _workload_rows(name, src, defines, make_input, batches):
    rows = []
    checked = False
    for s in batches:
        inputs = [make_input(k) for k in range(s)]
        label = f"{name} S={s}"
        cold_t, cold_r = _time_seq(src, defines, inputs, None)
        warm_t, _ = _time_seq(src, defines, inputs, CompileStore())
        batch_t, batch_r = _time_batch(src, defines, inputs)
        if not checked and s > 1:
            # per-lane identity (values + fingerprints) vs the cold loop;
            # once per workload keeps the bench honest without rerunning
            # the whole matrix
            _assert_lanes_identical(label, cold_r, batch_r)
            checked = True
        base = dict(
            instances=s,
            seq_cold_ms=cold_t * 1e3,
            per_instance_cold_ms=cold_t * 1e3 / s,
        )
        rows.append(
            {
                "workload": label,
                "engine": "warm-store",
                "ms": warm_t * 1e3,
                "speedup": cold_t / warm_t,
                **base,
            }
        )
        rows.append(
            {
                "workload": label,
                "engine": "batched",
                "ms": batch_t * 1e3,
                "speedup": cold_t / batch_t,
                "batched_lanes": batch_r[-1].compile.get("batched_lanes", 0.0),
                **base,
            }
        )
    return rows


def run_bench(small: bool = False):
    sizes = SMALL if small else FULL
    rows = []

    n = sizes["apsp"]
    rows.extend(
        _workload_rows(
            f"apsp n={n}",
            APSP_UC,
            {"N": n},
            lambda k: _chain_input(n, 1 + k % 7),
            sizes["batches"],
        )
    )

    n = sizes["wavefront"]
    rows.extend(
        _workload_rows(
            f"wavefront n={n}",
            WAVEFRONT_UC,
            {"N": n},
            lambda k: _wavefront_input(n, k),
            sizes["batches"],
        )
    )

    # divergent lane depths: lane k drains in k+1 sweeps, so retirement
    # and stack compaction run constantly
    n = sizes["drain"]
    s = sizes["divergent"]
    rows.extend(
        _workload_rows(
            f"divergent n={n}",
            DRAIN_UC,
            {"N": n},
            lambda k: _drain_input(n, 1 + k),
            (s,),
        )
    )
    return rows, small


def check_bench(rows, small: bool) -> None:
    by_key = {(r["workload"], r["engine"]): r for r in rows}
    if not small:
        # the acceptance row: batched instance throughput at S=32 at
        # least 4x the sequential cold loop on chain APSP n=64
        row = by_key[("apsp n=64 S=32", "batched")]
        assert row["speedup"] >= 4.0, (
            f"apsp n=64 S=32: batched speedup {row['speedup']:.2f}x below "
            f"the 4x acceptance bar"
        )
        assert row["batched_lanes"] == 32.0, (
            f"apsp n=64 S=32 did not stay on the lane engine: {row}"
        )
    for r in rows:
        if r["engine"] == "batched" and r["instances"] == 1:
            # a single lane must not pay a batching cliff
            assert r["speedup"] >= 0.5, (
                f"{r['workload']}: single-instance batch overhead exceeded "
                f"2x ({r['speedup']:.2f}x)"
            )


def write_json(rows, small: bool) -> Path:
    out = REPO_ROOT / "BENCH_batch.json"
    out.write_text(
        json.dumps(
            {
                "benchmark": "batched lane engine + compile store vs "
                "sequential instance loops",
                "mode": "small" if small else "full",
                "reps": REPS,
                "escape_hatch": "REPRO_NO_BATCH=1",
                "baseline": "fresh UCProgram per instance, compile store "
                "disabled (cold loop)",
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return out


def report(rows, small: bool) -> None:
    table = format_table(
        [
            "workload",
            "mode",
            "total (ms)",
            "cold loop (ms)",
            "speedup",
        ],
        [
            (
                r["workload"],
                r["engine"],
                r["ms"],
                r["seq_cold_ms"],
                f"{r['speedup']:.2f}x",
            )
            for r in rows
        ],
        title="Batched lanes / warm compile store vs the sequential cold loop "
        "(per-lane results and Clock fingerprints identical to solo runs)",
    )
    save_report("bench_batch", table)
    path = write_json(rows, small)
    print(f"wrote {path}")


@pytest.mark.benchmark(group="batch")
def test_batch_speedup(benchmark):
    rows, small = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    check_bench(rows, small)
    report(rows, small)


if __name__ == "__main__":
    is_small = "--smoke" in sys.argv[1:] or "--small" in sys.argv[1:]
    bench_rows, bench_small = run_bench(small=is_small)
    check_bench(bench_rows, bench_small)
    report(bench_rows, bench_small)
