"""Frontier benchmark — active-set sweeps vs full-domain sweeps.

The frontier engine (``repro.interp.frontier``) restricts each sweep of
an iterated construct to the VPs that can still change: after a full
reference sweep it tracks per-sweep change masks, dilates them through
the body's affine ``elem + const`` offsets to find the lanes any change
can reach, and replays the construct's charge sequence over only those
lanes.  ``REPRO_NO_FRONTIER=1`` (here: the ``frontier=False``
constructor toggle) restores full sweeps with bit-identical results and
fingerprints.

Two workloads, chosen to show both faces honestly:

* ``apsp`` — min-plus APSP over two *disconnected* communities: a dense
  clique that quiesces after the first sweep and an 11-vertex chain that
  keeps relaxing.  The active set collapses to ~7% of the domain, so
  compressed sweeps win big on both wall-clock and the simulated Clock.
* ``wavefront`` — a guarded solve with a single assignment.  Here the
  per-assignment skip can never pay (a skip would mean the sweep makes
  no progress at all), the analysis falls back, and frontier mode must
  simply match full sweeps: identical results, identical Clock, and
  wall-clock parity.  A benchmark that only showed the winning case
  would hide the fallback cost.

Each row runs one workload on one engine (compiled plans or the
tree-walking oracle) with the frontier on and off.  Kernel fusion is
pinned *off* in both modes so the ratio isolates the frontier engine's
own contribution: fused full sweeps are fast enough to beat compressed
interpreted sweeps outright, and that race (plus the combined mode) is
measured honestly in ``bench_fusion.py`` instead.  Acceptance: results
are bit-identical per engine, the two engines agree on the exact Clock
fingerprint per mode, the frontier Clock is never higher, and in full
mode the plans-engine APSP row must be at least 2x faster in wall-clock
with at least a 3x lower simulated Clock.

Writes ``BENCH_frontier.json`` at the repository root plus the usual
text report under ``benchmarks/results/``.

Run small (CI smoke): ``python benchmarks/bench_frontier.py --smoke``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import pytest

from repro.bench.report import format_table
from repro.bench.workloads import APSP_SOLVE_UC, WAVEFRONT_UC
from repro.interp.program import UCProgram

from _common import save_report

REPO_ROOT = Path(__file__).resolve().parents[1]
REPS = 3

#: chain community size for the APSP input (vertices 0..CHAIN-1)
CHAIN = 11

FULL_SIZES = {"apsp": 64, "wavefront": 48}
SMOKE_SIZES = {"apsp": 16, "wavefront": 12}


def _apsp_input(n: int) -> dict:
    """Two disconnected communities: a weight-3 clique (closed under
    min-plus, quiescent after sweep one) and a weight-1 chain whose long
    paths keep the frontier alive for a few more sweeps."""
    chain = min(CHAIN, n - 1)
    d = np.full((n, n), 10**9, dtype=np.int64)
    d[chain:, chain:] = 3
    np.fill_diagonal(d, 0)
    for v in range(chain - 1):
        d[v, v + 1] = 1
        d[v + 1, v] = 1
    return {"dist": d}


WORKLOADS = {
    "apsp": (APSP_SOLVE_UC, _apsp_input, {}),
    "wavefront": (WAVEFRONT_UC, None, {"solve_strategy": "guarded"}),
}


def _best_of(src, defines, inputs, *, plans, frontier, **kw):
    # fusion pinned off: fused full sweeps would shrink the denominator
    # and turn this into a frontier-vs-fusion race; the interaction is
    # measured on its own terms in bench_fusion.py
    prog = UCProgram(
        src, defines=defines, plans=plans, frontier=frontier, fusion=False, **kw
    )
    best = None
    result = None
    for _ in range(REPS):
        run_inputs = {k: v.copy() for k, v in inputs.items()} if inputs else None
        t0 = time.perf_counter()
        result = prog.run(run_inputs)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, result, prog.last_interpreter.machine.clock.fingerprint()


def _row(name, src, defines, inputs, *, plans, **kw):
    engine = "plans" if plans else "tree"
    t_on, r_on, fp_on = _best_of(
        src, defines, inputs, plans=plans, frontier=True, **kw
    )
    t_off, r_off, fp_off = _best_of(
        src, defines, inputs, plans=plans, frontier=False, **kw
    )
    for var in r_on.keys():
        a, b = r_on[var], r_off[var]
        same = np.array_equal(a, b) if isinstance(a, np.ndarray) else a == b
        assert same, f"{name}/{engine}: {var!r} diverges between frontier modes"
    assert r_on.elapsed_us <= r_off.elapsed_us, (
        f"{name}/{engine}: frontier Clock {r_on.elapsed_us} above full-sweep "
        f"Clock {r_off.elapsed_us}"
    )
    return {
        "workload": name,
        "engine": engine,
        "frontier_ms": t_on * 1e3,
        "full_ms": t_off * 1e3,
        "speedup": t_off / t_on,
        "frontier_clock_us": r_on.elapsed_us,
        "full_clock_us": r_off.elapsed_us,
        "clock_ratio": r_off.elapsed_us / r_on.elapsed_us,
        "counters": dict(r_on.frontier),
        "active_vp_fraction_per_sweep": [
            round(active / domain, 4) for active, domain in r_on.frontier_trace
        ],
        "fingerprint_on": fp_on,
        "fingerprint_off": fp_off,
    }


def run_bench(small: bool = False):
    sizes = SMOKE_SIZES if small else FULL_SIZES
    rows = []
    for name, (src, make_input, kw) in WORKLOADS.items():
        n = sizes[name]
        inputs = make_input(n) if make_input else None
        label = f"{name} n={n}"
        plan_row = _row(label, src, {"N": n}, inputs, plans=True, **kw)
        tree_row = _row(label, src, {"N": n}, inputs, plans=False, **kw)
        # the two engines must agree per frontier mode: bit-identical clocks
        for key in ("fingerprint_on", "fingerprint_off"):
            assert plan_row[key] == tree_row[key], (
                f"{name}: {key} diverges between engines"
            )
        rows.extend([plan_row, tree_row])
    return rows, small


def check_bench(rows, small: bool) -> None:
    for row in rows:
        kind = row["workload"].split()[0]
        if kind == "wavefront":
            # single-assignment guarded solve: the analysis must fall
            # back (never silently degrade) and cost exactly full sweeps
            assert row["counters"].get("fallbacks", 0) >= 1, (
                f"{row['workload']}/{row['engine']}: expected a frontier "
                f"fallback, got {row['counters']}"
            )
            assert row["clock_ratio"] == 1.0, (
                f"{row['workload']}/{row['engine']}: fallback changed the "
                f"simulated Clock"
            )
        if not small and kind == "apsp":
            # the deterministic Clock claim holds on any engine; the
            # wall-clock claim is pinned on the plans engine only
            assert row["counters"].get("compressed_sweeps", 0) >= 1, (
                f"{row['workload']}/{row['engine']}: no compressed sweeps, "
                f"got {row['counters']}"
            )
            assert row["clock_ratio"] >= 3.0, (
                f"{row['workload']}/{row['engine']}: clock ratio "
                f"{row['clock_ratio']:.2f}x below 3x"
            )
            frac = row["active_vp_fraction_per_sweep"]
            assert frac and min(frac) < 0.5, (
                f"{row['workload']}/{row['engine']}: active set never "
                f"shrank below half the domain: {frac}"
            )
            if row["engine"] == "plans":
                assert row["speedup"] >= 2.0, (
                    f"{row['workload']}: speedup {row['speedup']:.2f}x "
                    f"below 2x"
                )
        if small:
            # smoke grids are too shallow to compress profitably; the
            # estimate guard must keep them at full-sweep parity
            assert row["speedup"] >= 0.3, (
                f"{row['workload']}/{row['engine']}: frontier overhead "
                f"exceeds 3x on a fallback workload"
            )


def write_json(rows, small: bool) -> Path:
    out = REPO_ROOT / "BENCH_frontier.json"
    payload = [
        {k: v for k, v in r.items() if not k.startswith("fingerprint")}
        for r in rows
    ]
    out.write_text(
        json.dumps(
            {
                "benchmark": "frontier active-set sweeps vs full-domain sweeps",
                "mode": "small" if small else "full",
                "reps": REPS,
                "escape_hatch": "REPRO_NO_FRONTIER=1",
                "rows": payload,
            },
            indent=2,
        )
        + "\n"
    )
    return out


def report(rows, small: bool) -> None:
    table = format_table(
        [
            "workload",
            "engine",
            "full (ms)",
            "frontier (ms)",
            "speedup",
            "full clock (us)",
            "frontier clock (us)",
            "clock ratio",
        ],
        [
            (
                r["workload"],
                r["engine"],
                r["full_ms"],
                r["frontier_ms"],
                f"{r['speedup']:.2f}x",
                r["full_clock_us"],
                r["frontier_clock_us"],
                f"{r['clock_ratio']:.2f}x",
            )
            for r in rows
        ],
        title="Frontier active-set sweeps vs full-domain sweeps "
        "(identical results per mode, identical clocks across engines)",
    )
    save_report("bench_frontier", table)
    path = write_json(rows, small)
    print(f"wrote {path}")


@pytest.mark.benchmark(group="frontier")
def test_frontier_speedup(benchmark):
    rows, small = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    check_bench(rows, small)
    report(rows, small)


if __name__ == "__main__":
    is_small = "--smoke" in sys.argv[1:] or "--small" in sys.argv[1:]
    bench_rows, bench_small = run_bench(small=is_small)
    check_bench(bench_rows, bench_small)
    report(bench_rows, bench_small)
