"""Function calls: builtins and user-defined UC functions.

UC allows C functions (pointers only for passing arrays/slices, §3).  In
a *host* context functions interpret with full control flow.  In a
*parallel* context a call is inlined and vectorised, which restricts the
body to straight-line code (declarations, assignments, one ``return``) —
exactly what the paper's helper functions (``power2``, ``init``) look
like.  ``swap`` is a builtin because its reference semantics (exchanging
two array elements in parallel) cannot be written as a UC value function.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from ..lang import ast
from ..lang.errors import UCRuntimeError
from .env import Env
from .eval_expr import (
    ExecContext,
    Value,
    charge_grid_op,
    eval_expr,
    eval_gather,
    eval_scatter,
)
from .statements import ReturnSignal, exec_stmt
from .values import (
    ArrayVar,
    ParallelLocal,
    ScalarVar,
    SliceParam,
    coerce_scalar,
    numpy_ctype,
)

RAND_MAX = 2**31 - 1


def call_function(ip, node: ast.Call, ctx: ExecContext) -> Value:
    name = node.func
    user_func: Optional[ast.FuncDef] = ip.info.functions.get(name)
    if user_func is not None:
        if ctx.grid.is_host:
            return _call_host(ip, user_func, node, ctx)
        return _call_parallel(ip, user_func, node, ctx)
    if name == "power2":
        x = eval_expr(ip, node.args[0], ctx)
        charge_grid_op(ip, ctx)
        if isinstance(x, np.ndarray):
            return np.left_shift(1, np.clip(x, 0, 62))
        return 1 << max(0, int(x))
    if name in ("abs", "ABS", "fabs"):
        x = eval_expr(ip, node.args[0], ctx)
        charge_grid_op(ip, ctx)
        if isinstance(x, np.ndarray):
            return np.abs(x)
        return abs(x) if name != "fabs" else abs(float(x))
    if name == "sqrt":
        x = eval_expr(ip, node.args[0], ctx)
        charge_grid_op(ip, ctx, count=4)  # iterative on the CM's ALUs
        if isinstance(x, np.ndarray):
            return np.sqrt(np.maximum(x, 0).astype(np.float64))
        if x < 0:
            raise UCRuntimeError("sqrt of a negative value", node.line, node.col)
        return float(x) ** 0.5
    if name == "min":
        a = eval_expr(ip, node.args[0], ctx)
        b = eval_expr(ip, node.args[1], ctx)
        charge_grid_op(ip, ctx)
        return np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b)
    if name == "max":
        a = eval_expr(ip, node.args[0], ctx)
        b = eval_expr(ip, node.args[1], ctx)
        charge_grid_op(ip, ctx)
        return np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b)
    if name == "rand":
        charge_grid_op(ip, ctx)
        if ctx.grid.is_host:
            return int(ip.rng.integers(0, RAND_MAX))
        return ip.rng.integers(0, RAND_MAX, size=ctx.grid.shape)
    if name == "srand":
        seed = eval_expr(ip, node.args[0], ctx)
        ip.reseed(int(seed))
        return 0
    if name == "printf":
        return _builtin_printf(ip, node, ctx)
    if name == "swap":
        return _builtin_swap(ip, node, ctx)
    raise UCRuntimeError(f"call to unknown function {name!r}", node.line, node.col)


# ---------------------------------------------------------------------------
# builtins with statement-like behaviour
# ---------------------------------------------------------------------------


def _builtin_printf(ip, node: ast.Call, ctx: ExecContext) -> Value:
    if not ctx.grid.is_host:
        raise UCRuntimeError("printf is a front-end function", node.line, node.col)
    if not node.args or not isinstance(node.args[0], ast.StringLit):
        raise UCRuntimeError("printf needs a literal format string", node.line, node.col)
    fmt = node.args[0].value
    args = [eval_expr(ip, a, ctx) for a in node.args[1:]]
    ip.machine.clock.charge("host", count=1 + len(args))
    try:
        text = fmt % tuple(args) if args else fmt
    except (TypeError, ValueError) as exc:
        raise UCRuntimeError(f"printf format error: {exc}", node.line, node.col)
    ip.stdout.append(text)
    return len(text)


def _builtin_swap(ip, node: ast.Call, ctx: ExecContext) -> Value:
    """``swap(x[i], x[j])`` — parallel exchange of two references."""
    lhs, rhs = node.args
    if not isinstance(lhs, ast.Index) or not isinstance(rhs, ast.Index):
        raise UCRuntimeError("swap takes two array references", node.line, node.col)
    a = eval_gather(ip, lhs, ctx)
    b = eval_gather(ip, rhs, ctx)
    eval_scatter(ip, lhs, b, ctx)
    eval_scatter(ip, rhs, a, ctx)
    return 0


# ---------------------------------------------------------------------------
# user functions
# ---------------------------------------------------------------------------


def _bind_argument(ip, param: ast.Param, arg: ast.Expr, ctx: ExecContext) -> Any:
    if param.dims:
        # array (or slice) passed by reference — the only pointer use UC allows
        if isinstance(arg, ast.Name):
            binding = ctx.env.lookup(arg.ident)
            if isinstance(binding, (ArrayVar, SliceParam)):
                return binding
            raise UCRuntimeError(
                f"argument for array parameter {param.name!r} is not an array",
                arg.line,
                arg.col,
            )
        if isinstance(arg, ast.Index):
            binding = ctx.env.lookup(arg.base)
            if isinstance(binding, SliceParam):
                base, prefix = binding.array, binding.prefix
            elif isinstance(binding, ArrayVar):
                base, prefix = binding, ()
            else:
                raise UCRuntimeError(
                    f"argument for array parameter {param.name!r} is not an array",
                    arg.line,
                    arg.col,
                )
            fixed = tuple(int(_host_value(ip, s, ctx)) for s in arg.subs)
            return SliceParam(base, prefix + fixed)
        raise UCRuntimeError(
            f"argument for array parameter {param.name!r} must be an array "
            "name or slice",
            arg.line,
            arg.col,
        )
    return eval_expr(ip, arg, ctx)


def _host_value(ip, expr: ast.Expr, ctx: ExecContext) -> Value:
    v = eval_expr(ip, expr, ctx)
    if isinstance(v, np.ndarray):
        raise UCRuntimeError("slice subscripts must be scalar", expr.line, expr.col)
    return v


def _call_host(ip, func: ast.FuncDef, node: ast.Call, ctx: ExecContext) -> Value:
    env = Env(ip.global_env)
    for param, arg in zip(func.params, node.args):
        bound = _bind_argument(ip, param, arg, ctx)
        if param.dims:
            env.declare(param.name, bound)
        else:
            env.declare(param.name, ScalarVar(param.name, param.ctype, coerce_scalar(param.ctype, bound)))
    ip.machine.clock.charge("host")
    frame = ExecContext(ctx.grid, ctx.mask, env)
    with ip.cse_suspend():  # the frame rebinds parameter names
        try:
            exec_stmt(ip, func.body, frame)
        except ReturnSignal as ret:
            if ret.value is None:
                return 0
            return ret.value
        return 0


def _call_parallel(ip, func: ast.FuncDef, node: ast.Call, ctx: ExecContext) -> Value:
    """Inline a straight-line function body, vectorised over the grid."""
    env = Env(ip.global_env)
    for param, arg in zip(func.params, node.args):
        bound = _bind_argument(ip, param, arg, ctx)
        if param.dims:
            env.declare(param.name, bound)
        else:
            data = np.broadcast_to(
                np.asarray(bound, dtype=numpy_ctype(param.ctype)), ctx.grid.shape
            ).copy()
            env.declare(
                param.name,
                ParallelLocal(param.name, param.ctype, ctx.grid.rank, data),
            )
    frame = ExecContext(ctx.grid, ctx.mask, env)
    with ip.cse_suspend():  # the frame rebinds parameter names
        result = _run_straightline(ip, func, func.body.stmts, frame, node)
    if result is None:
        return 0
    return result


def _run_straightline(
    ip, func: ast.FuncDef, stmts: List[ast.Stmt], frame: ExecContext, site: ast.Call
) -> Optional[Value]:
    for stmt in stmts:
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return None
            return eval_expr(ip, stmt.value, frame)
        if isinstance(stmt, (ast.VarDecl, ast.ExprStmt, ast.EmptyStmt)):
            exec_stmt(ip, stmt, frame)
            continue
        if isinstance(stmt, ast.Block):
            result = _run_straightline(ip, func, stmt.stmts, frame.with_env(frame.env.child()), site)
            if result is not None:
                return result
            continue
        raise UCRuntimeError(
            f"function {func.name!r} uses {type(stmt).__name__}, which is not "
            "supported when called from a parallel context (keep parallel "
            "helpers straight-line)",
            site.line,
            site.col,
        )
    return None
