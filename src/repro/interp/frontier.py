"""Frontier (active-set) execution of iterated fixed-point constructs.

The paper's processor optimizations deduce *minimal virtual-processor
sets*: the machine activates — and pays for — only the elements that can
still make progress.  This module realises that optimization for the
iterated constructs ``*solve`` and ``*par`` (plus a worklist restriction
for guarded ``solve``): each sweep records a per-element change mask for
every written array, and the next sweep's active set is the dilation of
those masks through the statically extracted affine reference offsets
(``elem + const``, the same reference shapes
:mod:`repro.compiler.solve_sched` builds schedules from).  A lane whose
inputs did not change cannot change, so the sweep runs *compressed*:
values are evaluated on the active lanes only and the Clock is charged
at the VP ratio of the active set instead of the full grid.

Correctness strategy — decide-before-execute behind a measured guard:

* **Analysis** (cached in the plan cache under kind ``"frontier"``,
  keyed by the construct node and grid axes) accepts a restricted
  grammar: arms that are single direct assignments to
  identity-subscripted canonical arrays, affine array references, pure
  operators and builtins, and (at the root of a value) a single-set
  ``min``/``max``/``add``-family reduction.  Anything else — permuted
  or folded layouts, user calls, ``rand``, scalar or parallel-local
  targets, op-assignments, nested constructs, non-affine subscripts —
  falls back to full sweeps, bit-identical to the non-frontier build.
* **Charging**: a compressed sweep's cost is described by a static
  charge plan whose entries replay through
  :func:`repro.interp.commtiers.charge_tier_at` — the same recipe both
  engines use — first against a local estimator clock and then, only if
  the estimate undercuts the *measured* cost of the last full sweep,
  against the real :class:`~repro.machine.cost.Clock`.  Charges precede
  writes, preserving the fault-injection charge-before-mutate
  invariant, and the guard makes the frontier Clock never higher than
  the full-sweep Clock.
* **Values** are bit-identical by construction: inactive lanes would
  recompute exactly their current values, and active lanes run the same
  numpy operator semantics (:func:`repro.interp.eval_expr.apply_binop`,
  ``_reduce_op``, ``_cast_array``) the engines use.
* **Delta reductions**: when a value is exactly ``$<``/``$>`` over one
  index set, the body is monotone in the modified arrays (references
  reachable only through ``+``/``min``/``max``), and last sweep's
  changes all moved in the reduction's direction, the sweep combines
  the stored result with a scan over only the *changed* reduction
  slots — the minimal VP set in the reduction dimension too.

``REPRO_NO_FRONTIER=1`` / ``UCProgram(frontier=False)`` disables all of
this and restores today's full-sweep fingerprints exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..compiler.solve_sched import affine_ref_axes
from ..lang import ast
from ..machine.config import HOST_KINDS
from ..machine.scan import INF
from ..machine.vpset import ratio_for
from ..mapping.locality import classify_affine, classify_write_affine
from . import commtiers
from .eval_expr import _RED_UFUNC, _reduce_op, apply_binop
from .plan import lane_gather, lane_scatter
from .values import ArrayVar, ElementBinding, ScalarVar

__all__ = [
    "star_session",
    "guarded_frontier",
    "StarSession",
    "GuardedFrontier",
]


class _NotFrontierable(Exception):
    """Raised during analysis when a construct cannot run compressed."""


_FALLBACK = "frontier-fallback"

#: reduction ops eligible for the delta (changed-slots-only) scan
_DELTA_OPS = ("min", "max")

_CALL_CHARGES = {"power2": 1, "abs": 1, "ABS": 1, "fabs": 1, "sqrt": 4, "min": 1, "max": 1}


def _enabled(ip) -> bool:
    if not getattr(ip, "frontier_enabled", False):
        return False
    # per-reference tier logging records every dispatched reference;
    # compressed sweeps replay charges without walking references, so
    # keep the log complete by running full sweeps while it is armed
    return getattr(ip, "tier_log", None) is None


# ---------------------------------------------------------------------------
# expression text (CSE-simulation keys)
# ---------------------------------------------------------------------------


def _text(e: ast.Expr) -> str:
    if isinstance(e, ast.IntLit):
        return str(e.value)
    if isinstance(e, ast.FloatLit):
        return repr(e.value)
    if isinstance(e, ast.InfLit):
        return "INF"
    if isinstance(e, ast.Name):
        return e.ident
    if isinstance(e, ast.Unary):
        return f"({e.op}{_text(e.operand)})"
    if isinstance(e, ast.Binary):
        return f"({_text(e.left)}{e.op}{_text(e.right)})"
    if isinstance(e, ast.Ternary):
        return f"({_text(e.cond)}?{_text(e.then)}:{_text(e.els)})"
    if isinstance(e, ast.Index):
        return e.base + "".join(f"[{_text(s)}]" for s in e.subs)
    if isinstance(e, ast.Call):
        return f"{e.func}({','.join(_text(a) for a in e.args)})"
    return f"<{type(e).__name__}@{id(e)}>"


def _pure(e: ast.Expr) -> bool:
    return not any(
        isinstance(n, (ast.Call, ast.Assign, ast.IncDec, ast.Reduction))
        for n in ast.walk(e)
    )


# ---------------------------------------------------------------------------
# the estimator clock
# ---------------------------------------------------------------------------


class _EstClock:
    """Accumulates time exactly like :class:`~repro.machine.cost.Clock`
    (per-call dispatch for CM kinds, host kinds flat) without counters,
    regions or fault hooks.  Replaying a charge plan through this and
    through the real clock yields identical totals by construction."""

    __slots__ = ("costs", "time_us")

    def __init__(self, costs) -> None:
        self.costs = costs
        self.time_us = 0.0

    def charge(self, kind: str, *, count: int = 1, vp_ratio: int = 1) -> None:
        base = getattr(self.costs, kind)
        if kind in HOST_KINDS:
            self.time_us += base * count
        else:
            self.time_us += base * count * max(1, vp_ratio) + self.costs.dispatch

    def charge_scan(self, n_vps: int, *, vp_ratio: int = 1, steps_per_level: int = 1) -> None:
        levels = max(1, math.ceil(math.log2(max(2, n_vps))))
        self.charge("scan_step", count=levels * steps_per_level, vp_ratio=vp_ratio)

    def count_tier(self, tier: str) -> None:  # observability no-op
        pass


# ---------------------------------------------------------------------------
# lanes: the compressed evaluation substrate
# ---------------------------------------------------------------------------


class _Lanes:
    """Active lanes of one arm: element values plus a liveness mask.

    ``shape`` is ``(L,)`` for plain bodies or ``(L, K)`` inside a
    reduction; ``vals`` maps element names to int64 arrays broadcastable
    to ``shape``; ``live`` masks the lanes whose bounds actually matter
    (ternary/short-circuit refinement, mirroring the engines)."""

    __slots__ = ("shape", "vals", "live")

    def __init__(self, shape, vals, live) -> None:
        self.shape = shape
        self.vals = vals
        self.live = live

    def with_live(self, live) -> "_Lanes":
        return _Lanes(self.shape, self.vals, live)


def _truthy_arr(v) -> np.ndarray:
    return np.asarray(v) != 0


# ---------------------------------------------------------------------------
# analysis structures
# ---------------------------------------------------------------------------


class _RefInfo:
    """One affine reference into a *modified* array, for dilation."""

    __slots__ = ("base", "axes", "in_red", "dplan")

    def __init__(self, base: str, axes, in_red: bool) -> None:
        self.base = base
        self.axes = axes  # per array axis: (elem_name | None, const offset)
        self.in_red = in_red
        # memoised dilation recipe (index vectors, collapse/transpose
        # spec); everything in it is static per analysis, so it is built
        # on first use and replayed every sweep
        self.dplan = None


class _RedInfo:
    """A value-root reduction eligible for compressed evaluation."""

    __slots__ = (
        "op",
        "set_name",
        "elem",
        "values",
        "extent",
        "body_fn",
        "entries",
        "delta_ok",
        "delta_refs",
        "delta_vecs",
        "full_refs",
        "read_arrays",
        "node",
    )

    def __init__(self) -> None:
        self.delta_refs: List[Tuple[str, int, int]] = []  # (base, array axis, const)
        self.full_refs: List[str] = []  # modified arrays referenced without the elem
        self.read_arrays: Set[str] = set()
        #: memoised per-delta-ref clipped index vectors (static per analysis)
        self.delta_vecs = None


class _ArmInfo:
    """One construct arm: optional predicate plus one direct assignment."""

    __slots__ = (
        "pred_fn",
        "pred_entries",
        "value_fn",
        "red",
        "value_entries",
        "scatter_entry",
        "target",
        "target_axes",
        "refs",
        "node",
        "slots_ident",
    )

    def __init__(self) -> None:
        #: lazily computed: True when the write targets exactly the grid
        #: (identity subscripts), so the written-slot bound IS the active
        #: mask and the scatter simulation can be skipped
        self.slots_ident: Optional[bool] = None


class _Analysis:
    """Cached per (construct node, grid axes): everything needed to plan
    and run compressed sweeps, minus per-execution bindings."""

    def __init__(self, grid, kind: str) -> None:
        self.kind = kind  # 'solve' | 'par'
        self.grid_shape = grid.shape
        self.rank = grid.rank
        self.axis_vals = [
            np.asarray(axis.values, dtype=np.int64) for axis in grid.axes
        ]
        self.grid_axis_of = {axis.elem: g for g, axis in enumerate(grid.axes)}
        self.elem_of_axis = [axis.elem for axis in grid.axes]
        self.arms: List[_ArmInfo] = []
        self.modified: List[str] = []
        self.array_shapes: Dict[str, Tuple[int, ...]] = {}
        self.scalar_names: Set[str] = set()
        self.elem_kinds: Dict[str, int] = {}  # elem name -> grid axis


# ---------------------------------------------------------------------------
# analysis: restricted-grammar compilation
# ---------------------------------------------------------------------------


class _Compiler:
    def __init__(self, ip, inner, an: _Analysis, modified: Set[str]) -> None:
        self.ip = ip
        self.inner = inner
        self.an = an
        self.modified = modified
        self.cse_enabled = bool(getattr(ip, "cse_enabled", False))
        self.cse_seen: Set[str] = set()
        self.refs: List[_RefInfo] = []
        self.red_ctx: Optional[dict] = None  # {'elem', 'grid', 'values'}

    # -- helpers ----------------------------------------------------------

    def _elems_dict(self) -> Dict[str, str]:
        elems = {axis.elem: axis.set_name for axis in self.inner.grid.axes}
        if self.red_ctx is not None:
            elems[self.red_ctx["elem"]] = self.red_ctx["set_name"]
        return elems

    def _scope(self) -> str:
        return "red" if self.red_ctx is not None else "lane"

    def _register_array(self, name: str) -> ArrayVar:
        binding = self.inner.env.try_lookup(name)
        if not isinstance(binding, ArrayVar):
            raise _NotFrontierable()
        if not binding.layout.is_canonical:
            raise _NotFrontierable()  # permute/fold/copy maps: full sweeps
        known = self.an.array_shapes.get(name)
        if known is not None and known != binding.shape:
            raise _NotFrontierable()
        self.an.array_shapes[name] = binding.shape
        return binding

    def _classify(self, node: ast.Index, axes_desc, arr: ArrayVar, *, write: bool):
        """Tier-classify the reference exactly as the engines would — but
        through the O(extent) affine fast path: every subscript we accept
        is single-axis affine, so 1-D value arrays carry the same verdict
        as the materialised full-grid subscripts the engines classify."""
        grid = self.red_ctx["grid"] if self.red_ctx is not None else self.inner.grid
        descs = []
        for elem, c in axes_desc:
            if elem is None:
                descs.append(("u", int(c)))
            else:
                if self.red_ctx is not None and elem == self.red_ctx["elem"]:
                    axis = grid.rank - 1
                else:
                    axis = self.an.grid_axis_of[elem]
                vals = np.asarray(grid.axes[axis].values, dtype=np.int64)
                descs.append(("a", axis, vals + c if c else vals))
        classify = classify_write_affine if write else classify_affine
        rc = classify(descs, grid.shape, grid.axis_elems, arr.layout)
        tier = commtiers.decide_tier(
            rc,
            self.ip.machine.clock.costs,
            write=write,
            enabled=self.ip.comm_tiers_enabled,
        )
        return tier, rc, tuple(grid.shape)

    # -- expression compilation ------------------------------------------

    def compile(self, expr: ast.Expr, entries: List, *, value_root: bool = False):
        """Returns (fn(S, lanes) -> value, is_array)."""
        if (
            self.cse_enabled
            and isinstance(expr, (ast.Binary, ast.Index, ast.Unary, ast.Ternary))
            and _pure(expr)
        ):
            key = (self._scope(), _text(expr))
            if key in self.cse_seen:
                # the engine serves this subtree from its CSE cache: no
                # charges, but the compressed evaluator still recomputes
                return self._compile_node(expr, [], value_root=value_root)
            out = self._compile_node(expr, entries, value_root=value_root)
            self.cse_seen.add(key)
            return out
        return self._compile_node(expr, entries, value_root=value_root)

    def _compile_node(self, expr: ast.Expr, entries: List, *, value_root: bool = False):
        scope = self._scope()
        if isinstance(expr, ast.IntLit):
            v = int(expr.value)
            return (lambda S, lanes: v), False
        if isinstance(expr, ast.FloatLit):
            v = float(expr.value)
            return (lambda S, lanes: v), False
        if isinstance(expr, ast.InfLit):
            return (lambda S, lanes: INF), False
        if isinstance(expr, ast.Name):
            return self._compile_name(expr)
        if isinstance(expr, ast.Index):
            return self._compile_index(expr, entries)
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr, entries)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr, entries)
        if isinstance(expr, ast.Ternary):
            return self._compile_ternary(expr, entries)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr, entries)
        if isinstance(expr, ast.Reduction) and value_root and self.red_ctx is None:
            raise _Reduce(expr)  # handled by the arm compiler
        raise _NotFrontierable()

    def _compile_name(self, expr: ast.Name):
        name = expr.ident
        binding = self.inner.env.try_lookup(name)
        if self.red_ctx is not None and name == self.red_ctx["elem"]:
            return (lambda S, lanes: lanes.vals[name]), True
        if isinstance(binding, ElementBinding) and binding.kind == "axis":
            axis = binding.axis
            if self.an.grid_axis_of.get(name) != axis:
                raise _NotFrontierable()
            self.an.elem_kinds[name] = axis
            return (lambda S, lanes: lanes.vals[name]), True
        if isinstance(binding, (ScalarVar, int, float, np.integer, np.floating)) or (
            isinstance(binding, ElementBinding) and binding.kind == "scalar"
        ):
            self.an.scalar_names.add(name)
            return (lambda S, lanes: S["scalars"][name]), False
        raise _NotFrontierable()

    def _compile_index(self, expr: ast.Index, entries: List):
        arr = self._register_array(expr.base)
        elems = self._elems_dict()
        axes_desc = affine_ref_axes(expr, elems, self.ip.info.constants)
        if axes_desc is None or len(axes_desc) != len(arr.shape):
            raise _NotFrontierable()
        seen_elems = [e for e, _c in axes_desc if e is not None]
        if len(seen_elems) != len(set(seen_elems)):
            raise _NotFrontierable()  # a[i][i]: dilation geometry ambiguous
        in_red = self.red_ctx is not None
        if expr.base in self.modified:
            ref = _RefInfo(expr.base, axes_desc, in_red)
            self.refs.append(ref)
            if in_red:
                red: _RedInfo = self.red_ctx["info"]
                red.read_arrays.add(expr.base)
                bound = [
                    (a, c)
                    for a, (e, c) in enumerate(axes_desc)
                    if e == self.red_ctx["elem"]
                ]
                if bound:
                    for a, c in bound:
                        red.delta_refs.append((expr.base, a, c))
                else:
                    red.full_refs.append(expr.base)
        tier, rc, gshape = self._classify(expr, axes_desc, arr, write=False)
        entries.append(("ref", tier, rc, False, self._scope(), gshape, arr.layout))
        base = expr.base
        node = expr

        def fn(S, lanes):
            data = S["arrays"][base]
            subs = []
            for elem, c in axes_desc:
                if elem is None:
                    subs.append(int(c))
                else:
                    v = lanes.vals[elem]
                    subs.append(v + c if c else v)
            return lane_gather(data, subs, node, lanes.live)

        return fn, True

    def _compile_unary(self, expr: ast.Unary, entries: List):
        f, is_arr = self.compile(expr.operand, entries)
        entries.append(("op", 1, self._scope()))
        op = expr.op
        if op not in ("-", "!", "~"):
            raise _NotFrontierable()

        def fn(S, lanes):
            v = f(S, lanes)
            if op == "-":
                return -v
            if op == "!":
                if isinstance(v, np.ndarray):
                    return np.logical_not(v.astype(bool)).astype(np.int64)
                return int(not v)
            if isinstance(v, np.ndarray):
                return np.invert(v.astype(np.int64))
            return ~int(v)

        return fn, is_arr

    def _compile_binary(self, expr: ast.Binary, entries: List):
        if expr.op in ("&&", "||"):
            lf, l_arr = self.compile(expr.left, entries)
            if not l_arr:
                # scalar left side short-circuits in the engines: the
                # charge sequence becomes data-dependent — full sweeps
                raise _NotFrontierable()
            entries.append(("op", 1, self._scope()))
            rf, _r_arr = self.compile(expr.right, entries)
            is_and = expr.op == "&&"

            def fn(S, lanes):
                a = lf(S, lanes)
                ab = np.broadcast_to(_truthy_arr(a), lanes.shape)
                live2 = lanes.live & (ab if is_and else ~ab)
                b = rf(S, lanes.with_live(live2))
                bb = np.broadcast_to(_truthy_arr(b), lanes.shape)
                return ((ab & bb) if is_and else (ab | bb)).astype(np.int64)

            return fn, True
        lf, l_arr = self.compile(expr.left, entries)
        rf, r_arr = self.compile(expr.right, entries)
        entries.append(("op", 1, self._scope()))
        op = expr.op
        node = expr

        def fn(S, lanes):
            return apply_binop(op, lf(S, lanes), rf(S, lanes), node)

        return fn, l_arr or r_arr

    def _compile_ternary(self, expr: ast.Ternary, entries: List):
        cf, c_arr = self.compile(expr.cond, entries)
        if not c_arr:
            raise _NotFrontierable()  # host cond picks one branch: data-dependent
        tf, _ = self.compile(expr.then, entries)
        ef, _ = self.compile(expr.els, entries)
        entries.append(("op", 2, self._scope()))

        def fn(S, lanes):
            c = cf(S, lanes)
            cb = np.broadcast_to(_truthy_arr(c), lanes.shape)
            tv = tf(S, lanes.with_live(lanes.live & cb))
            ev = ef(S, lanes.with_live(lanes.live & ~cb))
            return np.where(cb, tv, ev)

        return fn, True

    def _compile_call(self, expr: ast.Call, entries: List):
        name = expr.func
        if name not in _CALL_CHARGES or name in self.ip.info.functions:
            raise _NotFrontierable()  # user functions (or shadowed builtins)
        want = 2 if name in ("min", "max") else 1
        if len(expr.args) != want:
            raise _NotFrontierable()
        fns = []
        is_arr = False
        for a in expr.args:
            f, arr = self.compile(a, entries)
            fns.append(f)
            is_arr = is_arr or arr
        entries.append(("op", _CALL_CHARGES[name], self._scope()))
        node = expr

        def fn(S, lanes):
            vals = [f(S, lanes) for f in fns]
            arrayish = any(isinstance(v, np.ndarray) for v in vals)
            if name == "power2":
                x = vals[0]
                if arrayish:
                    return np.left_shift(1, np.clip(x, 0, 62))
                return 1 << max(0, int(x))
            if name in ("abs", "ABS", "fabs"):
                x = vals[0]
                if arrayish:
                    return np.abs(x)
                return abs(x) if name != "fabs" else abs(float(x))
            if name == "sqrt":
                x = vals[0]
                if arrayish:
                    return np.sqrt(np.maximum(x, 0).astype(np.float64))
                if x < 0:
                    from ..lang.errors import UCRuntimeError

                    raise UCRuntimeError(
                        "sqrt of a negative value", node.line, node.col
                    )
                return float(x) ** 0.5
            if name == "min":
                a, b = vals
                return np.minimum(a, b) if arrayish else min(a, b)
            a, b = vals
            return np.maximum(a, b) if arrayish else max(a, b)

        return fn, is_arr


class _Reduce(Exception):
    """Internal control flow: a value-root reduction to special-case."""

    def __init__(self, node: ast.Reduction) -> None:
        self.node = node


def _monotone_in_modified(expr: ast.Expr, modified: Set[str]) -> bool:
    """True when every modified-array reference is reachable only through
    operators monotone non-decreasing in that operand (+, min, max)."""

    def touches(e: ast.Expr) -> bool:
        return any(
            isinstance(n, ast.Index) and n.base in modified for n in ast.walk(e)
        )

    def rec(e: ast.Expr) -> bool:
        if isinstance(e, ast.Index):
            return True
        if isinstance(e, ast.Binary) and e.op == "+":
            return rec(e.left) and rec(e.right)
        if isinstance(e, ast.Call) and e.func in ("min", "max") and len(e.args) == 2:
            return rec(e.args[0]) and rec(e.args[1])
        return not touches(e)

    return rec(expr)


def _single_assign(stmt: ast.Stmt) -> Optional[ast.Assign]:
    """The arm's single direct assignment, or None."""
    if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Assign):
        a = stmt.expr
        return a if not a.op else None
    if isinstance(stmt, ast.Block):
        inner = [s for s in stmt.stmts if not isinstance(s, ast.EmptyStmt)]
        if len(inner) == 1:
            return _single_assign(inner[0])
    return None


def _analyze(ip, stmt: ast.UCStmt, inner, kind: str) -> object:
    """Build the frontier analysis, or the fallback sentinel."""
    try:
        return _analyze_raising(ip, stmt, inner, kind)
    except _NotFrontierable:
        return _FALLBACK


def _analyze_raising(ip, stmt: ast.UCStmt, inner, kind: str) -> _Analysis:
    if stmt.others is not None:
        raise _NotFrontierable()
    grid = inner.grid
    if grid.is_host or grid.rank == 0:
        raise _NotFrontierable()
    # distinct per-axis values make identity writes hit distinct slots
    for axis in grid.axes:
        vals = np.asarray(axis.values, dtype=np.int64)
        if len(np.unique(vals)) != len(vals):
            raise _NotFrontierable()
    an = _Analysis(grid, kind)

    modified: Set[str] = set()
    for block in stmt.blocks:
        assign = _single_assign(block.stmt)
        if assign is None:
            raise _NotFrontierable()
        if not isinstance(assign.target, ast.Index):
            raise _NotFrontierable()
        modified.add(assign.target.base)
    an.modified = sorted(modified)

    for block in stmt.blocks:
        assign = _single_assign(block.stmt)
        arm = _ArmInfo()
        arm.node = assign
        comp = _Compiler(ip, inner, an, modified)
        arm.pred_entries = []
        arm.pred_fn = None
        if block.pred is not None:
            pf, p_arr = comp.compile(block.pred, arm.pred_entries)
            if not p_arr:
                raise _NotFrontierable()  # host predicate: whole-grid semantics
            arm.pred_fn = pf

        # the target: identity subscripts covering every grid axis once
        t = assign.target
        arr = comp._register_array(t.base)
        elems = {axis.elem: axis.set_name for axis in grid.axes}
        t_axes = affine_ref_axes(t, elems, ip.info.constants)
        if t_axes is None or len(t_axes) != len(arr.shape):
            raise _NotFrontierable()
        if len(t_axes) != grid.rank:
            raise _NotFrontierable()
        t_grid_axes = []
        for elem, c in t_axes:
            if elem is None or c != 0 or elem not in an.grid_axis_of:
                raise _NotFrontierable()
            t_grid_axes.append(an.grid_axis_of[elem])
        if len(set(t_grid_axes)) != grid.rank:
            raise _NotFrontierable()
        arm.target = t.base
        arm.target_axes = tuple(t_grid_axes)
        _w_tier, _w_rc, _w_gshape = comp._classify(t, t_axes, arr, write=True)
        arm.scatter_entry = ("ref", _w_tier, _w_rc, True, "lane", _w_gshape, arr.layout)

        arm.value_entries = []
        arm.red = None
        try:
            vf, _v_arr = comp.compile(assign.value, arm.value_entries, value_root=True)
            arm.value_fn = vf
        except _Reduce as r:
            arm.value_fn = None
            arm.red = _compile_reduction(ip, inner, an, comp, r.node, block, modified)
            arm.value_entries = []
        arm.refs = comp.refs
        an.arms.append(arm)
    return an


def _compile_reduction(
    ip, inner, an: _Analysis, comp: _Compiler, node: ast.Reduction, block, modified
) -> _RedInfo:
    if node.op not in _RED_UFUNC:
        raise _NotFrontierable()  # 'arbitrary' draws from the RNG
    if len(node.index_sets) != 1 or len(node.arms) != 1 or node.others is not None:
        raise _NotFrontierable()
    arm = node.arms[0]
    if arm.pred is not None:
        # predicated reductions may divert into the send-with-reduce
        # optimizer, whose charges we do not model — full sweeps
        raise _NotFrontierable()
    isv = ip.resolve_index_set(node.index_sets[0], inner, at=node)
    red = _RedInfo()
    red.node = node
    red.op = node.op
    red.set_name = isv.name
    red.elem = isv.elem_name
    red.values = tuple(int(v) for v in isv.values)
    red.extent = len(red.values)
    if red.extent == 0:
        raise _NotFrontierable()
    ext_grid = inner.grid.extend([isv])
    comp.red_ctx = {
        "elem": red.elem,
        "set_name": red.set_name,
        "grid": ext_grid,
        "info": red,
    }
    red.entries = [("scan", red.extent, "red")]
    try:
        body_fn, _ = comp.compile(arm.expr, red.entries)
    finally:
        comp.red_ctx = None
    red.body_fn = body_fn
    red.delta_ok = (
        node.op in _DELTA_OPS
        and block.pred is None
        and _monotone_in_modified(arm.expr, modified)
    )
    return red


# ---------------------------------------------------------------------------
# dilation
# ---------------------------------------------------------------------------


def _dilate_plan(an: _Analysis, ref: _RefInfo, shape, red_values) -> Tuple:
    """The static part of one reference's dilation: the clipped index
    vectors and the collapse/transpose/reshape spec.  Everything here
    depends only on the analysis (grid geometry, reduction ranges) and
    the array shape, so it is computed once per reference and replayed
    every sweep — only the change mask varies."""
    vecs = []
    out_grid_axes: List[Optional[int]] = []  # grid axis per kept output axis
    identity = True
    for a_ax, (elem, c) in enumerate(ref.axes):
        extent = shape[a_ax]
        if elem is None:
            vecs.append(np.array([min(max(int(c), 0), extent - 1)], dtype=np.int64))
            out_grid_axes.append(None)
            identity = False
        elif elem in an.grid_axis_of:
            g = an.grid_axis_of[elem]
            vecs.append(np.clip(an.axis_vals[g] + c, 0, extent - 1))
            out_grid_axes.append(g)
        else:  # reduction element: any changed slot along its range
            rv = np.asarray(red_values, dtype=np.int64)
            vecs.append(np.clip(rv + c, 0, extent - 1))
            out_grid_axes.append(-1)
        if identity and not (
            len(vecs[-1]) == extent
            and np.array_equal(vecs[-1], np.arange(extent))
        ):
            identity = False
    # collapse reduction-bound and constant axes to a presence bit each,
    # keep grid-bound axes; reorder those into grid-axis order and
    # broadcast over the grid axes the reference does not constrain
    collapse = tuple(i for i, g in enumerate(out_grid_axes) if g is None or g < 0)
    grid_axes = [g for g in out_grid_axes if g is not None and g >= 0]
    order = tuple(sorted(range(len(grid_axes)), key=lambda i: grid_axes[i]))
    kept_lens = [
        len(vecs[i]) for i, g in enumerate(out_grid_axes) if g is not None and g >= 0
    ]
    bshape = [1] * an.rank
    for i in order:
        bshape[grid_axes[i]] = kept_lens[i]
    return (identity, tuple(vecs), collapse, order, tuple(bshape))


def _dilate_ref(an: _Analysis, ref: _RefInfo, ch: np.ndarray, red_values) -> Optional[np.ndarray]:
    """Grid-shaped bool: lanes whose reference can see a changed slot."""
    if not ch.any():
        return None
    plan = ref.dplan
    if plan is None:
        plan = ref.dplan = _dilate_plan(an, ref, ch.shape, red_values)
    identity, vecs, collapse, order, bshape = plan
    # identity index vectors select the whole mask: skip the fancy gather
    sub = ch if identity else ch[np.ix_(*vecs)]
    if collapse:
        sub = sub.any(axis=collapse)
    sub = np.transpose(sub, order)
    sub = sub.reshape(bshape)
    return np.broadcast_to(sub, an.grid_shape)


def _slots_of(an: _Analysis, arm: _ArmInfo, act: np.ndarray, shape) -> np.ndarray:
    """Array-shaped bool bound on the slots ``arm`` can write from ``act``."""
    if arm.slots_ident is None:
        arm.slots_ident = (
            tuple(arm.target_axes) == tuple(range(an.rank))
            and tuple(shape) == tuple(an.grid_shape)
            and all(
                np.array_equal(an.axis_vals[g], np.arange(shape[a]))
                for a, g in enumerate(arm.target_axes)
            )
        )
    if arm.slots_ident:
        # identity write: the written slots ARE the active lanes (callers
        # only read the result, so returning the mask itself is safe)
        return act
    out = np.zeros(shape, dtype=bool)
    if not act.any():
        return out
    idx = np.nonzero(act)
    subs = tuple(
        np.clip(an.axis_vals[g][idx[g]], 0, shape[a] - 1)
        for a, g in enumerate(arm.target_axes)
    )
    out[subs] = True
    return out


# ---------------------------------------------------------------------------
# per-sweep state and charge replay
# ---------------------------------------------------------------------------


class _ArmState:
    __slots__ = ("L", "act", "lane_ratio", "K_eff", "red_ratio", "delta_on", "red_sel")

    def ratio(self, scope: str) -> int:
        return self.red_ratio if scope == "red" else self.lane_ratio

    def scan_extent(self, full_extent: int) -> int:
        return self.K_eff if self.K_eff is not None else full_extent


def _replay(clk, entries: Sequence, st: _ArmState) -> None:
    for e in entries:
        tag = e[0]
        if tag == "op":
            clk.charge("alu", count=e[1], vp_ratio=st.ratio(e[2]))
        elif tag == "ref":
            # e[5]/e[6] carry the full-grid geometry to the shard sink:
            # slab exchanges are bulk per sweep, so the split is over the
            # whole grid even on compressed sweeps (the estimator lacks
            # the hook and is unaffected)
            commtiers.charge_tier_at(
                clk, e[1], e[2], write=e[3], vp_ratio=st.ratio(e[4]),
                grid_shape=e[5], layout=e[6],
            )
        else:  # scan
            clk.charge_scan(st.scan_extent(e[1]), vp_ratio=st.ratio("red"))


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------


class StarSession:
    """Per-execution frontier driver for one ``*solve`` / ``*par``."""

    def __init__(self, ip, stmt: ast.UCStmt, inner, kind: str) -> None:
        self.ip = ip
        self.inner = inner
        self.kind = kind
        clock = ip.machine.clock
        clock.count_frontier("constructs")
        an = ip.plan_cache.get_or_build(
            "frontier", stmt, inner.grid.axes, lambda: _analyze(ip, stmt, inner, kind)
        )
        self.an: Optional[_Analysis] = None
        self.S: Optional[dict] = None
        if an is _FALLBACK or not self._bind(an):
            clock.count_frontier("fallbacks")
            return
        self.an = an
        self.vps = ip.grid_vpset(inner.grid.shape)
        self.base = inner.active_mask()
        self.domain = int(np.count_nonzero(self.base))
        self.prev: Optional[Dict[str, np.ndarray]] = None
        self.dirs: Dict[str, Tuple[bool, bool]] = {}  # name -> (any_up, any_down)
        self.reference: Optional[float] = None
        self.ref_pes: Optional[int] = None
        self._full_t0: Optional[float] = None
        self._full_alloc0 = 0
        self._full_snapshot: Optional[Dict[str, np.ndarray]] = None
        self.last_stats: Dict[str, Tuple[int, int]] = {}
        self.par_masks: Optional[List[np.ndarray]] = None

    # -- binding ----------------------------------------------------------

    def _bind(self, an) -> bool:
        if an is _FALLBACK:
            return False
        arrays: Dict[str, np.ndarray] = {}
        scalars: Dict[str, object] = {}
        env = self.inner.env
        for name, shape in an.array_shapes.items():
            b = env.try_lookup(name)
            if not isinstance(b, ArrayVar) or b.shape != shape or not b.layout.is_canonical:
                return False
            arrays[name] = b.data
        for name in an.scalar_names:
            b = env.try_lookup(name)
            if isinstance(b, ScalarVar):
                scalars[name] = b.value
            elif isinstance(b, ElementBinding) and b.kind == "scalar":
                scalars[name] = b.value
            elif isinstance(b, (int, float, np.integer, np.floating)):
                scalars[name] = b
            else:
                return False
        for name, axis in an.elem_kinds.items():
            b = env.try_lookup(name)
            if not (isinstance(b, ElementBinding) and b.kind == "axis" and b.axis == axis):
                return False
        for arm in an.arms:
            if arm.red is not None:
                isv = self.ip.resolve_index_set(
                    arm.red.set_name, self.inner, at=arm.red.node
                )
                if tuple(int(v) for v in isv.values) != arm.red.values:
                    return False
        self.S = {"arrays": arrays, "scalars": scalars}
        return True

    @property
    def active(self) -> bool:
        return self.an is not None

    # -- full-sweep bracketing --------------------------------------------

    def full_begin(self) -> None:
        if not self.active:
            return
        clock = self.ip.machine.clock
        self._full_t0 = clock.time_us
        self._full_alloc0 = clock.count("alloc")
        self._full_snapshot = {
            name: self.S["arrays"][name].copy() for name in self.an.modified
        }

    def full_end(self) -> None:
        if not self.active or self._full_t0 is None:
            return
        clock = self.ip.machine.clock
        costs = clock.costs
        alloc_extra = clock.count("alloc") - self._full_alloc0
        # a first sweep allocates VP sets the steady state reuses; do not
        # bake that one-off into the per-sweep reference cost
        self.reference = (clock.time_us - self._full_t0) - alloc_extra * (
            costs.alloc + costs.dispatch
        )
        self.ref_pes = self.ip.machine.n_live_pes
        prev: Dict[str, np.ndarray] = {}
        stats: Dict[str, Tuple[int, int]] = {}
        for name, before in self._full_snapshot.items():
            curr = self.S["arrays"][name]
            changed = before != curr
            prev[name] = changed
            stats[name] = (int(np.count_nonzero(changed)), int(changed.size))
            self.dirs[name] = (
                bool(np.any(curr > before)),
                bool(np.any(curr < before)),
            )
        self.prev = prev
        self.last_stats = stats
        self._full_t0 = None
        self._full_snapshot = None
        clock.count_frontier("full_sweeps")

    def note_par_masks(self, masks: List[np.ndarray]) -> None:
        if self.active:
            self.par_masks = [np.array(m, dtype=bool, copy=True) for m in masks]

    # -- sweep planning ----------------------------------------------------

    def plan_compressed(self) -> Optional[List[_ArmState]]:
        """Active sets + delta decisions + estimate guard for one sweep.
        Returns the per-arm states, or None when the sweep must run full."""
        if not self.active or self.prev is None or self.reference is None:
            return None
        if self.ip.machine.n_live_pes != self.ref_pes:
            return None  # degraded relayout: re-measure on a full sweep
        if self.kind == "par" and self.par_masks is None:
            return None
        an = self.an
        machine = self.ip.machine
        # the write simulation below rebinds pseudo[target] to a fresh
        # array (never mutates in place), so a dict copy suffices
        pseudo = dict(self.prev)
        states: List[_ArmState] = []
        for arm in an.arms:
            st = _ArmState()
            act = np.zeros(an.grid_shape, dtype=bool)
            for ref in arm.refs:
                m = _dilate_ref(
                    an,
                    ref,
                    pseudo[ref.base],
                    arm.red.values if (ref.in_red and arm.red is not None) else None,
                )
                if m is not None:
                    act |= m
            act &= self.base
            st.act = act
            st.L = int(np.count_nonzero(act))
            st.lane_ratio = ratio_for(st.L, machine) if st.L else 1
            st.K_eff = None
            st.red_sel = None
            st.delta_on = False
            st.red_ratio = st.lane_ratio
            if arm.red is not None and st.L:
                red = arm.red
                delta_valid = red.delta_ok
                if delta_valid:
                    want_down = red.op == "min"
                    for name in red.read_arrays:
                        up, down = self.dirs.get(name, (False, False))
                        if (want_down and up) or (not want_down and down):
                            delta_valid = False
                            break
                if delta_valid:
                    sel = np.zeros(red.extent, dtype=bool)
                    full_k = False
                    for name in red.full_refs:
                        if pseudo[name].any():
                            full_k = True
                            break
                    if full_k:
                        sel[:] = True
                    else:
                        if red.delta_vecs is None:
                            rv = np.asarray(red.values, dtype=np.int64)
                            red.delta_vecs = [
                                (
                                    base_name,
                                    a_ax,
                                    np.clip(
                                        rv + c,
                                        0,
                                        pseudo[base_name].shape[a_ax] - 1,
                                    ),
                                )
                                for base_name, a_ax, c in red.delta_refs
                            ]
                        for base_name, a_ax, idx_vec in red.delta_vecs:
                            ch = pseudo[base_name]
                            if not ch.any():
                                continue
                            other = tuple(
                                x for x in range(ch.ndim) if x != a_ax
                            )
                            vec = ch.any(axis=other) if other else ch
                            sel |= vec[idx_vec]
                    k_eff = int(np.count_nonzero(sel))
                    if k_eff == 0:
                        st.L = 0  # nothing feeds this reduction: arm is a no-op
                        st.act = np.zeros(an.grid_shape, dtype=bool)
                    st.delta_on = True
                    st.K_eff = max(1, k_eff)
                    st.red_sel = sel
                else:
                    st.K_eff = red.extent
                    st.red_sel = None
                st.red_ratio = (
                    ratio_for(st.L * max(1, st.K_eff), machine) if st.L else 1
                )
            states.append(st)
            if st.L:
                pseudo[arm.target] = pseudo[arm.target] | _slots_of(
                    an, arm, st.act, pseudo[arm.target].shape
                )
        est = _EstClock(machine.clock.costs)
        self._charge_sweep(est, states)
        if est.time_us >= self.reference:
            return None
        return states

    def _charge_sweep(self, clk, states: List[_ArmState]) -> None:
        """The complete, ordered charge sequence of one compressed sweep —
        replayed identically for the estimate and for the real clock."""
        full_ratio = self.vps.vp_ratio
        an = self.an
        if self.kind == "solve":
            clk.charge("alu", count=len(an.modified) or 1, vp_ratio=full_ratio)
        for arm, st in zip(an.arms, states):
            if st.L and arm.pred_entries:
                _replay(clk, arm.pred_entries, st)
        if self.kind == "par":
            clk.charge("global_or", vp_ratio=full_ratio)
            clk.charge("host_cm_latency")
        for arm, st in zip(an.arms, states):
            if not st.L:
                continue
            if arm.red is not None:
                _replay(clk, arm.red.entries, st)
                if st.delta_on:
                    clk.charge("alu", vp_ratio=st.lane_ratio)  # combine with old
            else:
                _replay(clk, arm.value_entries, st)
            _replay(clk, [arm.scatter_entry], st)
        if self.kind == "solve":
            clk.charge("global_or", vp_ratio=full_ratio)
            clk.charge("host_cm_latency")

    # -- compressed execution ---------------------------------------------

    def run_compressed(self, states: List[_ArmState]) -> bool:
        """One compressed sweep.  For ``*solve``: returns whether anything
        changed.  For ``*par``: returns whether any arm predicate held
        (False = the construct terminates, bodies skipped)."""
        an = self.an
        clock = self.ip.machine.clock
        full_ratio = self.vps.vp_ratio
        S = self.S
        cur: Dict[str, np.ndarray] = {
            name: np.zeros_like(m) for name, m in self.prev.items()
        }
        new_dirs: Dict[str, List[bool]] = {name: [False, False] for name in cur}
        stats: Dict[str, Tuple[int, int]] = {
            name: (0, int(m.size)) for name, m in cur.items()
        }

        if self.kind == "solve":
            clock.charge("alu", count=len(an.modified) or 1, vp_ratio=full_ratio)

        # predicates first (the engines evaluate every arm's predicate
        # before any body runs)
        pred_ok: List[Optional[np.ndarray]] = []
        lanes_per_arm: List[Optional[_Lanes]] = []
        for k, (arm, st) in enumerate(zip(an.arms, states)):
            if not st.L:
                pred_ok.append(None)
                lanes_per_arm.append(None)
                continue
            idx = np.nonzero(st.act)
            vals = {
                an.elem_of_axis[g]: an.axis_vals[g][idx[g]] for g in range(an.rank)
            }
            lanes = _Lanes((st.L,), vals, np.ones(st.L, dtype=bool))
            lanes_per_arm.append(lanes)
            if arm.pred_fn is None:
                pred_ok.append(np.ones(st.L, dtype=bool))
            else:
                _replay(clock, arm.pred_entries, st)
                pv = arm.pred_fn(S, lanes)
                pb = np.broadcast_to(_truthy_arr(pv), lanes.shape)
                pred_ok.append(np.asarray(pb, dtype=bool))
                if self.kind == "par":
                    self.par_masks[k][idx] = pb & self.base[idx]

        if self.kind == "par":
            clock.charge("global_or", vp_ratio=full_ratio)
            clock.charge("host_cm_latency")
            clock.trace_frontier(
                sum(st.L for st in states), self.domain * max(1, len(an.arms))
            )
            if not any(np.any(m) for m in self.par_masks):
                self.prev = cur
                self.last_stats = stats
                return False

        for k, (arm, st) in enumerate(zip(an.arms, states)):
            if not st.L:
                continue
            lanes = lanes_per_arm[k]
            ok = pred_ok[k]
            if self.kind == "par":
                idx = np.nonzero(st.act)
                ok = ok & self.par_masks[k][idx]
            if arm.red is not None:
                _replay(clock, arm.red.entries, st)
                if st.delta_on:
                    clock.charge("alu", vp_ratio=st.lane_ratio)
            else:
                _replay(clock, arm.value_entries, st)
            _replay(clock, [arm.scatter_entry], st)
            if not np.any(ok):
                continue
            w_idx = tuple(v[ok] for v in np.nonzero(st.act))
            w_vals = {
                an.elem_of_axis[g]: an.axis_vals[g][w_idx[g]]
                for g in range(an.rank)
            }
            Lw = int(w_idx[0].size)
            if arm.red is not None:
                value = self._eval_reduction(arm, st, w_vals, Lw)
            else:
                w_lanes = _Lanes((Lw,), w_vals, np.ones(Lw, dtype=bool))
                value = arm.value_fn(S, w_lanes)
            data = S["arrays"][arm.target]
            subs = [
                w_vals[an.elem_of_axis[g]] for g in arm.target_axes
            ]
            changed, old, new = lane_scatter(data, subs, value, arm.node.target)
            if np.any(changed):
                ch_subs = tuple(s[changed] for s in subs)
                cur[arm.target][ch_subs] = True
                oc, nc = old[changed], new[changed]
                d = new_dirs[arm.target]
                d[0] = d[0] or bool(np.any(nc > oc))
                d[1] = d[1] or bool(np.any(nc < oc))

        if self.kind == "solve":
            clock.charge("global_or", vp_ratio=full_ratio)
            clock.charge("host_cm_latency")
            clock.trace_frontier(sum(st.L for st in states), self.domain)

        any_change = False
        for name, m in cur.items():
            n = int(np.count_nonzero(m))
            stats[name] = (n, int(m.size))
            if n:
                any_change = True
        self.prev = cur
        self.last_stats = stats
        self.dirs = {
            name: (d[0], d[1]) for name, d in new_dirs.items()
        }
        if self.kind == "par":
            return True
        return any_change

    def _eval_reduction(self, arm: _ArmInfo, st: _ArmState, w_vals, Lw: int):
        red = arm.red
        S = self.S
        rv = np.asarray(red.values, dtype=np.int64)
        if st.red_sel is not None and st.delta_on:
            rv_sel = rv[st.red_sel]
        else:
            rv_sel = rv
        Ke = int(rv_sel.size)
        vals = {name: v[:, None] for name, v in w_vals.items()}
        vals[red.elem] = np.broadcast_to(rv_sel[None, :], (Lw, Ke))
        lanes = _Lanes((Lw, Ke), vals, np.ones((Lw, Ke), dtype=bool))
        body = red.body_fn(S, lanes)
        body = np.broadcast_to(np.asarray(body), (Lw, Ke))
        part = _reduce_op(
            red.op, [body], [np.ones((Lw, Ke), dtype=bool)], axes=(1,)
        )
        if st.delta_on:
            data = S["arrays"][arm.target]
            subs = tuple(w_vals[self.an.elem_of_axis[g]] for g in arm.target_axes)
            old = data[subs]
            ufunc = _RED_UFUNC[red.op]
            return ufunc(old, part)
        return part

    # -- diagnostics -------------------------------------------------------

    def delta_summary(self) -> str:
        parts = []
        for name in sorted(self.last_stats):
            n, total = self.last_stats[name]
            if n:
                parts.append(f"{name} (frontier {n} of {total} elements)")
        return "; ".join(parts) if parts else "nothing (oscillation across sweeps?)"


def star_session(ip, stmt: ast.UCStmt, inner, kind: str) -> Optional[StarSession]:
    """A frontier session for one ``*solve``/``*par`` execution, or None
    when frontier execution is disabled for this interpreter."""
    if not _enabled(ip):
        return None
    sess = StarSession(ip, stmt, inner, kind)
    return sess if sess.active else None


# ---------------------------------------------------------------------------
# guarded solve: worklist restriction from newly-defined elements
# ---------------------------------------------------------------------------


class GuardedFrontier:
    """Per-assignment affine references into the solve targets; dilating
    the newly-defined flags through them names the only lanes whose
    readiness (or predicate) can have changed since last sweep."""

    def __init__(self, an: _Analysis, refs: List[List[_RefInfo]]) -> None:
        self.an = an
        self.refs = refs

    def candidates(self, k: int, newly: Dict[str, np.ndarray]) -> np.ndarray:
        """Grid mask of lanes assignment ``k`` must re-examine."""
        out = np.zeros(self.an.grid_shape, dtype=bool)
        for ref in self.refs[k]:
            ch = newly.get(ref.base)
            if ch is None:
                continue
            m = _dilate_ref(self.an, ref, ch, None)
            if m is not None:
                out |= m
        return out


def _guarded_analyze(ip, stmt, assignments, inner) -> object:
    grid = inner.grid
    if grid.is_host or grid.rank == 0:
        return _FALLBACK
    if len(assignments) < 2:
        # With one assignment, skipping it only fires when the sweep would
        # define nothing — exactly the no-progress error case — so the
        # per-sweep dilation bookkeeping can never pay for itself.
        return _FALLBACK
    targets: Set[str] = set()
    for _pred, assign in assignments:
        t = assign.target
        if not isinstance(t, ast.Index):
            return _FALLBACK  # scalar targets define whole variables at once
        targets.add(t.base)
    an = _Analysis(grid, "guarded")
    elems = {axis.elem: axis.set_name for axis in grid.axes}
    refs: List[List[_RefInfo]] = []
    for pred, assign in assignments:
        mine: List[_RefInfo] = []
        roots: List[ast.Node] = [assign.value, assign.target]
        if pred is not None:
            roots.append(pred)
        for root in roots:
            for node in ast.walk(root):
                if isinstance(node, ast.Reduction):
                    if any(
                        isinstance(n, ast.Index) and n.base in targets
                        for n in ast.walk(node)
                    ):
                        return _FALLBACK  # rebinding obscures the offsets
                if isinstance(node, ast.Index) and node.base in targets:
                    if node is assign.target:
                        continue
                    axes = affine_ref_axes(node, elems, ip.info.constants)
                    if axes is None:
                        return _FALLBACK
                    if any(
                        e is not None and e not in an.grid_axis_of for e, _c in axes
                    ):
                        return _FALLBACK
                    seen = [e for e, _c in axes if e is not None]
                    if len(seen) != len(set(seen)):
                        return _FALLBACK
                    mine.append(_RefInfo(node.base, axes, False))
        refs.append(mine)
    return GuardedFrontier(an, refs)


def guarded_frontier(ip, stmt, assignments, inner) -> Optional[GuardedFrontier]:
    """Frontier worklist support for one guarded ``solve``, or None."""
    if not _enabled(ip):
        return None
    clock = ip.machine.clock
    gf = ip.plan_cache.get_or_build(
        "frontier",
        stmt,
        inner.grid.axes,
        lambda: _guarded_analyze(ip, stmt, assignments, inner),
    )
    if gf is _FALLBACK:
        clock.count_frontier("fallbacks")
        return None
    # defined-flag shapes must still match the bound arrays (same program
    # point can rebind arrays across calls)
    for mine in gf.refs:
        for ref in mine:
            b = inner.env.try_lookup(ref.base)
            if not isinstance(b, ArrayVar) or len(b.shape) != len(ref.axes):
                clock.count_frontier("fallbacks")
                return None
    clock.count_frontier("guarded_constructs")
    return gf
