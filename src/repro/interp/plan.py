"""Compile-to-closure execution plans for par / seq / oneof / solve bodies.

The tree-walking evaluator in :mod:`repro.interp.eval_expr` re-derives a
lot of *static* information on every sweep of an iterated construct:
reference classification (``classify_reference`` walks every subscript),
subscript clipping/broadcasting, bounds masks, readiness index vectors.
A plan lowers an already-semantically-checked AST subtree **once** into a
tree of Python closures; per-node memos then cache the static derivations
across sweeps, keyed by what could actually change (grid axes, the
resolved bindings of the free names, array identity).

The contract is strict *observational equivalence* with the tree-walker:

* every ``Clock`` charge is issued in the same order with the same
  arguments (the cost model adds a dispatch charge per call, so the call
  *sequence* matters, not just totals);
* the CSE cache is consulted/filled through the same
  ``_cse_lookup``/``_cse_store`` helpers with the same keys;
* every RNG draw (``rand``, ``$,``, ``oneof`` picks) happens in the same
  order;
* all error paths raise the same exceptions.

Memos therefore never skip operand evaluation — they only skip the final
ufunc / gather / classification once the operands are known static.  A
memo is valid only when the grid axes match, the free names resolve to
the same axis/constant bindings (re-checked every execution: cheap dict
lookups guard against shadowing), and — for array references — the base
still resolves to the same :class:`ArrayVar`.

Gathers whose subscripts are static additionally get an ``np.ix_`` *take
recipe*: an N-d fancy gather over the grid collapses to a take over one
vector per varying axis plus a broadcast, which is the big win for
``solve`` sweeps (e.g. ``dist[i][k]`` over an (i,j,k) grid: a 64×64 take
instead of a 64³ gather).  Inside pure reductions the broadcast *view* is
returned directly (``view_ok``); the reduction materialises it before any
write can occur.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..lang import ast
from ..lang.errors import UCRuntimeError
from ..machine.scan import INF
from ..mapping.locality import classify_reference, classify_write
from . import commtiers
from . import eval_expr as E
from .eval_expr import ExecContext
from .values import ArrayVar, ElementBinding, ParallelLocal, ScalarVar

_TRUE = np.asarray(True)

#: node types whose subtrees are "static": value fully determined by the
#: grid axes plus axis-element / compile-time-constant name bindings
_STATIC_OK = (
    ast.IntLit,
    ast.FloatLit,
    ast.InfLit,
    ast.Name,
    ast.Unary,
    ast.Binary,
    ast.Ternary,
)


def _static_names(node: ast.Node) -> Optional[Tuple[str, ...]]:
    """Free names of a static subtree, or None if the subtree is not static."""
    names: List[str] = []
    for n in ast.walk(node):
        if not isinstance(n, _STATIC_OK):
            return None
        if isinstance(n, ast.Name) and n.ident not in names:
            names.append(n.ident)
    return tuple(names)


def _joint_static_names(nodes) -> Optional[Tuple[str, ...]]:
    names: List[str] = []
    for node in nodes:
        sub = _static_names(node)
        if sub is None:
            return None
        for name in sub:
            if name not in names:
                names.append(name)
    return tuple(names)


def _binding_sig(names: Optional[Tuple[str, ...]], ctx: ExecContext):
    """Hashable signature of how ``names`` resolve right now, or None if
    any resolves to something mutable (then memoisation is unsound)."""
    if names is None:
        return None
    sig = []
    for name in names:
        b = ctx.env.try_lookup(name)
        if isinstance(b, ElementBinding):
            if b.kind == "axis":
                sig.append(("a", b.axis))
            else:
                sig.append(("s", b.value))
        elif isinstance(b, (int, float)) and not isinstance(b, bool):
            sig.append(("c", b))
        else:
            return None
    return tuple(sig)


def _axes_match(a, b) -> bool:
    return a is b or a == b


# ---------------------------------------------------------------------------
# np.ix_ take recipes for static fancy indices
# ---------------------------------------------------------------------------


def _compact(arr: np.ndarray) -> np.ndarray:
    """Smallest view of a (possibly broadcast) array holding every value.

    Axes with stride 0 carry no information; slicing them to one element
    turns reductions over a huge broadcast view into reductions over the
    underlying vector.
    """
    slicer = tuple(
        slice(None) if st != 0 else 0 for st in arr.strides
    )
    return arr[slicer]


def _vary_axis(arr: np.ndarray, used) -> Optional[int]:
    """The single unused grid axis ``arr`` varies along; -1 if constant;
    None if it varies along several (or only already-claimed) axes."""
    if arr.size == 0:
        return None
    # stride fast path: an axis with stride 0 (or extent 1) cannot vary,
    # so a broadcast view varying along one real axis is detected without
    # touching the data (axis_values grids are exactly this shape)
    varying = [
        g
        for g, st in enumerate(arr.strides)
        if st != 0 and arr.shape[g] > 1
    ]
    if not varying:
        return -1
    if len(varying) == 1:
        g = varying[0]
        return None if g in used else g
    first = arr[(0,) * arr.ndim]
    if bool((arr == first).all()):
        return -1
    for g in range(arr.ndim):
        if g in used:
            continue
        others = tuple(k for k in range(arr.ndim) if k != g)
        if not others:
            return g
        if bool((arr.max(axis=others) == arr.min(axis=others)).all()):
            return g
    return None


class _IndexRecipe:
    """``data[tuple(idx_arrays)]`` replayed as an ``np.ix_`` take.

    Valid when every index array is constant or varies along exactly one
    distinct grid axis; the take touches one element per (varying-axis
    product) instead of one per grid point, and the result broadcasts
    back to the grid shape as a readonly view.
    """

    __slots__ = ("vecs", "perm", "squeeze", "expand", "shape")

    def __init__(self, vecs, perm, squeeze, expand, shape) -> None:
        self.vecs = vecs
        self.perm = perm
        self.squeeze = squeeze
        self.expand = expand
        self.shape = shape

    def take(self, data: np.ndarray) -> np.ndarray:
        small = data[np.ix_(*self.vecs)]
        if self.perm is not None:
            small = small.transpose(self.perm)
        if self.squeeze:
            small = small.squeeze(axis=self.squeeze)
        if self.expand:
            small = np.expand_dims(small, axis=self.expand)
        return np.broadcast_to(small, self.shape)


#: verify recipes against the fancy-gather result only below this size —
#: the construction is size-independent, so the small-grid differential
#: suites exercise it while big production grids skip the O(grid) compare
_VERIFY_LIMIT = 1 << 16


def _build_index_recipe(subs, view_shape, grid_shape) -> Optional[_IndexRecipe]:
    """Recipe from the *raw* subscript values (pre-clip).

    Working from the raw subs keeps axis_values broadcast views intact so
    ``_vary_axis`` can answer from strides alone; clipping then touches
    only the per-axis vectors instead of full grid-shaped arrays.
    """
    rank = len(grid_shape)
    vecs: List[np.ndarray] = []
    assoc: List[Optional[int]] = []
    used: set = set()
    for a, s in enumerate(subs):
        hi = view_shape[a] - 1
        if not isinstance(s, np.ndarray):
            vecs.append(np.asarray([min(max(int(s), 0), hi)], dtype=np.int64))
            assoc.append(None)
            continue
        sb = np.broadcast_to(s, grid_shape)
        g = _vary_axis(sb, used)
        if g is None:
            return None
        if g == -1:
            v = min(max(int(sb[(0,) * rank]), 0), hi)
            vecs.append(np.asarray([v], dtype=np.int64))
            assoc.append(None)
        else:
            used.add(g)
            slicer = tuple(slice(None) if k == g else 0 for k in range(rank))
            vec = np.clip(sb[slicer], 0, hi).astype(np.int64, copy=False)
            vecs.append(np.ascontiguousarray(vec))
            assoc.append(g)
    linked = sorted((g, a) for a, g in enumerate(assoc) if g is not None)
    perm = tuple(a for _g, a in linked) + tuple(
        a for a, g in enumerate(assoc) if g is None
    )
    perm_t: Optional[Tuple[int, ...]] = perm
    if perm == tuple(range(len(perm))):
        perm_t = None
    linked_gs = {g for g, _a in linked}
    squeeze = tuple(range(len(linked), len(assoc)))
    expand = tuple(g for g in range(rank) if g not in linked_gs)
    return _IndexRecipe(tuple(vecs), perm_t, squeeze, expand, tuple(grid_shape))


def _oob_masks(subs, view_shape, grid_shape):
    """Per-axis out-of-bounds masks for static subscripts (None = clean).

    Range-checks run on the compact view (the underlying vector for
    broadcast subscripts); full grid-shaped masks are built only for axes
    that actually hold out-of-range values.
    """
    out: List[Optional[np.ndarray]] = []
    any_bad = False
    for a, s in enumerate(subs):
        if isinstance(s, np.ndarray):
            sb = np.broadcast_to(s, grid_shape)
            comp = _compact(sb)
            ext = view_shape[a]
            if comp.size and (int(comp.min()) < 0 or int(comp.max()) >= ext):
                out.append(np.broadcast_to((sb < 0) | (sb >= ext), grid_shape))
                any_bad = True
            else:
                out.append(None)
        else:
            out.append(None)
    return out if any_bad else None


# ---------------------------------------------------------------------------
# expression plans
# ---------------------------------------------------------------------------


class _CseWrapped:
    """The eval_expr CSE gate, replayed around a compiled expression."""

    __slots__ = ("node", "inner")

    def __init__(self, node: ast.Expr, inner) -> None:
        self.node = node
        self.inner = inner

    def __call__(self, ip, ctx: ExecContext):
        if ip.cse_cache is not None and not ctx.grid.is_host:
            cached = E._cse_lookup(ip, self.node, ctx)
            if cached is not E._CSE_MISS:
                return cached
            value = self.inner(ip, ctx)
            if isinstance(value, np.ndarray) and not value.flags.writeable:
                # never let a live view of array data into the CSE cache: a
                # later write in the same statement must not change the
                # cached value (the tree-walker caches materialised arrays)
                value = value.copy()
            E._cse_store(ip, self.node, ctx, value)
            return value
        return self.inner(ip, ctx)


class _ConstPlan:
    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __call__(self, ip, ctx: ExecContext):
        return self.value


class _NamePlan:
    __slots__ = ("node",)

    def __init__(self, node: ast.Name) -> None:
        self.node = node

    def __call__(self, ip, ctx: ExecContext):
        return E._eval_name(ip, self.node, ctx)


class _UnaryPlan:
    __slots__ = ("node", "operand", "names", "_memo")

    def __init__(self, node, operand, names) -> None:
        self.node = node
        self.operand = operand
        self.names = names
        self._memo = None

    def __call__(self, ip, ctx: ExecContext):
        node = self.node
        v = self.operand(ip, ctx)
        E.charge_grid_op(ip, ctx)
        if self.names is not None:
            sig = _binding_sig(self.names, ctx)
            m = self._memo
            if (
                m is not None
                and sig is not None
                and sig == m[1]
                and _axes_match(m[0], ctx.grid.axes)
            ):
                return m[2]
            value = self._apply(node, v)
            if sig is not None:
                self._memo = (ctx.grid.axes, sig, value)
            return value
        return self._apply(node, v)

    @staticmethod
    def _apply(node, v):
        if node.op == "-":
            return -v
        if node.op == "!":
            if isinstance(v, np.ndarray):
                return np.logical_not(v.astype(bool)).astype(np.int64)
            return int(not v)
        if node.op == "~":
            if isinstance(v, np.ndarray):
                return np.invert(v.astype(np.int64))
            return ~int(v)
        raise UCRuntimeError(f"bad unary {node.op!r}", node.line, node.col)


class _BinaryPlan:
    __slots__ = ("node", "left", "right", "names", "_memo")

    def __init__(self, node, left, right, names) -> None:
        self.node = node
        self.left = left
        self.right = right
        self.names = names
        self._memo = None

    def __call__(self, ip, ctx: ExecContext):
        node = self.node
        a = self.left(ip, ctx)
        b = self.right(ip, ctx)
        E.charge_grid_op(ip, ctx)
        if self.names is not None:
            sig = _binding_sig(self.names, ctx)
            m = self._memo
            if (
                m is not None
                and sig is not None
                and sig == m[1]
                and _axes_match(m[0], ctx.grid.axes)
            ):
                return m[2]
            value = E.apply_binop(node.op, a, b, node)
            if sig is not None:
                self._memo = (ctx.grid.axes, sig, value)
            return value
        return E.apply_binop(node.op, a, b, node)


class _ShortCircuitPlan:
    __slots__ = ("node", "left", "right", "names", "_memo")

    def __init__(self, node, left, right, names) -> None:
        self.node = node
        self.left = left
        self.right = right
        self.names = names
        self._memo = None

    def __call__(self, ip, ctx: ExecContext):
        expr = self.node
        left = self.left(ip, ctx)
        E.charge_grid_op(ip, ctx)
        if not isinstance(left, np.ndarray):
            if expr.op == "&&" and not left:
                return 0
            if expr.op == "||" and left:
                return 1
            right = E._truthy(self.right(ip, ctx))
            if isinstance(right, np.ndarray):
                return right.astype(np.int64)
            return int(right)
        lbool = np.broadcast_to(np.asarray(E._truthy(left)), ctx.grid.shape)
        live = lbool if expr.op == "&&" else ~lbool
        sub = ctx.refine(live)
        right = self.right(ip, sub)
        if self.names is not None:
            sig = _binding_sig(self.names, ctx)
            m = self._memo
            if (
                m is not None
                and sig is not None
                and sig == m[1]
                and _axes_match(m[0], ctx.grid.axes)
            ):
                return m[2]
            value = self._combine(expr, lbool, right, ctx)
            if sig is not None:
                self._memo = (ctx.grid.axes, sig, value)
            return value
        return self._combine(expr, lbool, right, ctx)

    @staticmethod
    def _combine(expr, lbool, right, ctx):
        rbool = np.broadcast_to(np.asarray(E._truthy(right)), ctx.grid.shape)
        if expr.op == "&&":
            return (lbool & rbool).astype(np.int64)
        return (lbool | rbool).astype(np.int64)


class _TernaryPlan:
    __slots__ = ("node", "cond", "then", "els", "names", "_memo")

    def __init__(self, node, cond, then, els, names) -> None:
        self.node = node
        self.cond = cond
        self.then = then
        self.els = els
        self.names = names
        self._memo = None

    def __call__(self, ip, ctx: ExecContext):
        cond = self.cond(ip, ctx)
        if ctx.grid.is_host or not isinstance(cond, np.ndarray):
            E.charge_grid_op(ip, ctx)
            return self.then(ip, ctx) if cond else self.els(ip, ctx)
        cbool = np.broadcast_to(np.asarray(E._truthy(cond)), ctx.grid.shape)
        then_v = self.then(ip, ctx.refine(cbool))
        else_v = self.els(ip, ctx.refine(~cbool))
        E.charge_grid_op(ip, ctx, count=2)
        if self.names is not None:
            sig = _binding_sig(self.names, ctx)
            m = self._memo
            if (
                m is not None
                and sig is not None
                and sig == m[1]
                and _axes_match(m[0], ctx.grid.axes)
            ):
                return m[2]
            value = np.where(cbool, then_v, else_v)
            if sig is not None:
                self._memo = (ctx.grid.axes, sig, value)
            return value
        return np.where(cbool, then_v, else_v)


def _log_tier(ip, node, tier: str) -> None:
    if ip.tier_log is not None:
        ip.tier_log.setdefault((node.line, node.base), set()).add(tier)


class _GatherMemo:
    __slots__ = ("axes", "sig", "arr", "oob", "rc", "idx", "recipe", "tier", "shift")

    def __init__(self, axes, sig, arr, oob, rc, idx, recipe, tier, shift) -> None:
        self.axes = axes
        self.sig = sig
        self.arr = arr
        self.oob = oob
        self.rc = rc
        self.idx = idx
        self.recipe = recipe
        #: communication tier decided once at memo-build time
        self.tier = tier
        #: NEWS shift recipe ((axis, offset) pairs) when the tier dispatcher
        #: can service this gather as chained clamped shifts
        self.shift = shift


class _GatherPlan:
    __slots__ = ("node", "subs", "names", "view_ok", "_memo")

    def __init__(self, node, subs, names, view_ok) -> None:
        self.node = node
        self.subs = subs
        self.names = names
        self.view_ok = view_ok
        self._memo = None

    def __call__(self, ip, ctx: ExecContext):
        node = self.node
        binding = ctx.env.lookup(node.base)
        if isinstance(binding, ArrayVar):
            direct = True
            arr = binding
            data = binding.data
        else:
            direct = False
            arr, _prefix, data = E._resolve_array(ip, node, ctx)
        view_shape = data.shape
        if len(node.subs) != len(view_shape):
            raise UCRuntimeError(
                f"array {node.base!r} needs {len(view_shape)} subscripts, got "
                f"{len(node.subs)}",
                node.line,
                node.col,
            )
        subs = [p(ip, ctx) for p in self.subs]

        if ctx.grid.is_host:
            idx = tuple(int(s) for s in subs)
            E._bounds_check(node, subs, view_shape, np.ones((), bool))
            ip.machine.clock.charge("host_cm_latency")
            return data[idx].item()

        mask = ctx.active_mask()
        m = self._memo
        if (
            m is not None
            and direct
            and m.arr is arr
            and _axes_match(m.axes, ctx.grid.axes)
        ):
            sig = _binding_sig(self.names, ctx)
            if sig is not None and sig == m.sig:
                if m.oob is not None:
                    for ob in m.oob:
                        if ob is not None and np.any(ob & mask):
                            E._bounds_check(node, subs, view_shape, mask)
                commtiers.charge_tier(
                    ip, ctx, m.tier, m.rc, write=False, layout=arr.layout
                )
                _log_tier(ip, node, m.tier)
                if m.shift is not None:
                    # NEWS tier: chained clamped shifts, bit-identical to
                    # the clipped gather (and always a fresh array)
                    return commtiers.run_shifts(data, m.shift)
                if m.recipe is not None:
                    out = m.recipe.take(data)
                    return out if self.view_ok else out.copy()
                return data[m.idx]

        # compact out-of-bounds probe first: when every subscript is in
        # range (the overwhelmingly common case) the O(grid) masked check
        # is provably a no-op and can be skipped on this first execution
        oob = _oob_masks(subs, view_shape, ctx.grid.shape)
        scalar_bad = any(
            not isinstance(s, np.ndarray)
            and not 0 <= int(s) < view_shape[a]
            for a, s in enumerate(subs)
        )
        if oob is not None or scalar_bad:
            E._bounds_check(node, subs, view_shape, mask)
        rc = classify_reference(
            subs,
            ctx.grid.shape,
            ctx.grid.axis_elems,
            arr.layout,
            positions=ctx.grid.positions,
        )
        tier = E.charge_ref(ip, ctx, rc, write=False, node=node, layout=arr.layout)

        memo_ok = direct and self.names is not None and (
            ip.comm_tiers_enabled or tier == "local"
        )
        sig = _binding_sig(self.names, ctx) if memo_ok else None
        recipe = (
            _build_index_recipe(subs, view_shape, ctx.grid.shape)
            if sig is not None
            else None
        )
        grid_size = int(np.prod(ctx.grid.shape))
        idx_tuple: Optional[Tuple[np.ndarray, ...]] = None
        if recipe is not None and grid_size > _VERIFY_LIMIT:
            # big grid: serve the first sweep from the recipe too — the
            # construction is size-independent and verified differentially
            # on small grids, so materialising full index arrays here
            # would only duplicate what every later sweep avoids
            out = recipe.take(data)
            result = out if self.view_ok else out.copy()
        else:
            idx_arrays = []
            for a, s in enumerate(subs):
                if isinstance(s, np.ndarray):
                    clipped = np.clip(s, 0, view_shape[a] - 1)
                else:
                    clipped = np.full(ctx.grid.shape, int(s), dtype=np.int64)
                idx_arrays.append(np.broadcast_to(clipped, ctx.grid.shape))
            idx_tuple = tuple(idx_arrays)
            result = data[idx_tuple]
            if recipe is not None and not np.array_equal(
                np.asarray(recipe.take(data)), result
            ):
                recipe = None

        if direct and self.names is not None and not memo_ok:
            # router-only ablation: remote references are serviced by
            # the full general gather every sweep, exactly as the
            # tree-walker does — no recipe, no cached index arrays
            return result
        if sig is not None:
            shift = None
            if tier == "news":
                shift = commtiers.shift_descriptor(
                    rc, view_shape, ctx.grid.shape
                )
            self._memo = _GatherMemo(
                ctx.grid.axes,
                sig,
                arr,
                oob,
                rc,
                idx_tuple,
                recipe,
                tier,
                shift,
            )
        return result


class _ScatterMemo:
    __slots__ = ("axes", "sig", "arr", "oob", "rc", "flat", "unique", "tier")

    def __init__(self, axes, sig, arr, oob, rc, flat, unique, tier) -> None:
        self.axes = axes
        self.sig = sig
        self.arr = arr
        self.oob = oob
        self.rc = rc
        self.flat = flat
        self.unique = unique
        #: communication tier decided once at memo-build time
        self.tier = tier


class _ScatterPlan:
    __slots__ = ("node", "subs", "names", "_memo")

    def __init__(self, node, subs, names) -> None:
        self.node = node
        self.subs = subs
        self.names = names
        self._memo = None

    def __call__(self, ip, value, ctx: ExecContext) -> None:
        node = self.node
        binding = ctx.env.lookup(node.base)
        if isinstance(binding, ArrayVar):
            direct = True
            arr = binding
            data = binding.data
        else:
            direct = False
            arr, _prefix, data = E._resolve_array(ip, node, ctx)
        view_shape = data.shape
        if len(node.subs) != len(view_shape):
            raise UCRuntimeError(
                f"array {node.base!r} needs {len(view_shape)} subscripts, got "
                f"{len(node.subs)}",
                node.line,
                node.col,
            )
        subs = [p(ip, ctx) for p in self.subs]

        if ctx.grid.is_host:
            idx = tuple(int(s) for s in subs)
            E._bounds_check(node, subs, view_shape, np.ones((), bool))
            ip.machine.clock.charge("host_cm_latency")
            data[idx] = E._coerce_to_dtype(value, data.dtype)
            ip.cse_invalidate(node.base)
            return

        mask = ctx.active_mask()
        if not np.any(mask):
            return
        m = self._memo
        if (
            m is not None
            and direct
            and m.arr is arr
            and _axes_match(m.axes, ctx.grid.axes)
        ):
            sig = _binding_sig(self.names, ctx)
            if sig is not None and sig == m.sig:
                if m.oob is not None:
                    for ob in m.oob:
                        if ob is not None and np.any(ob & mask):
                            E._bounds_check(node, subs, view_shape, mask)
                commtiers.charge_tier(
                    ip, ctx, m.tier, m.rc, write=True, layout=arr.layout
                )
                _log_tier(ip, node, m.tier)
                flat_mask = mask.reshape(-1)
                flat_idx = m.flat[flat_mask]
                if isinstance(value, np.ndarray):
                    vals = np.broadcast_to(value, ctx.grid.shape).reshape(-1)[
                        flat_mask
                    ]
                else:
                    vals = np.full(int(flat_mask.sum()), value)
                vals = E._cast_array(vals, data.dtype)
                if not m.unique:
                    E._check_single_assignment(
                        node,
                        flat_idx,
                        vals,
                        grid_shape=ctx.grid.shape,
                        flat_mask=flat_mask,
                        view_shape=view_shape,
                        construct=getattr(ip, "current_construct", None),
                    )
                if getattr(ip, "sanitizer", None) is not None:
                    ip.sanitizer.record_write(
                        node,
                        (not m.unique)
                        and bool(np.unique(flat_idx).size < flat_idx.size),
                    )
                data.reshape(-1)[flat_idx] = vals
                ip.cse_invalidate(node.base)
                return

        E._bounds_check(node, subs, view_shape, mask)
        rc = classify_write(
            subs,
            ctx.grid.shape,
            ctx.grid.axis_elems,
            arr.layout,
            positions=ctx.grid.positions,
        )
        tier = E.charge_ref(ip, ctx, rc, write=True, node=node, layout=arr.layout)
        idx_arrays = []
        for a, s in enumerate(subs):
            if isinstance(s, np.ndarray):
                clipped = np.clip(s, 0, view_shape[a] - 1)
            else:
                clipped = np.full(ctx.grid.shape, int(s), dtype=np.int64)
            idx_arrays.append(np.broadcast_to(clipped, ctx.grid.shape).reshape(-1))
        flat_mask = mask.reshape(-1)
        flat_idx = np.ravel_multi_index(
            tuple(ia[flat_mask] for ia in idx_arrays), view_shape
        )
        if isinstance(value, np.ndarray):
            vals = np.broadcast_to(value, ctx.grid.shape).reshape(-1)[flat_mask]
        else:
            vals = np.full(int(flat_mask.sum()), value)
        vals = E._cast_array(vals, data.dtype)
        E._check_single_assignment(
            node,
            flat_idx,
            vals,
            grid_shape=ctx.grid.shape,
            flat_mask=flat_mask,
            view_shape=view_shape,
            construct=getattr(ip, "current_construct", None),
        )
        if getattr(ip, "sanitizer", None) is not None:
            ip.sanitizer.record_write(
                node, bool(np.unique(flat_idx).size < flat_idx.size)
            )
        data.reshape(-1)[flat_idx] = vals
        ip.cse_invalidate(node.base)

        if direct and self.names is not None:
            sig = _binding_sig(self.names, ctx)
            if sig is not None:
                full_flat = np.ravel_multi_index(tuple(idx_arrays), view_shape)
                unique = np.unique(full_flat).size == full_flat.size
                self._memo = _ScatterMemo(
                    ctx.grid.axes,
                    sig,
                    arr,
                    _oob_masks(subs, view_shape, ctx.grid.shape),
                    rc,
                    full_flat,
                    unique,
                    tier,
                )


class _AssignPlan:
    __slots__ = ("node", "value", "read", "scatter")

    def __init__(self, node, value, read, scatter) -> None:
        self.node = node
        self.value = value
        self.read = read
        self.scatter = scatter

    def __call__(self, ip, ctx: ExecContext):
        node = self.node
        value = self.value(ip, ctx)
        if node.op:
            current = self.read(ip, ctx)
            E.charge_grid_op(ip, ctx)
            value = E.apply_binop(node.op, current, value, node)
        if self.scatter is not None:
            self.scatter(ip, value, ctx)
            return value
        target = node.target
        assert isinstance(target, ast.Name)
        binding = ctx.env.lookup(target.ident)
        if isinstance(binding, ScalarVar):
            E._assign_scalar(ip, binding, value, ctx, node)
            return value
        if isinstance(binding, ParallelLocal):
            E._assign_parallel_local(ip, binding, value, ctx, node)
            return value
        if isinstance(binding, ElementBinding):
            raise UCRuntimeError(
                f"cannot assign to index element {target.ident!r}",
                node.line,
                node.col,
            )
        raise UCRuntimeError(
            f"cannot assign to {target.ident!r}", node.line, node.col
        )


class _CallPlan:
    """Compiled builtin fast paths; everything else delegates verbatim."""

    __slots__ = ("node", "args", "kind")

    def __init__(self, node, args) -> None:
        self.node = node
        self.args = args
        name = node.func
        n = len(node.args)
        if name in ("power2", "abs", "ABS", "fabs") and n == 1:
            self.kind = name
        elif name == "sqrt" and n == 1:
            self.kind = name
        elif name in ("min", "max") and n == 2:
            self.kind = name
        elif name == "rand" and n == 0:
            self.kind = name
        else:
            self.kind = None

    def __call__(self, ip, ctx: ExecContext):
        node = self.node
        kind = self.kind
        if kind is None or ip.info.functions.get(node.func) is not None:
            return ip.call_function(node, ctx)
        args = self.args
        if kind == "power2":
            x = args[0](ip, ctx)
            E.charge_grid_op(ip, ctx)
            if isinstance(x, np.ndarray):
                return np.left_shift(1, np.clip(x, 0, 62))
            return 1 << max(0, int(x))
        if kind in ("abs", "ABS", "fabs"):
            x = args[0](ip, ctx)
            E.charge_grid_op(ip, ctx)
            if isinstance(x, np.ndarray):
                return np.abs(x)
            return abs(x) if kind != "fabs" else abs(float(x))
        if kind == "sqrt":
            x = args[0](ip, ctx)
            E.charge_grid_op(ip, ctx, count=4)
            if isinstance(x, np.ndarray):
                return np.sqrt(np.maximum(x, 0).astype(np.float64))
            if x < 0:
                raise UCRuntimeError("sqrt of a negative value", node.line, node.col)
            return float(x) ** 0.5
        if kind == "min":
            a = args[0](ip, ctx)
            b = args[1](ip, ctx)
            E.charge_grid_op(ip, ctx)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                return np.minimum(a, b)
            return min(a, b)
        if kind == "max":
            a = args[0](ip, ctx)
            b = args[1](ip, ctx)
            E.charge_grid_op(ip, ctx)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                return np.maximum(a, b)
            return max(a, b)
        # rand
        from .functions import RAND_MAX

        E.charge_grid_op(ip, ctx)
        if ctx.grid.is_host:
            return int(ip.rng.integers(0, RAND_MAX))
        return ip.rng.integers(0, RAND_MAX, size=ctx.grid.shape)


class _ReductionPlan:
    __slots__ = ("node", "arms", "others")

    def __init__(self, node, arms, others) -> None:
        self.node = node
        self.arms = arms  # [(pred_plan|None, expr_plan)]
        self.others = others

    def __call__(self, ip, ctx: ExecContext):
        node = self.node
        if ip.processor_opt:
            from .sendreduce import try_send_reduce

            optimized = try_send_reduce(ip, node, ctx)
            if optimized is not None:
                return optimized
        sets = [ip.resolve_index_set(name, ctx, at=node) for name in node.index_sets]
        inner_grid = ctx.grid.extend(sets)
        inner_env = ctx.env.child()
        for offset, isv in enumerate(sets):
            axis = ctx.grid.rank + offset
            inner_env.declare(
                isv.elem_name,
                ElementBinding(isv.elem_name, isv.name, "axis", axis=axis),
            )
        parent_mask = ctx.mask
        if parent_mask is not None:
            base_mask = np.broadcast_to(
                parent_mask.reshape(parent_mask.shape + (1,) * len(sets)),
                inner_grid.shape,
            )
        else:
            base_mask = inner_grid.full_mask()
        inner = ExecContext(inner_grid, base_mask, inner_env)

        reduce_axes = tuple(range(ctx.grid.rank, inner_grid.rank))
        reduce_extent = int(np.prod([len(s) for s in sets]))
        vps = ip.grid_vpset(inner_grid.shape)
        ip.machine.clock.charge_scan(reduce_extent, vp_ratio=vps.vp_ratio)
        if node.op != "arbitrary":
            # shard accounting consults the UC5xx verdict (see eval_expr)
            ip.machine.clock.note_shard_reduce(
                node.op,
                ip.reduction_order_safe(node),
                reduce_extent,
                vps.vp_ratio,
                inner_grid.shape,
            )
        if ctx.grid.is_host:
            ip.machine.clock.charge("host_cm_latency")

        arm_values: List[np.ndarray] = []
        arm_masks: List[np.ndarray] = []
        pred_union: Optional[np.ndarray] = None
        for pred_plan, expr_plan in self.arms:
            if pred_plan is None:
                arm_mask = base_mask
            else:
                pred_v = pred_plan(ip, inner)
                pv = np.broadcast_to(np.asarray(E._truthy(pred_v)), inner_grid.shape)
                arm_mask = base_mask & pv
                pred_union = pv if pred_union is None else (pred_union | pv)
            val = expr_plan(ip, inner.with_mask(arm_mask))
            arm_values.append(np.broadcast_to(np.asarray(val), inner_grid.shape))
            arm_masks.append(arm_mask)
        if self.others is not None:
            others_mask = base_mask & (
                ~pred_union
                if pred_union is not None
                else np.zeros(inner_grid.shape, bool)
            )
            val = self.others(ip, inner.with_mask(others_mask))
            arm_values.append(np.broadcast_to(np.asarray(val), inner_grid.shape))
            arm_masks.append(others_mask)

        if node.op == "arbitrary":
            result = E._reduce_arbitrary(ip, arm_values, arm_masks, reduce_axes, ctx)
        else:
            result = E._reduce_op(node.op, arm_values, arm_masks, reduce_axes)
            if getattr(ip, "sanitizer", None) is not None:
                ip.sanitizer.check_reduction(
                    node, arm_values, arm_masks, reduce_axes, result
                )

        if ctx.grid.is_host:
            return (
                result.item()
                if isinstance(result, np.ndarray) and result.ndim == 0
                else result
            )
        return result


class _RaisePlan:
    __slots__ = ("node",)

    def __init__(self, node) -> None:
        self.node = node

    def __call__(self, ip, ctx: ExecContext):
        raise UCRuntimeError(
            f"cannot evaluate {type(self.node).__name__}",
            self.node.line,
            self.node.col,
        )


# ---------------------------------------------------------------------------
# expression compilation
# ---------------------------------------------------------------------------


def compile_expr(node: ast.Expr, view_ok: bool = False):
    """Compile one expression into a closure ``(ip, ctx) -> value``."""
    inner = _compile_inner(node, view_ok)
    if isinstance(node, (ast.Binary, ast.Index, ast.Unary, ast.Ternary)):
        return _CseWrapped(node, inner)
    return inner


def _compile_inner(node: ast.Expr, view_ok: bool):
    if isinstance(node, ast.IntLit):
        return _ConstPlan(node.value)
    if isinstance(node, ast.FloatLit):
        return _ConstPlan(node.value)
    if isinstance(node, ast.InfLit):
        return _ConstPlan(INF)
    if isinstance(node, ast.StringLit):
        return _ConstPlan(node.value)
    if isinstance(node, ast.Name):
        return _NamePlan(node)
    if isinstance(node, ast.Index):
        return _GatherPlan(
            node,
            [compile_expr(s, view_ok) for s in node.subs],
            _joint_static_names(node.subs),
            view_ok,
        )
    if isinstance(node, ast.Unary):
        return _UnaryPlan(
            node, compile_expr(node.operand, view_ok), _static_names(node)
        )
    if isinstance(node, ast.Binary):
        left = compile_expr(node.left, view_ok)
        right = compile_expr(node.right, view_ok)
        if node.op in ("&&", "||"):
            return _ShortCircuitPlan(node, left, right, _static_names(node))
        return _BinaryPlan(node, left, right, _static_names(node))
    if isinstance(node, ast.Ternary):
        return _TernaryPlan(
            node,
            compile_expr(node.cond, view_ok),
            compile_expr(node.then, view_ok),
            compile_expr(node.els, view_ok),
            _static_names(node),
        )
    if isinstance(node, ast.Call):
        return _CallPlan(node, [compile_expr(a) for a in node.args])
    if isinstance(node, ast.Reduction):
        pure = not any(
            isinstance(n, (ast.Call, ast.Assign, ast.IncDec))
            for n in ast.walk(node)
        )
        arms = [
            (
                compile_expr(arm.pred, pure) if arm.pred is not None else None,
                compile_expr(arm.expr, pure),
            )
            for arm in node.arms
        ]
        others = (
            compile_expr(node.others, pure) if node.others is not None else None
        )
        return _ReductionPlan(node, arms, others)
    if isinstance(node, ast.Assign):
        return _compile_assign(node)
    if isinstance(node, ast.IncDec):
        one = ast.IntLit(line=node.line, col=node.col, value=1)
        synth = ast.Assign(
            line=node.line,
            col=node.col,
            target=node.target,
            op="+" if node.op == "++" else "-",
            value=one,
        )
        return _compile_assign(synth)
    return _RaisePlan(node)


def _compile_assign(node: ast.Assign):
    value = compile_expr(node.value)
    read = compile_expr(node.target) if node.op else None
    scatter = None
    if isinstance(node.target, ast.Index):
        scatter = _ScatterPlan(
            node.target,
            [compile_expr(s) for s in node.target.subs],
            _joint_static_names(node.target.subs),
        )
    return _AssignPlan(node, value, read, scatter)


# ---------------------------------------------------------------------------
# statement plans
# ---------------------------------------------------------------------------


class _BlockPlan:
    __slots__ = ("stmts",)

    def __init__(self, stmts) -> None:
        self.stmts = stmts

    def __call__(self, ip, ctx: ExecContext) -> None:
        inner = ctx.with_env(ctx.env.child())
        for p in self.stmts:
            p(ip, inner)


class _StmtSeqPlan:
    """DeclGroup: statements run in the *same* scope (no child env)."""

    __slots__ = ("stmts",)

    def __init__(self, stmts) -> None:
        self.stmts = stmts

    def __call__(self, ip, ctx: ExecContext) -> None:
        for p in self.stmts:
            p(ip, ctx)


class _ExprStmtPlan:
    __slots__ = ("expr",)

    def __init__(self, expr) -> None:
        self.expr = expr

    def __call__(self, ip, ctx: ExecContext) -> None:
        self.expr(ip, ctx)


class _NoopPlan:
    __slots__ = ()

    def __call__(self, ip, ctx: ExecContext) -> None:
        return None


class _IfPlan:
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els) -> None:
        self.cond = cond
        self.then = then
        self.els = els

    def __call__(self, ip, ctx: ExecContext) -> None:
        cond = self.cond(ip, ctx)
        if not isinstance(cond, np.ndarray):
            E.charge_grid_op(ip, ctx)
            if cond:
                self.then(ip, ctx)
            elif self.els is not None:
                self.els(ip, ctx)
            return
        cbool = np.broadcast_to(np.asarray(E._truthy(cond)), ctx.grid.shape)
        vps = ip.grid_vpset(ctx.grid.shape)
        ip.machine.clock.charge("context", count=2, vp_ratio=vps.vp_ratio)
        then_ctx = ctx.refine(cbool)
        if np.any(then_ctx.active_mask()):
            self.then(ip, then_ctx)
        if self.els is not None:
            else_ctx = ctx.refine(~cbool)
            if np.any(else_ctx.active_mask()):
                self.els(ip, else_ctx)


class _FallbackStmt:
    """Anything with its own machinery (loops, decls, nested constructs)
    goes back through the tree-walker; nested constructs then fetch their
    *own* plans from the cache."""

    __slots__ = ("node",)

    def __init__(self, node) -> None:
        self.node = node

    def __call__(self, ip, ctx: ExecContext) -> None:
        from .statements import exec_stmt

        exec_stmt(ip, self.node, ctx)


def compile_stmt(node: ast.Stmt):
    if isinstance(node, ast.Block):
        return _BlockPlan([compile_stmt(s) for s in node.stmts])
    if isinstance(node, ast.DeclGroup):
        return _StmtSeqPlan([compile_stmt(s) for s in node.decls])
    if isinstance(node, ast.ExprStmt):
        return _ExprStmtPlan(compile_expr(node.expr))
    if isinstance(node, ast.EmptyStmt):
        return _NoopPlan()
    if isinstance(node, ast.If):
        return _IfPlan(
            compile_expr(node.cond),
            compile_stmt(node.then),
            compile_stmt(node.els) if node.els is not None else None,
        )
    return _FallbackStmt(node)


class ConstructPlan:
    """Per-arm predicate and body plans for one par/seq/oneof statement."""

    __slots__ = ("preds", "stmts", "others")

    def __init__(self, preds, stmts, others) -> None:
        self.preds = preds
        self.stmts = stmts
        self.others = others


def compile_construct(stmt: ast.UCStmt) -> ConstructPlan:
    preds = [
        compile_expr(b.pred) if b.pred is not None else None for b in stmt.blocks
    ]
    stmts = [compile_stmt(b.stmt) for b in stmt.blocks]
    others = compile_stmt(stmt.others) if stmt.others is not None else None
    return ConstructPlan(preds, stmts, others)


# ---------------------------------------------------------------------------
# solve: readiness / mark-defined / per-assignment plans
# ---------------------------------------------------------------------------


class _ReadyTrue:
    __slots__ = ()

    def __call__(self, ip, ctx: ExecContext, defined) -> np.ndarray:
        return np.broadcast_to(_TRUE, ctx.grid.shape)


class _ReadyIndexMemo:
    __slots__ = ("axes", "sig", "flags", "idx", "noob", "recipe")

    def __init__(self, axes, sig, flags, idx, noob, recipe) -> None:
        self.axes = axes
        self.sig = sig
        self.flags = flags
        self.idx = idx
        self.noob = noob
        self.recipe = recipe


class _ReadyIndex:
    __slots__ = ("node", "subs", "names", "_memo")

    def __init__(self, node, subs, names) -> None:
        self.node = node
        self.subs = subs
        self.names = names
        self._memo = None

    def __call__(self, ip, ctx: ExecContext, defined) -> np.ndarray:
        node = self.node
        shape = ctx.grid.shape
        if node.base not in defined:
            return np.broadcast_to(_TRUE, shape)
        flags = defined[node.base]
        subs = [p(ip, ctx) for p in self.subs]
        m = self._memo
        if m is not None and m.flags is flags and _axes_match(m.axes, ctx.grid.axes):
            sig = _binding_sig(self.names, ctx)
            if sig is not None and sig == m.sig:
                got = m.recipe.take(flags) if m.recipe is not None else flags[m.idx]
                if m.noob is None:
                    return got
                return got & m.noob
        idx = []
        oob = np.zeros(shape, dtype=bool)
        for a, s in enumerate(subs):
            arr = np.broadcast_to(np.asarray(s), shape)
            oob |= (arr < 0) | (arr >= flags.shape[a])
            idx.append(np.clip(arr, 0, flags.shape[a] - 1))
        got = flags[tuple(idx)]
        result = got & ~oob
        if self.names is not None:
            sig = _binding_sig(self.names, ctx)
            if sig is not None:
                recipe = _build_index_recipe(subs, flags.shape, shape)
                if (
                    recipe is not None
                    and got.size <= _VERIFY_LIMIT
                    and not np.array_equal(np.asarray(recipe.take(flags)), got)
                ):
                    recipe = None
                noob = ~oob if bool(np.any(oob)) else None
                self._memo = _ReadyIndexMemo(
                    ctx.grid.axes, sig, flags, tuple(idx), noob, recipe
                )
        return result


class _ReadyAnd:
    __slots__ = ("left", "right")

    def __init__(self, left, right) -> None:
        self.left = left
        self.right = right

    def __call__(self, ip, ctx: ExecContext, defined) -> np.ndarray:
        return self.left(ip, ctx, defined) & self.right(ip, ctx, defined)


class _ReadyTernary:
    __slots__ = ("cond_ready", "cond", "then_ready", "else_ready")

    def __init__(self, cond_ready, cond, then_ready, else_ready) -> None:
        self.cond_ready = cond_ready
        self.cond = cond
        self.then_ready = then_ready
        self.else_ready = else_ready

    def __call__(self, ip, ctx: ExecContext, defined) -> np.ndarray:
        shape = ctx.grid.shape
        rc = self.cond_ready(ip, ctx, defined)
        cond = self.cond(ip, ctx)
        cb = np.broadcast_to(np.asarray(E._truthy(cond)), shape)
        rt = self.then_ready(ip, ctx.refine(cb), defined)
        re_ = self.else_ready(ip, ctx.refine(~cb), defined)
        return rc & np.where(cb, rt, re_)


class _ReadyAll:
    __slots__ = ("parts",)

    def __init__(self, parts) -> None:
        self.parts = parts

    def __call__(self, ip, ctx: ExecContext, defined) -> np.ndarray:
        out = np.ones(ctx.grid.shape, dtype=bool)
        for p in self.parts:
            out = out & p(ip, ctx, defined)
        return out


class _ReadyReduction:
    __slots__ = ("node", "arms", "others")

    def __init__(self, node, arms, others) -> None:
        self.node = node
        self.arms = arms  # [(pred_ready|None, expr_ready)]
        self.others = others

    def __call__(self, ip, ctx: ExecContext, defined) -> np.ndarray:
        node = self.node
        sets = [ip.resolve_index_set(name, ctx, at=node) for name in node.index_sets]
        inner_grid = ctx.grid.extend(sets)
        env = ctx.env.child()
        for off, isv in enumerate(sets):
            env.declare(
                isv.elem_name,
                ElementBinding(
                    isv.elem_name, isv.name, "axis", axis=ctx.grid.rank + off
                ),
            )
        mask = ctx.active_mask()
        bmask = np.broadcast_to(
            mask.reshape(mask.shape + (1,) * len(sets)), inner_grid.shape
        )
        inner = ExecContext(inner_grid, bmask, env)
        ready = np.ones(inner_grid.shape, dtype=bool)
        for pred_ready, expr_ready in self.arms:
            if pred_ready is not None:
                ready &= pred_ready(ip, inner, defined)
            ready &= expr_ready(ip, inner, defined)
        if self.others is not None:
            ready &= self.others(ip, inner, defined)
        axes = tuple(range(ctx.grid.rank, inner_grid.rank))
        return ready.all(axis=axes)


class _ReadyRaise:
    __slots__ = ("node",)

    def __init__(self, node) -> None:
        self.node = node

    def __call__(self, ip, ctx: ExecContext, defined) -> np.ndarray:
        raise UCRuntimeError(
            f"solve cannot analyse {type(self.node).__name__}",
            self.node.line,
            self.node.col,
        )


def compile_readiness(node: ast.Expr):
    """Compile the readiness analysis of :func:`repro.interp.solve._readiness`."""
    if isinstance(
        node, (ast.IntLit, ast.FloatLit, ast.InfLit, ast.Name, ast.StringLit)
    ):
        return _ReadyTrue()
    if isinstance(node, ast.Index):
        return _ReadyIndex(
            node,
            [compile_expr(s) for s in node.subs],
            _joint_static_names(node.subs),
        )
    if isinstance(node, ast.Unary):
        return compile_readiness(node.operand)
    if isinstance(node, ast.Binary):
        return _ReadyAnd(
            compile_readiness(node.left), compile_readiness(node.right)
        )
    if isinstance(node, ast.Ternary):
        return _ReadyTernary(
            compile_readiness(node.cond),
            compile_expr(node.cond),
            compile_readiness(node.then),
            compile_readiness(node.els),
        )
    if isinstance(node, ast.Call):
        return _ReadyAll([compile_readiness(a) for a in node.args])
    if isinstance(node, ast.Reduction):
        arms = [
            (
                compile_readiness(arm.pred) if arm.pred is not None else None,
                compile_readiness(arm.expr),
            )
            for arm in node.arms
        ]
        others = (
            compile_readiness(node.others) if node.others is not None else None
        )
        return _ReadyReduction(node, arms, others)
    return _ReadyRaise(node)


class _MarkNamePlan:
    __slots__ = ("ident",)

    def __init__(self, ident: str) -> None:
        self.ident = ident

    def __call__(self, ip, ctx: ExecContext, defined) -> None:
        mask = ctx.active_mask()
        if np.any(mask):
            defined[self.ident][...] = True


class _MarkIndexPlan:
    __slots__ = ("node", "subs", "names", "_memo")

    def __init__(self, node, subs, names) -> None:
        self.node = node
        self.subs = subs
        self.names = names
        self._memo = None

    def __call__(self, ip, ctx: ExecContext, defined) -> None:
        mask = ctx.active_mask()
        flags = defined[self.node.base]
        subs = [p(ip, ctx) for p in self.subs]
        m = self._memo
        if m is not None and m[2] is flags and _axes_match(m[0], ctx.grid.axes):
            sig = _binding_sig(self.names, ctx)
            if sig is not None and sig == m[1]:
                fm = mask.reshape(-1)
                n_act = None
                idx = []
                for col in m[3]:
                    if isinstance(col, np.ndarray):
                        idx.append(col[fm])
                    else:
                        if n_act is None:
                            n_act = int(mask.sum())
                        idx.append(np.full(n_act, col))
                flags[tuple(idx)] = True
                return
        idx = []
        for a, s in enumerate(subs):
            if isinstance(s, np.ndarray):
                idx.append(
                    np.clip(s, 0, flags.shape[a] - 1).reshape(-1)[mask.reshape(-1)]
                )
            else:
                idx.append(np.full(int(mask.sum()), int(s)))
        flags[tuple(idx)] = True
        if self.names is not None:
            sig = _binding_sig(self.names, ctx)
            if sig is not None:
                cols = []
                for a, s in enumerate(subs):
                    if isinstance(s, np.ndarray):
                        cols.append(np.clip(s, 0, flags.shape[a] - 1).reshape(-1))
                    else:
                        cols.append(int(s))
                self._memo = (ctx.grid.axes, sig, flags, tuple(cols))


def _compile_mark(target: ast.Expr):
    if isinstance(target, ast.Name):
        return _MarkNamePlan(target.ident)
    assert isinstance(target, ast.Index)
    return _MarkIndexPlan(
        target,
        [compile_expr(s) for s in target.subs],
        _joint_static_names(target.subs),
    )


class SolveAssignPlan:
    """Compiled pieces of one guarded-solve assignment."""

    __slots__ = ("pred", "assign", "readiness", "mark")

    def __init__(self, pred, assign, readiness, mark) -> None:
        self.pred = pred
        self.assign = assign
        self.readiness = readiness
        self.mark = mark


def compile_solve_assignments(assignments) -> List[SolveAssignPlan]:
    plans = []
    for pred, assign in assignments:
        plans.append(
            SolveAssignPlan(
                compile_expr(pred) if pred is not None else None,
                compile_expr(assign),
                compile_readiness(assign.value),
                _compile_mark(assign.target),
            )
        )
    return plans


def compile_sched_steps(assignments):
    """(pred plan | None, assign plan) per scheduled-solve assignment."""
    return [
        (
            compile_expr(pred) if pred is not None else None,
            compile_expr(assign),
        )
        for pred, assign in assignments
    ]


# ---------------------------------------------------------------------------
# frontier-restricted recipes
# ---------------------------------------------------------------------------
#
# The frontier engine (:mod:`repro.interp.frontier`) evaluates compressed
# sweeps over *lane vectors* — the active subset of the grid — instead of
# grid-shaped arrays.  These two helpers are the lane-space analogues of
# the ``np.ix_`` take recipes above: same bounds-check messages, same
# clipped-gather semantics, same value casting, but indexed by the active
# lanes only, so a sweep touching L of N lanes moves O(L) data.


def lane_gather(data: np.ndarray, subs, node: ast.Index, live: np.ndarray) -> np.ndarray:
    """Gather ``data`` at per-lane subscripts (ints or lane arrays).

    Mirrors :func:`repro.interp.eval_expr.eval_gather`'s bounds checking
    (array subscripts are checked under the ``live`` refinement mask,
    scalar subscripts unconditionally — identical messages) and its
    clip-then-index semantics for guarded out-of-range lanes.
    """
    idx = []
    for a, s in enumerate(subs):
        extent = data.shape[a]
        if isinstance(s, np.ndarray):
            bad = ((s < 0) | (s >= extent)) & np.broadcast_to(live, np.broadcast(s, live).shape)
            if np.any(bad):
                sb = np.broadcast_to(s, bad.shape)[bad]
                val = int(sb[0]) if sb.size else -1
                raise UCRuntimeError(
                    f"subscript {a} of {node.base!r} out of range "
                    f"(value {val}, extent {extent})",
                    node.line,
                    node.col,
                )
            idx.append(np.clip(s, 0, extent - 1))
        else:
            if not 0 <= int(s) < extent:
                raise UCRuntimeError(
                    f"subscript {a} of {node.base!r} out of range "
                    f"(value {int(s)}, extent {extent})",
                    node.line,
                    node.col,
                )
            idx.append(int(s))
    return data[tuple(idx)]


def lane_scatter(data: np.ndarray, subs, value, node: ast.Index):
    """Scatter ``value`` into ``data`` at per-lane subscripts.

    All lanes are active writers (the frontier engine has already applied
    the predicate), and the caller guarantees distinct slots (identity
    target subscripts over distinct axis values), so the §3.4
    single-assignment collision check is vacuous and skipped.  Returns
    ``(changed, old, new)`` lane vectors — the change mask seeds the next
    sweep's frontier and the old/new pair tracks reduction direction.
    """
    n = int(subs[0].size) if subs else 0
    for a, s in enumerate(subs):
        extent = data.shape[a]
        bad = (s < 0) | (s >= extent)
        if np.any(bad):
            val = int(s[bad][0])
            raise UCRuntimeError(
                f"subscript {a} of {node.base!r} out of range "
                f"(value {val}, extent {extent})",
                node.line,
                node.col,
            )
    if isinstance(value, np.ndarray):
        vals = np.broadcast_to(value, (n,))
    else:
        vals = np.full(n, value)
    new = E._cast_array(vals, data.dtype)
    where = tuple(subs)
    old = data[where].copy()
    data[where] = new
    changed = old != new
    return changed, old, new
