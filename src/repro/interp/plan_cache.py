"""LRU cache of compiled execution plans.

A *plan* is a tree of Python closures compiled from an already
semantically-checked AST subtree (see :mod:`repro.interp.plan`).  Plans
carry per-node memoisation state (cached reference classifications,
index vectors, out-of-bounds masks), so they are cached per
``(kind, id(node), grid signature)``:

* ``kind`` separates the compilation entry points ("construct",
  "solve", "sched", ..., plus "frontier" for the active-set sweep
  analyses of :mod:`repro.interp.frontier` — those cache the compiled
  charge entries and lane evaluators of an iterated construct, or the
  fallback sentinel when the body is not frontier-eligible — and
  "fuse" for the whole-array register programs of
  :mod:`repro.interp.fuse`);
* ``id(node)`` identifies the AST node — each cache entry keeps a strong
  reference to the node so the id cannot be recycled while the entry is
  alive, and a hit re-checks node identity so a recycled id after an
  eviction can never resurrect a stale plan;
* the grid signature (the tuple of :class:`~repro.interp.values.GridAxis`)
  distinguishes executions of the same construct over different index-set
  geometries, giving each geometry its own memo state.

Counter semantics
-----------------
``hits``, ``misses``, ``evictions`` and ``build_seconds`` are
*cumulative over the lifetime of the cache object*:

* a **hit** is a lookup that found a live entry (same node identity);
* a **miss** is a lookup that ran the build callable — every miss is
  exactly one (re)compile, so a run whose miss delta is zero did zero
  plan/fusion recompiles;
* an **eviction** is an entry dropped because the cache exceeded its
  capacity (LRU order);
* ``build_seconds`` accumulates the wall-clock time spent inside build
  callables, per ``kind`` — the compile-phase breakdown that
  ``repro run --stats`` reports.

:meth:`clear` drops the *entries* but deliberately preserves all
counters: the cache may be shared process-wide through the compile
store (:mod:`repro.interp.compile_store`), where the telemetry must
survive capacity resets to stay meaningful across runs.  Use
:meth:`counters` to snapshot the numbers before a run and diff after.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple


class PlanCache:
    """Bounded LRU mapping ``(kind, id(node), sig)`` -> compiled plan."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, int, Hashable], Tuple[Any, Any]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: wall-clock seconds spent in build callables, per kind
        self.build_seconds: Dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_build(
        self,
        kind: str,
        node: Any,
        sig: Hashable,
        build: Callable[[], Any],
    ) -> Any:
        key = (kind, id(node), sig)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is node:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry[1]
        self.misses += 1
        t0 = time.perf_counter()
        plan = build()
        self.build_seconds[kind] = self.build_seconds.get(kind, 0.0) + (
            time.perf_counter() - t0
        )
        self._entries[key] = (node, plan)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return plan

    def clear(self) -> None:
        """Drop all entries.  Counters survive (see module docstring)."""
        self._entries.clear()

    def counters(self) -> Dict[str, float]:
        """Snapshot of the cumulative counters, for before/after deltas."""
        out: Dict[str, float] = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
        for kind, secs in self.build_seconds.items():
            out[f"build_seconds.{kind}"] = secs
        return out

    def stats(self) -> dict:
        out = {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
        by_kind: dict = {}
        for kind, _nid, _sig in self._entries:
            by_kind[kind] = by_kind.get(kind, 0) + 1
        for kind in sorted(by_kind):
            out[f"size.{kind}"] = by_kind[kind]
        for kind in sorted(self.build_seconds):
            out[f"build_seconds.{kind}"] = round(self.build_seconds[kind], 6)
        return out
