"""Interpreter environments: lexically scoped name bindings.

Bindings are the value classes of :mod:`repro.interp.values` plus
:class:`~repro.lang.scope.IndexSetValue` for index sets and
:class:`~repro.lang.ast.FuncDef` for functions.  Index-element rebinding
(grid extension) shadows outer bindings exactly as §3.4 specifies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..lang.errors import UCRuntimeError


class Env:
    """A chain of dictionaries with block scoping."""

    def __init__(self, parent: Optional["Env"] = None) -> None:
        self.parent = parent
        self.bindings: Dict[str, Any] = {}

    def child(self) -> "Env":
        return Env(self)

    def declare(self, name: str, value: Any) -> None:
        self.bindings[name] = value

    def lookup(self, name: str) -> Any:
        env: Optional[Env] = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        raise UCRuntimeError(f"undefined identifier {name!r} at run time")

    def try_lookup(self, name: str) -> Optional[Any]:
        env: Optional[Env] = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        return None

    def set_existing(self, name: str, value: Any) -> None:
        """Rebind the nearest existing binding (assignment semantics)."""
        env: Optional[Env] = self
        while env is not None:
            if name in env.bindings:
                env.bindings[name] = value
                return
            env = env.parent
        raise UCRuntimeError(f"assignment to undefined identifier {name!r}")
