"""The ``solve`` construct: fixed-point / proper-equation execution (§3.6).

Two strategies for plain ``solve``:

* **scheduled** — when every assignment writes ``target[elem...]`` with
  identity subscripts and every reference back into a target array is an
  ``elem + const`` with non-positive offsets, the statements admit a
  static dependency-level schedule (the source-level transformation of
  [14]): level ``L(x) = 1 + max L(x + d)`` over the dependency offsets,
  executed as one masked ``par`` per level.
* **guarded** — the paper's general translation: keep per-element
  *defined* flags (the "impossible value"), repeatedly execute every
  assignment for the elements whose right-hand sides are fully defined
  and which have not executed yet, until nothing changes.

``*solve`` iterates its body to a global fixed point: execute, compare
all modified variables with their previous values, stop when unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..lang import ast
from ..lang.errors import UCRuntimeError
from . import frontier
from .env import Env
from .eval_expr import ExecContext, _truthy, eval_expr
from .plan import compile_solve_assignments
from .statements import (
    _plans_for,
    _run_blocks_once,
    enter_grid,
    exec_stmt,
)
from .values import ArrayVar, ElementBinding, ParallelLocal, ScalarVar


def exec_solve(ip, stmt: ast.UCStmt, ctx: ExecContext) -> None:
    if stmt.star:
        _exec_solve_star(ip, stmt, ctx)
        return
    inner = enter_grid(ip, stmt, ctx)
    assignments = _collect_assignments(stmt)
    strategy = ip.solve_strategy
    if strategy in ("auto", "scheduled"):
        from ..compiler.solve_sched import try_schedule

        schedule = try_schedule(ip, stmt, assignments, inner)
        if schedule is not None:
            schedule.execute(ip, inner)
            return
        if strategy == "scheduled":
            raise UCRuntimeError(
                "solve body is not statically schedulable "
                "(non-affine or forward dependencies)",
                stmt.line,
                stmt.col,
            )
    _exec_solve_guarded(ip, stmt, assignments, inner)


# ---------------------------------------------------------------------------
# body shape helpers
# ---------------------------------------------------------------------------


def _collect_assignments(stmt: ast.UCStmt) -> List[Tuple[Optional[ast.Expr], ast.Assign]]:
    """(predicate, assignment) pairs forming the solve body."""
    out: List[Tuple[Optional[ast.Expr], ast.Assign]] = []
    for block in stmt.blocks:
        for assign in _assignments_of(block.stmt):
            out.append((block.pred, assign))
    if stmt.others is not None:
        raise UCRuntimeError(
            "solve does not take an 'others' clause", stmt.line, stmt.col
        )
    return out


def _assignments_of(stmt: ast.Stmt) -> List[ast.Assign]:
    if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Assign):
        return [stmt.expr]
    if isinstance(stmt, ast.Block):
        out: List[ast.Assign] = []
        for s in stmt.stmts:
            out.extend(_assignments_of(s))
        return out
    raise UCRuntimeError(
        "solve body must consist of assignment statements", stmt.line, stmt.col
    )


def target_arrays(assignments: Sequence[Tuple[Optional[ast.Expr], ast.Assign]]) -> Set[str]:
    names: Set[str] = set()
    for _pred, assign in assignments:
        t = assign.target
        names.add(t.base if isinstance(t, ast.Index) else t.ident)  # type: ignore[union-attr]
    return names


# ---------------------------------------------------------------------------
# guarded execution (the paper's general method)
# ---------------------------------------------------------------------------


def _exec_solve_guarded(
    ip,
    stmt: ast.UCStmt,
    assignments: Sequence[Tuple[Optional[ast.Expr], ast.Assign]],
    inner: ExecContext,
) -> None:
    targets = target_arrays(assignments)
    defined: Dict[str, np.ndarray] = {}
    for name in targets:
        binding = inner.env.try_lookup(name)
        if isinstance(binding, ArrayVar):
            defined[name] = np.zeros(binding.shape, dtype=bool)
        elif isinstance(binding, ScalarVar):
            defined[name] = np.zeros((), dtype=bool)
        else:
            raise UCRuntimeError(
                f"solve target {name!r} must be an array or scalar",
                stmt.line,
                stmt.col,
            )

    base = inner.active_mask()
    done = [np.zeros(inner.grid.shape, dtype=bool) for _ in assignments]
    vps = ip.grid_vpset(inner.grid.shape)

    plans = None
    if getattr(ip, "plans_enabled", False):
        plans = ip.plan_cache.get_or_build(
            "solve",
            stmt,
            inner.grid.axes,
            lambda: compile_solve_assignments(assignments),
        )

    # frontier worklist: a lane's readiness (or predicate) can only have
    # changed if something newly defined since last sweep reaches it
    # through one of the assignment's affine references into the targets
    gf = frontier.guarded_frontier(ip, stmt, assignments, inner)
    enabled_cache: List[Optional[np.ndarray]] = [None] * len(assignments)
    prev_defined: Optional[Dict[str, np.ndarray]] = None

    sweeps = 0
    while True:
        # sweeps complete atomically; between them is a safe cancel point
        ip.poll_boundary(stmt)
        ip.machine.clock.charge("global_or", vp_ratio=vps.vp_ratio)
        ip.machine.clock.charge("host_cm_latency")
        newly: Optional[Dict[str, np.ndarray]] = None
        if gf is not None:
            if prev_defined is not None:
                newly = {
                    name: flags & ~prev_defined[name]
                    for name, flags in defined.items()
                }
            prev_defined = {name: flags.copy() for name, flags in defined.items()}
        progress = False
        pending = False
        for k, (pred, assign) in enumerate(assignments):
            ap = plans[k] if plans is not None else None
            if newly is not None and enabled_cache[k] is not None:
                # nothing newly defined reaches this assignment: its
                # predicate, readiness and values are all unchanged, so
                # no lane can fire that did not fire last sweep
                cand = gf.candidates(k, newly) & base & ~done[k]
                if not np.any(cand):
                    if np.any(enabled_cache[k] & ~done[k]):
                        pending = True
                    ip.machine.clock.count_frontier("guarded_skips")
                    continue
            enabled = base.copy()
            if pred is not None:
                if ap is not None:
                    pv = ap.pred(ip, inner)
                else:
                    pv = eval_expr(ip, pred, inner)
                enabled &= np.broadcast_to(np.asarray(_truthy(pv)), inner.grid.shape)
            enabled_cache[k] = enabled
            remaining = enabled & ~done[k]
            if not np.any(remaining):
                continue
            rctx = inner.with_mask(remaining)
            if ap is not None:
                ready = ap.readiness(ip, rctx, defined)
            else:
                ready = _readiness(ip, assign.value, rctx, defined)
            ready = remaining & ready
            if np.any(remaining & ~ready):
                pending = True
            if not np.any(ready):
                continue
            progress = True
            sub = inner.with_mask(ready)
            if ap is not None:
                ap.assign(ip, sub)
                ap.mark(ip, sub, defined)
            else:
                exec_stmt(
                    ip,
                    ast.ExprStmt(line=assign.line, col=assign.col, expr=assign),
                    sub,
                )
                _mark_defined(ip, assign.target, sub, defined)
            done[k] |= ready
            if newly is not None:
                # make intra-sweep definitions visible to the remaining
                # assignments' candidate sets, matching full-sweep order
                # (an element defined by an earlier assignment can enable
                # a later one within the same sweep)
                name = assign.target.base
                newly[name] = defined[name] & ~prev_defined[name]
        if not progress:
            if pending:
                raise UCRuntimeError(
                    "solve cannot make progress: the assignments are not a "
                    "proper set (circular dependency)",
                    stmt.line,
                    stmt.col,
                )
            return
        sweeps += 1
        if sweeps > ip.solve_sweep_limit:
            raise UCRuntimeError(
                f"solve exceeded the sweep limit ({ip.solve_sweep_limit}; "
                "raise via UCProgram(solve_sweep_limit=...) or "
                "REPRO_SOLVE_SWEEP_LIMIT); "
                f"target variables: {', '.join(sorted(targets))}",
                stmt.line,
                stmt.col,
            )


def _mark_defined(ip, target: ast.Expr, ctx: ExecContext, defined: Dict[str, np.ndarray]) -> None:
    mask = ctx.active_mask()
    if isinstance(target, ast.Name):
        if np.any(mask):
            defined[target.ident][...] = True
        return
    assert isinstance(target, ast.Index)
    flags = defined[target.base]
    subs = [eval_expr(ip, s, ctx) for s in target.subs]
    idx = []
    for a, s in enumerate(subs):
        if isinstance(s, np.ndarray):
            idx.append(np.clip(s, 0, flags.shape[a] - 1).reshape(-1)[mask.reshape(-1)])
        else:
            idx.append(np.full(int(mask.sum()), int(s)))
    flags[tuple(idx)] = True


def _readiness(
    ip, expr: ast.Expr, ctx: ExecContext, defined: Dict[str, np.ndarray]
) -> np.ndarray:
    """Boolean grid: lanes whose evaluation of ``expr`` touches only
    defined values.  Out-of-range references in *untaken* conditional
    branches are clipped (the conditional readiness formula discards
    them), matching the masked execution that follows."""
    shape = ctx.grid.shape
    true = np.ones(shape, dtype=bool)
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.InfLit, ast.Name, ast.StringLit)):
        return true
    if isinstance(expr, ast.Index):
        if expr.base not in defined:
            return true
        flags = defined[expr.base]
        subs = [eval_expr(ip, s, ctx) for s in expr.subs]
        idx = []
        oob = np.zeros(shape, dtype=bool)
        for a, s in enumerate(subs):
            arr = np.broadcast_to(np.asarray(s), shape)
            oob |= (arr < 0) | (arr >= flags.shape[a])
            idx.append(np.clip(arr, 0, flags.shape[a] - 1))
        got = flags[tuple(idx)]
        return got & ~oob
    if isinstance(expr, ast.Unary):
        return _readiness(ip, expr.operand, ctx, defined)
    if isinstance(expr, ast.Binary):
        return _readiness(ip, expr.left, ctx, defined) & _readiness(
            ip, expr.right, ctx, defined
        )
    if isinstance(expr, ast.Ternary):
        rc = _readiness(ip, expr.cond, ctx, defined)
        cond = eval_expr(ip, expr.cond, ctx)
        cb = np.broadcast_to(np.asarray(_truthy(cond)), shape)
        rt = _readiness(ip, expr.then, ctx.refine(cb), defined)
        re_ = _readiness(ip, expr.els, ctx.refine(~cb), defined)
        return rc & np.where(cb, rt, re_)
    if isinstance(expr, ast.Call):
        out = true
        for a in expr.args:
            out = out & _readiness(ip, a, ctx, defined)
        return out
    if isinstance(expr, ast.Reduction):
        sets = [ip.resolve_index_set(name, ctx, at=expr) for name in expr.index_sets]
        inner_grid = ctx.grid.extend(sets)
        env = ctx.env.child()
        for off, isv in enumerate(sets):
            env.declare(
                isv.elem_name,
                ElementBinding(isv.elem_name, isv.name, "axis", axis=ctx.grid.rank + off),
            )
        mask = ctx.active_mask()
        bmask = np.broadcast_to(mask.reshape(mask.shape + (1,) * len(sets)), inner_grid.shape)
        inner = ExecContext(inner_grid, bmask, env)
        ready = np.ones(inner_grid.shape, dtype=bool)
        for arm in expr.arms:
            if arm.pred is not None:
                ready &= _readiness(ip, arm.pred, inner, defined)
            ready &= _readiness(ip, arm.expr, inner, defined)
        if expr.others is not None:
            ready &= _readiness(ip, expr.others, inner, defined)
        axes = tuple(range(ctx.grid.rank, inner_grid.rank))
        return ready.all(axis=axes)
    raise UCRuntimeError(
        f"solve cannot analyse {type(expr).__name__}", expr.line, expr.col
    )


# ---------------------------------------------------------------------------
# *solve: global fixed point
# ---------------------------------------------------------------------------


def _exec_solve_star(ip, stmt: ast.UCStmt, ctx: ExecContext) -> None:
    inner = enter_grid(ip, stmt, ctx)
    plans = _plans_for(ip, stmt, inner.grid)
    modified = _modified_names(stmt)
    vps = ip.grid_vpset(inner.grid.shape)
    sess = frontier.star_session(ip, stmt, inner, "solve")
    sweeps = 0
    # the divergence diagnostic is only rendered if the sweep limit trips,
    # so keep a thunk for the last sweep instead of formatting every sweep
    summarize = _NO_SUMMARY
    while True:
        # sweeps complete atomically; between them is a safe cancel point
        ip.poll_boundary(stmt)
        states = sess.plan_compressed() if sess is not None else None
        if states is not None:
            # compressed sweep: evaluate only the lanes whose inputs
            # changed, charge only the active VP set (guarded to cost
            # strictly less than the measured full sweep)
            if not sess.run_compressed(states):
                return
            summarize = sess.delta_summary
        else:
            before = _snapshot(inner, modified)
            if sess is not None:
                sess.full_begin()
            # the compiler saves intermediate state each sweep to detect the
            # fixed point — charge one extra ALU pass for the temporaries (§3.6)
            ip.machine.clock.charge("alu", count=len(modified) or 1, vp_ratio=vps.vp_ratio)
            _run_blocks_once(ip, stmt, inner, plans)
            ip.machine.clock.charge("global_or", vp_ratio=vps.vp_ratio)
            ip.machine.clock.charge("host_cm_latency")
            after = _snapshot(inner, modified)
            if sess is not None:
                sess.full_end()
            if _snapshots_equal(before, after):
                return
            summarize = lambda b=before, a=after: _delta_summary(b, a)
        sweeps += 1
        if sweeps > ip.solve_sweep_limit:
            raise UCRuntimeError(
                f"*solve exceeded the sweep limit ({ip.solve_sweep_limit}; "
                "raise via UCProgram(solve_sweep_limit=...) or "
                "REPRO_SOLVE_SWEEP_LIMIT); still changing each sweep: "
                f"{summarize()}",
                stmt.line,
                stmt.col,
            )


def _NO_SUMMARY() -> str:
    return "nothing yet (limit of 0 sweeps?)"


def _modified_names(stmt: ast.UCStmt) -> List[str]:
    names: Set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Assign):
            t = node.target
            names.add(t.base if isinstance(t, ast.Index) else t.ident)  # type: ignore[union-attr]
        elif isinstance(node, ast.IncDec):
            t = node.target
            names.add(t.base if isinstance(t, ast.Index) else t.ident)  # type: ignore[union-attr]
    return sorted(names)


def _snapshot(ctx: ExecContext, names: List[str]):
    out = {}
    for name in names:
        binding = ctx.env.try_lookup(name)
        if isinstance(binding, ArrayVar):
            out[name] = binding.data.copy()
        elif isinstance(binding, ScalarVar):
            out[name] = binding.value
        elif isinstance(binding, ParallelLocal):
            out[name] = binding.data.copy()
    return out


def _delta_summary(before, after) -> str:
    """Human-readable description of what still moved in the last sweep
    (the divergence diagnostic of the *solve sweep-limit error).  Reports
    the *frontier* of each variable — how many of its elements are still
    changing — rather than a bare element count, so a diverging solve
    shows at a glance whether the instability is local or global."""
    parts = []
    for name in sorted(before):
        prev, curr = before[name], after[name]
        if isinstance(prev, np.ndarray):
            changed = prev != curr
            n = int(np.count_nonzero(changed))
            if not n:
                continue
            if np.issubdtype(prev.dtype, np.number):
                width = np.abs(
                    np.asarray(curr, dtype=np.float64)
                    - np.asarray(prev, dtype=np.float64)
                ).max()
                parts.append(
                    f"{name} (frontier {n} of {prev.size} elements, "
                    f"max |delta| {width:g})"
                )
            else:
                parts.append(f"{name} (frontier {n} of {prev.size} elements)")
        elif prev != curr:
            parts.append(f"{name} ({prev!r} -> {curr!r})")
    return "; ".join(parts) if parts else "nothing (oscillation across sweeps?)"


def _snapshots_equal(a, b) -> bool:
    for name, before in a.items():
        after = b[name]
        if isinstance(before, np.ndarray):
            if not np.array_equal(before, after):
                return False
        elif before != after:
            return False
    return True
