"""The communication-tier dispatcher shared by both execution engines.

The paper's central efficiency claim is that data mappings turn router
traffic into cheap NEWS shifts, spreads and local references.  This
module is the single place where a classified array reference
(:class:`~repro.mapping.locality.RefClass`) is mapped to the
communication tier the machine actually uses:

``local``      ALU only — every VP reads its own memory;
``news``       constant-offset grid shift, ``|offset|`` hops
               (vectorised via :func:`repro.machine.news.shift_array`);
``spread``     value constant along grid axes — one log-depth spread;
``broadcast``  one element for everybody, from the front end;
``permute``    axis-order transpose under an active ``permute`` map —
               a precomputed bijective message schedule, charged the
               cheaper ``router_permute`` cycle;
``router``     everything else: the general router.

Both the tree-walking oracle (:mod:`repro.interp.eval_expr`) and the
compiled-plan engine (:mod:`repro.interp.plan`) call :func:`decide_tier`
/ :func:`charge_tier`, which keeps their Clock fingerprints
bit-identical by construction.  ``REPRO_NO_COMM_TIERS=1`` (or
``UCProgram(comm_tiers=False)``) disables the dispatcher: every remote
reference is serviced — and charged — through the general router, which
is the pre-tier behaviour the benchmarks compare against.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

from ..machine.config import CostTable
from ..machine.scan import SPREAD_STEPS_PER_LEVEL
from ..mapping.locality import RefClass

#: every tier the dispatcher can choose, plus ``intershard``: the tier a
#: reference lands in when the shard placement proves it crosses a shard
#: boundary of a partitioned machine.  ``decide_tier`` never returns it —
#: the within-machine tier is decided first, then the placement splits
#: the reference into intra-shard work (the decided tier, charged on the
#: owning shard) and cross-shard slabs (``intershard`` cycles, charged
#: above ``router`` — see docs/COSTMODEL.md)
TIERS = ("local", "news", "spread", "broadcast", "permute", "router", "intershard")

_ENV_FLAG = "REPRO_NO_COMM_TIERS"
_FRONTIER_ENV_FLAG = "REPRO_NO_FRONTIER"
_FUSION_ENV_FLAG = "REPRO_NO_FUSION"
_SHARDS_ENV_FLAG = "REPRO_SHARDS"


def tiers_disabled_by_env() -> bool:
    """True when the ``REPRO_NO_COMM_TIERS`` escape hatch is set."""
    return os.environ.get(_ENV_FLAG, "").strip().lower() in ("1", "true", "yes", "on")


def frontier_disabled_by_env() -> bool:
    """True when the ``REPRO_NO_FRONTIER`` escape hatch is set."""
    return os.environ.get(_FRONTIER_ENV_FLAG, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def fusion_disabled_by_env() -> bool:
    """True when the ``REPRO_NO_FUSION`` escape hatch is set."""
    return os.environ.get(_FUSION_ENV_FLAG, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def shards_from_env() -> Optional[int]:
    """Shard-count override from ``REPRO_SHARDS``, or None when unset.

    ``REPRO_SHARDS=1`` is the escape hatch that forces unsharded
    execution whatever the program asked for; ``REPRO_SHARDS=K`` forces
    a K-way partition everywhere (the differential CI gate runs the
    suite this way — fingerprints must not move).
    """
    raw = os.environ.get(_SHARDS_ENV_FLAG, "").strip()
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def decide_tier(rc: RefClass, costs: CostTable, *, write: bool, enabled: bool = True) -> str:
    """Pick the communication tier for one classified reference.

    With the dispatcher disabled, anything remote is a router cycle (the
    pre-tier engine).  Otherwise the verdict's own kind is used, with two
    adjustments the real compilers made:

    * a long constant-offset shift whose hop count is dearer than one
      router cycle is demoted to the router;
    * a pure axis-order transpose under an active ``permute`` map is
      promoted from the router to the precomputed-permutation tier
      (reads only — scatters still need the router's combining).
    """
    if not enabled:
        return "local" if rc.kind == "local" else "router"
    if rc.kind == "news":
        news_cost = costs.news * max(1, rc.news_distance)
        router_cost = costs.router_send if write else costs.router_get
        if news_cost > router_cost:
            return "router"
    if rc.kind == "router" and rc.permutable and not write:
        return "permute"
    return rc.kind


def charge_tier(
    ip, ctx, tier: str, rc: RefClass, *, write: bool, layout=None
) -> None:
    """Charge the machine clock for one reference serviced by ``tier``."""
    vps = ip.grid_vpset(ctx.grid.shape)
    charge_tier_at(
        ip.machine.clock,
        tier,
        rc,
        write=write,
        vp_ratio=vps.vp_ratio,
        grid_shape=ctx.grid.shape,
        layout=layout,
    )


def charge_tier_at(
    clock,
    tier: str,
    rc: RefClass,
    *,
    write: bool,
    vp_ratio: int,
    spread_extent: Optional[int] = None,
    grid_shape: Optional[Tuple[int, ...]] = None,
    layout=None,
) -> None:
    """Charge one reference serviced by ``tier`` at an explicit VP ratio.

    The frontier engine's compressed sweeps pay for the active VP set
    only, so they cannot derive the ratio from the grid's VP set; they
    replay the same charge recipe here against either the real
    :class:`~repro.machine.cost.Clock` or the frontier estimator (any
    object with ``charge``/``charge_scan``/``count_tier``), which keeps
    compressed estimates and compressed charges identical by
    construction.  ``spread_extent`` overrides the classified extent
    (delta reductions scan only the changed slice).

    ``grid_shape``/``layout`` carry the reference's geometry to a shard
    sink when one is installed (see :mod:`repro.machine.shards`): the
    observation happens *after* the charges, so a fault raised
    mid-charge rolls back cleanly, and never mutates this clock — the
    charge stream (and therefore the fingerprint) is shard-count
    independent.  Clock-likes without the hook (the frontier estimator,
    the fusion recorder's bare replays) skip it.
    """
    clock.count_tier(tier)
    if tier == "local":
        clock.charge("alu", vp_ratio=vp_ratio)
    elif tier == "news":
        clock.charge("news", count=max(1, rc.news_distance), vp_ratio=vp_ratio)
    elif tier == "spread":
        clock.charge_scan(
            spread_extent if spread_extent is not None else rc.spread_extent,
            vp_ratio=vp_ratio,
            steps_per_level=SPREAD_STEPS_PER_LEVEL,
        )
        if rc.news_distance:
            clock.charge("news", count=rc.news_distance, vp_ratio=vp_ratio)
    elif tier == "broadcast":
        clock.charge("host_cm_latency")
        clock.charge("broadcast", vp_ratio=vp_ratio)
    elif tier == "permute":
        clock.charge("router_permute", vp_ratio=vp_ratio)
    else:  # router
        clock.charge("router_send" if write else "router_get", vp_ratio=vp_ratio)
    if grid_shape is not None:
        note = getattr(clock, "note_shard_ref", None)
        if note is not None:
            note(tier, rc, layout, grid_shape, write)


def shift_descriptor(
    rc: RefClass,
    view_shape: Tuple[int, ...],
    grid_shape: Tuple[int, ...],
) -> Optional[Tuple[Tuple[int, int, int], ...]]:
    """NEWS window recipe for a gather, or None when the fast path cannot
    reproduce the general gather bit-identically.

    Valid when every subscript is the identity on its own grid axis plus
    a constant raw offset: the gather is ``data[clip(pos + offset)]``
    with ``pos`` the 0-based grid coordinate along each axis, which
    equals a chain of per-axis clamped window copies (per-axis clipping
    is separable) — this covers interior-grid stencils, where the grid
    is a strict sub-range of the array.  Returns ``(axis, start,
    extent)`` triples for the axes that are not a full identity slice —
    possibly empty, meaning a plain copy (a reference whose NEWS
    distance comes entirely from layout offsets).
    """
    if rc.axes is None:
        return None
    if len(rc.axes) != len(grid_shape) or len(view_shape) != len(grid_shape):
        return None
    windows = []
    for a, entry in enumerate(rc.axes):
        if entry[0] != "i" or entry[1] != a:
            return None
        start = int(entry[2])
        extent = int(grid_shape[a])
        if start != 0 or extent != int(view_shape[a]):
            windows.append((a, start, extent))
    return tuple(windows)


def run_shifts(data, windows: Sequence[Tuple[int, int, int]]):
    """Apply a :func:`shift_descriptor` recipe: chained clamped windows.

    Returns a fresh writable array even for an empty recipe, so callers
    (notably the oracle's CSE cache, which stores values uncopied) can
    hand the result out safely.
    """
    from ..machine.news import window_array

    if not windows:
        return data.copy()
    out = data
    for axis, start, extent in windows:
        out = window_array(out, axis, start, extent)
    return out
