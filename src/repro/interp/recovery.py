"""Degraded-mode recovery: retry protected constructs across faults.

The :class:`RecoveryManager` wraps every outermost ``par``/``solve``
construct in a checkpoint (see :mod:`repro.interp.checkpoint`).  When a
fault interrupts the construct:

* the last checkpoint is restored (bit-identical program state),
* a backoff of simulated Clock cycles is charged under the ``recovery``
  cost kind (exponential in the attempt number — the front end widening
  its retry window),
* for a :class:`~repro.machine.errors.ProcessorFault`, the affected VP
  sets are re-laid-out off the dead PE with
  :func:`repro.mapping.remap.remap_off_dead` (one ``router_permute``
  per moved field, the permute-mapping machinery's cost) before the
  replay — the machine degrades gracefully to fewer physical PEs;
* for a transient :class:`~repro.machine.errors.LinkFault`, the replay
  simply re-issues the idempotent operation.

The fault plan is suspended while recovery charges its own out-of-band
traffic, so a handler cannot re-fault itself; restore deliberately does
not roll back the plan's fired flags or the dead-PE list, so the same
scheduled fault never fires twice.  Both execution engines run through
this module at the same construct boundaries, which keeps their Clock
fingerprints identical under faults.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict

from ..lang.errors import UCRuntimeError
from ..machine.errors import LinkFault, ProcessorFault
from ..mapping.remap import remap_off_dead
from .checkpoint import restore_checkpoint, take_checkpoint


@dataclass(frozen=True)
class RecoveryPolicy:
    """How hard to try before giving up.

    ``max_attempts`` counts executions of the protected construct (so
    ``max_attempts - 1`` faults are survivable per construct entry);
    the ``attempt``-th retry waits ``backoff_base * backoff_factor **
    (attempt - 1)`` simulated ``recovery`` cycles, clamped to
    ``backoff_cap`` so an adversarial fault plan (or a raised
    ``max_attempts``) cannot make the charged backoff grow without
    bound.  ``jitter`` spreads each wait uniformly over ``[cycles,
    cycles * (1 + jitter)]`` — *seeded* (``jitter_seed`` and the attempt
    number), so a given policy still produces bit-reproducible
    fingerprints while distinct seeds decorrelate tenants retrying after
    a shared fault.  The defaults (cap above the largest default-policy
    backoff, zero jitter) leave existing fingerprints unchanged.

    Override per program via ``UCProgram(recovery=RecoveryPolicy(...))``;
    see the ``recovery`` row in ``docs/COSTMODEL.md``.
    """

    max_attempts: int = 8
    backoff_base: int = 50
    backoff_factor: float = 2.0
    backoff_cap: int = 10_000
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.backoff_cap < 1:
            raise ValueError(f"backoff_cap must be >= 1, got {self.backoff_cap}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_cycles(self, attempt: int) -> int:
        cycles = max(1, int(self.backoff_base * self.backoff_factor ** (attempt - 1)))
        cycles = min(cycles, self.backoff_cap)
        if self.jitter > 0.0:
            import numpy as np

            rng = np.random.default_rng((self.jitter_seed, attempt))
            cycles = int(cycles * (1.0 + self.jitter * rng.random()))
        return min(cycles, self.backoff_cap)


class RecoveryManager:
    """Checkpoints and replays protected constructs for one interpreter."""

    def __init__(self, ip, policy: RecoveryPolicy) -> None:
        self.ip = ip
        self.policy = policy
        self.depth = 0
        self.stats: Dict[str, int] = {
            "checkpoints": 0,
            "faults": 0,
            "retries": 0,
            "remaps": 0,
            "recovery_cycles": 0,
        }

    def wants(self, stmt) -> bool:
        """Protect outermost ``par``/``solve`` constructs only: an inner
        construct is already covered by its enclosing checkpoint, and
        per-ISSUE semantics ``seq``/``oneof`` iterations re-enter through
        the protected constructs they contain."""
        return self.depth == 0 and stmt.kind in ("par", "solve")

    def run_protected(self, ip, stmt, ctx) -> None:
        """Execute one construct under checkpoint protection."""
        from .statements import dispatch_construct  # local import avoids a cycle

        cp = take_checkpoint(ip, ctx)
        self.stats["checkpoints"] += 1
        attempt = 0
        while True:
            attempt += 1
            self.depth += 1
            try:
                dispatch_construct(ip, stmt, ctx)
                return
            except (ProcessorFault, LinkFault) as fault:
                self.stats["faults"] += 1
                if attempt >= self.policy.max_attempts:
                    raise UCRuntimeError(
                        f"fault recovery exhausted after {attempt} attempts "
                        f"of the {'*' if stmt.star else ''}{stmt.kind} "
                        f"construct: {fault}",
                        stmt.line,
                        stmt.col,
                    ) from fault
                restore_checkpoint(ip, cp)
                self._recover(fault, attempt)
                self.stats["retries"] += 1
            finally:
                self.depth -= 1

    def _recover(self, fault, attempt: int) -> None:
        """Charge the backoff and, for a dead PE, re-lay-out VP sets.

        Runs with the fault plan suspended: recovery traffic is the front
        end's own bookkeeping and must not trigger further scheduled
        events (which would refire forever after every restore).
        """
        machine = self.ip.machine
        plan = machine.faults
        guard = plan.suspended() if plan is not None else nullcontext()
        with guard:
            cycles = self.policy.backoff_cycles(attempt)
            machine.clock.charge("recovery", count=cycles)
            self.stats["recovery_cycles"] += cycles
            if isinstance(fault, ProcessorFault):
                remap_off_dead(machine)
                self.stats["remaps"] += 1
