"""The UC interpreter: executes checked UC programs on the CM simulator.

Execution is *vectorised*: a ``par (I, J)`` statement materialises an
``(|I|, |J|)`` grid context, expressions evaluate to numpy arrays over the
grid, and every operation charges the simulated machine clock according
to its Paris cost class — ALU for local work, NEWS for constant-offset
neighbour references, spreads for axis broadcasts, the general router for
data-dependent accesses, and front-end latency for every sequential-loop
turnaround.  Results are therefore exact UC semantics with CM-2-shaped
elapsed times.

Public entry point: :class:`repro.interp.program.UCProgram`.
"""

from .program import UCProgram, RunResult
from .interpreter import Interpreter

__all__ = ["UCProgram", "RunResult", "Interpreter"]
