"""Process-wide content-addressed compile store.

The per-run :class:`~repro.interp.plan_cache.PlanCache` memoises
compiled plans by AST node identity, which is only safe within one
program object.  This module lifts the whole compile pipeline to a
shared, size-bounded, *content-addressed* store so parse → semantic
analysis → layout construction → plan/fusion compilation happens once
per distinct program and is reused across :class:`UCProgram` instances,
repeated runs, and batch lanes (see ``UCProgram.run_batch``).

Two levels:

* **Frontend** entries are keyed by the program *content*:
  ``(sha256(source), sorted defines, apply_maps)`` — and hold the
  parsed AST, the :class:`~repro.lang.semantics.ProgramInfo` and the
  :class:`~repro.mapping.layout.LayoutTable`.  Sharing the AST object
  is what makes the plan cache's ``id(node)`` keys line up across
  program instances.

* **Backend** entries are keyed by ``(frontend key, machine signature,
  engine-flags signature)`` and hold one shared
  :class:`~repro.interp.plan_cache.PlanCache`.  The machine signature
  is the (hashable, frozen) :class:`~repro.machine.MachineConfig`; the
  flags signature captures every *effective* engine toggle — including
  the ``REPRO_NO_*`` environment escape hatches resolved at run time —
  because compiled artifacts bake in flag-dependent decisions (tier
  choices, charge tables, VP ratios).  Mutating e.g.
  ``REPRO_NO_COMM_TIERS`` between runs therefore *misses* and compiles
  into a separate entry: a stale kernel can never serve a run it was
  not compiled for.

Both levels are bounded LRU; the store is process-wide state intended
for single-threaded use (the interpreter itself is single-threaded).
Entries hold no per-run mutable state: plan closures re-resolve
bindings by name and self-heal their memos, fused kernels re-validate
and re-bind per sweep, frontier analyses re-bind per session.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from .plan_cache import PlanCache


class FrontendEntry:
    """Parsed + analyzed + mapped program, shared read-only."""

    __slots__ = ("ast", "info", "layouts", "source_bytes")

    def __init__(self, ast: Any, info: Any, layouts: Any, source_bytes: int) -> None:
        self.ast = ast
        self.info = info
        self.layouts = layouts
        self.source_bytes = source_bytes


class CompileStore:
    """Two-level LRU store: program content -> frontend -> plan caches."""

    def __init__(
        self,
        *,
        frontend_capacity: int = 32,
        backend_capacity: int = 64,
        plan_capacity: int = 1024,
    ) -> None:
        if frontend_capacity < 1 or backend_capacity < 1:
            raise ValueError("compile store capacities must be positive")
        self.frontend_capacity = frontend_capacity
        self.backend_capacity = backend_capacity
        self.plan_capacity = plan_capacity
        self._frontends: "OrderedDict[Hashable, FrontendEntry]" = OrderedDict()
        self._backends: "OrderedDict[Hashable, PlanCache]" = OrderedDict()
        self._programs: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.frontend_hits = 0
        self.frontend_misses = 0
        self.frontend_evictions = 0
        self.backend_hits = 0
        self.backend_misses = 0
        self.backend_evictions = 0
        self.program_hits = 0
        self.program_misses = 0
        self.program_evictions = 0

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def frontend_key(
        source: str, defines: Dict[str, int], apply_maps: bool
    ) -> Hashable:
        digest = hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()
        return (digest, tuple(sorted(defines.items())), bool(apply_maps))

    # -- frontend level -----------------------------------------------------

    def frontend(
        self,
        key: Hashable,
        build: Callable[[], Tuple[Any, Any, Any]],
        source_bytes: int = 0,
    ) -> Tuple[FrontendEntry, bool]:
        """Look up (or build) the compiled frontend for ``key``.

        ``build`` returns ``(ast, info, layouts)``.  Returns the entry
        and whether it was already cached.
        """
        entry = self._frontends.get(key)
        if entry is not None:
            self.frontend_hits += 1
            self._frontends.move_to_end(key)
            return entry, True
        self.frontend_misses += 1
        ast, info, layouts = build()
        entry = FrontendEntry(ast, info, layouts, source_bytes)
        self._frontends[key] = entry
        while len(self._frontends) > self.frontend_capacity:
            self._frontends.popitem(last=False)
            self.frontend_evictions += 1
        return entry, False

    # -- backend level ------------------------------------------------------

    def backend(
        self,
        frontend_key: Hashable,
        machine_sig: Hashable,
        flags_sig: Hashable,
    ) -> Tuple[PlanCache, bool]:
        """Shared :class:`PlanCache` for one (program, machine, flags).

        Returns the cache and whether it already existed.  A differing
        machine config or effective-flag signature always misses — the
        cross-run staleness guard.
        """
        key = (frontend_key, machine_sig, flags_sig)
        cache = self._backends.get(key)
        if cache is not None:
            self.backend_hits += 1
            self._backends.move_to_end(key)
            return cache, True
        self.backend_misses += 1
        cache = PlanCache(self.plan_capacity)
        self._backends[key] = cache
        while len(self._backends) > self.backend_capacity:
            self._backends.popitem(last=False)
            self.backend_evictions += 1
        return cache, False

    # -- program level ------------------------------------------------------

    def shared_program(
        self,
        source: str,
        *,
        defines: Optional[Dict[str, int]] = None,
        machine_config: Any = None,
        **flags: Any,
    ) -> Any:
        """One shared :class:`UCProgram` per distinct program content.

        The execution service funnels every job through this so that
        identical submissions (same source, defines, machine config and
        engine flags — all of which must be hashable) coalesce onto one
        program object: ``run_batch`` lanes then line up and the plan
        cache's ``id(node)`` keys match across tenants.  Bounded LRU
        like the other levels (the backend capacity bounds it).
        """
        from .program import UCProgram  # local import avoids a cycle

        defines = dict(defines or {})
        key = (
            self.frontend_key(source, defines, flags.get("apply_maps", True)),
            machine_config,
            tuple(sorted(flags.items())),
        )
        prog = self._programs.get(key)
        if prog is not None:
            self.program_hits += 1
            self._programs.move_to_end(key)
            return prog
        self.program_misses += 1
        prog = UCProgram(
            source,
            defines=defines,
            machine_config=machine_config,
            compile_store=self,
            **flags,
        )
        self._programs[key] = prog
        while len(self._programs) > self.backend_capacity:
            self._programs.popitem(last=False)
            self.program_evictions += 1
        return prog

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Drop all entries (counters survive, as for PlanCache)."""
        self._frontends.clear()
        self._backends.clear()
        self._programs.clear()

    def stats(self) -> dict:
        """Hit/miss/size counters plus an approximate byte size.

        ``source_bytes`` is the summed length of the cached program
        sources — an honest proxy for frontend footprint; plan closures
        are not meaningfully measurable, so backend size is reported as
        entry and cached-plan counts instead.
        """
        return {
            "frontend_entries": len(self._frontends),
            "frontend_hits": self.frontend_hits,
            "frontend_misses": self.frontend_misses,
            "frontend_evictions": self.frontend_evictions,
            "backend_entries": len(self._backends),
            "backend_hits": self.backend_hits,
            "backend_misses": self.backend_misses,
            "backend_evictions": self.backend_evictions,
            "program_entries": len(self._programs),
            "program_hits": self.program_hits,
            "program_misses": self.program_misses,
            "program_evictions": self.program_evictions,
            "plans_cached": sum(len(c) for c in self._backends.values()),
            "source_bytes": sum(e.source_bytes for e in self._frontends.values()),
        }


#: the process-wide default store (``UCProgram`` uses it unless given
#: another one, or ``compile_store=None`` for a private per-program one)
DEFAULT_STORE = CompileStore()


def default_store() -> CompileStore:
    return DEFAULT_STORE
