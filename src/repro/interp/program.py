"""The public entry point: :class:`UCProgram`.

Ties the whole pipeline together: parse → semantic analysis → mapping
construction → interpretation on a simulated Connection Machine.

Example
-------
>>> from repro import UCProgram
>>> prog = UCProgram('''
...     int N = 8;
...     index_set I:i = {0..N-1};
...     int a[8];
...     main { par (I) a[i] = i * i; }
... ''')
>>> result = prog.run()
>>> list(result["a"])
[0, 1, 4, 9, 16, 25, 36, 49]
>>> result.elapsed_us > 0
True
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..lang import analyze, parse_program
from ..lang.semantics import ProgramInfo
from ..machine import FaultPlan, Machine, MachineConfig
from ..mapping.maps import build_layouts
from ..mapping.layout import LayoutTable
from . import commtiers
from .compile_store import CompileStore, default_store
from .deadline import DeadlineMonitor
from .interpreter import Interpreter, resolve_engine_flags
from .plan_cache import PlanCache

#: sentinel distinguishing "use the process-wide store" (the default)
#: from an explicit ``compile_store=None`` (a private, per-program cache)
_DEFAULT_STORE = object()

#: sentinel for per-run overrides that default to the program's setting
#: (``None`` is a meaningful override: "this run, no faults / default
#: recovery policy")
_UNSET = object()


class RunResult:
    """Outcome of one program run: variables + simulated timing.

    Behaves as a mapping from variable name to its final value (arrays
    come back as numpy arrays, scalars as int/float).
    """

    def __init__(self, interp: Interpreter) -> None:
        self._values: Dict[str, Union[int, float, np.ndarray]] = {}
        for name in interp.info.arrays:
            self._values[name] = interp.read_array(name)
        for name in interp.info.scalars:
            self._values[name] = interp.read_scalar(name)
        self.elapsed_us: float = interp.machine.clock.time_us
        self.elapsed_ms: float = interp.machine.clock.time_ms
        self.stdout: str = "".join(interp.stdout)
        #: per-top-level-statement simulated time (populated by profile=True)
        self.profile: Dict[str, float] = dict(interp.machine.clock.regions)
        self.counts: Dict[str, int] = {
            rec.kind: rec.count for rec in interp.machine.clock.ledger()
        }
        self.times: Dict[str, float] = {
            rec.kind: rec.time_us for rec in interp.machine.clock.ledger()
        }
        #: hashable digest of the full cost state (see Clock.fingerprint)
        self.fingerprint = interp.machine.clock.fingerprint()
        #: checkpoint/fault/retry counters (empty when recovery is off)
        self.recovery: Dict[str, int] = (
            dict(interp.recovery.stats) if interp.recovery is not None else {}
        )
        #: (time_us, kind, op) per fault fired during the run
        self.fault_log = (
            list(interp.machine.faults.log)
            if interp.machine.faults is not None
            else []
        )
        #: physical PEs lost to injected faults during the run
        self.dead_pes = sorted(interp.machine.dead_pes)
        #: frontier-engine counters (constructs, fallbacks, full/compressed
        #: sweeps, active vs domain lane totals; empty when frontier off)
        self.frontier: Dict[str, int] = dict(interp.machine.clock.frontier_counts)
        #: per-compressed-sweep (active, domain) lane counts
        self.frontier_trace = list(interp.machine.clock.frontier_trace)
        #: kernel-fusion counters (constructs/kernels built, fused vs
        #: unfused segments, fused/fallback sweeps, charge-table hits;
        #: empty when fusion is off or nothing fused)
        self.fusion: Dict[str, int] = dict(interp.machine.clock.fusion_counts)
        #: sharded-execution counters (shard count, placement axis,
        #: per-shard clock totals, intershard cycles and bytes per shard
        #: pair; empty on an unsharded run) — see docs/PERFORMANCE.md
        sink = getattr(interp.machine.clock, "shard_sink", None)
        self.shards: Dict[str, Any] = sink.stats() if sink is not None else {}
        #: sanitizer summary (claims checked/verified; empty when off) —
        #: filled in by UCProgram.run after the cross-check passes
        self.sanitizer: Dict[str, int] = {}
        #: compile/execute wall-time breakdown + recompile counts for
        #: this run (parse/semantics/layouts are zero on a warm frontend
        #: hit; plan/fuse/frontier build seconds and ``recompiles`` are
        #: deltas over the run, so a warm run shows them all as zero) —
        #: filled in by UCProgram.run
        self.compile: Dict[str, float] = {}
        #: compile-store counters after this run (empty when the program
        #: runs with a private cache) — filled in by UCProgram.run
        self.store: Dict[str, int] = {}

    def __getitem__(self, name: str) -> Union[int, float, np.ndarray]:
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def keys(self):
        return self._values.keys()

    def __repr__(self) -> str:
        return (
            f"RunResult(vars={sorted(self._values)}, "
            f"elapsed={self.elapsed_us:.1f}us)"
        )


class UCProgram:
    """A parsed, checked, mapped UC program ready to run.

    Parameters
    ----------
    source:
        UC source text.
    defines:
        Compile-time integer constants (stands in for ``#define``).
    machine_config:
        Simulated machine description (default: 16K-PE CM-2).
    apply_maps:
        Honour the program's ``map`` sections (set False to measure the
        compiler's default mappings — the mapping-ablation benchmarks use
        this toggle).
    solve_strategy:
        ``"auto"`` (static schedule when possible), ``"scheduled"`` or
        ``"guarded"``.
    processor_opt:
        Enable the §4 processor optimization (partitioned reductions run
        as one combining router send on the operand grid).  On by default,
        as in the paper's compiler; turn off for the ablation benchmark.
    cse:
        Enable §4's common sub-expression detection: within one parallel
        statement, pure subexpressions shared between a predicate and its
        body (or repeated inside one expression) are evaluated and charged
        once.  On by default, as in the paper's compiler.
    plans:
        Execute construct bodies as cached compiled closures instead of
        recursive AST walks (see ``docs/PERFORMANCE.md``).  Semantics and
        simulated clock are identical either way; set False (or export
        ``REPRO_NO_PLANS=1``) to force the tree-walking oracle.
    comm_tiers:
        Dispatch each remote array reference to its cheapest communication
        tier — NEWS shift, spread, broadcast, precomputed permutation or
        general router (see "Communication tiers" in
        ``docs/PERFORMANCE.md``).  Set False (or export
        ``REPRO_NO_COMM_TIERS=1``) to service and charge every remote
        reference through the general router.
    frontier:
        Run iterated constructs (``solve``/``*solve``/``*par``) with
        active-set ("frontier") sweeps: after the first full sweep, only
        the lanes reachable from last sweep's change masks are evaluated
        and only the active VP set is charged (see "Frontier execution"
        in ``docs/PERFORMANCE.md``).  Results are bit-identical and the
        simulated Clock is never higher than with full sweeps.  Set False
        (or export ``REPRO_NO_FRONTIER=1``) to restore full sweeps with
        bit-identical fingerprints to the non-frontier build.
    fusion:
        Lower construct bodies to whole-array register programs with
        static charge tables (see "Kernel fusion" in
        ``docs/PERFORMANCE.md``): the steady-state sweep loop does no
        per-statement AST, environment, or charge bookkeeping.
        Statements the pass cannot prove static run as unfused segments
        inside the fused sweep.  Results and Clock fingerprints are
        bit-identical either way; set False (or export
        ``REPRO_NO_FUSION=1``) to restore the per-closure plan engine.
    log_tiers:
        Record, per ``(line, array)`` reference site, the set of tiers
        dispatched at run time (``last_interpreter.tier_log``) — used by
        the static-vs-runtime parity tests.
    sanitize:
        Arm the runtime sanitizer (also via ``REPRO_SANITIZE=1``): both
        engines record per-statement scatter duplicates and dispatched
        communication tiers, which are cross-checked against the static
        analyzer's exact verdicts (``repro lint``).  A contradiction
        raises :class:`~repro.lang.errors.UCSanitizerError` — it means an
        analyzer or engine bug, never a property of the program.  Implies
        ``log_tiers`` (which disables the frontier engine, so sanitized
        fingerprints differ from unsanitized ones when frontier sweeps
        would have fired).  See ``docs/ANALYSIS.md``.
    faults:
        A :class:`~repro.machine.faults.FaultPlan` (or a spec string for
        :meth:`FaultPlan.parse <repro.machine.faults.FaultPlan.parse>`)
        of hardware failures to inject.  Installing a plan automatically
        arms checkpoint/replay recovery (see ``docs/ROBUSTNESS.md``).
    recovery:
        A :class:`~repro.interp.recovery.RecoveryPolicy` overriding the
        default retry count / backoff.
    checkpoints:
        Take checkpoints at ``par``/``solve`` boundaries even with no
        fault plan installed (the overhead benchmark's toggle).
    solve_sweep_limit:
        Cap on ``solve``/``*solve`` sweeps before the divergence error
        (default: the global ``MAX_SWEEPS`` backstop; also settable via
        ``REPRO_SOLVE_SWEEP_LIMIT``).
    shards:
        Partition the simulated machine into K resident shards connected
        by an inter-machine link (the ``intershard`` cost tier): remote
        references the placement proves to cross a shard boundary are
        gathered into per-destination slabs, one bulk exchange per shard
        pair per sweep.  Results and Clock fingerprints are bit-identical
        for every K — sharding is an accounting overlay on the global
        clock (see "Sharded execution" in ``docs/PERFORMANCE.md``).
        ``REPRO_SHARDS=K`` overrides in both directions (``=1`` is the
        escape hatch forcing unsharded execution).
    placement:
        ``"map"`` (default) derives the partition axis from the program's
        own ``map`` section — the axis with the least statically
        predicted cross-shard slab traffic wins; ``"block"`` is the naive
        axis-0 banding baseline the sharding benchmark compares against.
    compile_store:
        The content-addressed :class:`~repro.interp.compile_store.CompileStore`
        to compile through (default: the process-wide store, so repeated
        ``UCProgram`` constructions of the same source reuse the parsed
        frontend, and repeated runs under the same machine config and
        effective engine flags reuse compiled plans, fused kernels and
        frontier analyses).  Pass ``None`` for fully private per-program
        compilation (the pre-store behaviour).  Results and Clock
        fingerprints are bit-identical either way: compilation charges
        nothing on the simulated clock.
    """

    def __init__(
        self,
        source: str,
        *,
        defines: Optional[Dict[str, int]] = None,
        machine_config: Optional[MachineConfig] = None,
        apply_maps: bool = True,
        solve_strategy: str = "auto",
        processor_opt: bool = True,
        cse: bool = True,
        plans: bool = True,
        comm_tiers: bool = True,
        frontier: bool = True,
        fusion: bool = True,
        log_tiers: bool = False,
        sanitize: bool = False,
        shards: Optional[int] = None,
        placement: str = "map",
        faults: Optional[Union[str, FaultPlan]] = None,
        recovery=None,
        checkpoints: bool = False,
        solve_sweep_limit: Optional[int] = None,
        compile_store: Any = _DEFAULT_STORE,
        _ast=None,
    ) -> None:
        self.source = source
        self.defines = dict(defines or {})
        self.machine_config = machine_config
        self.apply_maps = apply_maps
        self.solve_strategy = solve_strategy
        self.processor_opt = processor_opt
        self.cse = cse
        self.plans = plans
        self.comm_tiers = comm_tiers
        self.frontier = frontier
        self.fusion = fusion
        self.log_tiers = log_tiers
        self.sanitize = sanitize
        self.shards = shards
        self.placement = placement
        if placement not in ("map", "block"):
            raise ValueError(f"unknown placement policy {placement!r}")
        #: (n_shards, policy) -> chosen partition axis; the axis search
        #: runs static analysis once per program, not once per run
        self._placement_axis_memo: Dict[tuple, int] = {}
        # parse eagerly: a bad spec should fail at construction, not mid-run
        self.faults = (
            FaultPlan.parse(faults) if isinstance(faults, str) else faults
        )
        self.recovery = recovery
        self.checkpoints = checkpoints
        self.solve_sweep_limit = solve_sweep_limit
        #: the shared compile store (None = private per-program caching;
        #: programs built from an AST always compile privately — there is
        #: no source text to content-address)
        self.compile_store: Optional[CompileStore] = (
            default_store() if compile_store is _DEFAULT_STORE else compile_store
        )
        #: per-phase frontend wall times for this object (all zero when
        #: the store served a cached frontend)
        self.compile_times: Dict[str, float] = {
            "parse_s": 0.0,
            "semantics_s": 0.0,
            "layouts_s": 0.0,
        }
        #: True when parse/semantics/layouts came from the compile store
        self.compile_cached = False
        self._frontend_key = None

        def _compile_frontend():
            t0 = time.perf_counter()
            tree = _ast if _ast is not None else parse_program(source)
            t1 = time.perf_counter()
            info = analyze(tree, self.defines)
            t2 = time.perf_counter()
            layouts = build_layouts(info, apply_maps=apply_maps)
            t3 = time.perf_counter()
            self.compile_times["parse_s"] = 0.0 if _ast is not None else t1 - t0
            self.compile_times["semantics_s"] = t2 - t1
            self.compile_times["layouts_s"] = t3 - t2
            return tree, info, layouts

        if self.compile_store is not None and _ast is None:
            self._frontend_key = CompileStore.frontend_key(
                source, self.defines, apply_maps
            )
            entry, self.compile_cached = self.compile_store.frontend(
                self._frontend_key, _compile_frontend, len(source)
            )
            # sharing the AST object across program instances is what
            # lines up the plan cache's id(node) keys between them
            self.ast, self.info, self.layouts = entry.ast, entry.info, entry.layouts
        else:
            self.ast, self.info, self.layouts = _compile_frontend()
        self.last_interpreter: Optional[Interpreter] = None

    @classmethod
    def from_ast(cls, program_ast, **kwargs) -> "UCProgram":
        """Build from an already-constructed AST (used by the embedded DSL)."""
        return cls("<built ast>", _ast=program_ast, **kwargs)

    def run(
        self,
        inputs: Optional[Dict[str, Union[int, float, np.ndarray]]] = None,
        *,
        seed: int = 20250704,
        machine: Optional[Machine] = None,
        profile: bool = False,
        deadline=None,
        faults: Any = _UNSET,
        recovery: Any = _UNSET,
    ) -> RunResult:
        """Execute ``main`` on a fresh machine; returns the final state.

        With ``profile=True`` the result's ``.profile`` maps each
        top-level statement of ``main`` to its simulated time.
        ``deadline`` (seconds, a :class:`~repro.interp.deadline.Deadline`
        or a :class:`~repro.interp.deadline.DeadlineMonitor`) cancels the
        run with :class:`~repro.interp.deadline.UCDeadlineError` at the
        next construct/sweep boundary once exceeded.  ``faults`` and
        ``recovery`` override the program-level settings for this run
        only (pass ``None`` to run a fault-configured program clean —
        the execution service's retries use this).
        """
        pr = self.prepare(
            inputs, seed=seed, machine=machine, faults=faults, recovery=recovery
        )
        return pr.run(profile=profile, deadline=deadline)

    def prepare(
        self,
        inputs: Optional[Dict[str, Union[int, float, np.ndarray]]] = None,
        *,
        seed: int = 20250704,
        machine: Optional[Machine] = None,
        faults: Any = _UNSET,
        recovery: Any = _UNSET,
    ) -> "PreparedRun":
        """Build a machine + interpreter primed at the start of ``main``.

        :meth:`run` is ``prepare(...).run(...)``; the execution service
        uses the pieces separately so a job can execute in preemptible
        slices (:meth:`Interpreter.run_main_from`) and resume — possibly
        in another process — from a portable snapshot.
        """
        fault_plan = self.faults if faults is _UNSET else (
            FaultPlan.parse(faults) if isinstance(faults, str) else faults
        )
        recovery_policy = self.recovery if recovery is _UNSET else recovery
        m = machine if machine is not None else Machine(self.machine_config, seed=seed)
        # sharding is an observability overlay on the clock: it never
        # perturbs the global charge stream, so plan caches, engines and
        # fingerprints are shared with (and identical to) unsharded runs
        n_shards = self.effective_shards()
        if n_shards > 1:
            self._make_sharded(m, n_shards)
        plan_cache = self._shared_plan_cache(m, machine, fault_plan)
        interp = Interpreter(
            self.info,
            m,
            self.layouts,
            seed=seed,
            solve_strategy=self.solve_strategy,
            processor_opt=self.processor_opt,
            cse=self.cse,
            plans=self.plans,
            comm_tiers=self.comm_tiers,
            frontier=self.frontier,
            fusion=self.fusion,
            log_tiers=self.log_tiers,
            sanitize=self.sanitize,
            checkpoints=self.checkpoints or fault_plan is not None,
            recovery_policy=recovery_policy,
            solve_sweep_limit=self.solve_sweep_limit,
            plan_cache=plan_cache,
        )
        if inputs:
            interp.load_inputs(inputs)
        # time the algorithm, not allocation / front-end input I/O — the
        # paper's measurements start with the data already on the machine
        m.clock.reset()
        # arm faults only now: triggers count from the start of main, so a
        # fault spec means the same thing whatever the setup traffic was
        if fault_plan is not None:
            m.install_faults(fault_plan)
        return PreparedRun(self, m, interp, fault_plan, plan_cache)

    def run_batch(
        self,
        inputs: Sequence[Optional[Dict[str, Union[int, float, np.ndarray]]]],
        *,
        seed: int = 20250704,
    ) -> List[RunResult]:
        """Execute one instance of the program per element of ``inputs``.

        Each element is an inputs dict (or None/{} for defaults), exactly
        as :meth:`run` takes; the return value is one :class:`RunResult`
        per instance, bit-identical — values, stdout and clock
        fingerprints — to ``[self.run(inp, seed=seed) for inp in
        inputs]``.  When the instances share grid geometry (they always
        do: same program, same machine config) the batched lane engine
        executes fused ``*par``/``*solve`` sweeps once over a
        lane-stacked array instead of once per instance; anything the
        batched path cannot model falls back to the sequential loop
        (``REPRO_NO_BATCH=1`` forces that loop).
        """
        from .batch import run_batch as _run_batch

        return _run_batch(self, inputs, seed=seed)

    def effective_shards(self) -> int:
        """Shard count this run will use: ``REPRO_SHARDS`` overrides the
        program's ``shards=`` in both directions (``=1`` forces an
        unsharded run; the differential CI gate uses ``=4``)."""
        env_k = commtiers.shards_from_env()
        if env_k is not None:
            return env_k
        return self.shards if self.shards and self.shards > 1 else 1

    def _make_sharded(self, m: Machine, n_shards: int):
        """Wrap ``m`` in a :class:`~repro.machine.shards.ShardedMachine`.

        The partition-axis search (static analysis over the program's
        reference verdicts) is memoized per (K, policy); the Placement
        itself is rebuilt per run — it carries live-shard state that a
        fault run mutates.
        """
        from ..machine.shards import ShardedMachine
        from ..mapping.placement import Placement, derive_placement

        key = (n_shards, self.placement)
        axis = self._placement_axis_memo.get(key)
        if axis is None:
            axis = derive_placement(
                self.info, self.layouts, n_shards, policy=self.placement
            ).axis
            self._placement_axis_memo[key] = axis
        placement = Placement(n_shards, axis=axis, policy=self.placement)
        return ShardedMachine(m, n_shards, placement)

    def _shared_plan_cache(
        self,
        m: Machine,
        machine_arg: Optional[Machine],
        fault_plan: Any = _UNSET,
    ) -> Optional[PlanCache]:
        """The store's shared PlanCache for this (program, machine, flags).

        Returns None — a private per-run cache — whenever sharing would
        be unsound or unkeyable: no store, a program built from an AST
        (no content key), an injected fault plan (recovery remaps
        layouts mid-run), or a caller-provided machine (its config may
        not describe its mutated state, e.g. dead PEs from a prior run).
        ``fault_plan`` is the *effective* plan when a run overrides the
        program's (the execution service's per-job plans).
        """
        if fault_plan is _UNSET:
            fault_plan = self.faults
        if (
            self.compile_store is None
            or self._frontend_key is None
            or fault_plan is not None
            or machine_arg is not None
        ):
            return None
        flags = resolve_engine_flags(
            solve_strategy=self.solve_strategy,
            processor_opt=self.processor_opt,
            cse=self.cse,
            plans=self.plans,
            comm_tiers=self.comm_tiers,
            frontier=self.frontier,
            fusion=self.fusion,
            log_tiers=self.log_tiers,
            sanitize=self.sanitize,
            solve_sweep_limit=self.solve_sweep_limit,
        )
        cache, _existed = self.compile_store.backend(
            self._frontend_key, m.config, flags
        )
        return cache

    def _compile_summary(
        self, pc_after: Dict[str, float], pc_before: Dict[str, float], execute_s: float
    ) -> Dict[str, float]:
        """The --stats breakdown: frontend times + per-kind build deltas."""
        out: Dict[str, float] = {
            "frontend_cached": float(self.compile_cached),
            "parse_s": self.compile_times["parse_s"],
            "semantics_s": self.compile_times["semantics_s"],
            "layouts_s": self.compile_times["layouts_s"],
            "execute_s": execute_s,
            "recompiles": pc_after["misses"] - pc_before["misses"],
        }
        plan_s = fuse_s = frontier_s = 0.0
        for key, after in pc_after.items():
            if not key.startswith("build_seconds."):
                continue
            delta = after - pc_before.get(key, 0.0)
            kind = key[len("build_seconds.") :]
            if kind == "fuse":
                fuse_s += delta
            elif kind == "frontier":
                frontier_s += delta
            else:
                plan_s += delta
        out["plan_s"] = plan_s
        out["fuse_s"] = fuse_s
        out["frontier_s"] = frontier_s
        return out


class PreparedRun:
    """A machine + interpreter primed at the start of ``main``.

    Built by :meth:`UCProgram.prepare`.  :meth:`run` executes to
    completion (this is exactly what ``UCProgram.run`` does); the
    execution service instead drives :attr:`interp` itself —
    ``run_main_from(prepared.context, start_pc, boundary)`` in slices,
    suspending into portable snapshots between them — and calls
    :meth:`finish` when the program completes.
    """

    def __init__(
        self,
        program: UCProgram,
        machine: Machine,
        interp: Interpreter,
        fault_plan: Optional[FaultPlan],
        plan_cache: Optional[PlanCache],
    ) -> None:
        self.program = program
        self.machine = machine
        self.interp = interp
        self.fault_plan = fault_plan
        self.plan_cache = plan_cache
        #: the main context resumable slices execute in (its environment
        #: is a direct child of the global environment — the property
        #: portable snapshots need)
        self.context = interp.make_main_context()
        self._pc_before = interp.plan_cache.counters()
        #: accumulated execute wall seconds (slices add to it)
        self.execute_s = 0.0

    def run(self, *, profile: bool = False, deadline=None) -> RunResult:
        """Execute ``main`` to completion and package the result."""
        interp = self.interp
        monitor = None
        if deadline is not None:
            monitor = DeadlineMonitor.from_spec(deadline)
            interp.deadline = monitor
            monitor.begin()
        t_exec = time.perf_counter()
        try:
            if monitor is None or profile:
                interp.run_main(profile=profile)
            else:
                interp.run_main_from(self.context)
        finally:
            if monitor is not None:
                monitor.pause()
            if self.fault_plan is not None:
                # leave the machine reusable (and the plan's log readable)
                self.machine.clock.fault_hook = None
            self.execute_s += time.perf_counter() - t_exec
        return self.finish()

    def finish(self) -> RunResult:
        """Package the completed run (counters, summaries, sanitizer)."""
        interp = self.interp
        program = self.program
        if self.fault_plan is not None:
            self.machine.clock.fault_hook = None
        program.last_interpreter = interp
        result = RunResult(interp)
        result.compile = program._compile_summary(
            interp.plan_cache.counters(), self._pc_before, self.execute_s
        )
        if self.plan_cache is not None and program.compile_store is not None:
            result.store = program.compile_store.stats()
        if interp.sanitizer is not None:
            # hard failure on any contradiction; the summary feeds --stats
            result.sanitizer = interp.sanitizer.cross_check(interp)
        return result
