"""Statement execution: C control flow plus par / seq / oneof.

``par`` extends the grid context with one axis per index set and runs its
arms synchronously under predicate masks; ``*par`` re-evaluates predicates
each sweep, polling the machine's global-OR line between iterations the
way the real front end did.  ``seq`` is a front-end loop binding its
element to successive scalar values.  ``oneof`` picks one enabled arm
non-deterministically (machine RNG; no fairness guarantee, §3.7).
``solve`` lives in :mod:`repro.interp.solve`.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

import numpy as np

from ..lang import ast
from ..lang.errors import UCRuntimeError, UCSemanticError
from .env import Env
from .eval_expr import (
    ExecContext,
    Value,
    _truthy,
    charge_grid_op,
    eval_expr,
)
from .plan import ConstructPlan, compile_construct
from .values import (
    ArrayVar,
    ElementBinding,
    GridContext,
    ParallelLocal,
    ScalarVar,
    coerce_scalar,
    numpy_ctype,
)


def _plans_for(ip, stmt: ast.UCStmt, grid: GridContext) -> Optional[ConstructPlan]:
    """Cached :class:`ConstructPlan` for this construct on this grid.

    Returns None when plan execution is disabled (``plans=False`` or
    ``REPRO_NO_PLANS``), which sends every caller down the tree-walking
    path unchanged.
    """
    if not getattr(ip, "plans_enabled", False):
        return None
    return ip.plan_cache.get_or_build(
        "construct", stmt, grid.axes, lambda: compile_construct(stmt)
    )


class ReturnSignal(Exception):
    def __init__(self, value: Optional[Value]) -> None:
        self.value = value


class BreakSignal(Exception):
    pass


class ContinueSignal(Exception):
    pass


#: hard cap on iterating-construct sweeps, to turn accidental livelock
#: (e.g. a *par whose predicate never falsifies) into a clear error;
#: real programs iterate O(problem diameter) times, orders below this
MAX_SWEEPS = 100_000


def exec_stmt(ip, stmt: ast.Stmt, ctx: ExecContext) -> None:
    if isinstance(stmt, ast.Block):
        inner = ctx.with_env(ctx.env.child())
        for s in stmt.stmts:
            exec_stmt(ip, s, inner)
        return
    if isinstance(stmt, ast.DeclGroup):
        for s in stmt.decls:
            exec_stmt(ip, s, ctx)
        return
    if isinstance(stmt, ast.ExprStmt):
        eval_expr(ip, stmt.expr, ctx)
        return
    if isinstance(stmt, ast.EmptyStmt):
        return
    if isinstance(stmt, ast.VarDecl):
        _exec_var_decl(ip, stmt, ctx)
        return
    if isinstance(stmt, ast.IndexSetDecl):
        ip.declare_index_set(stmt, ctx.env)
        return
    if isinstance(stmt, ast.If):
        _exec_if(ip, stmt, ctx)
        return
    if isinstance(stmt, ast.While):
        _exec_while(ip, stmt, ctx)
        return
    if isinstance(stmt, ast.DoWhile):
        _exec_do_while(ip, stmt, ctx)
        return
    if isinstance(stmt, ast.For):
        _exec_for(ip, stmt, ctx)
        return
    if isinstance(stmt, ast.Return):
        value = eval_expr(ip, stmt.value, ctx) if stmt.value is not None else None
        raise ReturnSignal(value)
    if isinstance(stmt, ast.Break):
        raise BreakSignal()
    if isinstance(stmt, ast.Continue):
        raise ContinueSignal()
    if isinstance(stmt, ast.UCStmt):
        # deadline poll at the entry of each *outermost* construct: a
        # safe cancellation point (no sweep in flight, no element bound)
        if ip.current_construct is None:
            ip.poll_boundary(stmt)
        # a nested construct rebinds elements: run it outside any armed
        # CSE cache (it arms its own) and drop stale entries afterwards
        with ip.cse_suspend():
            recovery = getattr(ip, "recovery", None)
            if recovery is not None and recovery.wants(stmt):
                recovery.run_protected(ip, stmt, ctx)
            else:
                dispatch_construct(ip, stmt, ctx)
        return
    raise UCRuntimeError(
        f"cannot execute {type(stmt).__name__}", stmt.line, stmt.col
    )


def dispatch_construct(ip, stmt: ast.UCStmt, ctx: ExecContext) -> None:
    """Run one UC construct (the body of :func:`exec_stmt`'s UCStmt case;
    also the replay entry point of the recovery manager)."""
    # remembered so a §3.4 violation deep in the body can name the
    # construct it happened under
    prev = getattr(ip, "current_construct", None)
    ip.current_construct = stmt
    try:
        if stmt.kind == "par":
            exec_par(ip, stmt, ctx)
        elif stmt.kind == "seq":
            exec_seq(ip, stmt, ctx)
        elif stmt.kind == "oneof":
            exec_oneof(ip, stmt, ctx)
        elif stmt.kind == "solve":
            from .solve import exec_solve  # local import avoids a cycle

            exec_solve(ip, stmt, ctx)
        else:  # pragma: no cover
            raise UCRuntimeError(
                f"unknown construct {stmt.kind!r}", stmt.line, stmt.col
            )
    finally:
        ip.current_construct = prev


# ---------------------------------------------------------------------------
# declarations and C control flow
# ---------------------------------------------------------------------------


def _exec_var_decl(ip, stmt: ast.VarDecl, ctx: ExecContext) -> None:
    if stmt.dims:
        if not ctx.grid.is_host:
            raise UCRuntimeError(
                f"array {stmt.name!r} declared inside a parallel body; "
                "declare arrays at function or program level",
                stmt.line,
                stmt.col,
            )
        dims = tuple(int(_host_scalar(ip, d, ctx, stmt)) for d in stmt.dims)
        var = ip.allocate_array(stmt.name, stmt.ctype, dims)
        ctx.env.declare(stmt.name, var)
        return
    if ctx.grid.is_host:
        var = ScalarVar(stmt.name, stmt.ctype)
        ctx.env.declare(stmt.name, var)
        ip.cse_invalidate()  # the new name may shadow one in cached expressions
        if stmt.init is not None:
            var.value = coerce_scalar(stmt.ctype, eval_expr(ip, stmt.init, ctx))
        return
    local = ParallelLocal(
        stmt.name,
        stmt.ctype,
        ctx.grid.rank,
        np.zeros(ctx.grid.shape, dtype=numpy_ctype(stmt.ctype)),
    )
    ctx.env.declare(stmt.name, local)
    ip.cse_invalidate()  # the new name may shadow one in cached expressions
    if stmt.init is not None:
        value = eval_expr(ip, stmt.init, ctx)
        mask = ctx.active_mask()
        local.data[mask] = np.broadcast_to(np.asarray(value), ctx.grid.shape)[mask]


def _host_scalar(ip, expr: ast.Expr, ctx: ExecContext, at: ast.Node) -> Value:
    v = eval_expr(ip, expr, ctx)
    if isinstance(v, np.ndarray):
        raise UCRuntimeError("expected a scalar value", at.line, at.col)
    return v


def _exec_if(ip, stmt: ast.If, ctx: ExecContext) -> None:
    cond = eval_expr(ip, stmt.cond, ctx)
    if not isinstance(cond, np.ndarray):
        charge_grid_op(ip, ctx)
        if cond:
            exec_stmt(ip, stmt.then, ctx)
        elif stmt.els is not None:
            exec_stmt(ip, stmt.els, ctx)
        return
    # data-parallel if: both branches run under complementary masks
    cbool = np.broadcast_to(np.asarray(_truthy(cond)), ctx.grid.shape)
    vps = ip.grid_vpset(ctx.grid.shape)
    ip.machine.clock.charge("context", count=2, vp_ratio=vps.vp_ratio)
    then_ctx = ctx.refine(cbool)
    if np.any(then_ctx.active_mask()):
        exec_stmt(ip, stmt.then, then_ctx)
    if stmt.els is not None:
        else_ctx = ctx.refine(~cbool)
        if np.any(else_ctx.active_mask()):
            exec_stmt(ip, stmt.els, else_ctx)


def _loop_cond(ip, expr: ast.Expr, ctx: ExecContext, at: ast.Node) -> bool:
    v = eval_expr(ip, expr, ctx)
    if isinstance(v, np.ndarray):
        raise UCRuntimeError(
            "loop condition must be scalar in a parallel context; use *par",
            at.line,
            at.col,
        )
    return bool(v)


def _exec_while(ip, stmt: ast.While, ctx: ExecContext) -> None:
    sweeps = 0
    while _loop_cond(ip, stmt.cond, ctx, stmt):
        ip.machine.clock.charge("host")
        try:
            exec_stmt(ip, stmt.body, ctx)
        except BreakSignal:
            return
        except ContinueSignal:
            pass
        sweeps += 1
        if sweeps > MAX_SWEEPS:
            raise UCRuntimeError("while loop exceeded the sweep limit", stmt.line, stmt.col)


def _exec_do_while(ip, stmt: ast.DoWhile, ctx: ExecContext) -> None:
    sweeps = 0
    while True:
        ip.machine.clock.charge("host")
        try:
            exec_stmt(ip, stmt.body, ctx)
        except BreakSignal:
            return
        except ContinueSignal:
            pass
        if not _loop_cond(ip, stmt.cond, ctx, stmt):
            return
        sweeps += 1
        if sweeps > MAX_SWEEPS:
            raise UCRuntimeError("do-while exceeded the sweep limit", stmt.line, stmt.col)


def _exec_for(ip, stmt: ast.For, ctx: ExecContext) -> None:
    if stmt.init is not None:
        eval_expr(ip, stmt.init, ctx)
    sweeps = 0
    while stmt.cond is None or _loop_cond(ip, stmt.cond, ctx, stmt):
        ip.machine.clock.charge("host")
        try:
            exec_stmt(ip, stmt.body, ctx)
        except BreakSignal:
            return
        except ContinueSignal:
            pass
        if stmt.step is not None:
            eval_expr(ip, stmt.step, ctx)
        sweeps += 1
        if sweeps > MAX_SWEEPS:
            raise UCRuntimeError("for loop exceeded the sweep limit", stmt.line, stmt.col)


# ---------------------------------------------------------------------------
# par
# ---------------------------------------------------------------------------


def enter_grid(ip, stmt: ast.UCStmt, ctx: ExecContext) -> ExecContext:
    """Extend the grid with the construct's index sets and bind elements."""
    sets = [ip.resolve_index_set(name, ctx, at=stmt) for name in stmt.index_sets]
    grid = ctx.grid.extend(sets)
    env = ctx.env.child()
    for offset, isv in enumerate(sets):
        axis = ctx.grid.rank + offset
        env.declare(isv.elem_name, ElementBinding(isv.elem_name, isv.name, "axis", axis=axis))
    if ctx.mask is not None:
        mask = np.broadcast_to(
            ctx.mask.reshape(ctx.mask.shape + (1,) * len(sets)), grid.shape
        )
    else:
        mask = None
    vps = ip.grid_vpset(grid.shape)
    ip.machine.clock.charge("context", count=2, vp_ratio=vps.vp_ratio)
    return ExecContext(grid, mask, env)


def _block_masks(
    ip,
    stmt: ast.UCStmt,
    inner: ExecContext,
    plans: Optional[ConstructPlan] = None,
) -> Tuple[List[np.ndarray], Optional[np.ndarray]]:
    """Evaluate arm predicates; returns per-arm masks and the union."""
    base = inner.active_mask()
    masks: List[np.ndarray] = []
    union: Optional[np.ndarray] = None
    for k, block in enumerate(stmt.blocks):
        if block.pred is None:
            masks.append(base)
        else:
            if plans is not None:
                pv = plans.preds[k](ip, inner)
            else:
                pv = eval_expr(ip, block.pred, inner)
            pb = np.broadcast_to(np.asarray(_truthy(pv)), inner.grid.shape)
            m = base & pb
            masks.append(m)
            union = pb if union is None else (union | pb)
    return masks, union


def _run_blocks_once(
    ip,
    stmt: ast.UCStmt,
    inner: ExecContext,
    plans: Optional[ConstructPlan] = None,
) -> bool:
    """One synchronous execution of all arms; returns whether any lane ran.

    The CSE cache is armed for the duration: a predicate and its arm's
    body share subexpression evaluations (§4's common sub-expression
    detection; writes invalidate as they happen).
    """
    from . import fuse

    fused = fuse.fused_for(ip, stmt, inner, plans)
    with ip.cse_arm():
        if fused is not None:
            sweep = fused.begin_sweep(ip, inner)
            return fused.run_body(ip, inner, sweep)
        masks, union = _block_masks(ip, stmt, inner, plans)
        ran = False
        for k, (block, mask) in enumerate(zip(stmt.blocks, masks)):
            if np.any(mask):
                ran = True
                sub = inner.with_mask(mask)
                if plans is not None:
                    plans.stmts[k](ip, sub)
                else:
                    exec_stmt(ip, block.stmt, sub)
        if stmt.others is not None:
            base = inner.active_mask()
            om = base & (
                ~union if union is not None else np.zeros(inner.grid.shape, bool)
            )
            if np.any(om):
                ran = True
                sub = inner.with_mask(om)
                if plans is not None:
                    plans.others(ip, sub)
                else:
                    exec_stmt(ip, stmt.others, sub)
        return ran


def exec_par(ip, stmt: ast.UCStmt, ctx: ExecContext) -> None:
    inner = enter_grid(ip, stmt, ctx)
    plans = _plans_for(ip, stmt, inner.grid)
    if not stmt.star:
        _run_blocks_once(ip, stmt, inner, plans)
        return
    _check_starred(stmt)
    from . import frontier

    sess = frontier.star_session(ip, stmt, inner, "par")
    sweeps = 0
    vps = ip.grid_vpset(inner.grid.shape)
    while True:
        # sweeps complete atomically; between them is a safe cancel point
        ip.poll_boundary(stmt)
        states = sess.plan_compressed() if sess is not None else None
        if states is not None:
            # compressed sweep over the active lanes only; the cached
            # per-arm predicate masks (refreshed where re-evaluated)
            # decide termination exactly as the full union would
            if not sess.run_compressed(states):
                return
        else:
            if sess is not None:
                sess.full_begin()
            from . import fuse

            fused = fuse.fused_for(ip, stmt, inner, plans)
            with ip.cse_arm():
                if fused is not None:
                    sweep = fused.begin_sweep(ip, inner)
                    masks = sweep.masks
                else:
                    masks, _ = _block_masks(ip, stmt, inner, plans)
                ip.machine.clock.charge("global_or", vp_ratio=vps.vp_ratio)
                ip.machine.clock.charge("host_cm_latency")
                if not any(np.any(m) for m in masks):
                    return
                if fused is not None:
                    fused.run_body(ip, inner, sweep)
                else:
                    for k, (block, mask) in enumerate(zip(stmt.blocks, masks)):
                        if np.any(mask):
                            sub = inner.with_mask(mask)
                            if plans is not None:
                                plans.stmts[k](ip, sub)
                            else:
                                exec_stmt(ip, block.stmt, sub)
            if sess is not None:
                sess.full_end()
                sess.note_par_masks(masks)
        sweeps += 1
        if sweeps > MAX_SWEEPS:
            raise UCRuntimeError(
                "*par exceeded the sweep limit (predicate never falsified?)",
                stmt.line,
                stmt.col,
            )


def _check_starred(stmt: ast.UCStmt) -> None:
    if any(b.pred is None for b in stmt.blocks):
        raise UCRuntimeError(
            f"*{stmt.kind} arms need 'st' predicates (otherwise the iteration "
            "never terminates)",
            stmt.line,
            stmt.col,
        )
    if stmt.others is not None:
        raise UCRuntimeError(
            f"*{stmt.kind} cannot have an 'others' clause", stmt.line, stmt.col
        )


# ---------------------------------------------------------------------------
# seq
# ---------------------------------------------------------------------------


def exec_seq(ip, stmt: ast.UCStmt, ctx: ExecContext) -> None:
    sets = [ip.resolve_index_set(name, ctx, at=stmt) for name in stmt.index_sets]
    plans = _plans_for(ip, stmt, ctx.grid)
    sweeps = 0
    while True:
        any_ran = _seq_sweep(ip, stmt, sets, ctx, plans)
        if not stmt.star or not any_ran:
            return
        sweeps += 1
        if sweeps > MAX_SWEEPS:
            raise UCRuntimeError("*seq exceeded the sweep limit", stmt.line, stmt.col)


def _seq_sweep(
    ip,
    stmt: ast.UCStmt,
    sets,
    ctx: ExecContext,
    plans: Optional[ConstructPlan] = None,
) -> bool:
    any_ran = False
    for combo in itertools.product(*[s.values for s in sets]):
        # each iteration rebinds the loop elements: stale CSE entries
        # mentioning them must go
        ip.cse_invalidate()
        env = ctx.env.child()
        for isv, value in zip(sets, combo):
            env.declare(
                isv.elem_name,
                ElementBinding(isv.elem_name, isv.name, "scalar", value=int(value)),
            )
        iter_ctx = ctx.with_env(env)
        # the front end drives the loop and broadcasts the loop value
        ip.machine.clock.charge("host_cm_latency")
        if not ctx.grid.is_host:
            vps = ip.grid_vpset(ctx.grid.shape)
            ip.machine.clock.charge("broadcast", vp_ratio=vps.vp_ratio)

        union_scalar_true = False
        union_mask: Optional[np.ndarray] = None
        for k, block in enumerate(stmt.blocks):
            run = plans.stmts[k] if plans is not None else None
            if block.pred is None:
                if run is not None:
                    run(ip, iter_ctx)
                else:
                    exec_stmt(ip, block.stmt, iter_ctx)
                any_ran = True
                union_scalar_true = True
                continue
            if plans is not None:
                pv = plans.preds[k](ip, iter_ctx)
            else:
                pv = eval_expr(ip, block.pred, iter_ctx)
            if isinstance(pv, np.ndarray):
                pb = np.broadcast_to(pv.astype(bool), ctx.grid.shape)
                union_mask = pb if union_mask is None else (union_mask | pb)
                sub = iter_ctx.refine(pb)
                if np.any(sub.active_mask()):
                    if run is not None:
                        run(ip, sub)
                    else:
                        exec_stmt(ip, block.stmt, sub)
                    any_ran = True
            else:
                if pv:
                    union_scalar_true = True
                    if run is not None:
                        run(ip, iter_ctx)
                    else:
                        exec_stmt(ip, block.stmt, iter_ctx)
                    any_ran = True
        if stmt.others is not None:
            run = plans.others if plans is not None else None
            if union_mask is not None:
                sub = iter_ctx.refine(~union_mask)
                if np.any(sub.active_mask()):
                    if run is not None:
                        run(ip, sub)
                    else:
                        exec_stmt(ip, stmt.others, sub)
                    any_ran = True
            elif not union_scalar_true:
                if run is not None:
                    run(ip, iter_ctx)
                else:
                    exec_stmt(ip, stmt.others, iter_ctx)
                any_ran = True
    return any_ran


# ---------------------------------------------------------------------------
# oneof
# ---------------------------------------------------------------------------


def exec_oneof(ip, stmt: ast.UCStmt, ctx: ExecContext) -> None:
    inner = enter_grid(ip, stmt, ctx)
    plans = _plans_for(ip, stmt, inner.grid)
    vps = ip.grid_vpset(inner.grid.shape)
    if not stmt.star:
        _oneof_once(ip, stmt, inner, plans)
        return
    _check_starred(stmt)
    sweeps = 0
    while True:
        ip.machine.clock.charge("global_or", vp_ratio=vps.vp_ratio)
        ip.machine.clock.charge("host_cm_latency")
        if not _oneof_once(ip, stmt, inner, plans):
            return
        sweeps += 1
        if sweeps > MAX_SWEEPS:
            raise UCRuntimeError("*oneof exceeded the sweep limit", stmt.line, stmt.col)


def _oneof_once(
    ip,
    stmt: ast.UCStmt,
    inner: ExecContext,
    plans: Optional[ConstructPlan] = None,
) -> bool:
    """Execute one enabled arm (chosen by the machine RNG); True if any ran."""
    with ip.cse_arm():
        return _oneof_once_armed(ip, stmt, inner, plans)


def _oneof_once_armed(
    ip,
    stmt: ast.UCStmt,
    inner: ExecContext,
    plans: Optional[ConstructPlan] = None,
) -> bool:
    masks, union = _block_masks(ip, stmt, inner, plans)
    enabled = [k for k, m in enumerate(masks) if np.any(m)]
    others_mask: Optional[np.ndarray] = None
    if stmt.others is not None:
        base = inner.active_mask()
        others_mask = base & (
            ~union if union is not None else np.zeros(inner.grid.shape, bool)
        )
        if np.any(others_mask):
            enabled.append(-1)
    if not enabled:
        return False
    pick = enabled[int(ip.rng.integers(0, len(enabled)))]
    if pick == -1:
        assert others_mask is not None
        if plans is not None:
            plans.others(ip, inner.with_mask(others_mask))
        else:
            exec_stmt(ip, stmt.others, inner.with_mask(others_mask))
    else:
        sub = inner.with_mask(masks[pick])
        if plans is not None:
            plans.stmts[pick](ip, sub)
        else:
            exec_stmt(ip, stmt.blocks[pick].stmt, sub)
    return True
