"""Vectorised expression evaluation with cost charging.

Expressions evaluate against an :class:`ExecContext` — a grid context
plus the current activity mask.  In a parallel context every value is a
scalar or a numpy array shaped like the grid; ``&&``, ``||`` and ``?:``
split the mask exactly like the CM's context stack (which is also what
keeps guarded out-of-bounds subscripts such as ``a[i-1]`` under
``i == 0 ? ... : a[i-1]`` from faulting: disabled lanes are never
dereferenced).

Array references are classified by :mod:`repro.mapping.locality` and the
machine clock is charged for the resulting communication tier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..lang import ast
from ..lang.errors import UCMultipleAssignmentError, UCRuntimeError
from ..machine.scan import INF, identity_of
from ..mapping.locality import RefClass, classify_reference, classify_write
from . import commtiers
from .env import Env
from .values import (
    ArrayVar,
    ElementBinding,
    GridContext,
    ParallelLocal,
    ScalarVar,
    SliceParam,
    coerce_scalar,
    numpy_ctype,
)

Value = Union[int, float, np.ndarray]

#: reduction op name -> accumulate ufunc
_RED_UFUNC = {
    "add": np.add,
    "mul": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
    "logand": np.logical_and,
    "logor": np.logical_or,
    "logxor": np.logical_xor,
}


@dataclass
class ExecContext:
    """Where evaluation happens: grid + activity mask + environment."""

    grid: GridContext
    mask: Optional[np.ndarray]  # None = everywhere active; shape == grid.shape
    env: Env

    def active_mask(self) -> np.ndarray:
        if self.mask is not None:
            return self.mask
        return self.grid.full_mask()

    def with_mask(self, mask: Optional[np.ndarray]) -> "ExecContext":
        return ExecContext(self.grid, mask, self.env)

    def with_env(self, env: Env) -> "ExecContext":
        return ExecContext(self.grid, self.mask, env)

    def refine(self, cond: np.ndarray) -> "ExecContext":
        cond = np.asarray(cond, dtype=bool)
        if cond.shape != self.grid.shape:
            cond = np.broadcast_to(cond, self.grid.shape)
        if self.mask is None:
            return self.with_mask(cond)
        return self.with_mask(self.mask & cond)


# ---------------------------------------------------------------------------
# cost helpers
# ---------------------------------------------------------------------------


def charge_grid_op(ip, ctx: ExecContext, count: int = 1) -> None:
    """One elementwise operation: host op in scalar context, ALU on the grid."""
    if ctx.grid.is_host:
        ip.machine.clock.charge("host", count=count)
    else:
        vps = ip.grid_vpset(ctx.grid.shape)
        ip.machine.clock.charge("alu", count=count, vp_ratio=vps.vp_ratio)


def charge_ref(
    ip,
    ctx: ExecContext,
    rc: RefClass,
    *,
    write: bool,
    node: Optional[ast.Index] = None,
    layout=None,
) -> str:
    """Dispatch one classified array reference to its communication tier,
    charge the machine for that tier, and return the tier chosen.

    The tier decision (:func:`repro.interp.commtiers.decide_tier`)
    includes the NEWS/router trade-off the CM-2 compilers made for
    long-distance shifts and the permutation tier for transposes under an
    active ``permute`` map.  With the dispatcher disabled
    (``REPRO_NO_COMM_TIERS=1``), every remote reference is a router
    cycle — the pre-tier engine the benchmarks compare against.
    """
    tier = commtiers.decide_tier(
        rc, ip.machine.clock.costs, write=write, enabled=ip.comm_tiers_enabled
    )
    commtiers.charge_tier(ip, ctx, tier, rc, write=write, layout=layout)
    if node is not None and ip.tier_log is not None:
        ip.tier_log.setdefault((node.line, node.base), set()).add(tier)
    return tier


# ---------------------------------------------------------------------------
# the evaluator
# ---------------------------------------------------------------------------


def eval_expr(ip, expr: ast.Expr, ctx: ExecContext) -> Value:
    """Evaluate ``expr`` under ``ctx``; scalars stay scalars, parallel
    values are arrays shaped like the grid.

    When the interpreter's CSE cache is armed (§4's "common
    sub-expression detection": one statement's predicate and body reuse
    each other's subexpressions), pure parallel subexpressions are
    computed — and charged — once.
    """
    if (
        ip.cse_cache is not None
        and isinstance(expr, (ast.Binary, ast.Index, ast.Unary, ast.Ternary))
        and not ctx.grid.is_host
    ):
        cached = _cse_lookup(ip, expr, ctx)
        if cached is not _CSE_MISS:
            return cached
        value = _eval_uncached(ip, expr, ctx)
        _cse_store(ip, expr, ctx, value)
        return value
    return _eval_uncached(ip, expr, ctx)


_CSE_MISS = object()


def _cse_key(ip, expr: ast.Expr) -> Optional[str]:
    """Structural key for a pure expression; None if uncacheable."""
    key = ip.cse_keys.get(id(expr))
    if key is not None:
        return key or None
    pure = True
    reads = set()
    for node in ast.walk(expr):
        if isinstance(node, (ast.Call, ast.Assign, ast.IncDec, ast.Reduction)):
            pure = False
            break
        if isinstance(node, ast.Name):
            reads.add(node.ident)
        elif isinstance(node, ast.Index):
            reads.add(node.base)
    if not pure:
        ip.cse_keys[id(expr)] = ""
        return None
    from ..compiler.cstar_gen import expr_to_text

    text = expr_to_text(expr)
    ip.cse_keys[id(expr)] = text
    # the read-set lets cse_invalidate(name) drop only entries that can
    # observe a write to `name`
    ip.cse_text_names[text] = frozenset(reads)
    return text


def _cse_lookup(ip, expr: ast.Expr, ctx: ExecContext):
    key = _cse_key(ip, expr)
    if key is None:
        return _CSE_MISS
    hit = ip.cse_cache.get((key, ctx.grid.shape))
    if hit is None:
        return _CSE_MISS
    value, computed_mask = hit
    current = ctx.active_mask()
    # safe to reuse only where the cached evaluation was active
    if computed_mask is None or bool(np.all(computed_mask[current])):
        return value
    return _CSE_MISS


def _cse_store(ip, expr: ast.Expr, ctx: ExecContext, value: Value) -> None:
    key = _cse_key(ip, expr)
    if key is None:
        return
    mask = ctx.mask.copy() if ctx.mask is not None else None
    ip.cse_cache[(key, ctx.grid.shape)] = (value, mask)


def _eval_uncached(ip, expr: ast.Expr, ctx: ExecContext) -> Value:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.InfLit):
        return INF
    if isinstance(expr, ast.StringLit):
        return expr.value  # type: ignore[return-value]  (printf only)
    if isinstance(expr, ast.Name):
        return _eval_name(ip, expr, ctx)
    if isinstance(expr, ast.Index):
        return eval_gather(ip, expr, ctx)
    if isinstance(expr, ast.Unary):
        return _eval_unary(ip, expr, ctx)
    if isinstance(expr, ast.Binary):
        return _eval_binary(ip, expr, ctx)
    if isinstance(expr, ast.Ternary):
        return _eval_ternary(ip, expr, ctx)
    if isinstance(expr, ast.Call):
        return ip.call_function(expr, ctx)
    if isinstance(expr, ast.Reduction):
        return eval_reduction(ip, expr, ctx)
    if isinstance(expr, ast.Assign):
        return eval_assign(ip, expr, ctx)
    if isinstance(expr, ast.IncDec):
        one = ast.IntLit(line=expr.line, col=expr.col, value=1)
        op = "+" if expr.op == "++" else "-"
        return eval_assign(
            ip,
            ast.Assign(line=expr.line, col=expr.col, target=expr.target, op=op, value=one),
            ctx,
        )
    raise UCRuntimeError(
        f"cannot evaluate {type(expr).__name__}", expr.line, expr.col
    )


def _eval_name(ip, expr: ast.Name, ctx: ExecContext) -> Value:
    binding = ctx.env.try_lookup(expr.ident)
    if binding is None:
        raise UCRuntimeError(
            f"undefined identifier {expr.ident!r} at run time", expr.line, expr.col
        )
    if isinstance(binding, ElementBinding):
        if binding.kind == "scalar":
            return binding.value
        return ctx.grid.axis_values(binding.axis)
    if isinstance(binding, ScalarVar):
        return binding.value
    if isinstance(binding, ParallelLocal):
        return ctx.grid.broadcast_from(binding.data, binding.grid_rank)
    if isinstance(binding, (ArrayVar, SliceParam)):
        raise UCRuntimeError(
            f"array {expr.ident!r} used without subscripts", expr.line, expr.col
        )
    if isinstance(binding, (int, float)):
        return binding
    raise UCRuntimeError(
        f"{expr.ident!r} cannot be used as a value here", expr.line, expr.col
    )


def _truthy(v: Value) -> Value:
    if isinstance(v, np.ndarray):
        return v.astype(bool)
    return bool(v)


def _eval_unary(ip, expr: ast.Unary, ctx: ExecContext) -> Value:
    v = eval_expr(ip, expr.operand, ctx)
    charge_grid_op(ip, ctx)
    if expr.op == "-":
        return -v
    if expr.op == "!":
        if isinstance(v, np.ndarray):
            return np.logical_not(v.astype(bool)).astype(np.int64)
        return int(not v)
    if expr.op == "~":
        if isinstance(v, np.ndarray):
            return np.invert(v.astype(np.int64))
        return ~int(v)
    raise UCRuntimeError(f"bad unary {expr.op!r}", expr.line, expr.col)


_SIMPLE_BINOPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
    "^": np.bitwise_xor,
    "<<": np.left_shift,
    ">>": np.right_shift,
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def apply_binop(op: str, a: Value, b: Value, node: ast.Node) -> Value:
    """C semantics for one binary operator on scalars or arrays."""
    arrayish = isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
    if op in _SIMPLE_BINOPS:
        out = _SIMPLE_BINOPS[op](a, b)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return out.astype(np.int64) if isinstance(out, np.ndarray) else int(out)
        return out
    if op == "/":
        return _c_divide(a, b, node, arrayish)
    if op == "%":
        return _c_mod(a, b, node, arrayish)
    if op == "&&":
        out = np.logical_and(_truthy(a), _truthy(b))
        return out.astype(np.int64) if isinstance(out, np.ndarray) else int(out)
    if op == "||":
        out = np.logical_or(_truthy(a), _truthy(b))
        return out.astype(np.int64) if isinstance(out, np.ndarray) else int(out)
    raise UCRuntimeError(f"bad binary operator {op!r}", node.line, node.col)


def _is_int_like(v: Value) -> bool:
    if isinstance(v, np.ndarray):
        return np.issubdtype(v.dtype, np.integer) or v.dtype == bool
    return isinstance(v, (int, np.integer)) and not isinstance(v, bool) or isinstance(v, bool)


def _c_divide(a: Value, b: Value, node: ast.Node, arrayish: bool) -> Value:
    if _is_int_like(a) and _is_int_like(b):
        if arrayish:
            bb = np.asarray(b)
            safe = np.where(bb == 0, 1, bb)
            with np.errstate(divide="ignore"):
                q = np.floor_divide(a, safe)
                r = np.remainder(a, safe)
            adjust = (r != 0) & ((np.asarray(a) < 0) != (bb < 0))
            return q + adjust
        if b == 0:
            raise UCRuntimeError("integer division by zero", node.line, node.col)
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.true_divide(a, b) if arrayish else float(a) / float(b)


def _c_mod(a: Value, b: Value, node: ast.Node, arrayish: bool) -> Value:
    if arrayish:
        bb = np.asarray(b)
        safe = np.where(bb == 0, 1, bb)
        r = np.remainder(a, safe)
        adjust = (r != 0) & ((np.asarray(a) < 0) != (bb < 0))
        return r - adjust * safe
    if b == 0:
        raise UCRuntimeError("integer mod by zero", node.line, node.col)
    q = _c_divide(a, b, node, False)
    return a - q * b


def _eval_binary(ip, expr: ast.Binary, ctx: ExecContext) -> Value:
    if expr.op in ("&&", "||"):
        return _eval_shortcircuit(ip, expr, ctx)
    a = eval_expr(ip, expr.left, ctx)
    b = eval_expr(ip, expr.right, ctx)
    charge_grid_op(ip, ctx)
    return apply_binop(expr.op, a, b, expr)


def _eval_shortcircuit(ip, expr: ast.Binary, ctx: ExecContext) -> Value:
    left = eval_expr(ip, expr.left, ctx)
    charge_grid_op(ip, ctx)
    if not isinstance(left, np.ndarray):
        # scalar left side: C short-circuit semantics
        if expr.op == "&&" and not left:
            return 0
        if expr.op == "||" and left:
            return 1
        right = _truthy(eval_expr(ip, expr.right, ctx))
        if isinstance(right, np.ndarray):
            return right.astype(np.int64)
        return int(right)
    lbool = np.broadcast_to(np.asarray(_truthy(left)), ctx.grid.shape)
    # evaluate the right side only where the left side leaves it live
    live = lbool if expr.op == "&&" else ~lbool
    sub = ctx.refine(live)
    right = eval_expr(ip, expr.right, sub)
    rbool = np.broadcast_to(np.asarray(_truthy(right)), ctx.grid.shape)
    if expr.op == "&&":
        return (lbool & rbool).astype(np.int64)
    return (lbool | rbool).astype(np.int64)


def _eval_ternary(ip, expr: ast.Ternary, ctx: ExecContext) -> Value:
    cond = eval_expr(ip, expr.cond, ctx)
    if ctx.grid.is_host or not isinstance(cond, np.ndarray):
        charge_grid_op(ip, ctx)
        return eval_expr(ip, expr.then, ctx) if cond else eval_expr(ip, expr.els, ctx)
    cbool = np.broadcast_to(np.asarray(_truthy(cond)), ctx.grid.shape)
    then_v = eval_expr(ip, expr.then, ctx.refine(cbool))
    else_v = eval_expr(ip, expr.els, ctx.refine(~cbool))
    charge_grid_op(ip, ctx, count=2)  # the select
    return np.where(cbool, then_v, else_v)


# ---------------------------------------------------------------------------
# array references
# ---------------------------------------------------------------------------


def _resolve_array(ip, node: ast.Index, ctx: ExecContext) -> Tuple[ArrayVar, Tuple[int, ...], np.ndarray]:
    """Resolve the base name, returning (array, fixed-prefix, data view)."""
    binding = ctx.env.try_lookup(node.base)
    if binding is None:
        raise UCRuntimeError(
            f"undefined identifier {node.base!r} at run time", node.line, node.col
        )
    if isinstance(binding, ArrayVar):
        return binding, (), binding.data
    if isinstance(binding, SliceParam):
        return binding.array, binding.prefix, binding.view()
    if isinstance(binding, ParallelLocal):
        raise UCRuntimeError(
            f"parallel local {node.base!r} is a scalar, not an array",
            node.line,
            node.col,
        )
    raise UCRuntimeError(f"{node.base!r} is not an array", node.line, node.col)


def _eval_subscripts(ip, node: ast.Index, ctx: ExecContext) -> List[Value]:
    return [eval_expr(ip, s, ctx) for s in node.subs]


def _bounds_check(
    node: ast.Index,
    subs: Sequence[Value],
    shape: Tuple[int, ...],
    mask: np.ndarray,
) -> None:
    """Raise if any *active* lane indexes out of bounds."""
    for a, s in enumerate(subs):
        extent = shape[a]
        if isinstance(s, np.ndarray):
            bad = ((s < 0) | (s >= extent)) & mask
            if np.any(bad):
                val = int(s[bad][0]) if s[bad].size else -1
                raise UCRuntimeError(
                    f"subscript {a} of {node.base!r} out of range "
                    f"(value {val}, extent {extent})",
                    node.line,
                    node.col,
                )
        else:
            if not 0 <= int(s) < extent:
                raise UCRuntimeError(
                    f"subscript {a} of {node.base!r} out of range "
                    f"(value {int(s)}, extent {extent})",
                    node.line,
                    node.col,
                )


def eval_gather(ip, node: ast.Index, ctx: ExecContext) -> Value:
    """Evaluate an array read, charging the classified communication cost."""
    arr, prefix, data = _resolve_array(ip, node, ctx)
    view_shape = data.shape
    if len(node.subs) != len(view_shape):
        raise UCRuntimeError(
            f"array {node.base!r} needs {len(view_shape)} subscripts, got "
            f"{len(node.subs)}",
            node.line,
            node.col,
        )
    subs = _eval_subscripts(ip, node, ctx)

    if ctx.grid.is_host:
        idx = tuple(int(s) for s in subs)
        _bounds_check(node, subs, view_shape, np.ones((), bool))
        ip.machine.clock.charge("host_cm_latency")
        return data[idx].item()

    mask = ctx.active_mask()
    _bounds_check(node, subs, view_shape, mask)
    rc = classify_reference(
        subs,
        ctx.grid.shape,
        ctx.grid.axis_elems,
        arr.layout,
        positions=ctx.grid.positions,
    )
    tier = charge_ref(ip, ctx, rc, write=False, node=node, layout=arr.layout)

    if tier == "news" and ip.comm_tiers_enabled:
        shifts = commtiers.shift_descriptor(rc, view_shape, ctx.grid.shape)
        if shifts is not None:
            # vectorised NEWS shift: bit-identical to the clipped gather
            # below, but without materialising grid-shaped index arrays
            return commtiers.run_shifts(data, shifts)

    idx_arrays = []
    for a, s in enumerate(subs):
        if isinstance(s, np.ndarray):
            clipped = np.clip(s, 0, view_shape[a] - 1)
        else:
            clipped = np.full(ctx.grid.shape, int(s), dtype=np.int64)
        idx_arrays.append(np.broadcast_to(clipped, ctx.grid.shape))
    return data[tuple(idx_arrays)]


def eval_scatter(
    ip,
    node: ast.Index,
    value: Value,
    ctx: ExecContext,
) -> None:
    """Execute an array write under the mask, enforcing single assignment."""
    arr, prefix, data = _resolve_array(ip, node, ctx)
    view_shape = data.shape
    if len(node.subs) != len(view_shape):
        raise UCRuntimeError(
            f"array {node.base!r} needs {len(view_shape)} subscripts, got "
            f"{len(node.subs)}",
            node.line,
            node.col,
        )
    subs = _eval_subscripts(ip, node, ctx)

    if ctx.grid.is_host:
        idx = tuple(int(s) for s in subs)
        _bounds_check(node, subs, view_shape, np.ones((), bool))
        ip.machine.clock.charge("host_cm_latency")
        data[idx] = _coerce_to_dtype(value, data.dtype)
        ip.cse_invalidate(node.base)
        return

    mask = ctx.active_mask()
    if not np.any(mask):
        return
    _bounds_check(node, subs, view_shape, mask)
    rc = classify_write(
        subs,
        ctx.grid.shape,
        ctx.grid.axis_elems,
        arr.layout,
        positions=ctx.grid.positions,
    )
    charge_ref(ip, ctx, rc, write=True, node=node, layout=arr.layout)

    idx_arrays = []
    for a, s in enumerate(subs):
        if isinstance(s, np.ndarray):
            clipped = np.clip(s, 0, view_shape[a] - 1)
        else:
            clipped = np.full(ctx.grid.shape, int(s), dtype=np.int64)
        idx_arrays.append(np.broadcast_to(clipped, ctx.grid.shape).reshape(-1))

    flat_mask = mask.reshape(-1)
    flat_idx = np.ravel_multi_index(
        tuple(ia[flat_mask] for ia in idx_arrays), view_shape
    )
    if isinstance(value, np.ndarray):
        vals = np.broadcast_to(value, ctx.grid.shape).reshape(-1)[flat_mask]
    else:
        vals = np.full(int(flat_mask.sum()), value)
    vals = _cast_array(vals, data.dtype)

    _check_single_assignment(
        node,
        flat_idx,
        vals,
        grid_shape=ctx.grid.shape,
        flat_mask=flat_mask,
        view_shape=view_shape,
        construct=getattr(ip, "current_construct", None),
    )
    if getattr(ip, "sanitizer", None) is not None:
        ip.sanitizer.record_write(
            node, bool(np.unique(flat_idx).size < flat_idx.size)
        )
    data.reshape(-1)[flat_idx] = vals
    ip.cse_invalidate(node.base)


def _check_single_assignment(
    node: ast.Index,
    flat_idx: np.ndarray,
    vals: np.ndarray,
    *,
    grid_shape=None,
    flat_mask=None,
    view_shape=None,
    construct=None,
) -> None:
    """The paper's §3.4 rule: colliding writes must carry identical values.

    The optional keywords only enrich the error message: ``view_shape``
    names the written element by its multi-index, ``grid_shape`` +
    ``flat_mask`` recover the two colliding VP coordinates, and
    ``construct`` points back at the enclosing ``par``.
    """
    if flat_idx.size < 2:
        return
    order = np.argsort(flat_idx, kind="stable")
    si = flat_idx[order]
    sv = vals[order]
    bad = (si[1:] == si[:-1]) & (sv[1:] != sv[:-1])
    if not np.any(bad):
        return
    j = int(np.flatnonzero(bad)[0])
    where = int(si[j + 1])
    if view_shape is not None:
        elem = "".join(
            f"[{int(c)}]" for c in np.unravel_index(where, view_shape)
        )
        place = f"element {node.base}{elem}"
    else:
        place = f"flat element {where}"
    detail = f"values {sv[j].item()!r} and {sv[j + 1].item()!r}"
    if grid_shape is not None and flat_mask is not None:
        active = np.flatnonzero(flat_mask)
        vp_a = np.unravel_index(int(active[order[j]]), grid_shape)
        vp_b = np.unravel_index(int(active[order[j + 1]]), grid_shape)
        detail += (
            f" from VPs {tuple(int(c) for c in vp_a)} and "
            f"{tuple(int(c) for c in vp_b)}"
        )
    at = ""
    if construct is not None and getattr(construct, "line", 0):
        at = f" in the '{construct.kind}' at line {construct.line}"
    raise UCMultipleAssignmentError(
        f"[UC101] par assigns multiple distinct values to {node.base!r} "
        f"({place}: {detail}){at}; make the non-determinism explicit "
        "with the $, operator (paper §3.4)",
        node.line,
        node.col,
    )


def _coerce_to_dtype(value: Value, dtype: np.dtype):
    if np.issubdtype(dtype, np.integer):
        return int(value)
    return float(value)


def _cast_array(vals: np.ndarray, dtype: np.dtype) -> np.ndarray:
    if np.issubdtype(dtype, np.integer) and np.issubdtype(vals.dtype, np.floating):
        return np.trunc(vals).astype(dtype)
    return vals.astype(dtype)


# ---------------------------------------------------------------------------
# assignment
# ---------------------------------------------------------------------------


def eval_assign(ip, node: ast.Assign, ctx: ExecContext) -> Value:
    value = eval_expr(ip, node.value, ctx)
    if node.op:
        current = eval_expr(ip, node.target, ctx)
        charge_grid_op(ip, ctx)
        value = apply_binop(node.op, current, value, node)

    target = node.target
    if isinstance(target, ast.Index):
        eval_scatter(ip, target, value, ctx)
        return value
    assert isinstance(target, ast.Name)
    binding = ctx.env.try_lookup(target.ident)
    if binding is None:
        raise UCRuntimeError(
            f"assignment to undefined identifier {target.ident!r}",
            node.line,
            node.col,
        )
    if isinstance(binding, ScalarVar):
        _assign_scalar(ip, binding, value, ctx, node)
        return value
    if isinstance(binding, ParallelLocal):
        _assign_parallel_local(ip, binding, value, ctx, node)
        return value
    if isinstance(binding, ElementBinding):
        raise UCRuntimeError(
            f"cannot assign to index element {target.ident!r}", node.line, node.col
        )
    raise UCRuntimeError(
        f"cannot assign to {target.ident!r}", node.line, node.col
    )


def _assign_scalar(ip, var: ScalarVar, value: Value, ctx: ExecContext, node: ast.Assign) -> None:
    if ctx.grid.is_host or not isinstance(value, np.ndarray):
        if isinstance(value, np.ndarray):
            raise UCRuntimeError(
                f"grid value assigned to scalar {var.name!r} outside a parallel "
                "context",
                node.line,
                node.col,
            )
        ip.machine.clock.charge("host")
        var.value = coerce_scalar(var.ctype, value)
        ip.cse_invalidate(var.name)
        return
    # parallel write to a front-end scalar: all enabled lanes must agree
    mask = ctx.active_mask()
    vals = np.broadcast_to(value, ctx.grid.shape)[mask]
    if vals.size == 0:
        return
    if np.any(vals != vals.reshape(-1)[0]):
        flat = vals.reshape(-1)
        other = flat[flat != flat[0]][0]
        raise UCMultipleAssignmentError(
            f"[UC101] par assigns multiple distinct values to scalar "
            f"{var.name!r} (values {flat[0].item()!r} and {other.item()!r}); "
            "reduce the grid value first ($+, $min, ...) or make the choice "
            "explicit with the $, operator (paper §3.4)",
            node.line,
            node.col,
        )
    ip.machine.clock.charge("host_cm_latency")
    var.value = coerce_scalar(var.ctype, vals.reshape(-1)[0])
    ip.cse_invalidate(var.name)


def _assign_parallel_local(
    ip, var: ParallelLocal, value: Value, ctx: ExecContext, node: ast.Assign
) -> None:
    if ctx.grid.rank < var.grid_rank:
        raise UCRuntimeError(
            f"parallel local {var.name!r} assigned outside its grid",
            node.line,
            node.col,
        )
    charge_grid_op(ip, ctx)
    mask = ctx.active_mask()
    if ctx.grid.rank == var.grid_rank:
        arr = np.broadcast_to(value, ctx.grid.shape)
        var.data[mask] = _cast_array(np.asarray(arr)[mask], var.data.dtype)
        ip.cse_invalidate(var.name)
        return
    # assignment from an extended grid: values must agree along the extra axes
    extra = tuple(range(var.grid_rank, ctx.grid.rank))
    arr = np.broadcast_to(value, ctx.grid.shape)
    any_mask = mask.any(axis=extra)
    mn = np.where(mask, arr, np.asarray(np.inf)).min(axis=extra)
    mx = np.where(mask, arr, np.asarray(-np.inf)).max(axis=extra)
    if np.any(any_mask & (mn != mx)):
        raise UCMultipleAssignmentError(
            f"[UC101] par assigns multiple distinct values to {var.name!r} "
            "(the extended axes disagree); make the non-determinism "
            "explicit with the $, operator (paper §3.4)",
            node.line,
            node.col,
        )
    var.data[any_mask] = _cast_array(mn[any_mask], var.data.dtype)
    ip.cse_invalidate(var.name)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def eval_reduction(ip, node: ast.Reduction, ctx: ExecContext) -> Value:
    """Evaluate a reduction (§3.2), returning a parent-shaped value."""
    if ip.processor_opt:
        from .sendreduce import try_send_reduce

        optimized = try_send_reduce(ip, node, ctx)
        if optimized is not None:
            return optimized
    sets = [ip.resolve_index_set(name, ctx, at=node) for name in node.index_sets]
    inner_grid = ctx.grid.extend(sets)
    inner_env = ctx.env.child()
    for offset, isv in enumerate(sets):
        axis = ctx.grid.rank + offset
        inner_env.declare(
            isv.elem_name,
            ElementBinding(isv.elem_name, isv.name, "axis", axis=axis),
        )
    parent_mask = ctx.mask
    if parent_mask is not None:
        base_mask = np.broadcast_to(
            parent_mask.reshape(parent_mask.shape + (1,) * len(sets)),
            inner_grid.shape,
        )
    else:
        base_mask = inner_grid.full_mask()
    inner = ExecContext(inner_grid, base_mask, inner_env)

    reduce_axes = tuple(range(ctx.grid.rank, inner_grid.rank))
    reduce_extent = int(np.prod([len(s) for s in sets]))
    vps = ip.grid_vpset(inner_grid.shape)
    ip.machine.clock.charge_scan(reduce_extent, vp_ratio=vps.vp_ratio)
    if node.op != "arbitrary":
        # shard accounting consults the UC5xx verdict: UC501-proven sites
        # pre-combine per shard, unproven sites ship ordered partials
        ip.machine.clock.note_shard_reduce(
            node.op,
            ip.reduction_order_safe(node),
            reduce_extent,
            vps.vp_ratio,
            inner_grid.shape,
        )
    if ctx.grid.is_host:
        ip.machine.clock.charge("host_cm_latency")

    arm_values: List[np.ndarray] = []
    arm_masks: List[np.ndarray] = []
    pred_union: Optional[np.ndarray] = None
    for arm in node.arms:
        if arm.pred is None:
            arm_mask = base_mask
        else:
            pred_v = eval_expr(ip, arm.pred, inner)
            pv = np.broadcast_to(np.asarray(_truthy(pred_v)), inner_grid.shape)
            arm_mask = base_mask & pv
            pred_union = pv if pred_union is None else (pred_union | pv)
        val = eval_expr(ip, arm.expr, inner.with_mask(arm_mask))
        arm_values.append(np.broadcast_to(np.asarray(val), inner_grid.shape))
        arm_masks.append(arm_mask)
    if node.others is not None:
        others_mask = base_mask & (
            ~pred_union if pred_union is not None else np.zeros(inner_grid.shape, bool)
        )
        val = eval_expr(ip, node.others, inner.with_mask(others_mask))
        arm_values.append(np.broadcast_to(np.asarray(val), inner_grid.shape))
        arm_masks.append(others_mask)

    if node.op == "arbitrary":
        result = _reduce_arbitrary(ip, arm_values, arm_masks, reduce_axes, ctx)
    else:
        result = _reduce_op(node.op, arm_values, arm_masks, reduce_axes)
        if getattr(ip, "sanitizer", None) is not None:
            ip.sanitizer.check_reduction(
                node, arm_values, arm_masks, reduce_axes, result
            )

    if ctx.grid.is_host:
        return result.item() if isinstance(result, np.ndarray) and result.ndim == 0 else result
    return result


def _result_dtype(op: str, arm_values: List[np.ndarray]) -> np.dtype:
    if op in ("logand", "logor", "logxor"):
        return np.dtype(np.int64)
    if any(np.issubdtype(v.dtype, np.floating) for v in arm_values):
        return np.dtype(np.float64)
    return np.dtype(np.int64)


def _reduce_op(
    op: str,
    arm_values: List[np.ndarray],
    arm_masks: List[np.ndarray],
    axes: Tuple[int, ...],
):
    ufunc = _RED_UFUNC[op]
    ident = identity_of(op)
    dtype = _result_dtype(op, arm_values)
    total = None
    for val, mask in zip(arm_values, arm_masks):
        if op in ("logand", "logor", "logxor"):
            v = val.astype(bool)
            filled = np.where(mask, v, np.asarray(bool(ident)))
        else:
            v = val.astype(dtype) if val.dtype != dtype else val
            filled = np.where(mask, v, np.asarray(ident, dtype=dtype))
        part = ufunc.reduce(filled, axis=axes) if axes else filled
        total = part if total is None else ufunc(total, part)
    assert total is not None
    if op in ("logand", "logor", "logxor"):
        total = np.asarray(total).astype(np.int64)
    else:
        total = np.asarray(total).astype(dtype)
    # lanes with no enabled operand anywhere keep the identity (already do)
    return total


def _reduce_arbitrary(
    ip,
    arm_values: List[np.ndarray],
    arm_masks: List[np.ndarray],
    axes: Tuple[int, ...],
    ctx: ExecContext,
):
    """The ``$,`` operator: pick any one enabled operand per parent lane."""
    stacked_v = np.stack(arm_values, axis=0).astype(np.float64)
    stacked_m = np.stack(arm_masks, axis=0)
    keys = ip.rng.random(stacked_v.shape)
    keys = np.where(stacked_m, keys, -1.0)
    # collapse the arm axis plus the reduction axes
    coll = (0,) + tuple(a + 1 for a in axes)
    moved = np.moveaxis(keys, coll, range(len(coll)))
    flatk = moved.reshape(int(np.prod(moved.shape[: len(coll)])), -1)
    movev = np.moveaxis(stacked_v, coll, range(len(coll)))
    flatv = movev.reshape(flatk.shape)
    movem = np.moveaxis(stacked_m, coll, range(len(coll)))
    flatm = movem.reshape(flatk.shape)
    pick = np.argmax(flatk, axis=0)
    chosen = flatv[pick, np.arange(flatv.shape[1])]
    any_enabled = flatm.any(axis=0)
    out = np.where(any_enabled, chosen, identity_of("arbitrary"))
    parent_shape = tuple(
        s for d, s in enumerate(stacked_v.shape[1:]) if d not in axes
    )
    out = out.reshape(parent_shape)
    if np.all(out == np.trunc(out)):
        out = out.astype(np.int64)
    return out
