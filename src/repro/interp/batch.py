"""Batched lane execution: run S instances of one program in lockstep.

``UCProgram.run_batch`` executes many *instances* of the same UC program
(same source, same machine geometry, different scalar parameters or
initial fields) in a single pass.  Each instance — a **lane** — keeps
its own simulated :class:`~repro.machine.machine.Machine` and
:class:`~repro.interp.interpreter.Interpreter`, so per-lane results,
stdout and :class:`~repro.machine.cost.Clock` fingerprints are
**bit-identical** to ``S`` solo ``run()`` calls.  What is shared is the
host-side *work*: for iterated constructs (``*par``/``*solve``) whose
bodies the kernel-fusion pass fully compiled, the register program runs
once over a lane-stacked ``(S,) + shape`` array per step instead of
``S`` times over ``shape``, and the static charge tables are replayed
per lane (:meth:`Clock.replay`), which is what keeps the clocks exact.

The lane axis is processed in **chunks** sized to keep the stacked
working set cache-resident (:data:`_CHUNK_TARGET_ELEMS`); per-lane
scalars that diverge between lanes travel as
:class:`~repro.interp.values.LaneScalars` vectors.

Correctness is layered as three fallbacks, outermost first:

1. **Whole-batch sequential** — ``REPRO_NO_BATCH=1``, any engine
   feature the batched path does not model (faults, checkpoints,
   sanitizer, tier logs, recovery), fewer than two lanes, or *any*
   exception raised inside the batched machinery (including the
   deliberate :class:`_BatchAbort` on per-lane error paths such as
   UC101 or bounds violations) falls back to a fresh
   ``[prog.run(inp) for inp in inputs]`` loop.  The engines are
   deterministic, so the rerun reproduces the exact solo error.
2. **Per-lane construct** — a construct that fails the (side-effect
   free) batchability screen simply executes per lane through the
   ordinary ``exec_stmt`` path; the rest of ``main`` stays in lockstep.
3. **Lane demotion** — mid-construct, a lane whose frontier session
   elects a compressed sweep leaves the batch: its rows are written
   back and the lane runs the verbatim solo sweep loop to completion.

Lanes whose fixed point converges (``*solve``) or whose predicates all
falsify (``*par``) retire from the batch, shrinking the stacked arrays.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..lang import ast
from ..lang.errors import UCRuntimeError
from ..machine import Machine
from ..machine.field import lane_stack, lane_writeback
from . import commtiers, frontier, fuse
from . import eval_expr as E
from .env import Env
from .eval_expr import ExecContext
from .fuse import (
    _AssignScalar,
    _Binary,
    _Bool,
    _Combine,
    _Gather,
    _Mask,
    _ReadScalar,
    _Reduce,
    _Scatter,
    _TruthyInt,
    _Unary,
    _Where,
)
from .interpreter import Interpreter
from .plan_cache import PlanCache
from .statements import (
    MAX_SWEEPS,
    ReturnSignal,
    _block_masks,
    _check_starred,
    _plans_for,
    _run_blocks_once,
    enter_grid,
    exec_stmt,
)
from .solve import (
    _delta_summary,
    _modified_names,
    _snapshot,
    _snapshots_equal,
)
from .values import (
    ArrayVar,
    ElementBinding,
    GridContext,
    LaneScalars,
    ScalarVar,
    coerce_scalar,
)

#: target stacked-register size per chunk (int64 elements).  ~4 MB keeps
#: the whole register file of a chunk inside L2/L3 so the per-step numpy
#: passes stay memory-bandwidth friendly; lanes beyond the chunk wait.
_CHUNK_TARGET_ELEMS = 1 << 19

#: refuse to batch when the stacked arrays would exceed this
_MEMORY_CAP_BYTES = 1 << 28


class _BatchAbort(Exception):
    """Abandon the batched attempt; the sequential rerun reproduces the
    exact solo behaviour (results or error) deterministically."""


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def batchable(prog) -> bool:
    """Can instances of ``prog`` share lockstep ``run_batch`` lanes?

    False for every engine feature the batched path does not model
    (faults, checkpoints, sanitizer, tier logs, a custom recovery
    policy) and under ``REPRO_NO_BATCH=1``.  The execution service's
    coalescer uses this screen to decide whether identical queued jobs
    ride one batch or run solo; ``run_batch`` itself applies the same
    screen (plus the lane-count minimum) to pick the sequential loop.
    """
    return not (
        os.environ.get("REPRO_NO_BATCH") == "1"
        or prog.faults is not None
        or prog.checkpoints
        or prog.sanitize
        or prog.log_tiers
        or prog.recovery is not None
        or prog.info.program.main is None
        # sharded runs keep per-shard clocks and a pair-traffic ledger the
        # lane machines would not carry; the solo loop preserves them
        # (results and fingerprints would match either way)
        or prog.effective_shards() > 1
    )


def run_batch(prog, inputs, *, seed: int = 20250704) -> List[Any]:
    """Execute ``prog`` once per element of ``inputs``; see
    :meth:`UCProgram.run_batch`."""
    inputs = list(inputs)
    if not inputs:
        return []
    if len(inputs) == 1:
        # single-instance fast path: a batch of one IS a solo run, so
        # skip the batchability screen and every piece of lane machinery
        # (stacking, chunking, lockstep driver) and dispatch directly
        return [prog.run(inputs[0] if inputs[0] else None, seed=seed)]
    if not batchable(prog):
        return _sequential(prog, inputs, seed)
    try:
        return _BatchRun(prog, inputs, seed).execute()
    except Exception:
        # includes _BatchAbort; a genuine program error re-raises from
        # the deterministic sequential rerun with its exact solo message
        return _sequential(prog, inputs, seed)


def _sequential(prog, inputs, seed: int) -> List[Any]:
    return [prog.run(inp if inp else None, seed=seed) for inp in inputs]


# ---------------------------------------------------------------------------
# lockstep driver
# ---------------------------------------------------------------------------


class _BatchRun:
    def __init__(self, prog, inputs, seed: int) -> None:
        self.prog = prog
        self.inputs = inputs
        self.seed = seed
        self.S = len(inputs)
        self.interps: List[Interpreter] = []

    def execute(self) -> List[Any]:
        from .program import RunResult

        prog = self.prog
        machines = [
            Machine(prog.machine_config, seed=self.seed) for _ in range(self.S)
        ]
        shared = prog._shared_plan_cache(machines[0], None)
        plan_cache = shared if shared is not None else PlanCache()
        for m in machines:
            self.interps.append(
                Interpreter(
                    prog.info,
                    m,
                    prog.layouts,
                    seed=self.seed,
                    solve_strategy=prog.solve_strategy,
                    processor_opt=prog.processor_opt,
                    cse=prog.cse,
                    plans=prog.plans,
                    comm_tiers=prog.comm_tiers,
                    frontier=prog.frontier,
                    fusion=prog.fusion,
                    log_tiers=prog.log_tiers,
                    sanitize=prog.sanitize,
                    checkpoints=False,
                    recovery_policy=prog.recovery,
                    solve_sweep_limit=prog.solve_sweep_limit,
                    plan_cache=plan_cache,
                )
            )
        ip0 = self.interps[0]
        # the env escape hatches apply inside the Interpreter ctor, so
        # gate on the *resolved* state, not the UCProgram flags
        if (
            ip0.sanitizer is not None
            or ip0.tier_log is not None
            or ip0.recovery is not None
        ):
            raise _BatchAbort()
        for ip, inp in zip(self.interps, self.inputs):
            if inp:
                ip.load_inputs(inp)
        for m in machines:
            m.clock.reset()
        pc_before = plan_cache.counters()
        t_exec = time.perf_counter()
        self._lockstep()
        execute_s = time.perf_counter() - t_exec
        pc_after = plan_cache.counters()
        results = []
        for ip in self.interps:
            r = RunResult(ip)
            r.compile = prog._compile_summary(
                pc_after, pc_before, execute_s / self.S
            )
            r.compile["batched_lanes"] = float(self.S)
            if shared is not None and prog.compile_store is not None:
                r.store = prog.compile_store.stats()
            results.append(r)
        prog.last_interpreter = self.interps[-1]
        return results

    def _lockstep(self) -> None:
        main = self.prog.info.program.main
        ctxs = [
            ExecContext(GridContext(), None, Env(ip.global_env))
            for ip in self.interps
        ]
        if isinstance(main, ast.Block):
            # mirror exec_stmt's Block case: one child env for the body
            ctxs = [c.with_env(c.env.child()) for c in ctxs]
            stmts = list(main.stmts)
        else:
            stmts = [main]
        done = [False] * self.S
        for stmt in stmts:
            live = [i for i in range(self.S) if not done[i]]
            if not live:
                return
            if (
                isinstance(stmt, ast.UCStmt)
                and stmt.star
                and stmt.kind in ("par", "solve")
                and len(live) > 1
            ):
                _BatchConstruct(self, stmt, live, ctxs).run()
            else:
                for i in live:
                    try:
                        exec_stmt(self.interps[i], stmt, ctxs[i])
                    except ReturnSignal:
                        done[i] = True


# ---------------------------------------------------------------------------
# batched step evaluation
# ---------------------------------------------------------------------------


class _ChunkState:
    """One chunk of lanes: stacked array views + per-lane scalar vars."""

    __slots__ = ("n", "arrays", "scalars", "active")

    def __init__(self, n, arrays, scalars) -> None:
        self.n = n
        self.arrays = arrays  # name -> (n,) + arr.shape view
        self.scalars = scalars  # name -> [ScalarVar] * n
        self.active = np.ones(n, dtype=bool)


def _lift(v, ndim: int):
    if isinstance(v, LaneScalars):
        return v.lifted(ndim)
    return v


def _truthy_bcast(v, shape_b):
    """``broadcast(truthy(v))`` over the lane-stacked shape."""
    if isinstance(v, LaneScalars):
        vb = v.lifted(len(shape_b)).astype(bool)
    elif isinstance(v, np.ndarray):
        vb = v.astype(bool)
    else:
        vb = np.asarray(bool(v))
    return np.broadcast_to(vb, shape_b)


def _axes_up(axes):
    """Shift solo reduction/squeeze axes past the new lane axis."""
    if axes is None:
        return None
    if isinstance(axes, tuple):
        return tuple(a + 1 for a in axes)
    return axes + 1


def _run_steps(steps, st: _ChunkState, regs) -> None:
    for step in steps:
        if isinstance(step, _ReadScalar):
            vals = [v.value for v in st.scalars[step.var.name]]
            first = vals[0]
            if all(v == first for v in vals[1:]):
                regs[step.dst] = first
            else:
                regs[step.dst] = LaneScalars(vals)
        elif isinstance(step, _Binary):
            a = regs[step.a]
            b = regs[step.b]
            a_arr = isinstance(a, np.ndarray)
            b_arr = isinstance(b, np.ndarray)
            if a_arr or b_arr:
                nd = max(a.ndim if a_arr else 0, b.ndim if b_arr else 0)
                regs[step.dst] = E.apply_binop(
                    step.node.op, _lift(a, nd), _lift(b, nd), step.node
                )
            elif isinstance(a, LaneScalars) or isinstance(b, LaneScalars):
                out = []
                for j in range(st.n):
                    if not st.active[j]:
                        out.append(0)
                        continue
                    av = a.values[j] if isinstance(a, LaneScalars) else a
                    bv = b.values[j] if isinstance(b, LaneScalars) else b
                    out.append(E.apply_binop(step.node.op, av, bv, step.node))
                regs[step.dst] = LaneScalars(out)
            else:
                regs[step.dst] = E.apply_binop(step.node.op, a, b, step.node)
        elif isinstance(step, _Gather):
            _run_gather(step, st, regs)
        elif isinstance(step, _Scatter):
            _run_scatter(step, st, regs)
        elif isinstance(step, _Mask):
            c = regs[step.cond]
            regs[step.dst] = regs[step.base] & (~c if step.invert else c)
        elif isinstance(step, _Bool):
            regs[step.dst] = _truthy_bcast(
                regs[step.src], (st.n,) + step.shape
            )
        elif isinstance(step, _Where):
            c = regs[step.cbool]
            regs[step.dst] = np.where(
                c, _lift(regs[step.then], c.ndim), _lift(regs[step.els], c.ndim)
            )
        elif isinstance(step, _Unary):
            _run_unary(step, st, regs)
        elif isinstance(step, _TruthyInt):
            v = regs[step.src]
            if isinstance(v, LaneScalars):
                regs[step.dst] = LaneScalars([int(bool(x)) for x in v.values])
            elif isinstance(v, np.ndarray):
                regs[step.dst] = v.astype(bool).astype(np.int64)
            else:
                regs[step.dst] = int(bool(v))
        elif isinstance(step, _Combine):
            lbool = regs[step.lbool]
            rbool = _truthy_bcast(regs[step.right], (st.n,) + step.shape)
            out = (lbool & rbool) if step.is_and else (lbool | rbool)
            regs[step.dst] = out.astype(np.int64)
        elif isinstance(step, _Reduce):
            _run_reduce(step, st, regs)
        elif isinstance(step, _AssignScalar):
            _run_assign_scalar(step, st, regs)
        else:  # pragma: no cover - screened out before batching
            raise _BatchAbort()


def _run_unary(step: _Unary, st: _ChunkState, regs) -> None:
    v = regs[step.src]
    op = step.node.op
    if isinstance(v, LaneScalars):
        out = []
        for j, x in enumerate(v.values):
            if not st.active[j]:
                out.append(0)
            elif op == "-":
                out.append(-x)
            elif op == "!":
                out.append(int(not x))
            else:
                out.append(~int(x))
        regs[step.dst] = LaneScalars(out)
        return
    if op == "-":
        regs[step.dst] = -v
    elif op == "!":
        if isinstance(v, np.ndarray):
            regs[step.dst] = np.logical_not(v.astype(bool)).astype(np.int64)
        else:
            regs[step.dst] = int(not v)
    else:  # "~"
        if isinstance(v, np.ndarray):
            regs[step.dst] = np.invert(v.astype(np.int64))
        else:
            regs[step.dst] = ~int(v)


_IOTA_CACHE: Dict[int, np.ndarray] = {}


def _iota(size: int) -> np.ndarray:
    arr = _IOTA_CACHE.get(size)
    if arr is None:
        arr = _IOTA_CACHE[size] = np.arange(size)
    return arr


def _run_gather(step: _Gather, st: _ChunkState, regs) -> None:
    data = st.arrays[step.arr.name]
    if step.oob is not None:
        m = regs[step.mask]
        for ob in step.oob:
            if ob is not None and np.any(ob & m):
                raise _BatchAbort()  # solo raises the bounds error
    if step.shift is not None:
        regs[step.dst] = commtiers.run_shifts(
            data, [(a + 1, s, e) for a, s, e in step.shift]
        )
        return
    # index with an explicit lane axis rather than a leading slice: pure
    # advanced indexing keeps the copy C-contiguous (mixed basic/advanced
    # indexing would interleave the lane axis innermost, which wrecks the
    # memory layout of every downstream ufunc and reduction)
    if step.recipe is not None:
        r = step.recipe
        small = data[np.ix_(np.arange(st.n), *r.vecs)]
        if r.perm is not None:
            small = small.transpose((0,) + tuple(p + 1 for p in r.perm))
        if r.squeeze:
            small = small.squeeze(axis=_axes_up(r.squeeze))
        if r.expand:
            small = np.expand_dims(small, axis=_axes_up(r.expand))
        out = np.broadcast_to(small, (st.n,) + r.shape)
        regs[step.dst] = out if step.view_ok else np.array(out)
        return
    idx = step.idx if isinstance(step.idx, tuple) else (step.idx,)
    width = max((i.ndim for i in idx if isinstance(i, np.ndarray)), default=0)
    lanes = np.arange(st.n).reshape((st.n,) + (1,) * width)
    regs[step.dst] = data[(lanes,) + idx]


def _run_scatter(step: _Scatter, st: _ChunkState, regs) -> None:
    data = st.arrays[step.arr.name]
    mask = regs[step.mask]
    if step.oob is not None:
        for ob in step.oob:
            if ob is not None and np.any(ob & mask):
                raise _BatchAbort()  # solo raises the bounds error
    value = regs[step.val]
    n = st.n
    arr_size = data[0].size
    flat_mask = mask.reshape(n, -1)
    # full-mask store in storage order: a reshaped copy, no fancy indexing
    if (
        step.flat.size == arr_size
        and isinstance(value, np.ndarray)
        and bool(flat_mask.all())
        and np.array_equal(step.flat, _iota(arr_size))
    ):
        vals = np.broadcast_to(value, (n,) + step.grid_shape).reshape(n, -1)
        np.copyto(data.reshape(n, -1), E._cast_array(vals, data.dtype))
        return
    # per-lane flat indices, offset into the stacked array: the solo
    # indices are unique per lane (screened), and lane blocks are
    # disjoint, so the combined scatter has no collisions either
    idx2 = step.flat[None, :] + (np.arange(n) * arr_size)[:, None]
    flat_idx = idx2[flat_mask]
    if isinstance(value, LaneScalars):
        value = value.lifted(mask.ndim)
    if isinstance(value, np.ndarray):
        vals = np.broadcast_to(value, (n,) + step.grid_shape)[mask]
    else:
        vals = np.full(int(flat_mask.sum()), value)
    vals = E._cast_array(vals, data.dtype)
    data.reshape(-1)[flat_idx] = vals


def _run_assign_scalar(step: _AssignScalar, st: _ChunkState, regs) -> None:
    vars_ = st.scalars[step.var.name]
    value = regs[step.val]
    if isinstance(value, np.ndarray):
        mask = regs[step.mask]
        vals_b = np.broadcast_to(value, (st.n,) + step.grid_shape)
        for j in range(st.n):
            if not st.active[j]:
                continue
            v = vals_b[j][mask[j]]
            if v.size == 0:
                continue
            flat = v.reshape(-1)
            if np.any(flat != flat[0]):
                raise _BatchAbort()  # solo raises UC101
            vars_[j].value = coerce_scalar(vars_[j].ctype, flat[0])
        return
    if isinstance(value, LaneScalars):
        for j in range(st.n):
            if st.active[j]:
                vars_[j].value = coerce_scalar(
                    vars_[j].ctype, value.values[j]
                )
        return
    for j in range(st.n):
        if st.active[j]:
            vars_[j].value = coerce_scalar(vars_[j].ctype, value)


#: elementwise binary ops apply_binop maps 1:1 onto a ufunc with no
#: dtype munging — eligible to fuse into a blocked reduce
_BLOCKED_BINOPS = frozenset({"+", "-", "*", "&", "|", "^", "<<", ">>"})

#: target elements for the blocked-reduce temporary (512 KB of int64):
#: big enough to amortise the python loop, small enough to stay in
#: cache instead of making the DRAM round trip the unblocked path pays
_BLOCK_TMP_ELEMS = 1 << 16

#: byte budget for the integer-path temporary slab (same 512 KB; int32
#: narrowing doubles the element count that fits)
_BLOCK_TMP_BYTES = 1 << 19

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1

#: never scan more than this many real elements for narrowing bounds —
#: a fully materialised operand would cost more to scan than we save
_BOUNDS_SCAN_MAX = 1 << 17


def _condensed(arr: np.ndarray) -> np.ndarray:
    """View with broadcast (stride-0) axes collapsed to length 1.

    Covers each distinct memory element exactly once, so min/max bounds
    cost O(real data), not O(logical size), and an ``astype`` of the
    result copies only the real data before re-broadcasting.
    """
    idx = tuple(
        slice(0, 1) if s == 0 and d > 1 else slice(None)
        for s, d in zip(arr.strides, arr.shape)
    )
    return arr[idx]


def _int32_window(op: str, red_op: str, bounds_a, bounds_b, red_extent: int):
    """True when evaluating ``a op b`` then ``red_op``-reducing in int32
    is bit-identical to int64: interval arithmetic proves every operand,
    every elementwise result and every partial reduction fits in int32
    (so no wraparound can occur in either width)."""
    lo_a, hi_a = bounds_a
    lo_b, hi_b = bounds_b
    for x in (lo_a, hi_a, lo_b, hi_b):
        if not (_INT32_MIN <= x <= _INT32_MAX):
            return False
    if op == "+":
        lo, hi = lo_a + lo_b, hi_a + hi_b
    elif op == "-":
        lo, hi = lo_a - hi_b, hi_a - lo_b
    elif op == "*":
        prods = (lo_a * lo_b, lo_a * hi_b, hi_a * lo_b, hi_a * hi_b)
        lo, hi = min(prods), max(prods)
    elif op in ("&", "|", "^"):
        # int32-representable operands are closed under bitwise ops
        # (sign extension commutes with &, | and ^)
        lo, hi = _INT32_MIN, _INT32_MAX
    else:
        return False  # shifts: overflow analysis not worth the cases
    if not (_INT32_MIN <= lo and hi <= _INT32_MAX):
        return False
    if red_op in ("min", "max"):
        return True  # result stays within the element bounds
    if red_op == "add":
        # every partial sum is bounded by extent x the signed extremes
        return (
            _INT32_MIN <= red_extent * min(lo, 0)
            and red_extent * max(hi, 0) <= _INT32_MAX
        )
    return False  # "mul": products explode past any useful bound


def _try_blocked_reduce(step, st, regs, esteps, eout, inner_b, axes_b):
    """Fuse a trailing elementwise binary into the reduction, blocked
    along a *non-reduced* axis, so the full ``(n,) + inner_shape``
    intermediate never hits DRAM.

    Because the blocking axis is not reduced over, each output element
    still reduces its complete, contiguous input run in one ufunc call —
    the reduction grouping (and hence numpy's pairwise float summation
    order) is untouched, so the result is bit-identical to the unblocked
    evaluation for every dtype.  Returns the reduced array, or None when
    the pattern does not apply.
    """
    if not step.reduce_axes or not esteps:
        return None
    last = esteps[-1]
    if not isinstance(last, _Binary) or last.dst != eout:
        return None
    if last.node.op not in _BLOCKED_BINOPS:
        return None
    if step.op in ("logand", "logor", "logxor") or step.op not in E._RED_UFUNC:
        return None
    rank = len(inner_b)
    total = 1
    for s in inner_b:
        total *= s
    if total <= 2 * _BLOCK_TMP_ELEMS:
        return None  # already cache-sized; blocking only adds overhead
    # pick the widest non-reduced axis to slab along
    out_axes = [i for i in range(rank) if i not in axes_b]
    block_axis = max(out_axes, key=lambda i: inner_b[i], default=None)
    if block_axis is None or inner_b[block_axis] < 2:
        return None
    per_unit = total // inner_b[block_axis]
    width = max(1, _BLOCK_TMP_ELEMS // max(1, per_unit))
    if width >= inner_b[block_axis]:
        return None
    _run_steps(esteps[:-1], st, regs)
    ops = []
    kinds = []
    for v in (regs[last.a], regs[last.b]):
        v = _lift(v, rank)
        if isinstance(v, np.ndarray):
            if v.dtype not in (np.dtype(np.int64), np.dtype(np.float64)):
                return None
            ops.append(np.broadcast_to(v, inner_b))
            kinds.append(v.dtype)
        elif isinstance(v, (bool, np.bool_)):
            return None
        elif isinstance(v, (int, np.integer)):
            if not (-(2**63) <= int(v) < 2**63):
                return None  # numpy would object-promote; bail to solo path
            ops.append(int(v))
            kinds.append(int(v))
        elif isinstance(v, (float, np.floating)):
            ops.append(float(v))
            kinds.append(float(v))
        else:
            return None
    try:
        dtype = np.result_type(*kinds)
    except TypeError:
        return None
    if dtype not in (np.dtype(np.int64), np.dtype(np.float64)):
        return None
    if dtype != E._result_dtype(step.op, [np.empty(0, dtype)]):
        return None  # solo would astype before reducing; keep its path
    bin_ufunc = E._SIMPLE_BINOPS[last.node.op]
    red_ufunc = E._RED_UFUNC[step.op]
    extent = inner_b[block_axis]
    out_shape = tuple(inner_b[i] for i in out_axes)
    out_block_pos = out_axes.index(block_axis)
    result = np.empty(out_shape, dtype=dtype)
    if dtype == np.dtype(np.int64) and step.order_safe:
        # The reordering below is legal only under the site's UC501
        # determinism verdict (stamped onto the step at fuse-compile time
        # from repro.analysis.determinism — min/max always; int add/mul,
        # exact mod 2^64, identically in both engines).  Unproven sites
        # fall through to the grouping-preserving path, which is
        # bit-identical for every dtype.  Put the reduced axes OUTERMOST:
        # numpy then reduces by vectorised accumulation over long
        # contiguous output rows instead of one short run per output
        # element.  When interval bounds prove every elementwise result
        # and partial reduction fits in int32, compute in int32 (half the
        # slab traffic) and upcast the block result exactly.
        red_extent = 1
        for ax in axes_b:
            red_extent *= inner_b[ax]
        work = np.dtype(np.int64)
        if all(
            not isinstance(o, np.ndarray)
            or _condensed(o).size <= _BOUNDS_SCAN_MAX
            for o in ops
        ):
            bounds = []
            for o in ops:
                if isinstance(o, np.ndarray):
                    c = _condensed(o)
                    bounds.append((int(c.min()), int(c.max())))
                else:
                    bounds.append((int(o), int(o)))
            if _int32_window(
                last.node.op, step.op, bounds[0], bounds[1], red_extent
            ):
                work = np.dtype(np.int32)
        t_ops = []
        perm = tuple(axes_b) + tuple(out_axes)
        for o in ops:
            if not isinstance(o, np.ndarray):
                t_ops.append(work.type(o))
                continue
            if o.dtype != work:
                o = np.broadcast_to(_condensed(o).astype(work), inner_b)
            t_ops.append(o.transpose(perm))
        n_red = len(axes_b)
        red_axes_t = tuple(range(n_red))
        blk = n_red + out_block_pos  # block axis position after transpose
        width = max(1, _BLOCK_TMP_BYTES // max(1, per_unit * work.itemsize))
        width = min(width, extent)
        tmp_shape = [inner_b[ax] for ax in perm]
        tmp_shape[blk] = width
        tmp = np.empty(tuple(tmp_shape), dtype=work)
        sl_in = [slice(None)] * rank
        sl_out = [slice(None)] * len(out_shape)
        for k0 in range(0, extent, width):
            w = min(width, extent - k0)
            sl_in[blk] = slice(k0, k0 + w)
            sl_out[out_block_pos] = slice(k0, k0 + w)
            tsl = sl_in.copy()
            tsl[blk] = slice(0, w)
            t = tmp[tuple(tsl)]
            a = t_ops[0][tuple(sl_in)] if isinstance(t_ops[0], np.ndarray) else t_ops[0]
            b = t_ops[1][tuple(sl_in)] if isinstance(t_ops[1], np.ndarray) else t_ops[1]
            bin_ufunc(a, b, out=t)
            result[tuple(sl_out)] = red_ufunc.reduce(t, axis=red_axes_t)
        return result
    # float64 — and int64 without a UC501 proof: keep the reduced axes
    # innermost and the original pairwise grouping.  Float reduction
    # order is observable, so only the grouping-preserving blocking below
    # is bit-identical to solo; for unproven int64 sites the same path is
    # the verdict-mandated order-preserving fallback (also bit-identical,
    # integers being exact).
    tmp_shape = list(inner_b)
    tmp_shape[block_axis] = width
    tmp = np.empty(tuple(tmp_shape), dtype=dtype)
    sl_in = [slice(None)] * rank
    sl_out = [slice(None)] * len(out_shape)
    for k0 in range(0, extent, width):
        w = min(width, extent - k0)
        sl_in[block_axis] = slice(k0, k0 + w)
        sl_out[out_block_pos] = slice(k0, k0 + w)
        tsl = sl_in.copy()
        tsl[block_axis] = slice(0, w)
        t = tmp[tuple(tsl)]
        a = ops[0][tuple(sl_in)] if isinstance(ops[0], np.ndarray) else ops[0]
        b = ops[1][tuple(sl_in)] if isinstance(ops[1], np.ndarray) else ops[1]
        bin_ufunc(a, b, out=t)
        result[tuple(sl_out)] = red_ufunc.reduce(t, axis=axes_b)
    return result


def _run_reduce(step: _Reduce, st: _ChunkState, regs) -> None:
    n = st.n
    m = regs[step.mask]
    inner_b = (n,) + step.inner_shape
    base = np.broadcast_to(
        m.reshape(m.shape + (1,) * step.n_sets), inner_b
    )
    regs[step.base] = base
    axes_b = _axes_up(step.reduce_axes)
    if (
        len(step.arms) == 1
        and step.arms[0][0] is None
        and step.others is None
        and bool(np.all(m))
    ):
        # chunk-wide fast path; partially-enabled chunks take the generic
        # path below, which the solo engine documents as value-identical
        _ps, _po, amreg, esteps, eout = step.arms[0]
        regs[amreg] = base
        blocked = _try_blocked_reduce(step, st, regs, esteps, eout, inner_b, axes_b)
        if blocked is not None:
            regs[step.dst] = blocked
            return
        _run_steps(esteps, st, regs)
        val = np.broadcast_to(
            np.asarray(_lift(regs[eout], len(inner_b))), inner_b
        )
        ufunc = E._RED_UFUNC[step.op]
        logical = step.op in ("logand", "logor", "logxor")
        dtype = E._result_dtype(step.op, [val])
        v = val.astype(bool) if logical else (
            val.astype(dtype) if val.dtype != dtype else val
        )
        total = ufunc.reduce(v, axis=axes_b) if step.reduce_axes else v
        regs[step.dst] = np.asarray(total).astype(
            np.int64 if logical else dtype
        )
        return
    arm_values: List[np.ndarray] = []
    arm_masks: List[np.ndarray] = []
    union: Optional[np.ndarray] = None
    for psteps, pout, amreg, esteps, eout in step.arms:
        if psteps is None:
            am = base
        else:
            _run_steps(psteps, st, regs)
            pv = _truthy_bcast(regs[pout], inner_b)
            am = base & pv
            union = pv if union is None else (union | pv)
        regs[amreg] = am
        _run_steps(esteps, st, regs)
        arm_values.append(
            np.broadcast_to(np.asarray(_lift(regs[eout], len(inner_b))), inner_b)
        )
        arm_masks.append(am)
    if step.others is not None:
        osteps, oout, omreg = step.others
        om = base & (
            ~union if union is not None else np.zeros(inner_b, bool)
        )
        regs[omreg] = om
        _run_steps(osteps, st, regs)
        arm_values.append(
            np.broadcast_to(np.asarray(_lift(regs[oout], len(inner_b))), inner_b)
        )
        arm_masks.append(om)
    regs[step.dst] = E._reduce_op(step.op, arm_values, arm_masks, axes_b)


def _steps_supported(fused) -> bool:
    """Every step must have a batched adapter (and scatters must be
    provably single-assignment, so no cross-lane duplicate check runs)."""

    def walk(steps) -> bool:
        for s in steps:
            if isinstance(s, _Scatter):
                if not s.unique:
                    return False
            elif isinstance(s, _Reduce):
                for psteps, _po, _am, esteps, _eo in s.arms:
                    if psteps is not None and not walk(psteps):
                        return False
                    if not walk(esteps):
                        return False
                if s.others is not None and not walk(s.others[0]):
                    return False
            elif not isinstance(
                s,
                (
                    _ReadScalar,
                    _Unary,
                    _Binary,
                    _Bool,
                    _Mask,
                    _TruthyInt,
                    _Combine,
                    _Where,
                    _Gather,
                    _AssignScalar,
                ),
            ):
                return False
        return True

    for prog in fused.pred_progs:
        if prog is not None and not walk(prog[1]):
            return False
    for segs in fused.arm_segments:
        for seg in segs:
            if seg[0] == "f" and not walk(seg[2]):
                return False
    return True


def _max_elems(fused) -> int:
    """Largest per-lane register footprint (construct grid or any
    reduction's inner grid), in elements."""
    best = int(np.prod(fused.shape)) if fused.shape else 1

    def walk(steps) -> None:
        nonlocal best
        for s in steps:
            if isinstance(s, _Reduce):
                best = max(best, int(np.prod(s.inner_shape)))
                for psteps, _po, _am, esteps, _eo in s.arms:
                    if psteps is not None:
                        walk(psteps)
                    walk(esteps)
                if s.others is not None:
                    walk(s.others[0])

    for prog in fused.pred_progs:
        if prog is not None:
            walk(prog[1])
    for segs in fused.arm_segments:
        for seg in segs:
            if seg[0] == "f":
                walk(seg[2])
    return best


# ---------------------------------------------------------------------------
# one batched construct
# ---------------------------------------------------------------------------


class _BatchConstruct:
    """Lockstep execution of one ``*par``/``*solve`` across the live lanes."""

    def __init__(self, run, stmt: ast.UCStmt, live, ctxs) -> None:
        self.batch = run
        self.stmt = stmt
        self.live = list(live)  # global lane ids, row-aligned with stacks
        self.ctxs = ctxs
        self.interps = [run.interps[i] for i in live]

    def run(self) -> None:
        fused = self._screen()
        if fused is None:
            for ip, i in zip(self.interps, self.live):
                exec_stmt(ip, self.stmt, self.ctxs[i])
            return
        self._prepare(fused)
        if self.stmt.kind == "solve":
            self._drive_solve()
        else:
            self._drive_par()

    # -- screening (pure: any failure falls back to per-lane execution) --

    def _screen(self):
        stmt = self.stmt
        ip0 = self.interps[0]
        if not (
            getattr(ip0, "fusion_enabled", False)
            and getattr(ip0, "plans_enabled", False)
        ):
            return None
        try:
            if stmt.kind == "par":
                _check_starred(stmt)  # *solve terminates by fixed point
            ctx0 = self.ctxs[self.live[0]]
            if ctx0.mask is not None:
                return None
            # replicate enter_grid minus its context charge: screening
            # must not touch any lane's clock
            sets = [
                ip0.resolve_index_set(name, ctx0, at=stmt)
                for name in stmt.index_sets
            ]
            grid = ctx0.grid.extend(sets)
            env = ctx0.env.child()
            for off, isv in enumerate(sets):
                env.declare(
                    isv.elem_name,
                    ElementBinding(
                        isv.elem_name, isv.name, "axis",
                        axis=ctx0.grid.rank + off,
                    ),
                )
            probe = ExecContext(grid, None, env)
            plans0 = _plans_for(ip0, stmt, grid)
            fused = fuse.fused_for(ip0, stmt, probe, plans0)
            if fused is None or fused.others_segments is not None:
                return None
            for segs in fused.arm_segments:
                for seg in segs:
                    if seg[0] != "f":
                        return None  # unfused segment: no batched adapter
            if not _steps_supported(fused):
                return None
            arr_names = {
                name for kind, name, _e in fused.checks if kind == "array"
            }
            sc_names = {
                name for kind, name, _e in fused.checks if kind == "scalar"
            }
            for name in _modified_names(stmt):
                if name not in arr_names and name not in sc_names:
                    return None
            stacked = sum(
                e.data.nbytes
                for kind, _n, e in fused.checks
                if kind == "array"
            ) * len(self.live)
            max_elems = _max_elems(fused)
            chunk = max(
                1, min(len(self.live), _CHUNK_TARGET_ELEMS // max(1, max_elems))
            )
            if stacked + 4 * chunk * max_elems * 8 > _MEMORY_CAP_BYTES:
                return None
            self.max_elems = max_elems
            self.chunk = chunk
            self.arr_names = arr_names
            self.sc_names = sc_names
            return fused
        except Exception:
            return None

    # -- committed prepare (failures abort to the sequential rerun) -------

    def _prepare(self, fused) -> None:
        stmt = self.stmt
        self.fused = fused
        self.inners: List[ExecContext] = []
        self.sessions: List[Optional[frontier.StarSession]] = []
        self.plans: List[Any] = []
        for ip, i in zip(self.interps, self.live):
            inner = enter_grid(ip, stmt, self.ctxs[i])
            plans = _plans_for(ip, stmt, inner.grid)
            fk = fuse.fused_for(ip, stmt, inner, plans)
            if fk is not fused:
                raise _BatchAbort()
            sess = frontier.star_session(ip, stmt, inner, stmt.kind)
            self.inners.append(inner)
            self.plans.append(plans)
            self.sessions.append(sess)
        on = [s is not None for s in self.sessions]
        if any(on) and not all(on):
            raise _BatchAbort()
        self.sessions_on = all(on)
        self.modified = _modified_names(stmt)
        self.mod_arrays = [n for n in self.modified if n in self.arr_names]
        self.mod_scalars = [n for n in self.modified if n in self.sc_names]
        if self.sessions_on:
            for sess in self.sessions:
                if any(n not in self.arr_names for n in sess.an.modified):
                    raise _BatchAbort()
        self.vp_ratio = self.interps[0].grid_vpset(
            self.inners[0].grid.shape
        ).vp_ratio
        # lane-stack every array the kernel touches; per-lane scalar vars
        self.array_vars: Dict[str, List[ArrayVar]] = {}
        self.stacks: Dict[str, np.ndarray] = {}
        self.scalar_vars: Dict[str, List[ScalarVar]] = {}
        for kind, name, _e in fused.checks:
            if kind == "array":
                vs = []
                for inner in self.inners:
                    b = inner.env.try_lookup(name)
                    if not isinstance(b, ArrayVar):
                        raise _BatchAbort()
                    vs.append(b)
                self.array_vars[name] = vs
                self.stacks[name] = lane_stack([v.field for v in vs])
            elif kind == "scalar":
                vs = []
                for inner in self.inners:
                    b = inner.env.try_lookup(name)
                    if not isinstance(b, ScalarVar):
                        raise _BatchAbort()
                    vs.append(b)
                self.scalar_vars[name] = vs

    def _writeback(self, row: int) -> None:
        """Flush one lane's stacked rows into its real fields."""
        for name, vs in self.array_vars.items():
            vs[row].field.data[...] = self.stacks[name][row]

    def _compact(self, keep: List[int]) -> None:
        """Drop retired/demoted rows from every row-aligned structure."""
        self.live = [self.live[r] for r in keep]
        self.interps = [self.interps[r] for r in keep]
        self.inners = [self.inners[r] for r in keep]
        self.plans = [self.plans[r] for r in keep]
        self.sessions = [self.sessions[r] for r in keep]
        for name in self.array_vars:
            self.array_vars[name] = [self.array_vars[name][r] for r in keep]
            self.stacks[name] = self.stacks[name][keep]
        for name in self.scalar_vars:
            self.scalar_vars[name] = [self.scalar_vars[name][r] for r in keep]

    # -- one batched compute pass -----------------------------------------

    def _sweep_compute(self, collect_masks: bool):
        """Run predicates + bodies over all rows, chunked along the lane
        axis.  Returns ``arm_any[k, row]`` (and the stacked per-arm masks
        when ``collect_masks``, for ``*par`` bookkeeping)."""
        fused = self.fused
        n_rows = len(self.live)
        K = len(fused.arm_mask_regs)
        spatial = tuple(range(1, 1 + len(fused.shape)))
        arm_any = np.zeros((K, n_rows), dtype=bool)
        masks_full = (
            [np.zeros((n_rows,) + fused.shape, dtype=bool) for _ in range(K)]
            if collect_masks
            else None
        )
        for lo in range(0, n_rows, self.chunk):
            hi = min(n_rows, lo + self.chunk)
            n = hi - lo
            st = _ChunkState(
                n,
                {name: stk[lo:hi] for name, stk in self.stacks.items()},
                {name: vs[lo:hi] for name, vs in self.scalar_vars.items()},
            )
            regs: List[Any] = [None] * fused.n_regs
            for r, v in fused.consts:
                regs[r] = v
            base = np.ones((n,) + fused.shape, dtype=bool)
            regs[fused.base_reg] = base
            masks: List[np.ndarray] = []
            for prog in fused.pred_progs:
                if prog is None:
                    masks.append(base)
                    continue
                _charges, steps, out = prog
                _run_steps(steps, st, regs)
                pb = _truthy_bcast(regs[out], (n,) + fused.shape)
                masks.append(base & pb)
            for k in range(K):
                arm_any[k, lo:hi] = (
                    masks[k].any(axis=spatial) if spatial else masks[k]
                )
                if collect_masks:
                    masks_full[k][lo:hi] = masks[k]
            for k, segs in enumerate(fused.arm_segments):
                aa = arm_any[k, lo:hi]
                if not aa.any():
                    continue
                regs[fused.arm_mask_regs[k]] = masks[k]
                st.active = aa
                for seg in segs:
                    _run_steps(seg[2], st, regs)
        return arm_any, masks_full

    def _charge_preds(self, clock) -> None:
        for prog in self.fused.pred_progs:
            if prog is not None:
                clock.replay(prog[0])
                clock.count_fusion("charge_table_hits")

    def _charge_arms(self, clock, arm_any, row: int) -> None:
        for k, segs in enumerate(self.fused.arm_segments):
            if not arm_any[k, row]:
                continue
            for seg in segs:
                clock.replay(seg[1])
                clock.count_fusion("charge_table_hits")
        clock.count_fusion("fused_sweeps")

    def _install_session(
        self, row: int, changed, gt, lt, t0: float, a0: int
    ) -> None:
        """Mirror ``StarSession.full_end`` from the stacked before/after
        deltas (``changed``/``gt``/``lt`` are per-name lane-stacked
        arrays, computed once per sweep for every lane)."""
        sess = self.sessions[row]
        clock = self.interps[row].machine.clock
        costs = clock.costs
        alloc_extra = clock.count("alloc") - a0
        sess.reference = (clock.time_us - t0) - alloc_extra * (
            costs.alloc + costs.dispatch
        )
        sess.ref_pes = self.interps[row].machine.n_live_pes
        prev: Dict[str, np.ndarray] = {}
        stats: Dict[str, Tuple[int, int]] = {}
        for name in sess.an.modified:
            ch = changed[name][row]
            prev[name] = ch
            stats[name] = (int(np.count_nonzero(ch)), int(ch.size))
            sess.dirs[name] = (
                bool(np.any(gt[name][row])),
                bool(np.any(lt[name][row])),
            )
        sess.prev = prev
        sess.last_stats = stats
        clock.count_frontier("full_sweeps")

    def _sess_key(self, row: int):
        """Hashable digest of everything a lane's ``plan_compressed``
        decision depends on.  ``plan_compressed`` is pure (no clock
        charges, no counters) and reads only the session's prev/dirs/
        reference/ref_pes state plus shared per-construct analysis, so
        lanes with equal digests get equal None/plan decisions — the
        drivers memoise the (common) all-None outcome across lanes."""
        sess = self.sessions[row]
        if sess.prev is None or sess.reference is None:
            return None
        key = [
            sess.reference,
            sess.ref_pes,
            self.interps[row].machine.n_live_pes,
            tuple(sorted((k, v.tobytes()) for k, v in sess.prev.items())),
            tuple(sorted(sess.dirs.items())),
        ]
        if self.stmt.kind == "par":
            if sess.par_masks is None:
                return None
            key.append(tuple(m.tobytes() for m in sess.par_masks))
        return tuple(key)

    # -- *solve ------------------------------------------------------------

    def _drive_solve(self) -> None:
        stmt = self.stmt
        fused = self.fused
        limit = self.interps[0].solve_sweep_limit
        n_mod = len(self.modified) or 1
        sweeps = 0
        while self.live:
            # frontier decisions: lanes electing a compressed sweep leave
            # the batch and run the verbatim solo loop to completion
            if self.sessions_on:
                keep: List[int] = []
                none_keys = set()
                for row in range(len(self.live)):
                    key = self._sess_key(row)
                    if key is not None and key in none_keys:
                        keep.append(row)
                        continue
                    states = self.sessions[row].plan_compressed()
                    if states is None:
                        if key is not None:
                            none_keys.add(key)
                        keep.append(row)
                        continue
                    self._writeback(row)
                    self._finish_solve(row, states, sweeps)
                if len(keep) != len(self.live):
                    self._compact(keep)
                if not self.live:
                    return
            before = {
                name: self.stacks[name].copy() for name in self.mod_arrays
            }
            before_sc = {
                name: [v.value for v in self.scalar_vars[name]]
                for name in self.mod_scalars
            }
            marks = []
            for row, ip in enumerate(self.interps):
                clock = ip.machine.clock
                if self.sessions_on:
                    marks.append((clock.time_us, clock.count("alloc")))
                else:
                    marks.append(None)
            arm_any, _ = self._sweep_compute(collect_masks=False)
            for row, ip in enumerate(self.interps):
                clock = ip.machine.clock
                clock.charge("alu", count=n_mod, vp_ratio=self.vp_ratio)
                self._charge_preds(clock)
                self._charge_arms(clock, arm_any, row)
                clock.charge("global_or", vp_ratio=self.vp_ratio)
                clock.charge("host_cm_latency")
            changed = {
                name: before[name] != self.stacks[name]
                for name in self.mod_arrays
            }
            lane_changed = np.zeros(len(self.live), dtype=bool)
            for name, ch in changed.items():
                lane_changed |= ch.any(axis=tuple(range(1, ch.ndim)))
            for name, vals in before_sc.items():
                now = [v.value for v in self.scalar_vars[name]]
                for row in range(len(self.live)):
                    if vals[row] != now[row]:
                        lane_changed[row] = True
            if self.sessions_on:
                gt = {
                    name: self.stacks[name] > before[name]
                    for name in self.mod_arrays
                }
                lt = {
                    name: self.stacks[name] < before[name]
                    for name in self.mod_arrays
                }
                for row in range(len(self.live)):
                    t0, a0 = marks[row]
                    self._install_session(row, changed, gt, lt, t0, a0)
            keep = []
            for row in range(len(self.live)):
                if lane_changed[row]:
                    keep.append(row)
                else:
                    self._writeback(row)  # fixed point: lane retires
            if len(keep) != len(self.live):
                self._compact(keep)
            sweeps += 1
            if self.live and sweeps > limit:
                raise _BatchAbort()  # sequential rerun raises the solo error
        del fused, stmt

    def _finish_solve(self, row: int, states, sweeps: int) -> None:
        """The verbatim solo ``*solve`` loop for one demoted lane,
        entered with a compressed sweep already planned."""
        ip = self.interps[row]
        stmt = self.stmt
        inner = self.inners[row]
        plans = self.plans[row]
        sess = self.sessions[row]
        modified = self.modified
        clock = ip.machine.clock
        summarize = sess.delta_summary
        while True:
            if states is not None:
                if not sess.run_compressed(states):
                    return
                summarize = sess.delta_summary
            else:
                before = _snapshot(inner, modified)
                sess.full_begin()
                clock.charge(
                    "alu", count=len(modified) or 1, vp_ratio=self.vp_ratio
                )
                _run_blocks_once(ip, stmt, inner, plans)
                clock.charge("global_or", vp_ratio=self.vp_ratio)
                clock.charge("host_cm_latency")
                after = _snapshot(inner, modified)
                sess.full_end()
                if _snapshots_equal(before, after):
                    return
                summarize = lambda b=before, a=after: _delta_summary(b, a)
            sweeps += 1
            if sweeps > ip.solve_sweep_limit:
                raise UCRuntimeError(
                    f"*solve exceeded the sweep limit ({ip.solve_sweep_limit}; "
                    "raise via UCProgram(solve_sweep_limit=...) or "
                    "REPRO_SOLVE_SWEEP_LIMIT); still changing each sweep: "
                    f"{summarize()}",
                    stmt.line,
                    stmt.col,
                )
            states = sess.plan_compressed()

    # -- *par --------------------------------------------------------------

    def _drive_par(self) -> None:
        sweeps = 0
        while self.live:
            if self.sessions_on:
                keep = []
                none_keys = set()
                for row in range(len(self.live)):
                    key = self._sess_key(row)
                    if key is not None and key in none_keys:
                        keep.append(row)
                        continue
                    states = self.sessions[row].plan_compressed()
                    if states is None:
                        if key is not None:
                            none_keys.add(key)
                        keep.append(row)
                        continue
                    self._writeback(row)
                    self._finish_par(row, states, sweeps)
                if len(keep) != len(self.live):
                    self._compact(keep)
                if not self.live:
                    return
            before = None
            marks = []
            if self.sessions_on:
                before = {
                    name: self.stacks[name].copy() for name in self.mod_arrays
                }
            for ip in self.interps:
                clock = ip.machine.clock
                marks.append(
                    (clock.time_us, clock.count("alloc"))
                    if self.sessions_on
                    else None
                )
            arm_any, masks_full = self._sweep_compute(collect_masks=True)
            ran = arm_any.any(axis=0)
            for row, ip in enumerate(self.interps):
                clock = ip.machine.clock
                self._charge_preds(clock)
                clock.charge("global_or", vp_ratio=self.vp_ratio)
                clock.charge("host_cm_latency")
                if ran[row]:
                    self._charge_arms(clock, arm_any, row)
            if self.sessions_on:
                changed = {
                    name: before[name] != self.stacks[name]
                    for name in self.mod_arrays
                }
                gt = {
                    name: self.stacks[name] > before[name]
                    for name in self.mod_arrays
                }
                lt = {
                    name: self.stacks[name] < before[name]
                    for name in self.mod_arrays
                }
                for row in range(len(self.live)):
                    if not ran[row]:
                        continue  # solo returns before full_end
                    t0, a0 = marks[row]
                    self._install_session(row, changed, gt, lt, t0, a0)
                    self.sessions[row].par_masks = [
                        masks_full[k][row].copy()
                        for k in range(len(masks_full))
                    ]
            keep = []
            for row in range(len(self.live)):
                if ran[row]:
                    keep.append(row)
                else:
                    self._writeback(row)  # predicates all false: lane done
            if len(keep) != len(self.live):
                self._compact(keep)
            sweeps += 1
            if self.live and sweeps > MAX_SWEEPS:
                raise _BatchAbort()  # sequential rerun raises the solo error

    def _finish_par(self, row: int, states, sweeps: int) -> None:
        """The verbatim solo ``*par`` loop for one demoted lane."""
        ip = self.interps[row]
        stmt = self.stmt
        inner = self.inners[row]
        plans = self.plans[row]
        sess = self.sessions[row]
        clock = ip.machine.clock
        while True:
            if states is not None:
                if not sess.run_compressed(states):
                    return
            else:
                sess.full_begin()
                fused = fuse.fused_for(ip, stmt, inner, plans)
                with ip.cse_arm():
                    if fused is not None:
                        sweep = fused.begin_sweep(ip, inner)
                        masks = sweep.masks
                    else:
                        masks, _ = _block_masks(ip, stmt, inner, plans)
                    clock.charge("global_or", vp_ratio=self.vp_ratio)
                    clock.charge("host_cm_latency")
                    if not any(np.any(m) for m in masks):
                        return
                    if fused is not None:
                        fused.run_body(ip, inner, sweep)
                    else:
                        for k, (block, mask) in enumerate(
                            zip(stmt.blocks, masks)
                        ):
                            if np.any(mask):
                                sub = inner.with_mask(mask)
                                if plans is not None:
                                    plans.stmts[k](ip, sub)
                                else:
                                    exec_stmt(ip, block.stmt, sub)
                sess.full_end()
                sess.note_par_masks(masks)
            sweeps += 1
            if sweeps > MAX_SWEEPS:
                raise UCRuntimeError(
                    "*par exceeded the sweep limit (predicate never "
                    "falsified?)",
                    stmt.line,
                    stmt.col,
                )
            states = sess.plan_compressed()
