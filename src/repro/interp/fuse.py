"""Kernel fusion: lower a construct body to whole-array NumPy programs.

The compiled-plan engine (:mod:`repro.interp.plan`) already memoises the
expensive per-statement analyses (index recipes, tier decisions, charge
recipes), but the steady-state sweep loop still walks one Python closure
per expression node per sweep.  This pass goes one step further, in the
spirit of the paper's "UC compiles to tight data-parallel code" claim:
for an iterated construct it compiles the whole charge-and-compute
statement sequence once, into

* a **register program**: a flat list of steps over preallocated value
  slots (``regs``).  Gathers and scatters embed the same ``np.ix_`` /
  NEWS-shift recipes the plan memos would build, arithmetic becomes
  direct ``numpy`` calls, guards become boolean mask registers; and
* a **static charge table**: the exact ``Clock.charge`` /
  ``charge_scan`` / ``count_tier`` sequence each statement would issue,
  recorded once at compile time by running the real cost helpers against
  a recorder, and replayed per sweep with three tuple reads per entry.

Because every charge a fused statement can issue is provably
data-independent (that is what the fusability checks below establish),
replaying the table is *bit-identical* to the unfused engine — the
differential suites hold ``fusion=True`` to the tree-walker's exact
fingerprint.  Statements the pass cannot prove static (host calls,
dynamic subscripts, data-dependent short-circuits, send-reduce
candidates...) become **unfused segments**: the fused sweep drops back to
the ordinary compiled-plan closure for just that statement, keeping the
rest of the body on the fast path.

Correctness subtleties worth naming:

* **CSE simulation.**  Inside a construct the engine arms a
  common-subexpression cache whose hits *remove* charges.  Fusion must
  predict every hit and miss exactly, in both directions, so the
  compiler simulates the cache statically: cache keys are the same
  ``(expr text, grid shape)`` pairs, and each store is tagged with a
  *mask token* describing the chain of predicate refinements under which
  it was computed.  A lookup whose token extends the store's token is a
  guaranteed runtime hit (its mask is pointwise contained in the stored
  mask); any other present-key lookup is data-dependent and demotes the
  statement to an unfused segment.  Writes drop entries by read-set,
  exactly like ``Interpreter.cse_invalidate``; an invalidation issued
  from a *conditional* arm tombstones the key, and a later lookup from a
  different arm bails the whole construct (at run time the killer arm
  may be skipped, leaving the entry live).  Texts reachable from both
  fused and unfused parts of one body bail the construct too — the two
  cache worlds must never overlap.
* **Error paths.**  Charges replay before the statement's value steps
  run, so a statement that *raises* (bounds, UC101, division by zero)
  leaves slightly different partial charges than the unfused engine.
  Those errors abort the run — the fingerprint of a completed run is
  unaffected — and the differential tests only assert messages there.
* **Escape hatch.**  ``REPRO_NO_FUSION=1`` or ``UCProgram(fusion=False)``
  restores the per-closure plan engine; the tree-walking oracle remains
  the ground truth either way.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..compiler.cstar_gen import expr_to_text
from ..lang import ast
from ..lang.errors import UCRuntimeError
from ..lang.scope import IndexSetValue
from ..machine.scan import INF
from ..mapping.locality import classify_reference, classify_write
from . import commtiers
from . import eval_expr as E
from .plan import (
    _VERIFY_LIMIT,
    _build_index_recipe,
    _oob_masks,
    compile_stmt,
)
from .values import ArrayVar, ElementBinding, ScalarVar

__all__ = ["fused_for", "FusedConstruct"]

#: cached sentinel for constructs the pass declined to fuse
_UNFUSABLE = object()

#: marker for register values not known at compile time
_DYN = object()


class _Bail(Exception):
    """The whole construct cannot be fused."""


class _Demote(Exception):
    """The current statement cannot be fused (falls back per-statement)."""


# ---------------------------------------------------------------------------
# charge tables
# ---------------------------------------------------------------------------


class _Recorder:
    """Clock stand-in that records the charge recipe instead of charging.

    The compiler runs the *real* cost helpers (``charge_tier_at`` and
    friends) against this recorder, so the table is the genuine charge
    sequence by construction, not a reimplementation of it.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple] = []

    def charge(self, kind: str, *, count: int = 1, vp_ratio: int = 1) -> float:
        self.entries.append(("c", kind, count, vp_ratio))
        return 0.0

    def charge_scan(
        self, n_vps: int, *, vp_ratio: int = 1, steps_per_level: int = 1
    ) -> float:
        self.entries.append(("s", n_vps, vp_ratio, steps_per_level))
        return 0.0

    def count_tier(self, tier: str) -> None:
        self.entries.append(("t", tier))

    def note_shard_ref(self, tier, rc, layout, grid_shape, write) -> None:
        # recorded unconditionally so compiled charge tables are identical
        # for every shard count (the compile store shares them); replay
        # ignores the entry unless a shard sink is installed
        self.entries.append(("x", tier, rc, layout, grid_shape, write))

    def note_shard_reduce(self, op, order_safe, n_vps, vp_ratio, grid_shape) -> None:
        # same story for reduction observations (the "r" tag): the UC5xx
        # verdict rides the table so sharded replay can gate pre-combining
        self.entries.append(("r", op, order_safe, n_vps, vp_ratio, grid_shape))


def _replay(clock, entries) -> None:
    """Re-issue a recorded charge table against the real clock."""
    clock.replay(entries)


# ---------------------------------------------------------------------------
# register-program steps
# ---------------------------------------------------------------------------
# Each step is ``run(ip, regs)``: read source registers, write ``dst``.
# Mask registers hold boolean arrays; everything else holds whatever the
# unfused evaluator would have produced (scalars or grid-shaped arrays).


class _ReadScalar:
    __slots__ = ("dst", "var")

    def __init__(self, dst: int, var: ScalarVar) -> None:
        self.dst = dst
        self.var = var

    def run(self, ip, regs) -> None:
        regs[self.dst] = self.var.value


class _Unary:
    __slots__ = ("dst", "src", "node")

    def __init__(self, dst: int, src: int, node: ast.Unary) -> None:
        self.dst = dst
        self.src = src
        self.node = node

    def run(self, ip, regs) -> None:
        v = regs[self.src]
        node = self.node
        if node.op == "-":
            regs[self.dst] = -v
        elif node.op == "!":
            if isinstance(v, np.ndarray):
                regs[self.dst] = np.logical_not(v.astype(bool)).astype(np.int64)
            else:
                regs[self.dst] = int(not v)
        elif node.op == "~":
            if isinstance(v, np.ndarray):
                regs[self.dst] = np.invert(v.astype(np.int64))
            else:
                regs[self.dst] = ~int(v)
        else:  # pragma: no cover - rejected at compile time
            raise UCRuntimeError(f"bad unary {node.op!r}", node.line, node.col)


class _Binary:
    __slots__ = ("dst", "a", "b", "node")

    def __init__(self, dst: int, a: int, b: int, node: ast.Binary) -> None:
        self.dst = dst
        self.a = a
        self.b = b
        self.node = node

    def run(self, ip, regs) -> None:
        regs[self.dst] = E.apply_binop(
            self.node.op, regs[self.a], regs[self.b], self.node
        )


class _Bool:
    """``dst = broadcast(truthy(src))`` — a predicate's boolean view."""

    __slots__ = ("dst", "src", "shape")

    def __init__(self, dst: int, src: int, shape: Tuple[int, ...]) -> None:
        self.dst = dst
        self.src = src
        self.shape = shape

    def run(self, ip, regs) -> None:
        regs[self.dst] = np.broadcast_to(
            np.asarray(E._truthy(regs[self.src])), self.shape
        )


class _Mask:
    """``dst = base & cond`` (or ``& ~cond``): one context refinement."""

    __slots__ = ("dst", "base", "cond", "invert")

    def __init__(self, dst: int, base: int, cond: int, invert: bool) -> None:
        self.dst = dst
        self.base = base
        self.cond = cond
        self.invert = invert

    def run(self, ip, regs) -> None:
        c = regs[self.cond]
        regs[self.dst] = regs[self.base] & (~c if self.invert else c)


class _TruthyInt:
    """Scalar-left short-circuit result: ``int(truthy(v))`` / int64 array."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: int, src: int) -> None:
        self.dst = dst
        self.src = src

    def run(self, ip, regs) -> None:
        v = E._truthy(regs[self.src])
        if isinstance(v, np.ndarray):
            regs[self.dst] = v.astype(np.int64)
        else:
            regs[self.dst] = int(v)


class _Combine:
    """Array short-circuit combine: ``(lbool op rbool).astype(int64)``."""

    __slots__ = ("dst", "lbool", "right", "is_and", "shape")

    def __init__(self, dst, lbool, right, is_and, shape) -> None:
        self.dst = dst
        self.lbool = lbool
        self.right = right
        self.is_and = is_and
        self.shape = shape

    def run(self, ip, regs) -> None:
        lbool = regs[self.lbool]
        rbool = np.broadcast_to(
            np.asarray(E._truthy(regs[self.right])), self.shape
        )
        if self.is_and:
            regs[self.dst] = (lbool & rbool).astype(np.int64)
        else:
            regs[self.dst] = (lbool | rbool).astype(np.int64)


class _Where:
    __slots__ = ("dst", "cbool", "then", "els")

    def __init__(self, dst, cbool, then, els) -> None:
        self.dst = dst
        self.cbool = cbool
        self.then = then
        self.els = els

    def run(self, ip, regs) -> None:
        regs[self.dst] = np.where(regs[self.cbool], regs[self.then], regs[self.els])


class _Gather:
    """One memoised array read, mirroring ``_GatherPlan``'s hit path."""

    __slots__ = (
        "dst",
        "node",
        "arr",
        "subs",
        "view_shape",
        "oob",
        "mask",
        "shift",
        "recipe",
        "idx",
        "view_ok",
    )

    def __init__(
        self, dst, node, arr, subs, view_shape, oob, mask, shift, recipe, idx, view_ok
    ) -> None:
        self.dst = dst
        self.node = node
        self.arr = arr
        self.subs = subs
        self.view_shape = view_shape
        self.oob = oob
        self.mask = mask
        self.shift = shift
        self.recipe = recipe
        self.idx = idx
        self.view_ok = view_ok

    def run(self, ip, regs) -> None:
        data = self.arr.data
        if self.oob is not None:
            m = regs[self.mask]
            for ob in self.oob:
                if ob is not None and np.any(ob & m):
                    E._bounds_check(self.node, self.subs, self.view_shape, m)
        if self.shift is not None:
            regs[self.dst] = commtiers.run_shifts(data, self.shift)
            return
        if self.recipe is not None:
            out = self.recipe.take(data)
            regs[self.dst] = out if self.view_ok else out.copy()
            return
        regs[self.dst] = data[self.idx]


class _Scatter:
    """One memoised masked write, mirroring ``_ScatterPlan``'s hit path."""

    __slots__ = (
        "node",
        "arr",
        "val",
        "mask",
        "grid_shape",
        "view_shape",
        "subs",
        "oob",
        "flat",
        "unique",
    )

    def __init__(
        self, node, arr, val, mask, grid_shape, view_shape, subs, oob, flat, unique
    ) -> None:
        self.node = node
        self.arr = arr
        self.val = val
        self.mask = mask
        self.grid_shape = grid_shape
        self.view_shape = view_shape
        self.subs = subs
        self.oob = oob
        self.flat = flat
        self.unique = unique

    def run(self, ip, regs) -> None:
        data = self.arr.data
        mask = regs[self.mask]
        if self.oob is not None:
            for ob in self.oob:
                if ob is not None and np.any(ob & mask):
                    E._bounds_check(self.node, self.subs, self.view_shape, mask)
        value = regs[self.val]
        flat_mask = mask.reshape(-1)
        flat_idx = self.flat[flat_mask]
        if isinstance(value, np.ndarray):
            vals = np.broadcast_to(value, self.grid_shape).reshape(-1)[flat_mask]
        else:
            vals = np.full(int(flat_mask.sum()), value)
        vals = E._cast_array(vals, data.dtype)
        if not self.unique:
            E._check_single_assignment(
                self.node,
                flat_idx,
                vals,
                grid_shape=self.grid_shape,
                flat_mask=flat_mask,
                view_shape=self.view_shape,
                construct=getattr(ip, "current_construct", None),
            )
        data.reshape(-1)[flat_idx] = vals
        ip.cse_invalidate(self.node.base)


class _AssignScalar:
    """Masked parallel write to a front-end scalar (all lanes must agree)."""

    __slots__ = ("var", "val", "mask", "grid_shape", "node")

    def __init__(self, var, val, mask, grid_shape, node) -> None:
        self.var = var
        self.val = val
        self.mask = mask
        self.grid_shape = grid_shape
        self.node = node

    def run(self, ip, regs) -> None:
        value = regs[self.val]
        var = self.var
        if not isinstance(value, np.ndarray):
            from .values import coerce_scalar

            var.value = coerce_scalar(var.ctype, value)
            ip.cse_invalidate(var.name)
            return
        mask = regs[self.mask]
        vals = np.broadcast_to(value, self.grid_shape)[mask]
        if vals.size == 0:  # pragma: no cover - fused arms are np.any-gated
            return
        if np.any(vals != vals.reshape(-1)[0]):
            flat = vals.reshape(-1)
            other = flat[flat != flat[0]][0]
            from ..lang.errors import UCMultipleAssignmentError

            raise UCMultipleAssignmentError(
                f"[UC101] par assigns multiple distinct values to scalar "
                f"{var.name!r} (values {flat[0].item()!r} and "
                f"{other.item()!r}); reduce the grid value first ($+, $min, "
                "...) or make the choice explicit with the $, operator "
                "(paper §3.4)",
                self.node.line,
                self.node.col,
            )
        from .values import coerce_scalar

        var.value = coerce_scalar(var.ctype, vals.reshape(-1)[0])
        ip.cse_invalidate(var.name)


class _Reduce:
    """A whole ``$op(sets; ...)`` reduction as one composite step."""

    __slots__ = (
        "dst",
        "op",
        "n_sets",
        "inner_shape",
        "reduce_axes",
        "mask",
        "base",
        "arms",
        "others",
        "order_safe",
    )

    def __init__(
        self,
        dst,
        op,
        n_sets,
        inner_shape,
        reduce_axes,
        mask,
        base,
        arms,
        others,
        order_safe=False,
    ) -> None:
        self.dst = dst
        self.op = op
        self.n_sets = n_sets
        self.inner_shape = inner_shape
        self.reduce_axes = reduce_axes
        self.mask = mask  # statement-level mask register
        self.base = base  # register receiving the broadcast base mask
        #: [(pred_steps|None, pred_out, arm_mask_reg, expr_steps, expr_out)]
        self.arms = arms
        self.others = others  # (steps, out, others_mask_reg) | None
        #: UC501 determinism verdict: the batch engine may reorder the
        #: blocked combine only when the analyzer proved it order-safe
        self.order_safe = order_safe

    def run(self, ip, regs) -> None:
        m = regs[self.mask]
        base = np.broadcast_to(
            m.reshape(m.shape + (1,) * self.n_sets), self.inner_shape
        )
        regs[self.base] = base
        if (
            len(self.arms) == 1
            and self.arms[0][0] is None
            and self.others is None
            and bool(np.all(m))
        ):
            # all lanes enabled, one unconditional arm: ``np.where(mask,
            # v, identity)`` is the identity map, so reduce the operand
            # directly.  Same astype chain as ``_reduce_op`` → identical
            # values and dtype.
            _ps, _po, amreg, esteps, eout = self.arms[0]
            regs[amreg] = base
            for s in esteps:
                s.run(ip, regs)
            val = np.broadcast_to(np.asarray(regs[eout]), self.inner_shape)
            ufunc = E._RED_UFUNC[self.op]
            logical = self.op in ("logand", "logor", "logxor")
            dtype = E._result_dtype(self.op, [val])
            v = val.astype(bool) if logical else (
                val.astype(dtype) if val.dtype != dtype else val
            )
            total = ufunc.reduce(v, axis=self.reduce_axes) if self.reduce_axes else v
            regs[self.dst] = np.asarray(total).astype(
                np.int64 if logical else dtype
            )
            return
        arm_values: List[np.ndarray] = []
        arm_masks: List[np.ndarray] = []
        union: Optional[np.ndarray] = None
        for psteps, pout, amreg, esteps, eout in self.arms:
            if psteps is None:
                am = base
            else:
                for s in psteps:
                    s.run(ip, regs)
                pv = np.broadcast_to(
                    np.asarray(E._truthy(regs[pout])), self.inner_shape
                )
                am = base & pv
                union = pv if union is None else (union | pv)
            regs[amreg] = am
            for s in esteps:
                s.run(ip, regs)
            arm_values.append(
                np.broadcast_to(np.asarray(regs[eout]), self.inner_shape)
            )
            arm_masks.append(am)
        if self.others is not None:
            osteps, oout, omreg = self.others
            om = base & (
                ~union if union is not None else np.zeros(self.inner_shape, bool)
            )
            regs[omreg] = om
            for s in osteps:
                s.run(ip, regs)
            arm_values.append(
                np.broadcast_to(np.asarray(regs[oout]), self.inner_shape)
            )
            arm_masks.append(om)
        regs[self.dst] = E._reduce_op(
            self.op, arm_values, arm_masks, self.reduce_axes
        )


# ---------------------------------------------------------------------------
# compile-time value descriptors
# ---------------------------------------------------------------------------


class _Val:
    """A compiled expression: its register, arrayness, and static value."""

    __slots__ = ("reg", "is_array", "static")

    def __init__(self, reg: int, is_array: bool, static: Any) -> None:
        self.reg = reg
        self.is_array = is_array
        self.static = static


class _GCtx:
    """Compile-time view of one grid context (construct or reduction)."""

    __slots__ = ("grid", "shape", "vp_ratio", "env_extra")

    def __init__(self, grid, vp_ratio: int, env_extra=None) -> None:
        self.grid = grid
        self.shape = tuple(grid.shape)
        self.vp_ratio = vp_ratio
        #: reduction element names shadowing the construct env: name -> axis
        self.env_extra: Dict[str, int] = env_extra or {}


def _is_prefix(store: Tuple, lookup: Tuple) -> bool:
    return len(store) <= len(lookup) and lookup[: len(store)] == store


def _cacheable(node: ast.Expr) -> bool:
    return isinstance(node, (ast.Binary, ast.Index, ast.Unary, ast.Ternary))


def _pure_reads(node: ast.Expr) -> Optional[frozenset]:
    """Read-set of a pure expression; None if impure (uncacheable)."""
    reads = set()
    for n in ast.walk(node):
        if isinstance(n, (ast.Call, ast.Assign, ast.IncDec, ast.Reduction)):
            return None
        if isinstance(n, ast.Name):
            reads.add(n.ident)
        elif isinstance(n, ast.Index):
            reads.add(n.base)
    return frozenset(reads)


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------


class _Fuser:
    def __init__(self, ip, stmt: ast.UCStmt, inner) -> None:
        self.ip = ip
        self.stmt = stmt
        self.env = inner.env
        self.costs = ip.machine.clock.costs
        top_grid = inner.grid
        self.top = _GCtx(top_grid, ip.grid_vpset(top_grid.shape).vp_ratio)
        # registers
        self.n_regs = 0
        self.consts: List[Tuple[int, Any]] = []
        # per-statement buffers
        self.steps: List[Any] = []
        self.charges: List[Tuple] = []
        # runtime binding checks: (kind, name, expected)
        self.checks: List[Tuple] = []
        self._check_map: Dict[str, Tuple] = {}
        # static CSE simulation
        self.cse_on = bool(ip.cse_enabled)
        self.sim: Dict[Tuple, Tuple[Tuple, _Val]] = {}
        self.tombs: Dict[Tuple, Any] = {}
        self.fused_texts: set = set()
        self.unfused_texts: set = set()
        #: current invalidation context: None (certain) or an arm id
        self.inv_ctx: Any = None

    # -- registers ---------------------------------------------------------

    def reg(self) -> int:
        r = self.n_regs
        self.n_regs += 1
        return r

    def const(self, value) -> int:
        r = self.reg()
        self.consts.append((r, value))
        return r

    def static_val(self, value) -> _Val:
        return _Val(self.const(value), isinstance(value, np.ndarray), value)

    # -- binding checks ----------------------------------------------------

    def check(self, kind: str, name: str, expected) -> None:
        if name in self._check_map:
            return
        self._check_map[name] = (kind, expected)
        self.checks.append((kind, name, expected))

    # -- CSE simulation ----------------------------------------------------

    def sim_invalidate(self, name: str) -> None:
        """Drop sim entries that can observe a write to ``name``; record a
        tombstone when the drop happens under a conditional arm."""
        if not self.cse_on:
            return
        dead = [
            key
            for key, (_tok, _val, reads) in self.sim.items()
            if name in reads
        ]
        for key in dead:
            del self.sim[key]
            if self.inv_ctx is not None:
                self.tombs[key] = self.inv_ctx
        if self.inv_ctx is None:
            for key in dead:
                self.tombs.pop(key, None)

    def sim_clear(self) -> None:
        """A full invalidation (user call / nested construct)."""
        if not self.cse_on:
            return
        for key in list(self.sim):
            del self.sim[key]
            if self.inv_ctx is not None:
                self.tombs[key] = self.inv_ctx
        if self.inv_ctx is None:
            self.tombs.clear()

    # -- statement-level compilation --------------------------------------

    def compile_construct(self) -> "FusedConstruct":
        stmt = self.stmt
        # global bails: declarations anywhere would give later statements a
        # different environment than the flattened per-statement closures;
        # control transfers out of a construct body are not a thing we can
        # segment.  ``oneof`` never reaches here (its dispatch is separate).
        bodies = [b.stmt for b in stmt.blocks]
        if stmt.others is not None:
            bodies.append(stmt.others)
        for body in bodies:
            for n in ast.walk(body):
                if isinstance(
                    n,
                    (
                        ast.VarDecl,
                        ast.IndexSetDecl,
                        ast.DeclGroup,
                        ast.Return,
                        ast.Break,
                        ast.Continue,
                    ),
                ):
                    raise _Bail()

        base_reg = self.reg()
        arm_mask_regs = [self.reg() for _ in stmt.blocks]
        others_mask_reg = self.reg() if stmt.others is not None else None

        # predicates first, in arm order — exactly the _block_masks order.
        # An unfusable predicate bails the construct: predicates have no
        # per-statement fallback slot.
        pred_progs: List[Optional[Tuple]] = []
        for block in stmt.blocks:
            if block.pred is None:
                pred_progs.append(None)
                continue
            self._begin_unit()
            try:
                v = self.compile_expr(block.pred, self.top, base_reg, (), False)
            except _Demote:
                raise _Bail()
            pred_progs.append((tuple(self.charges), tuple(self.steps), v.reg))

        fused_count = 0
        unfused_count = 0
        arm_segments: List[List[Tuple]] = []
        for k, block in enumerate(stmt.blocks):
            conditional = block.pred is not None
            token = ((("a", k),) if conditional else ())
            segs, nf, nu = self._compile_body(
                block.stmt, arm_mask_regs[k], token, ("a", k) if conditional else None
            )
            arm_segments.append(segs)
            fused_count += nf
            unfused_count += nu
        others_segments = None
        if stmt.others is not None:
            segs, nf, nu = self._compile_body(
                stmt.others, others_mask_reg, (("a", -1),), ("a", -1)
            )
            others_segments = segs
            fused_count += nf
            unfused_count += nu

        if fused_count == 0:
            # nothing actually fused: the segmented runner would only add
            # overhead over the plain plan path
            raise _Bail()
        if self.cse_on and (self.fused_texts & self.unfused_texts):
            # one cache world per construct: a text both fused (simulated
            # cache) and unfused (real cache) could hit across the seam
            raise _Bail()

        return FusedConstruct(
            shape=self.top.shape,
            checks=tuple(self.checks),
            n_regs=self.n_regs,
            consts=tuple(self.consts),
            base_reg=base_reg,
            pred_progs=tuple(pred_progs),
            arm_mask_regs=tuple(arm_mask_regs),
            arm_segments=tuple(tuple(s) for s in arm_segments),
            others_mask_reg=others_mask_reg,
            others_segments=(
                tuple(others_segments) if others_segments is not None else None
            ),
            fused_count=fused_count,
            unfused_count=unfused_count,
        )

    def _begin_unit(self) -> None:
        self.steps = []
        self.charges = []

    def _flatten(self, body: ast.Stmt) -> List[ast.Stmt]:
        # one-level deep: with declarations globally bailed, a Block's
        # child environment is indistinguishable from its parent's
        out: List[ast.Stmt] = []
        work = [body]
        while work:
            s = work.pop(0)
            if isinstance(s, ast.Block):
                work = list(s.stmts) + work
            else:
                out.append(s)
        return out

    def _compile_body(
        self, body: ast.Stmt, mask_reg: int, token: Tuple, inv_ctx
    ) -> Tuple[List[Tuple], int, int]:
        """Compile one arm body into ('f', charges, steps) / ('u', plan)
        segments; returns (segments, n_fused, n_unfused)."""
        segs: List[Tuple] = []
        n_fused = 0
        n_unfused = 0
        self.inv_ctx = inv_ctx
        for s in self._flatten(body):
            if isinstance(s, ast.EmptyStmt):
                continue
            if isinstance(s, ast.ExprStmt):
                sim_snap = dict(self.sim)
                tomb_snap = dict(self.tombs)
                nregs_snap = self.n_regs
                consts_snap = len(self.consts)
                self._begin_unit()
                try:
                    self.compile_expr(s.expr, self.top, mask_reg, token, False)
                    segs.append(("f", tuple(self.charges), tuple(self.steps)))
                    n_fused += 1
                    continue
                except _Demote:
                    self.sim = sim_snap
                    self.tombs = tomb_snap
                    self.n_regs = nregs_snap
                    del self.consts[consts_snap:]
            self._note_unfused(s)
            segs.append(("u", compile_stmt(s)))
            n_unfused += 1
        self.inv_ctx = None
        return segs, n_fused, n_unfused

    def _note_unfused(self, s: ast.Stmt) -> None:
        """Apply an unfused statement's effects to the CSE simulation and
        collect its texts for the fused/unfused overlap check."""
        clear = False
        writes: set = set()
        for n in ast.walk(s):
            if isinstance(n, ast.UCStmt):
                clear = True  # nested construct: cse_suspend exit clears all
            elif isinstance(n, ast.Call):
                if self.ip.info.functions.get(n.func) is not None:
                    clear = True  # user call: cse_suspend exit clears all
                elif n.func == "swap":
                    for a in n.args:
                        if isinstance(a, ast.Index):
                            writes.add(a.base)
            elif isinstance(n, (ast.Assign, ast.IncDec)):
                t = n.target
                if isinstance(t, ast.Name):
                    writes.add(t.ident)
                elif isinstance(t, ast.Index):
                    writes.add(t.base)
            if self.cse_on and _cacheable(n):
                reads = _pure_reads(n)
                if reads is not None:
                    self.unfused_texts.add(expr_to_text(n))
        if clear:
            self.sim_clear()
        else:
            for w in writes:
                self.sim_invalidate(w)

    # -- expression compilation -------------------------------------------

    def compile_expr(
        self, node: ast.Expr, g: _GCtx, mask_reg: int, token: Tuple, view_ok: bool
    ) -> _Val:
        if self.cse_on and _cacheable(node):
            reads = _pure_reads(node)
            if reads is not None:
                text = expr_to_text(node)
                key = (text, g.shape)
                ent = self.sim.get(key)
                if ent is not None:
                    store_tok, val, _reads = ent
                    if _is_prefix(store_tok, token):
                        return val
                    raise _Demote()  # data-dependent cross-context hit
                tomb = self.tombs.get(key)
                if tomb is not None and tomb != self.inv_ctx:
                    raise _Demote()  # killer arm may be skipped at run time
                val = self._compile_inner(node, g, mask_reg, token, view_ok)
                self.sim[key] = (token, val, reads)
                self.fused_texts.add(text)
                return val
        return self._compile_inner(node, g, mask_reg, token, view_ok)

    def _compile_inner(
        self, node: ast.Expr, g: _GCtx, mask_reg: int, token: Tuple, view_ok: bool
    ) -> _Val:
        if isinstance(node, ast.IntLit):
            return self.static_val(node.value)
        if isinstance(node, ast.FloatLit):
            return self.static_val(node.value)
        if isinstance(node, ast.InfLit):
            return self.static_val(INF)
        if isinstance(node, ast.Name):
            return self._compile_name(node, g)
        if isinstance(node, ast.Index):
            return self._compile_gather(node, g, mask_reg, token, view_ok)
        if isinstance(node, ast.Unary):
            return self._compile_unary(node, g, mask_reg, token, view_ok)
        if isinstance(node, ast.Binary):
            if node.op in ("&&", "||"):
                return self._compile_shortcircuit(node, g, mask_reg, token, view_ok)
            return self._compile_binary(node, g, mask_reg, token, view_ok)
        if isinstance(node, ast.Ternary):
            return self._compile_ternary(node, g, mask_reg, token, view_ok)
        if isinstance(node, ast.Reduction):
            return self._compile_reduction(node, g, mask_reg, token)
        if isinstance(node, ast.Assign):
            return self._compile_assign(node, g, mask_reg, token)
        if isinstance(node, ast.IncDec):
            one = ast.IntLit(line=node.line, col=node.col, value=1)
            synth = ast.Assign(
                line=node.line,
                col=node.col,
                target=node.target,
                op="+" if node.op == "++" else "-",
                value=one,
            )
            return self._compile_assign(synth, g, mask_reg, token)
        # Call (host side effects, RNG), StringLit, anything exotic
        raise _Demote()

    def _charge(self, kind: str, count: int = 1, vp_ratio: int = 1) -> None:
        self.charges.append(("c", kind, count, vp_ratio))

    def _alu(self, g: _GCtx, count: int = 1) -> None:
        self._charge("alu", count, g.vp_ratio)

    def _lookup(self, name: str, g: _GCtx):
        if name in g.env_extra:
            return ElementBinding(name, "", "axis", axis=g.env_extra[name])
        b = self.env.try_lookup(name)
        if b is None:
            raise _Demote()
        return b

    def _compile_name(self, node: ast.Name, g: _GCtx) -> _Val:
        b = self._lookup(node.ident, g)
        if isinstance(b, ElementBinding):
            if b.kind != "axis":
                raise _Demote()  # seq element: rebinding per front-end step
            if node.ident not in g.env_extra:
                self.check("axis", node.ident, b.axis)
            return self.static_val(g.grid.axis_values(b.axis))
        if isinstance(b, ScalarVar):
            self.check("scalar", node.ident, b)
            r = self.reg()
            self.steps.append(_ReadScalar(r, b))
            return _Val(r, False, _DYN)
        if isinstance(b, (int, float)) and not isinstance(b, bool):
            self.check("const", node.ident, b)
            return self.static_val(b)
        # ParallelLocal, IndexSetValue, SliceParam...: not fused in v1
        raise _Demote()

    def _compile_unary(self, node, g, mask_reg, token, view_ok) -> _Val:
        v = self.compile_expr(node.operand, g, mask_reg, token, view_ok)
        if node.op not in ("-", "!", "~"):
            raise _Demote()
        self._alu(g)
        if v.static is not _DYN:
            from .plan import _UnaryPlan

            try:
                folded = _UnaryPlan._apply(node, v.static)
            except UCRuntimeError:
                raise _Demote()
            return self.static_val(folded)
        r = self.reg()
        self.steps.append(_Unary(r, v.reg, node))
        return _Val(r, v.is_array, _DYN)

    def _compile_binary(self, node, g, mask_reg, token, view_ok) -> _Val:
        a = self.compile_expr(node.left, g, mask_reg, token, view_ok)
        b = self.compile_expr(node.right, g, mask_reg, token, view_ok)
        self._alu(g)
        if a.static is not _DYN and b.static is not _DYN:
            try:
                folded = E.apply_binop(node.op, a.static, b.static, node)
            except UCRuntimeError:
                raise _Demote()
            return self.static_val(folded)
        r = self.reg()
        self.steps.append(_Binary(r, a.reg, b.reg, node))
        return _Val(r, a.is_array or b.is_array, _DYN)

    def _compile_shortcircuit(self, node, g, mask_reg, token, view_ok) -> _Val:
        a = self.compile_expr(node.left, g, mask_reg, token, view_ok)
        self._alu(g)
        if not a.is_array:
            # scalar left: C short-circuit — which side runs is data-
            # dependent unless the left side is statically known
            if a.static is _DYN:
                raise _Demote()
            if node.op == "&&" and not a.static:
                return self.static_val(0)
            if node.op == "||" and a.static:
                return self.static_val(1)
            b = self.compile_expr(node.right, g, mask_reg, token, view_ok)
            if b.static is not _DYN:
                rv = E._truthy(b.static)
                if isinstance(rv, np.ndarray):
                    return self.static_val(rv.astype(np.int64))
                return self.static_val(int(rv))
            r = self.reg()
            self.steps.append(_TruthyInt(r, b.reg))
            return _Val(r, b.is_array, _DYN)
        # array left: evaluate the right side under the refined context
        if a.static is not _DYN:
            lbool_v = np.broadcast_to(np.asarray(E._truthy(a.static)), g.shape)
            lb = self.static_val(lbool_v)
        else:
            r = self.reg()
            self.steps.append(_Bool(r, a.reg, g.shape))
            lb = _Val(r, True, _DYN)
        invert = node.op == "||"
        mr = self.reg()
        self.steps.append(_Mask(mr, mask_reg, lb.reg, invert))
        sub_token = token + (("sc", id(node)),)
        b = self.compile_expr(node.right, g, mr, sub_token, view_ok)
        if lb.static is not _DYN and b.static is not _DYN:
            rbool = np.broadcast_to(np.asarray(E._truthy(b.static)), g.shape)
            if node.op == "&&":
                return self.static_val((lb.static & rbool).astype(np.int64))
            return self.static_val((lb.static | rbool).astype(np.int64))
        r = self.reg()
        self.steps.append(_Combine(r, lb.reg, b.reg, node.op == "&&", g.shape))
        return _Val(r, True, _DYN)

    def _compile_ternary(self, node, g, mask_reg, token, view_ok) -> _Val:
        c = self.compile_expr(node.cond, g, mask_reg, token, view_ok)
        if not c.is_array:
            # scalar condition: which branch runs is data-dependent
            # unless the condition folds
            if c.static is _DYN:
                raise _Demote()
            self._alu(g)
            chosen = node.then if c.static else node.els
            return self.compile_expr(chosen, g, mask_reg, token, view_ok)
        if c.static is not _DYN:
            cbool_v = np.broadcast_to(np.asarray(E._truthy(c.static)), g.shape)
            cb = self.static_val(cbool_v)
        else:
            r = self.reg()
            self.steps.append(_Bool(r, c.reg, g.shape))
            cb = _Val(r, True, _DYN)
        mr_t = self.reg()
        self.steps.append(_Mask(mr_t, mask_reg, cb.reg, False))
        then_v = self.compile_expr(
            node.then, g, mr_t, token + (("t", id(node), True),), view_ok
        )
        mr_e = self.reg()
        self.steps.append(_Mask(mr_e, mask_reg, cb.reg, True))
        else_v = self.compile_expr(
            node.els, g, mr_e, token + (("t", id(node), False),), view_ok
        )
        self._alu(g, count=2)  # the select
        if (
            cb.static is not _DYN
            and then_v.static is not _DYN
            and else_v.static is not _DYN
        ):
            return self.static_val(
                np.where(cb.static, then_v.static, else_v.static)
            )
        r = self.reg()
        self.steps.append(_Where(r, cb.reg, then_v.reg, else_v.reg))
        return _Val(r, True, _DYN)

    # -- array references --------------------------------------------------

    def _resolve_array(self, node: ast.Index, g: _GCtx) -> ArrayVar:
        b = self._lookup(node.base, g)
        if not isinstance(b, ArrayVar):
            raise _Demote()  # slices / parallel locals: not fused in v1
        self.check("array", node.base, b)
        return b

    def _static_subs(self, node, g, mask_reg, token, view_ok) -> List[Any]:
        subs = []
        for s in node.subs:
            sv = self.compile_expr(s, g, mask_reg, token, view_ok)
            if sv.static is _DYN:
                raise _Demote()  # dynamic subscript: tier could change
            subs.append(sv.static)
        return subs

    def _full_idx(self, subs, view_shape, grid_shape) -> Tuple[np.ndarray, ...]:
        idx_arrays = []
        for a, s in enumerate(subs):
            if isinstance(s, np.ndarray):
                clipped = np.clip(s, 0, view_shape[a] - 1)
            else:
                clipped = np.full(grid_shape, int(s), dtype=np.int64)
            idx_arrays.append(np.broadcast_to(clipped, grid_shape))
        return tuple(idx_arrays)

    def _compile_gather(self, node, g, mask_reg, token, view_ok) -> _Val:
        arr = self._resolve_array(node, g)
        view_shape = arr.data.shape
        if len(node.subs) != len(view_shape):
            raise _Demote()  # the engine raises; keep the message path
        subs = self._static_subs(node, g, mask_reg, token, view_ok)
        if any(
            not isinstance(s, np.ndarray) and not 0 <= int(s) < view_shape[a]
            for a, s in enumerate(subs)
        ):
            raise _Demote()  # always-raising bounds error
        oob = _oob_masks(subs, view_shape, g.shape)
        rc = classify_reference(
            subs,
            g.shape,
            g.grid.axis_elems,
            arr.layout,
            positions=g.grid.positions,
        )
        tier = commtiers.decide_tier(
            rc, self.costs, write=False, enabled=self.ip.comm_tiers_enabled
        )
        rec = _Recorder()
        commtiers.charge_tier_at(
            rec, tier, rc, write=False, vp_ratio=g.vp_ratio,
            grid_shape=tuple(g.shape), layout=arr.layout,
        )
        self.charges.extend(rec.entries)
        shift = None
        recipe = None
        idx = None
        if tier == "news":
            shift = commtiers.shift_descriptor(rc, view_shape, g.shape)
        if shift is None:
            recipe = _build_index_recipe(subs, view_shape, g.shape)
            grid_size = int(np.prod(g.shape))
            idx_full = self._full_idx(subs, view_shape, g.shape)
            # grid axes no subscript varies along (spreads, broadcasts,
            # reduction operands): gather one representative slice and
            # let downstream numpy broadcasting replicate it virtually.
            # Values, tier verdict and charges are untouched — every
            # consumer (_Binary/_Reduce/_Scatter/...) broadcasts, and
            # fancy indexing copies, so no view can alias the array.
            bcast = tuple(
                a
                for a in range(len(g.shape))
                if g.shape[a] > 1
                and not any(np.ptp(ia, axis=a).any() for ia in idx_full)
            )
            if bcast:
                sl = tuple(
                    slice(0, 1) if a in bcast else slice(None)
                    for a in range(len(g.shape))
                )
                reduced = tuple(np.ascontiguousarray(ia[sl]) for ia in idx_full)
                if grid_size > _VERIFY_LIMIT or np.array_equal(
                    np.broadcast_to(arr.data[reduced], tuple(g.shape)),
                    arr.data[idx_full],
                ):
                    recipe = None
                    idx = reduced
            if recipe is not None and idx is None and grid_size <= _VERIFY_LIMIT:
                if not np.array_equal(
                    np.asarray(recipe.take(arr.data)), arr.data[idx_full]
                ):
                    recipe = None
                    idx = idx_full
            if recipe is None and idx is None:
                idx = idx_full
        r = self.reg()
        self.steps.append(
            _Gather(
                r, node, arr, subs, view_shape, oob, mask_reg, shift, recipe, idx,
                view_ok,
            )
        )
        return _Val(r, True, _DYN)

    def _compile_scatter(
        self, assign: ast.Assign, value: _Val, g, mask_reg, token
    ) -> None:
        node = assign.target
        arr = self._resolve_array(node, g)
        view_shape = arr.data.shape
        if len(node.subs) != len(view_shape):
            raise _Demote()
        subs = self._static_subs(node, g, mask_reg, token, False)
        if any(
            not isinstance(s, np.ndarray) and not 0 <= int(s) < view_shape[a]
            for a, s in enumerate(subs)
        ):
            raise _Demote()
        oob = _oob_masks(subs, view_shape, g.shape)
        rc = classify_write(
            subs,
            g.shape,
            g.grid.axis_elems,
            arr.layout,
            positions=g.grid.positions,
        )
        tier = commtiers.decide_tier(
            rc, self.costs, write=True, enabled=self.ip.comm_tiers_enabled
        )
        rec = _Recorder()
        commtiers.charge_tier_at(
            rec, tier, rc, write=True, vp_ratio=g.vp_ratio,
            grid_shape=tuple(g.shape), layout=arr.layout,
        )
        self.charges.extend(rec.entries)
        flat_idx = tuple(ia.reshape(-1) for ia in self._full_idx(subs, view_shape, g.shape))
        full_flat = np.ravel_multi_index(flat_idx, view_shape)
        unique = bool(np.unique(full_flat).size == full_flat.size)
        self.steps.append(
            _Scatter(
                node, arr, value.reg, mask_reg, g.shape, view_shape, subs, oob,
                full_flat, unique,
            )
        )
        self.sim_invalidate(node.base)

    def _compile_assign(self, node: ast.Assign, g, mask_reg, token) -> _Val:
        value = self.compile_expr(node.value, g, mask_reg, token, False)
        if node.op:
            current = self.compile_expr(node.target, g, mask_reg, token, False)
            self._alu(g)
            if current.static is not _DYN and value.static is not _DYN:
                try:
                    folded = E.apply_binop(node.op, current.static, value.static, node)
                except UCRuntimeError:
                    raise _Demote()
                value = self.static_val(folded)
            else:
                r = self.reg()
                self.steps.append(
                    _Binary(
                        r,
                        current.reg,
                        value.reg,
                        ast.Binary(
                            line=node.line,
                            col=node.col,
                            op=node.op,
                            left=node.target,
                            right=node.value,
                        ),
                    )
                )
                value = _Val(r, current.is_array or value.is_array, _DYN)
        target = node.target
        if isinstance(target, ast.Index):
            self._compile_scatter(node, value, g, mask_reg, token)
            return value
        if not isinstance(target, ast.Name):
            raise _Demote()
        b = self._lookup(target.ident, g)
        if not isinstance(b, ScalarVar):
            raise _Demote()  # parallel locals / element rebinds: not in v1
        self.check("scalar", target.ident, b)
        if value.is_array:
            self._charge("host_cm_latency")
        else:
            self._charge("host")
        self.steps.append(_AssignScalar(b, value.reg, mask_reg, g.shape, node))
        self.sim_invalidate(target.ident)
        return value

    # -- reductions --------------------------------------------------------

    def _resolve_sets(self, node: ast.Reduction, g: _GCtx) -> List[IndexSetValue]:
        sets = []
        for name in node.index_sets:
            isv = self.env.try_lookup(name)
            if not isinstance(isv, IndexSetValue):
                isv = self.ip.info.index_sets.get(name)
            if not isinstance(isv, IndexSetValue):
                raise _Demote()  # unknown set: the engine raises
            self.check("iset", name, (isv.elem_name, tuple(isv.values)))
            sets.append(isv)
        return sets

    def _send_reduce_provably_off(self, node, g, sets) -> bool:
        """True when ``try_send_reduce`` provably returns None whatever the
        runtime mask is, so the naive reduction path (the one we fuse) is
        the path the engine takes.  Mirrors the gate cascade of
        :func:`repro.interp.sendreduce.try_send_reduce`; every gate here
        is evaluated before that function's first ``eval_expr``, and the
        only dynamic gate it skips (the partial-mask test) is
        side-effect-free, so a later static gate rejecting is decisive.
        """
        if not self.ip.processor_opt:
            return True
        from .sendreduce import _COMBINE_AT, _free_names, _split_partition_pred

        if (
            node.op not in _COMBINE_AT
            or node.others is not None
            or len(node.arms) != 1
        ):
            return True
        arm = node.arms[0]
        if arm.pred is None:
            return True
        if g.grid.rank != 1:
            return True
        red_elems = {s.elem_name for s in sets}
        parent_elems = set(g.grid.axis_elems) - red_elems
        if not parent_elems:
            return True
        if _split_partition_pred(arm.pred, parent_elems, red_elems) is None:
            return True
        n_pes = self.ip.machine.config.n_pes
        product_vps = g.grid.size
        operand_vps = 1
        for s in sets:
            product_vps *= len(s)
            operand_vps *= len(s)
        ratio_naive = max(1, math.ceil(product_vps / n_pes))
        ratio_opt = max(1, math.ceil(max(operand_vps, g.grid.size) / n_pes))
        if ratio_naive <= ratio_opt:
            return True
        split = _split_partition_pred(arm.pred, parent_elems, red_elems)
        if split is not None and split[1] != g.grid.axes[0].elem:
            return True
        if _free_names(arm.expr) & parent_elems:
            return True
        return False

    def _compile_reduction(self, node: ast.Reduction, g, mask_reg, token) -> _Val:
        if node.op == "arbitrary" or node.op not in E._RED_UFUNC:
            raise _Demote()  # RNG / host-side combine
        sets = self._resolve_sets(node, g)
        if not self._send_reduce_provably_off(node, g, sets):
            raise _Demote()  # the send-reduce path could fire at run time
        inner_grid = g.grid.extend(sets)
        extra = dict(g.env_extra)
        for offset, isv in enumerate(sets):
            extra[isv.elem_name] = g.grid.rank + offset
        gi = _GCtx(
            inner_grid, self.ip.grid_vpset(inner_grid.shape).vp_ratio, extra
        )
        n_sets = len(sets)
        reduce_axes = tuple(range(g.grid.rank, inner_grid.rank))
        reduce_extent = int(np.prod([len(s) for s in sets]))
        order_safe = bool(self.ip.reduction_order_safe(node))
        self.charges.append(("s", reduce_extent, gi.vp_ratio, 1))
        # shard-sink reduction observation (see Clock.replay's "r" tag):
        # carries the UC5xx verdict so sharded replay pre-combines only
        # proven sites
        self.charges.append(
            ("r", node.op, order_safe, reduce_extent, gi.vp_ratio, gi.shape)
        )
        pure = not any(
            isinstance(n, (ast.Call, ast.Assign, ast.IncDec))
            for n in ast.walk(node)
        )
        base_reg = self.reg()
        rtoken = token + (("r", id(node)),)
        arms = []
        for k, arm in enumerate(node.arms):
            if arm.pred is None:
                psteps, pout = None, None
                atoken = rtoken
            else:
                psteps = self._sub_steps(
                    lambda: self.compile_expr(arm.pred, gi, base_reg, rtoken, pure)
                )
                psteps, pv = psteps
                pout = pv.reg
                atoken = rtoken + (("ra", k),)
            amreg = self.reg()
            esteps, ev = self._sub_steps(
                lambda: self.compile_expr(arm.expr, gi, amreg, atoken, pure)
            )
            arms.append((psteps, pout, amreg, esteps, ev.reg))
        others = None
        if node.others is not None:
            omreg = self.reg()
            osteps, ov = self._sub_steps(
                lambda: self.compile_expr(
                    node.others, gi, omreg, rtoken + (("ra", -1),), pure
                )
            )
            others = (osteps, ov.reg, omreg)
        r = self.reg()
        self.steps.append(
            _Reduce(
                r, node.op, n_sets, gi.shape, reduce_axes, mask_reg, base_reg,
                tuple(arms), others, order_safe,
            )
        )
        return _Val(r, True, _DYN)

    def _sub_steps(self, fn):
        """Compile ``fn`` with a private step buffer (charges still append
        to the statement's charge table, in program order)."""
        saved = self.steps
        self.steps = []
        try:
            val = fn()
        finally:
            sub, self.steps = self.steps, saved
        return tuple(sub), val


# ---------------------------------------------------------------------------
# the fused construct
# ---------------------------------------------------------------------------


class _Sweep:
    """Per-sweep state: the register file and the arm masks."""

    __slots__ = ("regs", "masks", "union")

    def __init__(self, regs, masks, union) -> None:
        self.regs = regs
        self.masks = masks
        self.union = union


class FusedConstruct:
    """A construct body lowered to register programs + charge tables."""

    __slots__ = (
        "shape",
        "checks",
        "n_regs",
        "consts",
        "base_reg",
        "pred_progs",
        "arm_mask_regs",
        "arm_segments",
        "others_mask_reg",
        "others_segments",
        "fused_count",
        "unfused_count",
        "_bound",
        "_slots",
    )

    def __init__(
        self,
        *,
        shape,
        checks,
        n_regs,
        consts,
        base_reg,
        pred_progs,
        arm_mask_regs,
        arm_segments,
        others_mask_reg,
        others_segments,
        fused_count,
        unfused_count,
    ) -> None:
        self.shape = shape
        self.checks = checks
        self.n_regs = n_regs
        self.consts = consts
        self.base_reg = base_reg
        self.pred_progs = pred_progs
        self.arm_mask_regs = arm_mask_regs
        self.arm_segments = arm_segments
        self.others_mask_reg = others_mask_reg
        self.others_segments = others_segments
        self.fused_count = fused_count
        self.unfused_count = unfused_count
        #: currently bound ScalarVar/ArrayVar per name (starts at the
        #: compile-time bindings; updated when a sweep rebinds)
        self._bound: Dict[str, Any] = {
            name: expected for kind, name, expected in checks
            if kind in ("scalar", "array")
        }
        self._slots: Optional[Dict[str, List[Tuple[Any, str]]]] = None

    # -- validation --------------------------------------------------------

    def validate(self, ip, inner) -> bool:
        """Re-check every binding the compile specialised on.  A False here
        is a per-sweep fallback to the plan engine, not an error.

        Scalar and array bindings are compared structurally, not by
        identity: the kernel may be served from the shared compile store
        to a different interpreter (a later run, another ``UCProgram``
        of the same source, a batch lane), whose environment holds fresh
        but shape/dtype/layout-equal variables.  An equivalent binding
        is spliced into the steps (:meth:`_rebind`); anything else — a
        changed layout object, shape, dtype or ctype — still falls back.
        """
        if inner.mask is not None or tuple(inner.grid.shape) != self.shape:
            return False
        env = inner.env
        for kind, name, expected in self.checks:
            if kind == "iset":
                isv = env.try_lookup(name)
                if not isinstance(isv, IndexSetValue):
                    isv = ip.info.index_sets.get(name)
                if (
                    not isinstance(isv, IndexSetValue)
                    or (isv.elem_name, tuple(isv.values)) != expected
                ):
                    return False
                continue
            b = env.try_lookup(name)
            if kind == "axis":
                if (
                    not isinstance(b, ElementBinding)
                    or b.kind != "axis"
                    or b.axis != expected
                ):
                    return False
            elif kind == "scalar":
                if b is not self._bound[name]:
                    if (
                        not isinstance(b, ScalarVar)
                        or b.ctype != expected.ctype
                    ):
                        return False
                    self._rebind(name, b)
            elif kind == "array":
                if b is not self._bound[name]:
                    # the gather recipes / scatter index vectors baked in
                    # at compile time are functions of layout and shape
                    # only, so any same-layout same-shape array of the
                    # same dtype can be spliced in
                    if (
                        not isinstance(b, ArrayVar)
                        or b.ctype != expected.ctype
                        or b.layout is not expected.layout
                        or b.shape != expected.shape
                        or b.dtype != expected.dtype
                    ):
                        return False
                    self._rebind(name, b)
            else:  # const
                if isinstance(b, bool) or b != expected or type(b) is not type(expected):
                    return False
        return True

    def _rebind(self, name: str, binding: Any) -> None:
        """Point every step that references ``name`` at ``binding``."""
        if self._slots is None:
            self._slots = self._binding_slots()
        for step, attr in self._slots.get(name, ()):
            setattr(step, attr, binding)
        self._bound[name] = binding

    def _binding_slots(self) -> Dict[str, List[Tuple[Any, str]]]:
        """Map binding name -> the (step, attribute) slots holding it,
        including steps nested inside :class:`_Reduce` arms."""
        slots: Dict[str, List[Tuple[Any, str]]] = {}

        def note(step: Any, attr: str) -> None:
            slots.setdefault(getattr(step, attr).name, []).append((step, attr))

        def walk(steps) -> None:
            for s in steps:
                if isinstance(s, (_ReadScalar, _AssignScalar)):
                    note(s, "var")
                elif isinstance(s, (_Gather, _Scatter)):
                    note(s, "arr")
                elif isinstance(s, _Reduce):
                    for psteps, _po, _am, esteps, _eo in s.arms:
                        if psteps is not None:
                            walk(psteps)
                        walk(esteps)
                    if s.others is not None:
                        walk(s.others[0])

        for prog in self.pred_progs:
            if prog is not None:
                walk(prog[1])
        for segs in self.arm_segments:
            for seg in segs:
                if seg[0] == "f":
                    walk(seg[2])
        if self.others_segments is not None:
            for seg in self.others_segments:
                if seg[0] == "f":
                    walk(seg[2])
        return slots

    # -- execution ---------------------------------------------------------

    def begin_sweep(self, ip, inner) -> _Sweep:
        """Evaluate arm predicates (the ``_block_masks`` phase)."""
        regs: List[Any] = [None] * self.n_regs
        for r, v in self.consts:
            regs[r] = v
        base = inner.active_mask()
        regs[self.base_reg] = base
        clock = ip.machine.clock
        shape = self.shape
        masks: List[np.ndarray] = []
        union: Optional[np.ndarray] = None
        for prog in self.pred_progs:
            if prog is None:
                masks.append(base)
                continue
            charges, steps, out = prog
            _replay(clock, charges)
            clock.count_fusion("charge_table_hits")
            for s in steps:
                s.run(ip, regs)
            pb = np.broadcast_to(np.asarray(E._truthy(regs[out])), shape)
            masks.append(base & pb)
            union = pb if union is None else (union | pb)
        return _Sweep(regs, masks, union)

    def run_body(self, ip, inner, sweep: _Sweep) -> bool:
        """Run the arm bodies and others clause; returns whether any ran."""
        clock = ip.machine.clock
        regs = sweep.regs
        ran = False
        for k, segs in enumerate(self.arm_segments):
            mask = sweep.masks[k]
            if not np.any(mask):
                continue
            ran = True
            regs[self.arm_mask_regs[k]] = mask
            sub = None
            for seg in segs:
                if seg[0] == "f":
                    _replay(clock, seg[1])
                    clock.count_fusion("charge_table_hits")
                    for s in seg[2]:
                        s.run(ip, regs)
                else:
                    if sub is None:
                        sub = inner.with_mask(mask)
                    seg[1](ip, sub)
        if self.others_segments is not None:
            base = inner.active_mask()
            om = base & (
                ~sweep.union
                if sweep.union is not None
                else np.zeros(self.shape, bool)
            )
            if np.any(om):
                ran = True
                regs[self.others_mask_reg] = om
                sub = None
                for seg in self.others_segments:
                    if seg[0] == "f":
                        _replay(clock, seg[1])
                        clock.count_fusion("charge_table_hits")
                        for s in seg[2]:
                            s.run(ip, regs)
                    else:
                        if sub is None:
                            sub = inner.with_mask(om)
                        seg[1](ip, sub)
        clock.count_fusion("fused_sweeps")
        return ran


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def _build(ip, stmt: ast.UCStmt, inner):
    try:
        return _Fuser(ip, stmt, inner).compile_construct()
    except _Bail:
        return _UNFUSABLE


def _note_fusion(ip, stmt, sig, fused) -> None:
    """Count the per-construct fusion telemetry once per run.

    The kernel itself may come from the shared compile store, already
    built by an earlier run — counting at build time would make a warm
    run report zero constructs.  Counting at first use per (construct,
    grid) per interpreter makes warm and cold runs report identically.
    """
    key = (id(stmt), sig)
    if key in ip.fusion_noted:
        return
    ip.fusion_noted.add(key)
    clock = ip.machine.clock
    if fused is _UNFUSABLE:
        clock.count_fusion("unfusable")
        return
    clock.count_fusion("constructs")
    clock.count_fusion("fused_segments", fused.fused_count)
    clock.count_fusion("unfused_segments", fused.unfused_count)


def fused_for(ip, stmt: ast.UCStmt, inner, plans) -> Optional[FusedConstruct]:
    """The fused kernel for one construct sweep, or None to take the
    ordinary plan path.

    Gates, in order: plans must be on (fusion builds on the plan memos'
    semantics), the fusion flag and escape hatch, no tier log (covers the
    sanitizer, which forces tier logging), no armed faults (a mid-sweep
    ``fault_point`` must interleave with individual charges), and a fully
    active construct context.  A cached kernel still revalidates its
    binding specialisations every sweep.
    """
    if plans is None or not getattr(ip, "fusion_enabled", False):
        return None
    if ip.tier_log is not None or getattr(ip, "sanitizer", None) is not None:
        return None
    machine = ip.machine
    if machine.clock.fault_hook is not None or machine.faults is not None:
        return None
    if inner.mask is not None:
        return None
    sig = tuple(inner.grid.axes)
    fused = ip.plan_cache.get_or_build(
        "fuse", stmt, sig, lambda: _build(ip, stmt, inner)
    )
    _note_fusion(ip, stmt, sig, fused)
    if fused is _UNFUSABLE:
        return None
    if not fused.validate(ip, inner):
        machine.clock.count_fusion("fallback_sweeps")
        return None
    return fused
