"""The processor optimization's execution path (paper §4).

For a reduction whose predicate partitions the operands across results —
the paper's digit-count example

    par (J)
        count[j] = $+(I st (samples[i] == j) 1);

— the naive implementation evaluates on the |J|×|I| product grid and
scans; the optimized one runs on the |I| operand grid alone: each operand
VP computes its target address (``samples[i]``) and its contribution, and
one router *send with combining* delivers all results at once.  The VP
requirement drops from ``|J|·|I|`` to ``max(|I|, |J|)`` and every
elementwise instruction is charged at the operand grid's (smaller) VP
ratio.

:func:`try_send_reduce` returns the parent-shaped result when the pattern
applies, or None so the caller falls back to the product-grid evaluation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..lang import ast
from ..machine.scan import identity_of
from .env import Env
from .values import ElementBinding, GridContext

_COMBINE_AT = {
    "add": np.add.at,
    "min": np.minimum.at,
    "max": np.maximum.at,
    "mul": np.multiply.at,
    "logand": np.logical_and.at,
    "logor": np.logical_or.at,
    "logxor": np.logical_xor.at,
}


def _free_names(expr: ast.Expr) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.add(node.ident)
    return names


def _split_partition_pred(
    pred: ast.Expr, parent_elems: Set[str], red_elems: Set[str]
) -> Optional[Tuple[ast.Expr, str, List[ast.Expr]]]:
    """Split a predicate into ``(address_expr, par_elem, other_clauses)``.

    Requires exactly one conjunct of the form ``f(red elems) == par_elem``
    and all remaining conjuncts free of parent elements.
    """
    clauses = list(_conjuncts(pred))
    address: Optional[Tuple[ast.Expr, str]] = None
    rest: List[ast.Expr] = []
    for clause in clauses:
        matched = False
        if isinstance(clause, ast.Binary) and clause.op == "==" and address is None:
            for a, b in ((clause.left, clause.right), (clause.right, clause.left)):
                if (
                    isinstance(b, ast.Name)
                    and b.ident in parent_elems
                    and _free_names(a) & red_elems
                    and not (_free_names(a) & parent_elems)
                ):
                    address = (a, b.ident)
                    matched = True
                    break
        if not matched:
            if _free_names(clause) & parent_elems:
                return None
            rest.append(clause)
    if address is None:
        return None
    return address[0], address[1], rest


def _conjuncts(expr: ast.Expr):
    if isinstance(expr, ast.Binary) and expr.op == "&&":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def try_send_reduce(ip, node: ast.Reduction, ctx) -> Optional[np.ndarray]:
    """Attempt the optimized path; None if the pattern does not apply."""
    from .eval_expr import ExecContext, _truthy, eval_expr  # local: avoids cycle

    if node.op not in _COMBINE_AT or node.others is not None or len(node.arms) != 1:
        return None
    arm = node.arms[0]
    if arm.pred is None:
        return None
    if ctx.grid.is_host or ctx.grid.rank != 1:
        return None
    if ctx.mask is not None and not bool(np.all(ctx.mask)):
        return None  # a partial parent context breaks the partition story

    sets = [ip.resolve_index_set(name, ctx, at=node) for name in node.index_sets]
    red_elems = {s.elem_name for s in sets}
    parent_elems = set(ctx.grid.axis_elems) - red_elems
    if not parent_elems:
        return None
    split = _split_partition_pred(arm.pred, parent_elems, red_elems)
    if split is None:
        return None

    # apply only when it actually shrinks the VP requirement: a combining
    # send has a higher fixed cost than a small scan, so the compiler keeps
    # the naive form while the product grid still fits the machine
    import math

    n_pes = ip.machine.config.n_pes
    product_vps = ctx.grid.size
    for s in sets:
        product_vps *= len(s)
    operand_vps = 1
    for s in sets:
        operand_vps *= len(s)
    ratio_naive = max(1, math.ceil(product_vps / n_pes))
    ratio_opt = max(1, math.ceil(max(operand_vps, ctx.grid.size) / n_pes))
    if ratio_naive <= ratio_opt:
        return None
    address_expr, par_elem, rest_clauses = split
    if par_elem != ctx.grid.axes[0].elem:
        return None
    if _free_names(arm.expr) & parent_elems:
        return None

    # operand grid: the reduction sets alone
    operand_grid = GridContext().extend(sets)
    env = Env(ctx.env)
    for axis, isv in enumerate(sets):
        env.declare(
            isv.elem_name, ElementBinding(isv.elem_name, isv.name, "axis", axis=axis)
        )
    op_ctx = ExecContext(operand_grid, None, env)

    # every operand VP computes its destination address and contribution
    addresses = np.broadcast_to(
        np.asarray(eval_expr(ip, address_expr, op_ctx)), operand_grid.shape
    )
    enabled = np.ones(operand_grid.shape, dtype=bool)
    for clause in rest_clauses:
        cv = eval_expr(ip, clause, op_ctx.refine(enabled))
        enabled = enabled & np.broadcast_to(np.asarray(_truthy(cv)), operand_grid.shape)
    values = np.broadcast_to(
        np.asarray(eval_expr(ip, arm.expr, op_ctx.with_mask(enabled))),
        operand_grid.shape,
    )

    # one combining send delivers every result
    operand_vps = ip.grid_vpset(operand_grid.shape)
    parent_vps = ip.grid_vpset(ctx.grid.shape)
    ratio = max(operand_vps.vp_ratio, parent_vps.vp_ratio)
    ip.machine.clock.charge("router_send", vp_ratio=ratio)
    ip.machine.clock.count_tier("router")
    # shard accounting consults the site's UC5xx determinism verdict,
    # exactly as the product-grid path does
    ip.machine.clock.note_shard_reduce(
        node.op,
        ip.reduction_order_safe(node),
        operand_grid.size,
        ratio,
        operand_grid.shape,
    )

    parent_values = np.asarray(ctx.grid.axes[0].values)
    ident = identity_of(node.op)
    dtype = np.float64 if values.dtype.kind == "f" else np.int64
    if node.op in ("logand", "logor", "logxor"):
        out = np.full(parent_values.shape, bool(ident), dtype=bool)
        vals = values.astype(bool)
    else:
        out = np.full(parent_values.shape, ident, dtype=dtype)
        vals = values.astype(dtype)

    # map destination addresses to parent-axis positions (drop misses)
    order = np.argsort(parent_values, kind="stable")
    sorted_vals = parent_values[order]
    flat_addr = addresses.reshape(-1)
    flat_en = enabled.reshape(-1)
    pos = np.searchsorted(sorted_vals, flat_addr)
    pos_clipped = np.clip(pos, 0, len(sorted_vals) - 1)
    hit = flat_en & (sorted_vals[pos_clipped] == flat_addr)
    dest = order[pos_clipped[hit]]
    vals_hit = vals.reshape(-1)[hit]
    _COMBINE_AT[node.op](out, dest, vals_hit)
    if getattr(ip, "sanitizer", None) is not None:
        # order-permutation check: replay the combining send with the
        # (destination, value) pairs jointly permuted
        ip.sanitizer.check_send_reduce(
            node,
            _COMBINE_AT[node.op],
            out.dtype.type(ident) if out.dtype != bool else bool(ident),
            out.dtype,
            dest,
            vals_hit,
            out,
        )
    if node.op in ("logand", "logor", "logxor"):
        out = out.astype(np.int64)
    return out
