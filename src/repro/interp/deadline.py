"""Deadline supervision: cancel a run at the next construct boundary.

One :class:`DeadlineMonitor` watches a single execution and is polled at
every safe cancellation point — the entry of each outermost construct,
each sweep of an iterated construct, and each top-level statement
boundary of ``main``.  When any of its limits is exceeded it raises
:class:`UCDeadlineError` *between* construct sweeps, so no partially
mutated sweep is ever observable: the program state at cancellation is
a state a shorter program could have produced.

Three independent limits share the one monitor:

* ``wall_s`` — host wall-clock seconds actually spent executing (time
  suspended in a service queue does not count: the monitor accumulates
  across :meth:`begin`/:meth:`pause` slices);
* ``clock_us`` — simulated :class:`~repro.machine.cost.Clock`
  microseconds, an absolute limit on the job's simulated cost (the
  clock rides through checkpoints, so the limit spans preemptions);
* ``budget_us`` — an externally imposed absolute clock limit (the
  execution service sets it to the submitting tenant's remaining Clock
  budget each slice).  It raises with ``reason="budget"`` so quota
  exhaustion is distinguishable from the job's own deadline.

The module also defines :class:`JobPreempted`, the control-flow signal
the resumable runner (:meth:`Interpreter.run_main_from
<repro.interp.interpreter.Interpreter.run_main_from>`) raises when a
boundary hook elects to suspend the job behind a portable snapshot
(see :mod:`repro.interp.checkpoint`).

``repro run --timeout`` and the execution service's per-job deadlines
are the same machinery; both report the checkpoint-position diagnostic
carried by the error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..lang.errors import UCRuntimeError


@dataclass(frozen=True)
class Deadline:
    """Declarative per-run limits (see :class:`DeadlineMonitor`)."""

    wall_s: Optional[float] = None
    clock_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wall_s is not None and self.wall_s < 0:
            raise ValueError(f"wall deadline must be >= 0, got {self.wall_s}")
        if self.clock_us is not None and self.clock_us < 0:
            raise ValueError(f"clock deadline must be >= 0, got {self.clock_us}")


class UCDeadlineError(UCRuntimeError):
    """A supervised run exceeded one of its limits.

    ``reason`` is ``"wall"``, ``"clock"`` or ``"budget"``; ``position``
    is the checkpoint-position diagnostic (last completed top-level
    statement and the construct boundary the cancellation fired at).
    """

    def __init__(
        self,
        message: str,
        line: int = 0,
        col: int = 0,
        *,
        reason: str,
        position: str,
        wall_used_s: float,
        clock_used_us: float,
    ) -> None:
        super().__init__(message, line, col)
        self.reason = reason
        self.position = position
        self.wall_used_s = wall_used_s
        self.clock_used_us = clock_used_us


class JobPreempted(Exception):
    """Control-flow signal: the run suspended at a top-level boundary.

    Carries the :class:`~repro.interp.checkpoint.PortableSnapshot` the
    suspended job resumes from (possibly in another process).  Never
    escapes the execution service's worker.
    """

    def __init__(self, snapshot) -> None:
        super().__init__("job preempted at a top-level statement boundary")
        self.snapshot = snapshot


class DeadlineMonitor:
    """Polled limit checker installed as ``interp.deadline``.

    Zero overhead when absent (one attribute test per boundary); when
    installed, each poll is two or three comparisons — the wall clock is
    only read when a wall limit is armed.
    """

    __slots__ = (
        "wall_s",
        "clock_us",
        "budget_us",
        "_wall_used_s",
        "_slice_t0",
        "last_pc",
    )

    def __init__(
        self,
        *,
        wall_s: Optional[float] = None,
        clock_us: Optional[float] = None,
        budget_us: Optional[float] = None,
        wall_used_s: float = 0.0,
    ) -> None:
        self.wall_s = wall_s
        self.clock_us = clock_us
        self.budget_us = budget_us
        self._wall_used_s = wall_used_s
        self._slice_t0: Optional[float] = None
        #: last completed top-level statement index (set by the runner)
        self.last_pc: Optional[int] = None

    @classmethod
    def from_spec(cls, spec) -> "DeadlineMonitor":
        """Build from a :class:`Deadline`, a number (wall seconds), or
        an existing monitor (returned unchanged)."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, Deadline):
            return cls(wall_s=spec.wall_s, clock_us=spec.clock_us)
        return cls(wall_s=float(spec))

    # -- slice accounting ---------------------------------------------------

    def begin(self) -> None:
        """Start (or resume) counting wall time against the limit."""
        if self._slice_t0 is None:
            self._slice_t0 = time.monotonic()

    def pause(self) -> None:
        """Stop counting wall time (the job is leaving the machine)."""
        if self._slice_t0 is not None:
            self._wall_used_s += time.monotonic() - self._slice_t0
            self._slice_t0 = None

    @property
    def wall_used_s(self) -> float:
        used = self._wall_used_s
        if self._slice_t0 is not None:
            used += time.monotonic() - self._slice_t0
        return used

    # -- polling ------------------------------------------------------------

    def check(self, ip, at=None) -> None:
        """Raise :class:`UCDeadlineError` if any armed limit is exceeded.

        ``at`` is the construct whose boundary is being crossed (for the
        position diagnostic); ``None`` at top-level statement boundaries.
        """
        clock_now = ip.machine.clock.time_us
        if self.clock_us is not None and clock_now >= self.clock_us:
            self._raise("clock", ip, at, clock_now)
        if self.budget_us is not None and clock_now >= self.budget_us:
            self._raise("budget", ip, at, clock_now)
        if self.wall_s is not None and self.wall_used_s >= self.wall_s:
            self._raise("wall", ip, at, clock_now)

    def _raise(self, reason: str, ip, at, clock_now: float) -> None:
        position = self.describe_position(at)
        wall = self.wall_used_s
        if reason == "wall":
            head = f"wall-clock deadline exceeded ({wall:.3f}s >= {self.wall_s:g}s)"
        elif reason == "clock":
            head = (
                f"simulated-clock deadline exceeded "
                f"({clock_now:.0f}us >= {self.clock_us:g}us)"
            )
        else:
            head = (
                f"tenant Clock budget exhausted "
                f"({clock_now:.0f}us >= {self.budget_us:g}us)"
            )
        line = at.line if at is not None else 0
        col = at.col if at is not None else 0
        raise UCDeadlineError(
            f"{head}; cancelled at {position}",
            line,
            col,
            reason=reason,
            position=position,
            wall_used_s=wall,
            clock_used_us=clock_now,
        )

    def describe_position(self, at=None) -> str:
        """The checkpoint-position diagnostic for error messages."""
        parts = []
        if self.last_pc is not None:
            parts.append(f"top-level statement #{self.last_pc}")
        if at is not None:
            star = "*" if getattr(at, "star", False) else ""
            parts.append(
                f"the {star}{getattr(at, 'kind', '?')} boundary at line {at.line}"
            )
        if not parts:
            parts.append("the start of main")
        return ", ".join(parts)
