"""The interpreter object: program state + execution driver.

One :class:`Interpreter` owns the machine, the global environment (arrays
as machine fields with their layouts, scalars, functions, index sets) and
the RNG, and runs the program's ``main`` block.  A fresh interpreter is
built per run so benchmark sweeps are independent.
"""

from __future__ import annotations

import os
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..lang import ast
from ..lang.errors import UCRuntimeError, UCSemanticError
from ..lang.scope import IndexSetValue
from ..lang.semantics import ProgramInfo, _ConstEvaluator
from ..machine import Machine
from ..machine.vpset import VPSet
from ..mapping.layout import Layout, LayoutTable
from . import commtiers
from .env import Env
from .eval_expr import ExecContext, eval_expr
from .plan_cache import PlanCache
from .statements import ReturnSignal, exec_stmt
from .values import ArrayVar, GridContext, ScalarVar, coerce_scalar, numpy_ctype
from . import functions as _functions


def _sanitize_enabled_by_env() -> bool:
    """True when ``REPRO_SANITIZE=1`` arms the runtime sanitizer."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def _resolve_sweep_limit(value: Optional[int]) -> int:
    """Effective solve/*solve sweep cap: explicit parameter, else the
    ``REPRO_SOLVE_SWEEP_LIMIT`` environment variable, else the global
    :data:`~repro.interp.statements.MAX_SWEEPS` backstop."""
    if value is not None:
        limit = int(value)
    else:
        text = os.environ.get("REPRO_SOLVE_SWEEP_LIMIT", "").strip()
        if not text:
            from .statements import MAX_SWEEPS

            return MAX_SWEEPS
        limit = int(text)
    if limit <= 0:
        raise ValueError(f"solve sweep limit must be positive, got {limit}")
    return limit


class EngineFlags(NamedTuple):
    """Effective engine configuration, with every environment escape
    hatch already applied.

    This tuple *is* the engine-flags signature of the content-addressed
    compile store (:mod:`repro.interp.compile_store`): two runs share
    compiled plans/kernels only when their resolved flags are equal, so
    flipping e.g. ``REPRO_NO_COMM_TIERS`` between runs can never reuse
    a kernel whose tier decisions were compiled under the other setting.
    """

    solve_strategy: str
    processor_opt: bool
    cse: bool
    plans: bool
    comm_tiers: bool
    frontier: bool
    fusion: bool
    log_tiers: bool
    sanitize: bool
    solve_sweep_limit: int


def resolve_engine_flags(
    *,
    solve_strategy: str = "auto",
    processor_opt: bool = True,
    cse: bool = True,
    plans: bool = True,
    comm_tiers: bool = True,
    frontier: bool = True,
    fusion: bool = True,
    log_tiers: bool = False,
    sanitize: bool = False,
    solve_sweep_limit: Optional[int] = None,
) -> EngineFlags:
    """Resolve constructor flags + environment into the effective set.

    The one place the ``REPRO_NO_*`` escape hatches are interpreted;
    :class:`Interpreter` and the compile store both go through it so the
    store key can never disagree with the engine's actual behaviour.
    """
    if solve_strategy not in ("auto", "scheduled", "guarded"):
        raise ValueError(f"unknown solve strategy {solve_strategy!r}")
    env_off = os.environ.get("REPRO_NO_PLANS", "").strip().lower()
    sanitize = bool(sanitize) or _sanitize_enabled_by_env()
    return EngineFlags(
        solve_strategy=solve_strategy,
        processor_opt=bool(processor_opt),
        cse=bool(cse),
        plans=bool(plans) and env_off not in ("1", "true", "yes", "on"),
        comm_tiers=bool(comm_tiers) and not commtiers.tiers_disabled_by_env(),
        frontier=bool(frontier) and not commtiers.frontier_disabled_by_env(),
        fusion=bool(fusion) and not commtiers.fusion_disabled_by_env(),
        log_tiers=bool(log_tiers) or sanitize,
        sanitize=sanitize,
        solve_sweep_limit=_resolve_sweep_limit(solve_sweep_limit),
    )


class Interpreter:
    """Executes one checked UC program on one machine."""

    def __init__(
        self,
        info: ProgramInfo,
        machine: Machine,
        layouts: LayoutTable,
        *,
        seed: int = 20250704,
        solve_strategy: str = "auto",
        processor_opt: bool = True,
        cse: bool = True,
        plans: bool = True,
        comm_tiers: bool = True,
        frontier: bool = True,
        fusion: bool = True,
        log_tiers: bool = False,
        sanitize: bool = False,
        checkpoints: bool = False,
        recovery_policy=None,
        solve_sweep_limit: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        flags = resolve_engine_flags(
            solve_strategy=solve_strategy,
            processor_opt=processor_opt,
            cse=cse,
            plans=plans,
            comm_tiers=comm_tiers,
            frontier=frontier,
            fusion=fusion,
            log_tiers=log_tiers,
            sanitize=sanitize,
            solve_sweep_limit=solve_sweep_limit,
        )
        self.info = info
        self.machine = machine
        self.layouts = layouts
        self.processor_opt = flags.processor_opt
        # §4's common sub-expression detection: while a cache is armed
        # (one par-statement execution), pure parallel subexpressions are
        # evaluated and charged once
        self.cse_enabled = flags.cse
        self.cse_cache: Optional[dict] = None
        self.cse_keys: Dict[int, str] = {}
        # names read by each CSE key text, for targeted invalidation
        self.cse_text_names: Dict[str, FrozenSet[str]] = {}
        # compiled-plan execution (tree-walker stays available as the
        # oracle: plans=False or REPRO_NO_PLANS=1 in the environment)
        self.plans_enabled = flags.plans
        # the plan cache may be injected — a shared, content-addressed
        # entry of the compile store (see UCProgram.run) whose keys pin
        # the machine config and effective flags, so cross-run reuse can
        # never serve a plan compiled under different settings
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        # fusion telemetry is counted once per (construct, grid) per run
        # at first use, so warm shared-cache runs report the same
        # counters a cold run does (see fuse.fused_for)
        self.fusion_noted: Set[Tuple[int, Hashable]] = set()
        # communication-tier dispatch (NEWS/spread/broadcast/permute fast
        # paths); comm_tiers=False or REPRO_NO_COMM_TIERS=1 restores the
        # router-only servicing of remote references
        self.comm_tiers_enabled = flags.comm_tiers
        # frontier (active-set) sweeps for solve/*solve/*par;
        # frontier=False or REPRO_NO_FRONTIER=1 restores full sweeps with
        # bit-identical fingerprints
        self.frontier_enabled = flags.frontier
        # kernel fusion: iterated construct bodies lowered to whole-array
        # register programs with static charge tables (see
        # :mod:`repro.interp.fuse`); fusion=False or REPRO_NO_FUSION=1
        # restores the per-closure plan engine, bit-identically
        self.fusion_enabled = flags.fusion
        # runtime sanitizer (REPRO_SANITIZE=1 / sanitize=True): static
        # claims from the analyzer, cross-checked against observed
        # behaviour after the run — it needs the tier log armed
        self.sanitizer = None
        if flags.sanitize:
            from ..analysis.sanitize import Sanitizer

            self.sanitizer = Sanitizer(info, layouts)
        # (line, array) -> set of tiers dispatched, for the parity tests
        self.tier_log: Optional[Dict[Tuple[int, str], set]] = (
            {} if flags.log_tiers else None
        )
        # innermost construct being executed (error-message context)
        self.current_construct: Optional[ast.UCStmt] = None
        self.rng = np.random.default_rng(seed)
        self._seed = seed
        self.solve_strategy = flags.solve_strategy
        # configurable solve/*solve sweep cap (param > env > MAX_SWEEPS)
        self.solve_sweep_limit = flags.solve_sweep_limit
        # checkpoint/replay recovery: armed whenever the machine carries a
        # fault plan, or explicitly (checkpoints=True, e.g. for the
        # checkpoint-overhead benchmark)
        self.recovery = None
        if checkpoints or machine.faults is not None:
            from .recovery import RecoveryManager, RecoveryPolicy

            self.recovery = RecoveryManager(
                self, recovery_policy or RecoveryPolicy()
            )
        # optional DeadlineMonitor polled at construct/sweep boundaries
        # (see repro.interp.deadline); None costs one attribute test
        self.deadline = None
        self.stdout: List[str] = []
        self.global_env = Env()
        self._vpsets: Dict[Tuple[int, ...], VPSet] = {}
        # lazily-built reduction determinism verdicts (UC5xx): the single
        # reorder-legality oracle batched blocked reductions, cross-shard
        # pre-combining and the sanitizer consult (keyed by node identity)
        self._determinism = None
        self._setup_globals()

    # -- determinism oracle ------------------------------------------------------

    def reduction_verdict(self, node):
        """The UC5xx :class:`ReductionVerdict` for one ``ast.Reduction``,
        or None for sites the analyzer did not model."""
        if self._determinism is None:
            try:
                from ..analysis.context import build_model
                from ..analysis.determinism import determinism_claims

                self._determinism = determinism_claims(
                    build_model(self.info, self.layouts)
                )
            except Exception:  # analyzer failure never blocks execution
                self._determinism = {}
        return self._determinism.get(id(node))

    def reduction_order_safe(self, node) -> bool:
        """True only for UC501-proven sites: reordering the combine is
        proven value-identical.  Everything else (float +/*, unprovable
        bodies, unmodeled sites) stays on the order-preserving path."""
        verdict = self.reduction_verdict(node)
        return verdict is not None and verdict.order_safe

    # -- global state -----------------------------------------------------------

    def _setup_globals(self) -> None:
        env = self.global_env
        for name, isv in self.info.index_sets.items():
            env.declare(name, isv)
        for name, (ctype, dims) in self.info.arrays.items():
            env.declare(name, self.allocate_array(name, ctype, dims))
        for name, ctype in self.info.scalars.items():
            var = ScalarVar(name, ctype)
            if name in self.info.constants:
                var.value = coerce_scalar(ctype, self.info.constants[name])
            env.declare(name, var)
        for name, func in self.info.functions.items():
            env.declare(name, func)
        # compile-time constants (defines) that are not program variables
        for name, value in self.info.constants.items():
            if env.try_lookup(name) is None:
                env.declare(name, int(value))
        # run any non-constant top-level initialisers
        host = ExecContext(GridContext(), None, env)
        for decl in self.info.program.decls:
            if (
                isinstance(decl, ast.VarDecl)
                and not decl.dims
                and decl.init is not None
                and decl.name not in self.info.constants
            ):
                var = env.lookup(decl.name)
                var.value = coerce_scalar(var.ctype, eval_expr(self, decl.init, host))

    def allocate_array(self, name: str, ctype: str, dims: Tuple[int, ...]) -> ArrayVar:
        """Allocate a program array as a field on a (cached) VP set."""
        vps = self.grid_vpset(dims)
        field = self.machine.field(vps, numpy_ctype(ctype), name)
        layout = self.layouts.get(name) if name in self.layouts else Layout(name, dims)
        return ArrayVar(name, ctype, field, layout)

    def grid_vpset(self, shape: Tuple[int, ...]) -> VPSet:
        """VP set for a grid geometry, cached per shape."""
        if not shape:
            shape = (1,)
        if shape not in self._vpsets:
            self._vpsets[shape] = self.machine.vpset(shape, name=f"grid{shape}")
        return self._vpsets[shape]

    def reseed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    # -- common-subexpression cache (§4) -----------------------------------------

    def cse_arm(self) -> "_CseRegion":
        """Arm the cache for one statement execution (context manager)."""
        return _CseRegion(self)

    def cse_invalidate(self, name: Optional[str] = None) -> None:
        """Drop cached values after a write to program state.

        With ``name``, only entries whose key text mentions that variable
        are dropped (the read-set is recorded when the key is built); an
        entry whose read-set is unknown is dropped conservatively.
        Without ``name`` the whole cache goes — used when the write target
        cannot be pinned down (declaration shadowing, nested regions,
        ``seq`` element rebinding).
        """
        cache = self.cse_cache
        if cache is None:
            return
        if name is None:
            cache.clear()
            return
        names_of = self.cse_text_names
        dead = []
        for key in cache:
            reads = names_of.get(key[0])
            if reads is None or name in reads:
                dead.append(key)
        for key in dead:
            del cache[key]

    def cse_suspend(self) -> "_CseSuspend":
        """Run a nested region (function call, nested construct) uncached."""
        return _CseSuspend(self)

    # -- name resolution ------------------------------------------------------------

    def resolve_index_set(
        self, name: str, ctx: ExecContext, at: Optional[ast.Node] = None
    ) -> IndexSetValue:
        binding = ctx.env.try_lookup(name)
        if isinstance(binding, IndexSetValue):
            return binding
        isv = self.info.index_sets.get(name)
        if isv is None:
            raise UCRuntimeError(
                f"unknown index set {name!r}",
                at.line if at is not None else 0,
                at.col if at is not None else 0,
            )
        return isv

    def declare_index_set(self, decl: ast.IndexSetDecl, env: Env) -> None:
        """Runtime declaration of a block-local index set."""
        consts = _ConstEvaluator(self.info.constants)
        spec = decl.spec
        if spec.kind == "range":
            lo, hi = consts.eval(spec.lo), consts.eval(spec.hi)
            values = tuple(range(lo, hi + 1))
        elif spec.kind == "listing":
            values = tuple(consts.eval(i) for i in spec.items)
        else:
            base = env.try_lookup(spec.alias) or self.info.index_sets.get(spec.alias)
            if not isinstance(base, IndexSetValue):
                raise UCRuntimeError(
                    f"index set {decl.set_name!r} aliases unknown set {spec.alias!r}",
                    decl.line,
                    decl.col,
                )
            values = base.values
        env.declare(decl.set_name, IndexSetValue(decl.set_name, decl.elem_name, values))

    # -- calls (delegated) -------------------------------------------------------------

    def call_function(self, node: ast.Call, ctx: ExecContext):
        return _functions.call_function(self, node, ctx)

    # -- running ------------------------------------------------------------------------

    def load_inputs(self, inputs: Dict[str, Union[int, float, np.ndarray]]) -> None:
        """Pre-load arrays/scalars before running (front-end I/O costs)."""
        for name, value in inputs.items():
            binding = self.global_env.try_lookup(name)
            if isinstance(binding, ArrayVar):
                binding.field.load(np.asarray(value))
            elif isinstance(binding, ScalarVar):
                binding.value = coerce_scalar(binding.ctype, value)  # type: ignore[arg-type]
            else:
                raise UCRuntimeError(f"no program variable named {name!r} to load")

    def run_main(self, *, profile: bool = False) -> None:
        if self.info.program.main is None:
            raise UCRuntimeError("program has no main block")
        ctx = ExecContext(GridContext(), None, Env(self.global_env))
        try:
            if profile:
                self._run_profiled(ctx)
            else:
                exec_stmt(self, self.info.program.main, ctx)
        except ReturnSignal:
            pass

    def poll_boundary(self, at=None) -> None:
        """Deadline poll at a safe cancellation point (outermost construct
        entry or an iterated-construct sweep boundary)."""
        if self.deadline is not None:
            self.deadline.check(self, at)

    def make_main_context(self) -> "ExecContext":
        """The context :meth:`run_main_from` executes ``main`` in.

        Its environment is a *direct* child of the global environment,
        which is what makes portable snapshots possible (every top-level
        binding of ``main`` is reachable by name from it).
        """
        return ExecContext(GridContext(), None, Env(self.global_env))

    def run_main_from(self, ctx: "ExecContext", start_pc: int = 0, boundary=None) -> None:
        """Execute ``main``'s top-level statements from index ``start_pc``.

        The resumable entry point behind deadlines, preemption and crash
        recovery: statements execute exactly as :meth:`run_main` does
        (same charges, same semantics — the precedent is
        :meth:`_run_profiled`, which also iterates the top level with the
        main context directly), but between statements the runner calls
        ``boundary(pc)``, which may raise
        :class:`~repro.interp.deadline.JobPreempted` after taking a
        :class:`~repro.interp.checkpoint.PortableSnapshot` at ``pc``, the
        index of the next statement to run.
        """
        main = self.info.program.main
        if main is None:
            raise UCRuntimeError("program has no main block")
        monitor = self.deadline
        try:
            for pc in range(start_pc, len(main.stmts)):
                if boundary is not None:
                    boundary(pc)
                if monitor is not None:
                    monitor.check(self)
                exec_stmt(self, main.stmts[pc], ctx)
                if monitor is not None:
                    monitor.last_pc = pc
        except ReturnSignal:
            pass

    def _run_profiled(self, ctx: "ExecContext") -> None:
        """Execute main, attributing time to each top-level statement.

        Regions are keyed ``"line <n>: <kind>"``; the clock accumulates
        the simulated time spent under each, giving the per-statement
        hotspot report the CLI's ``--profile`` prints.
        """
        main = self.info.program.main
        assert main is not None
        for stmt in main.stmts:
            label = f"line {stmt.line}: {type(stmt).__name__}"
            if isinstance(stmt, ast.UCStmt):
                label = f"line {stmt.line}: {'*' if stmt.star else ''}{stmt.kind}"
            with self.machine.clock.region(label):
                exec_stmt(self, stmt, ctx)

    def read_array(self, name: str) -> np.ndarray:
        binding = self.global_env.try_lookup(name)
        if isinstance(binding, ArrayVar):
            return binding.data.copy()
        raise UCRuntimeError(f"no array named {name!r}")

    def read_scalar(self, name: str) -> Union[int, float]:
        binding = self.global_env.try_lookup(name)
        if isinstance(binding, ScalarVar):
            return binding.value
        raise UCRuntimeError(f"no scalar named {name!r}")


class _CseRegion:
    """Arms the CSE cache unless one is already armed (no nesting)."""

    def __init__(self, ip: Interpreter) -> None:
        self._ip = ip
        self._armed_here = False

    def __enter__(self) -> None:
        if self._ip.cse_enabled and self._ip.cse_cache is None:
            self._ip.cse_cache = {}
            self._armed_here = True

    def __exit__(self, *exc: object) -> None:
        if self._armed_here:
            self._ip.cse_cache = None


class _CseSuspend:
    """Disables the cache for a nested region and drops stale entries."""

    def __init__(self, ip: Interpreter) -> None:
        self._ip = ip
        self._saved: Optional[dict] = None

    def __enter__(self) -> None:
        self._saved = self._ip.cse_cache
        self._ip.cse_cache = None

    def __exit__(self, *exc: object) -> None:
        self._ip.cse_cache = self._saved
        # the nested region may have written anything: drop stale values
        self._ip.cse_invalidate()
