"""Checkpoint/restore of the full execution state.

A :class:`Checkpoint` captures everything a UC program can observe:
field contents of every machine array, VP-set activity-context stacks,
the values bound in the environment chain (scalars and parallel locals
are mutable cells; restore writes the saved values back into the *same*
cell objects so every live reference sees them), the complete Clock
ledger, both RNG states (machine and interpreter), buffered ``print``
output and the tier log.  The Clock state rides through whole: the
frontier-engine counters and per-sweep traces
(``Clock.frontier_counts`` / ``Clock.frontier_trace``) are part of
``dump_state``/``load_state``, so a replayed construct neither loses nor
double-counts its active-set sweep statistics (they stay excluded from
the cost fingerprint either way).

Deliberately **not** captured: the machine's dead-PE list and the fault
plan's fired/counter state.  Hardware health is physical, not program,
state — rolling it back would make the same fault fire again on every
replay and recovery could never converge.

Because the simulator charges the clock *before* mutating fields
everywhere, a fault interrupts an attempt with no partial mutation in
flight; restoring a checkpoint therefore reproduces the exact program
state — and, crucially, the exact Clock fingerprint — that held when the
checkpoint was taken.  The recovery tests assert bit-identity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .values import ParallelLocal, ScalarVar


class Checkpoint:
    """One captured execution state (build via :func:`take_checkpoint`)."""

    __slots__ = (
        "clock_state",
        "machine_rng",
        "interp_rng",
        "fields",
        "stacks",
        "envs",
        "stdout_len",
        "tier_log",
    )

    def __init__(
        self,
        clock_state: dict,
        machine_rng: dict,
        interp_rng: dict,
        fields: List[Tuple[Any, np.ndarray]],
        stacks: List[Tuple[Any, List[np.ndarray]]],
        envs: List[Tuple[Any, Dict[str, Tuple[str, Any, Any]]]],
        stdout_len: int,
        tier_log: Optional[Dict[Any, set]],
    ) -> None:
        self.clock_state = clock_state
        self.machine_rng = machine_rng
        self.interp_rng = interp_rng
        self.fields = fields
        self.stacks = stacks
        self.envs = envs
        self.stdout_len = stdout_len
        self.tier_log = tier_log


def take_checkpoint(ip, ctx) -> Checkpoint:
    """Snapshot the interpreter/machine pair at a construct boundary."""
    m = ip.machine
    fields = [(f, f.data.copy()) for f in m.fields]
    stacks = [(vps, list(vps._context_stack)) for vps in m.vpsets]
    envs: List[Tuple[Any, Dict[str, Tuple[str, Any, Any]]]] = []
    env = ctx.env
    while env is not None:
        saved: Dict[str, Tuple[str, Any, Any]] = {}
        for name, binding in env.bindings.items():
            if isinstance(binding, ScalarVar):
                saved[name] = ("scalar", binding, binding.value)
            elif isinstance(binding, ParallelLocal):
                saved[name] = ("plocal", binding, binding.data.copy())
            else:
                # arrays restore through their field; index sets, element
                # bindings, functions and constants are immutable
                saved[name] = ("ref", binding, None)
        envs.append((env, saved))
        env = env.parent
    tier_log = None
    if ip.tier_log is not None:
        tier_log = {key: set(val) for key, val in ip.tier_log.items()}
    return Checkpoint(
        clock_state=m.clock.dump_state(),
        machine_rng=m.rng.bit_generator.state,
        interp_rng=ip.rng.bit_generator.state,
        fields=fields,
        stacks=stacks,
        envs=envs,
        stdout_len=len(ip.stdout),
        tier_log=tier_log,
    )


def restore_checkpoint(ip, cp: Checkpoint) -> None:
    """Roll the interpreter/machine pair back to ``cp``.

    A checkpoint may be restored any number of times (each retry of a
    protected construct restores the same one); the saved arrays are
    never handed out, only copied from.
    """
    m = ip.machine
    m.clock.load_state(cp.clock_state)
    m.rng.bit_generator.state = cp.machine_rng
    ip.rng.bit_generator.state = cp.interp_rng
    for f, data in cp.fields:
        f.data[...] = data
    known_vpsets = set()
    for vps, stack in cp.stacks:
        vps._context_stack = list(stack)
        known_vpsets.add(id(vps))
    # VP sets cached during the aborted attempt: drop any context state
    for vps in m.vpsets:
        if id(vps) not in known_vpsets:
            vps._context_stack = []
    for env, saved in cp.envs:
        bindings: Dict[str, Any] = {}
        for name, (tag, obj, value) in saved.items():
            if tag == "scalar":
                obj.value = value
            elif tag == "plocal":
                obj.data[...] = value
            bindings[name] = obj
        # rebuilding the dict also prunes names the aborted attempt declared
        env.bindings = bindings
    del ip.stdout[cp.stdout_len :]
    if ip.tier_log is not None and cp.tier_log is not None:
        ip.tier_log.clear()
        for key, val in cp.tier_log.items():
            ip.tier_log[key] = set(val)
    # the aborted attempt may have cached subexpressions over rolled-back
    # state; drop everything (the protected region re-arms its own cache)
    ip.cse_invalidate()
