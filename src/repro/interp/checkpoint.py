"""Checkpoint/restore of the full execution state.

A :class:`Checkpoint` captures everything a UC program can observe:
field contents of every machine array, VP-set activity-context stacks,
the values bound in the environment chain (scalars and parallel locals
are mutable cells; restore writes the saved values back into the *same*
cell objects so every live reference sees them), the complete Clock
ledger, both RNG states (machine and interpreter), buffered ``print``
output and the tier log.  The Clock state rides through whole: the
frontier-engine counters and per-sweep traces
(``Clock.frontier_counts`` / ``Clock.frontier_trace``) are part of
``dump_state``/``load_state``, so a replayed construct neither loses nor
double-counts its active-set sweep statistics (they stay excluded from
the cost fingerprint either way).

Deliberately **not** captured: the machine's dead-PE list and the fault
plan's fired/counter state.  Hardware health is physical, not program,
state — rolling it back would make the same fault fire again on every
replay and recovery could never converge.

Because the simulator charges the clock *before* mutating fields
everywhere, a fault interrupts an attempt with no partial mutation in
flight; restoring a checkpoint therefore reproduces the exact program
state — and, crucially, the exact Clock fingerprint — that held when the
checkpoint was taken.  The recovery tests assert bit-identity.

The in-memory :class:`Checkpoint` above restores into the *same* live
objects and therefore cannot outlive its process.  For the execution
service's preemption and crash recovery there is a second, portable
format: :class:`PortableSnapshot`, taken only at **top-level statement
boundaries** of ``main`` (where no construct is active, every VP-set
context stack is empty and the environment chain is exactly
``main env -> global env``).  It captures state *by name* — field data,
scalar values, block-local declarations in order, clock state, both
RNGs, stdout, the tier log, the dead-PE list and the fault plan's
fired/counter state — and :func:`install_portable` rebuilds it onto a
freshly constructed interpreter for the same program, in this process
or another one (``snapshot_to_bytes``/``snapshot_from_bytes``).  Unlike
the in-memory checkpoint it deliberately **does** carry hardware state
(dead PEs, fired fault events): across a process boundary there is no
surviving machine object to remember them, and replaying a fired fault
after resume would break the exactly-once guarantee.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..lang.errors import UCRuntimeError
from ..lang.scope import IndexSetValue
from .values import ArrayVar, ParallelLocal, ScalarVar


class Checkpoint:
    """One captured execution state (build via :func:`take_checkpoint`)."""

    __slots__ = (
        "clock_state",
        "machine_rng",
        "interp_rng",
        "fields",
        "stacks",
        "envs",
        "stdout_len",
        "tier_log",
    )

    def __init__(
        self,
        clock_state: dict,
        machine_rng: dict,
        interp_rng: dict,
        fields: List[Tuple[Any, np.ndarray]],
        stacks: List[Tuple[Any, List[np.ndarray]]],
        envs: List[Tuple[Any, Dict[str, Tuple[str, Any, Any]]]],
        stdout_len: int,
        tier_log: Optional[Dict[Any, set]],
    ) -> None:
        self.clock_state = clock_state
        self.machine_rng = machine_rng
        self.interp_rng = interp_rng
        self.fields = fields
        self.stacks = stacks
        self.envs = envs
        self.stdout_len = stdout_len
        self.tier_log = tier_log


def take_checkpoint(ip, ctx) -> Checkpoint:
    """Snapshot the interpreter/machine pair at a construct boundary."""
    m = ip.machine
    fields = [(f, f.data.copy()) for f in m.fields]
    stacks = [(vps, list(vps._context_stack)) for vps in m.vpsets]
    envs: List[Tuple[Any, Dict[str, Tuple[str, Any, Any]]]] = []
    env = ctx.env
    while env is not None:
        saved: Dict[str, Tuple[str, Any, Any]] = {}
        for name, binding in env.bindings.items():
            if isinstance(binding, ScalarVar):
                saved[name] = ("scalar", binding, binding.value)
            elif isinstance(binding, ParallelLocal):
                saved[name] = ("plocal", binding, binding.data.copy())
            else:
                # arrays restore through their field; index sets, element
                # bindings, functions and constants are immutable
                saved[name] = ("ref", binding, None)
        envs.append((env, saved))
        env = env.parent
    tier_log = None
    if ip.tier_log is not None:
        tier_log = {key: set(val) for key, val in ip.tier_log.items()}
    return Checkpoint(
        clock_state=m.clock.dump_state(),
        machine_rng=m.rng.bit_generator.state,
        interp_rng=ip.rng.bit_generator.state,
        fields=fields,
        stacks=stacks,
        envs=envs,
        stdout_len=len(ip.stdout),
        tier_log=tier_log,
    )


def restore_checkpoint(ip, cp: Checkpoint) -> None:
    """Roll the interpreter/machine pair back to ``cp``.

    A checkpoint may be restored any number of times (each retry of a
    protected construct restores the same one); the saved arrays are
    never handed out, only copied from.
    """
    m = ip.machine
    m.clock.load_state(cp.clock_state)
    m.rng.bit_generator.state = cp.machine_rng
    ip.rng.bit_generator.state = cp.interp_rng
    for f, data in cp.fields:
        f.data[...] = data
    known_vpsets = set()
    for vps, stack in cp.stacks:
        vps._context_stack = list(stack)
        known_vpsets.add(id(vps))
    # VP sets cached during the aborted attempt: drop any context state
    for vps in m.vpsets:
        if id(vps) not in known_vpsets:
            vps._context_stack = []
    for env, saved in cp.envs:
        bindings: Dict[str, Any] = {}
        for name, (tag, obj, value) in saved.items():
            if tag == "scalar":
                obj.value = value
            elif tag == "plocal":
                obj.data[...] = value
            bindings[name] = obj
        # rebuilding the dict also prunes names the aborted attempt declared
        env.bindings = bindings
    del ip.stdout[cp.stdout_len :]
    if ip.tier_log is not None and cp.tier_log is not None:
        ip.tier_log.clear()
        for key, val in cp.tier_log.items():
            ip.tier_log[key] = set(val)
    # the aborted attempt may have cached subexpressions over rolled-back
    # state; drop everything (the protected region re-arms its own cache)
    ip.cse_invalidate()


# ---------------------------------------------------------------------------
# portable (cross-process) snapshots
# ---------------------------------------------------------------------------

#: bump when the portable payload layout changes; loads reject mismatches
SNAPSHOT_VERSION = 1


class SnapshotUnsupported(Exception):
    """This execution state cannot be captured portably (e.g. an env
    binding class the by-name format does not model).  Callers treat it
    as "keep running" — the job simply is not preemptible here."""


class PortableSnapshot:
    """A by-name execution state at a top-level boundary of ``main``.

    Everything inside is plain data (dicts, lists, ndarrays, scalars):
    pickling it and loading it in another process is supported and is
    what ``repro serve --resume`` does.  ``pc`` is the index of the next
    top-level statement to execute.
    """

    __slots__ = (
        "pc",
        "clock_state",
        "machine_rng",
        "interp_rng",
        "stdout",
        "tier_log",
        "dead_pes",
        "fault_state",
        "globals",
        "main_env",
    )

    def __init__(self, **kw) -> None:
        for name in self.__slots__:
            setattr(self, name, kw[name])

    def to_payload(self) -> dict:
        return {
            "version": SNAPSHOT_VERSION,
            **{name: getattr(self, name) for name in self.__slots__},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PortableSnapshot":
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotUnsupported(
                f"snapshot version {version!r} != {SNAPSHOT_VERSION}"
            )
        return cls(**{name: payload[name] for name in cls.__slots__})


def snapshot_to_bytes(snap: PortableSnapshot) -> bytes:
    return pickle.dumps(snap.to_payload(), protocol=pickle.HIGHEST_PROTOCOL)


def snapshot_from_bytes(data: bytes) -> PortableSnapshot:
    return PortableSnapshot.from_payload(pickle.loads(data))


def take_portable(ip, ctx, pc: int) -> PortableSnapshot:
    """Capture a :class:`PortableSnapshot` at top-level statement ``pc``.

    ``ctx`` must be the main context built by
    :meth:`Interpreter.make_main_context` — its environment a direct
    child of the global environment.  Raises :class:`SnapshotUnsupported`
    when the live state has a shape the portable format cannot carry.
    """
    if ctx.env.parent is not ip.global_env:
        raise SnapshotUnsupported("not at a top-level statement boundary")
    for vps in ip.machine.vpsets:
        if vps._context_stack:
            raise SnapshotUnsupported("a VP-set activity context is open")
    main_env: List[Tuple[str, str, Any]] = []
    for name, binding in ctx.env.bindings.items():
        if isinstance(binding, ScalarVar):
            main_env.append(("scalar", name, (binding.ctype, binding.value)))
        elif isinstance(binding, ArrayVar):
            main_env.append(
                ("array", name, (binding.ctype, binding.shape, binding.data.copy()))
            )
        elif isinstance(binding, IndexSetValue):
            main_env.append(
                ("index_set", name, (binding.elem_name, tuple(binding.values)))
            )
        else:
            raise SnapshotUnsupported(
                f"binding {name!r} ({type(binding).__name__}) is not portable"
            )
    globals_: List[Tuple[str, str, Any]] = []
    for name, binding in ip.global_env.bindings.items():
        if isinstance(binding, ArrayVar):
            globals_.append(("array", name, binding.data.copy()))
        elif isinstance(binding, ScalarVar):
            globals_.append(("scalar", name, binding.value))
        # index sets, functions and constants are rebuilt by the
        # interpreter constructor from the (shared) program info
    plan = ip.machine.faults
    fault_state = None
    if plan is not None:
        fault_state = {
            "fired": [bool(ev.fired) for ev in plan.events],
            "counts": dict(plan._counts),
            "log": list(plan.log),
        }
    return PortableSnapshot(
        pc=int(pc),
        clock_state=ip.machine.clock.dump_state(),
        machine_rng=ip.machine.rng.bit_generator.state,
        interp_rng=ip.rng.bit_generator.state,
        stdout="".join(ip.stdout),
        tier_log=(
            {key: set(val) for key, val in ip.tier_log.items()}
            if ip.tier_log is not None
            else None
        ),
        dead_pes=set(ip.machine.dead_pes),
        fault_state=fault_state,
        globals=globals_,
        main_env=main_env,
    )


def install_portable(ip, ctx, snap: PortableSnapshot) -> None:
    """Rebuild a snapshot onto a *freshly prepared* interpreter.

    ``ip``/``ctx`` must come from the same program (source, defines,
    machine config, flags, seed) the snapshot was taken from —
    ``repro serve`` guarantees that by re-preparing from the journalled
    job spec.  Execution then resumes at ``snap.pc`` with fingerprints
    bit-identical to the uninterrupted run.
    """
    m = ip.machine
    # hardware health first: VP sets allocated below (and ratios of the
    # already-allocated global sets) must see the surviving PE count
    m.dead_pes = set(snap.dead_pes)
    for vps in m.vpsets:
        vps.recompute_ratio()
    by_name = {
        name: payload for tag, name, payload in snap.globals if tag == "array"
    }
    for name, binding in ip.global_env.bindings.items():
        if isinstance(binding, ArrayVar) and name in by_name:
            binding.field.data[...] = by_name[name]
        elif isinstance(binding, ScalarVar):
            for tag, sname, payload in snap.globals:
                if tag == "scalar" and sname == name:
                    binding.value = payload
                    break
    for tag, name, payload in snap.main_env:
        if tag == "scalar":
            ctype, value = payload
            var = ScalarVar(name, ctype)
            var.value = value
            ctx.env.declare(name, var)
        elif tag == "array":
            ctype, dims, data = payload
            var = ip.allocate_array(name, ctype, tuple(dims))
            var.field.data[...] = data
            ctx.env.declare(name, var)
        else:
            elem_name, values = payload
            ctx.env.declare(name, IndexSetValue(name, elem_name, values))
    m.clock.load_state(snap.clock_state)
    m.rng.bit_generator.state = snap.machine_rng
    ip.rng.bit_generator.state = snap.interp_rng
    ip.stdout = [snap.stdout] if snap.stdout else []
    if ip.tier_log is not None and snap.tier_log is not None:
        ip.tier_log.clear()
        for key, val in snap.tier_log.items():
            ip.tier_log[key] = set(val)
    plan = m.faults
    if plan is not None and snap.fault_state is not None:
        fired = snap.fault_state["fired"]
        if len(fired) != len(plan.events):
            raise SnapshotUnsupported(
                "fault plan shape changed between suspend and resume"
            )
        for ev, was_fired in zip(plan.events, fired):
            ev.fired = was_fired
        plan._counts = dict(snap.fault_state["counts"])
        plan.log = list(snap.fault_state["log"])
