"""Runtime values: grid contexts, variables and bindings.

A :class:`GridContext` is the cartesian product of the index sets bound
by the enclosing parallel constructs — the shape every parallel
expression evaluates over.  Extending a grid (nested ``par``, reductions)
*appends* axes, so a parent mask broadcasts by adding trailing axes and a
reduction collapses exactly the appended ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..lang.errors import UCRuntimeError
from ..lang.scope import IndexSetValue
from ..machine.field import Field
from ..mapping.layout import Layout


@dataclass(frozen=True)
class GridAxis:
    """One axis of a grid context: an index-set binding."""

    elem: str
    set_name: str
    values: Tuple[int, ...]

    @property
    def extent(self) -> int:
        return len(self.values)


class GridContext:
    """An ordered list of grid axes (empty = host/scalar context)."""

    def __init__(self, axes: Sequence[GridAxis] = ()) -> None:
        self.axes: Tuple[GridAxis, ...] = tuple(axes)
        self.shape: Tuple[int, ...] = tuple(a.extent for a in self.axes)
        self._positions: Optional[List[np.ndarray]] = None
        self._values: Dict[int, np.ndarray] = {}

    # -- structure ------------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.axes)

    @property
    def is_host(self) -> bool:
        return not self.axes

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.axes else 1

    @property
    def axis_elems(self) -> Tuple[str, ...]:
        return tuple(a.elem for a in self.axes)

    def extend(self, sets: Sequence[IndexSetValue]) -> "GridContext":
        """A new context with one appended axis per index set."""
        new = [GridAxis(s.elem_name, s.name, tuple(s.values)) for s in sets]
        return GridContext(self.axes + tuple(new))

    # -- per-axis arrays --------------------------------------------------------

    def positions(self) -> List[np.ndarray]:
        """Position coordinates per axis (``np.indices``), cached."""
        if self._positions is None:
            self._positions = list(np.indices(self.shape, dtype=np.int64)) if self.axes else []
        return self._positions

    def axis_values(self, axis: int) -> np.ndarray:
        """Element *values* along ``axis``, broadcast to the grid shape."""
        if axis not in self._values:
            vals = np.asarray(self.axes[axis].values, dtype=np.int64)
            view = [1] * self.rank
            view[axis] = len(vals)
            self._values[axis] = np.broadcast_to(vals.reshape(view), self.shape)
        return self._values[axis]

    def broadcast_from(self, value: Union[int, float, np.ndarray], parent_rank: int):
        """Broadcast a parent-context value (rank ``parent_rank``) here."""
        if not isinstance(value, np.ndarray):
            return value
        extra = self.rank - parent_rank
        if extra <= 0:
            return value
        return np.broadcast_to(value.reshape(value.shape + (1,) * extra), self.shape)

    def full_mask(self) -> np.ndarray:
        return np.ones(self.shape, dtype=bool)

    def __repr__(self) -> str:
        desc = ", ".join(f"{a.set_name}:{a.elem}[{a.extent}]" for a in self.axes)
        return f"GridContext({desc})"


# ---------------------------------------------------------------------------
# variable bindings
# ---------------------------------------------------------------------------


@dataclass
class ScalarVar:
    """A front-end scalar variable."""

    name: str
    ctype: str
    value: Union[int, float] = 0


@dataclass
class ArrayVar:
    """A program array: a machine field plus its layout."""

    name: str
    ctype: str
    field: Field
    layout: Layout

    @property
    def data(self) -> np.ndarray:
        return self.field.data

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.field.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.field.dtype


@dataclass
class ParallelLocal:
    """A scalar declared inside a parallel body: one value per grid point."""

    name: str
    ctype: str
    grid_rank: int
    data: np.ndarray


@dataclass
class ElementBinding:
    """An index element: bound to a grid axis (par) or a scalar (seq)."""

    elem: str
    set_name: str
    kind: str  # 'axis' | 'scalar'
    axis: int = -1
    value: int = 0


@dataclass
class SliceParam:
    """An array slice passed to a function (the only pointer use UC allows)."""

    array: ArrayVar
    prefix: Tuple[int, ...]  # fixed leading subscripts

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.array.shape[len(self.prefix) :]

    def view(self) -> np.ndarray:
        return self.array.data[self.prefix]


class LaneScalars:
    """A per-lane vector of scalar values for batched lane execution.

    The batched executor (:mod:`repro.interp.batch`) evaluates one
    register program over ``S`` program instances at once.  Scalars that
    differ between lanes (solve parameters, per-lane reduction results)
    are carried as a ``LaneScalars`` wrapping an ``(S,)`` object vector
    of plain python ints/floats.  Mixing a ``LaneScalars`` with a lane-
    stacked ndarray lifts it to shape ``(S, 1, ..., 1)`` so numpy
    broadcasting applies it lane-wise; scalar-scalar arithmetic is done
    per lane in python, preserving solo scalar semantics exactly
    (arbitrary precision, division-by-zero errors).
    """

    __slots__ = ("values",)

    def __init__(self, values: Sequence) -> None:
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)

    def lifted(self, ndim: int) -> np.ndarray:
        """As an ndarray of shape ``(S, 1, ..., 1)`` with ``ndim`` dims."""
        arr = np.asarray(self.values)
        return arr.reshape((len(self.values),) + (1,) * max(0, ndim - 1))

    def compact(self, keep: Sequence[int]) -> "LaneScalars":
        """A new ``LaneScalars`` holding only the lanes in ``keep``."""
        return LaneScalars([self.values[i] for i in keep])

    def __repr__(self) -> str:
        return f"LaneScalars({self.values!r})"


def numpy_ctype(ctype: str) -> np.dtype:
    if ctype == "float":
        return np.dtype(np.float64)
    return np.dtype(np.int64)


def coerce_scalar(ctype: str, value) -> Union[int, float]:
    if ctype == "float":
        return float(value)
    return int(value)
