"""Processor optimizations: virtual-processor count deduction (paper §4).

The paper's example:

    par (J)
        count[j] = $+(I st (samples[i]==j) 1);

A simplistic implementation uses ``|J| * |I|`` virtual processors (one
reduction grid per j).  But the predicate equates an expression over the
*reduction* elements with the *par* element, so each operand contributes
to exactly one result — the whole thing runs with ``max(|I|, |J|)``
processors as a single send-with-add through the router.

This module provides the static analysis (:func:`analyze_program` /
:func:`match_partition`) and the interpreter consults
:func:`match_partition` when ``processor_opt`` is enabled to charge the
cheap router-combine cost instead of the full product-grid scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lang import ast
from ..lang.semantics import ProgramInfo


@dataclass(frozen=True)
class ReductionPlan:
    """VP requirements for one reduction inside a parallel statement."""

    op: str
    par_sets: Tuple[str, ...]
    red_sets: Tuple[str, ...]
    naive_vps: int
    optimized_vps: int
    partitioned: bool
    line: int = 0

    @property
    def saving(self) -> float:
        return self.naive_vps / max(1, self.optimized_vps)


def _names_in(expr: ast.Expr) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            out.add(node.ident)
        elif isinstance(node, ast.Index):
            out.add(node.base)
    return out


def match_partition(
    red: ast.Reduction, par_elems: Sequence[str], red_elems: Sequence[str]
) -> bool:
    """Does the reduction's predicate partition operands across results?

    True when some arm predicate is a conjunction containing an equality
    ``f(reduction elements) == g(par element)`` where ``g`` is exactly one
    par element and ``f`` mentions reduction elements but no par element —
    then each operand is counted toward at most one result.
    """
    par_set = set(par_elems)
    red_set = set(red_elems)
    for arm in red.arms:
        if arm.pred is None:
            continue
        for clause in _conjuncts(arm.pred):
            if not (isinstance(clause, ast.Binary) and clause.op == "=="):
                continue
            for a, b in ((clause.left, clause.right), (clause.right, clause.left)):
                a_names = _names_in(a)
                b_names = _names_in(b)
                if (
                    isinstance(b, ast.Name)
                    and b.ident in par_set
                    and a_names & red_set
                    and not (a_names & par_set)
                ):
                    return True
    return False


def _conjuncts(expr: ast.Expr):
    if isinstance(expr, ast.Binary) and expr.op == "&&":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def analyze_reduction(
    red: ast.Reduction,
    par_sets: Sequence[str],
    info: ProgramInfo,
) -> ReductionPlan:
    """VP-count plan for one reduction nested in ``par (par_sets)``."""
    par_extent = 1
    for name in par_sets:
        par_extent *= len(info.index_sets[name])
    red_extent = 1
    for name in red.index_sets:
        red_extent *= len(info.index_sets[name])
    par_elems = [info.index_sets[s].elem_name for s in par_sets]
    red_elems = [info.index_sets[s].elem_name for s in red.index_sets]
    partitioned = match_partition(red, par_elems, red_elems)
    naive = par_extent * red_extent
    optimized = max(par_extent, red_extent) if partitioned else naive
    return ReductionPlan(
        op=red.op,
        par_sets=tuple(par_sets),
        red_sets=tuple(red.index_sets),
        naive_vps=naive,
        optimized_vps=optimized,
        partitioned=partitioned,
        line=red.line,
    )


def analyze_program(info: ProgramInfo) -> List[ReductionPlan]:
    """Plans for every reduction nested directly inside a par statement."""
    plans: List[ReductionPlan] = []
    program = info.program
    roots: List[ast.Node] = []
    if program.main is not None:
        roots.append(program.main)
    roots.extend(f.body for f in program.funcs)
    for root in roots:
        _walk_stmt(root, [], plans, info)
    return plans


def _walk_stmt(
    node: ast.Node, par_stack: List[str], plans: List[ReductionPlan], info: ProgramInfo
) -> None:
    if isinstance(node, ast.UCStmt) and node.kind in ("par", "solve", "oneof"):
        par_stack = par_stack + list(node.index_sets)
    if isinstance(node, ast.Reduction) and par_stack:
        plans.append(analyze_reduction(node, par_stack, info))
    for child in ast.children(node):
        _walk_stmt(child, par_stack, plans, info)
