"""Peephole optimizations: constant folding and algebraic identities.

The paper (§4) lists "standard 'peep-hole' compiler optimizations like
common sub-expression detection [and] constant folding".  We implement
constant folding and the algebraic identities the mapping rewriter
produces (``x+0``, ``x*1``, ``x*0``), applied bottom-up over expression
trees.  The pass is semantics-preserving for the C integer semantics UC
inherits (truncating division, dividend-signed remainder).
"""

from __future__ import annotations

import copy
from typing import Optional, Union

from ..lang import ast

Number = Union[int, float]


def _lit(node: ast.Expr) -> Optional[Number]:
    if isinstance(node, ast.IntLit):
        return node.value
    if isinstance(node, ast.FloatLit):
        return node.value
    return None


def _make_lit(value: Number, like: ast.Node) -> ast.Expr:
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return ast.IntLit(line=like.line, col=like.col, value=value)
    return ast.FloatLit(line=like.line, col=like.col, value=value)


def _c_div(a: Number, b: Number) -> Optional[Number]:
    if b == 0:
        return None
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _fold_binary(op: str, a: Number, b: Number) -> Optional[Number]:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return _c_div(a, b)
    if op == "%":
        if b == 0 or not (isinstance(a, int) and isinstance(b, int)):
            return None
        q = _c_div(a, b)
        assert q is not None
        return a - q * b
    if op in ("==", "!=", "<", "<=", ">", ">="):
        table = {
            "==": a == b,
            "!=": a != b,
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
        }
        return int(table[op])
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    if isinstance(a, int) and isinstance(b, int):
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<" and 0 <= b < 64:
            return a << b
        if op == ">>" and 0 <= b < 64:
            return a >> b
    return None


def fold_expr(expr: ast.Expr) -> ast.Expr:
    """Fold ``expr`` bottom-up; returns a new tree (inputs unmodified)."""
    if isinstance(expr, ast.Unary):
        inner = fold_expr(expr.operand)
        v = _lit(inner)
        if v is not None:
            if expr.op == "-":
                return _make_lit(-v, expr)
            if expr.op == "!":
                return _make_lit(int(not v), expr)
            if expr.op == "~" and isinstance(v, int):
                return _make_lit(~v, expr)
        return ast.Unary(line=expr.line, col=expr.col, op=expr.op, operand=inner)
    if isinstance(expr, ast.Binary):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        lv, rv = _lit(left), _lit(right)
        if lv is not None and rv is not None:
            folded = _fold_binary(expr.op, lv, rv)
            if folded is not None:
                return _make_lit(folded, expr)
        # algebraic identities (integer-safe)
        if expr.op == "+" and rv == 0:
            return left
        if expr.op == "+" and lv == 0:
            return right
        if expr.op == "-" and rv == 0:
            return left
        if expr.op == "*" and rv == 1:
            return left
        if expr.op == "*" and lv == 1:
            return right
        if expr.op == "*" and (rv == 0 or lv == 0):
            return _make_lit(0, expr)
        rebuilt = ast.Binary(
            line=expr.line, col=expr.col, op=expr.op, left=left, right=right
        )
        if expr.op in ("+", "-"):
            # combine additive constants: (x + c1) - c2 -> x + (c1 - c2)
            from ..mapping.transform import simplify

            return simplify(rebuilt)
        return rebuilt
    if isinstance(expr, ast.Ternary):
        cond = fold_expr(expr.cond)
        cv = _lit(cond)
        if cv is not None:
            return fold_expr(expr.then) if cv else fold_expr(expr.els)
        return ast.Ternary(
            line=expr.line,
            col=expr.col,
            cond=cond,
            then=fold_expr(expr.then),
            els=fold_expr(expr.els),
        )
    if isinstance(expr, ast.Index):
        return ast.Index(
            line=expr.line,
            col=expr.col,
            base=expr.base,
            subs=[fold_expr(s) for s in expr.subs],
        )
    if isinstance(expr, ast.Call):
        return ast.Call(
            line=expr.line,
            col=expr.col,
            func=expr.func,
            args=[fold_expr(a) for a in expr.args],
        )
    if isinstance(expr, ast.Assign):
        return ast.Assign(
            line=expr.line,
            col=expr.col,
            target=fold_expr(expr.target),  # type: ignore[arg-type]
            op=expr.op,
            value=fold_expr(expr.value),
        )
    if isinstance(expr, ast.Reduction):
        out = copy.deepcopy(expr)
        out.arms = [
            ast.ScExpr(
                line=a.line,
                col=a.col,
                pred=fold_expr(a.pred) if a.pred is not None else None,
                expr=fold_expr(a.expr),
            )
            for a in expr.arms
        ]
        out.others = fold_expr(expr.others) if expr.others is not None else None
        return out
    return copy.deepcopy(expr)


def fold_program(program: ast.Program) -> ast.Program:
    """A deep copy of ``program`` with every expression folded."""
    out = copy.deepcopy(program)
    _fold_in_place(out)
    return out


def _fold_in_place(node: ast.Node) -> None:
    for name, value in vars(node).items():
        if isinstance(value, ast.Expr):
            setattr(node, name, fold_expr(value))
        elif isinstance(value, ast.Node):
            _fold_in_place(value)
        elif isinstance(value, list):
            for k, item in enumerate(value):
                if isinstance(item, ast.Expr):
                    value[k] = fold_expr(item)
                elif isinstance(item, ast.Node):
                    _fold_in_place(item)
