"""Compiler passes: optimizations and the UC → C* backend.

* :mod:`solve_sched` — static dependency scheduling for ``solve`` (§3.6 /
  reference [14] of the paper): turns a proper set of assignments into a
  level-by-level ``seq``/``par`` execution plan.
* :mod:`processor_opt` — virtual-processor count deduction (§4): detects
  reductions whose predicate partitions the operand set so they can run
  with |operands| processors instead of |results|·|operands|.
* :mod:`peephole` — constant folding and algebraic simplification.
* :mod:`comm_opt` — communication analysis: classifies every parallel
  array reference at compile time and suggests permute mappings.
* :mod:`cstar_ast` / :mod:`cstar_gen` — the C* target: translates UC
  programs into C*-style domain declarations and parallel member code
  (both as source text, mirroring the paper's appendix, and as runnable
  :mod:`repro.cstar` runtime calls).
"""

from . import comm_opt, cstar_ast, cstar_gen, peephole, processor_opt, solve_sched
from .comm_opt import analyze_communication
from .cstar_gen import expr_to_text, generate_cstar
from .processor_opt import analyze_program as analyze_processor_plans

__all__ = [
    "comm_opt",
    "cstar_ast",
    "cstar_gen",
    "peephole",
    "processor_opt",
    "solve_sched",
    "analyze_communication",
    "generate_cstar",
    "expr_to_text",
    "analyze_processor_plans",
]
