"""Target-side structures for the C* backend.

The UC compiler of the paper emitted C* source which the TMC C* compiler
then compiled.  Our backend mirrors that: it produces C* *source text*
(matching the style of the paper's appendix listings) organised through
these small structures, which the tests inspect without string-grepping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class CStarField:
    name: str
    ctype: str = "int"


@dataclass
class CStarDomain:
    """``domain NAME { fields } instance[shape...];``"""

    name: str
    instance: str
    shape: Tuple[int, ...]
    fields: List[CStarField] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"domain {self.name} {{"]
        lines.append("    int " + ", ".join(f.name for f in self.fields if f.ctype == "int") + ";")
        floats = [f.name for f in self.fields if f.ctype == "float"]
        if floats:
            lines.append("    float " + ", ".join(floats) + ";")
        lines.append("} " + self.instance + "".join(f"[{s}]" for s in self.shape) + ";")
        return "\n".join(lines)

    def render_init(self) -> str:
        """The paper's address-arithmetic init member function."""
        coords = [f.name for f in self.fields if f.name in ("i", "j", "k")][: len(self.shape)]
        body = [f"int offset = (this - &{self.instance}" + "[0]" * len(self.shape) + ");"]
        remaining = "offset"
        for axis, cname in enumerate(coords):
            stride = 1
            for s in self.shape[axis + 1 :]:
                stride *= s
            if axis == len(coords) - 1:
                body.append(f"{cname} = {remaining} % {self.shape[axis]};")
            else:
                body.append(f"{cname} = ({remaining} / {stride}) % {self.shape[axis]};")
        lines = [f"void {self.name}::init() {{"]
        lines.extend("    " + b for b in body)
        lines.append("}")
        return "\n".join(lines)


@dataclass
class CStarProgram:
    domains: List[CStarDomain] = field(default_factory=list)
    host_decls: List[str] = field(default_factory=list)
    main_lines: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def domain_for_shape(self, shape: Tuple[int, ...]) -> CStarDomain:
        for d in self.domains:
            if d.shape == shape:
                return d
        raise KeyError(f"no domain with shape {shape}")

    def render(self) -> str:
        parts: List[str] = []
        for note in self.notes:
            parts.append(f"/* {note} */")
        for d in self.domains:
            parts.append(d.render())
            parts.append("")
        for d in self.domains:
            if any(f.name in ("i", "j", "k") for f in d.fields):
                parts.append(d.render_init())
                parts.append("")
        for decl in self.host_decls:
            parts.append(decl)
        parts.append("")
        parts.append("void main() {")
        for d in self.domains:
            if any(f.name in ("i", "j", "k") for f in d.fields):
                parts.append(f"    [domain {d.name}].{{ init(); }}")
        parts.extend("    " + line for line in self.main_lines)
        parts.append("}")
        return "\n".join(parts)
